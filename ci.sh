#!/usr/bin/env bash
# Repo CI: formatting, workspace-wide lints, and the tier-1 verify
# (build + root test suite) followed by the full workspace suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check (telemetry)"
cargo fmt --check -p sia-telemetry

echo "==> cargo clippy -D warnings (workspace)"
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy -p sia-telemetry --no-default-features --all-targets -- -D warnings

echo "==> tier-1: release build + root tests"
cargo build --release
cargo test -q

# Debug-profile pass over the integer datapath crates with overflow checks
# forced on: any wrap in the fixed-point/accumulator paths aborts here
# instead of wrapping silently in release.
echo "==> debug-profile datapath tests with overflow checks on"
RUSTFLAGS="-C overflow-checks=on" \
    cargo test -q -p sia-fixed -p sia-snn -p sia-accel -p sia-check -p sia-repro

# Smoke benches, gated against the committed baselines. Each family first
# asserts kernel bit-exactness (sparse ≡ dense conv, blocked ≡ reference
# GEMM) before timing anything, then compares the production kernel's
# min-of-iters against results/baselines/<family>-smoke.json. The slack is
# deliberately generous (noise-aware threshold + 400% on a shared 1-core
# runner): this catches order-of-magnitude regressions — an accidentally
# disabled skip path, a dropped thread pool — not single-digit drift.
# Refresh after an intentional change: sia bench <family> --smoke --update-baseline
for family in conv gemm eval serve; do
    echo "==> $family bench (smoke, baseline-gated)"
    cargo run --release -p sia-cli -- bench "$family" --smoke \
        --check-baseline --rel-slack 400 \
        --out "/tmp/sia_bench_${family}_smoke.json"
done

# Data-parallel trainer smoke at --threads 4: drives the shared pool,
# gradient sharding and BN-stat replay end-to-end through the CLI (result
# determinism vs thread count is covered by the sia-nn test suite).
echo "==> train smoke with --threads 4"
cargo run --release -p sia-cli -- train --out /tmp/sia_ci_train.img \
    --width 2 --size 8 --epochs 1 --threads 4 --micro-batch 8

# Live serving gate: boot `sia serve` on an ephemeral port with the image
# the train smoke just produced, drive it with the `bench serve` load
# generator (which re-verifies every response bit-for-bit against a local
# threads=1 serving unit on the same artifact), post /shutdown, and require
# the server process to exit cleanly. Latency is gated against the same
# committed serve-smoke baseline as the self-hosted run above.
echo "==> serve smoke: live server + load generator"
SERVE_PORT_FILE=/tmp/sia_ci_serve_port
rm -f "$SERVE_PORT_FILE"
cargo run --release -p sia-cli -- serve /tmp/sia_ci_train.img \
    --port 0 --port-file "$SERVE_PORT_FILE" --timesteps 2 --threads 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SERVE_PORT_FILE" ] && break
    sleep 0.1
done
if ! [ -s "$SERVE_PORT_FILE" ]; then
    echo "serve never wrote its port file" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
cargo run --release -p sia-cli -- bench serve --smoke \
    --url "127.0.0.1:$(cat "$SERVE_PORT_FILE")" --model /tmp/sia_ci_train.img \
    --shutdown --check-baseline --rel-slack 400 \
    --out /tmp/sia_bench_serve_live.json
wait "$SERVE_PID"

echo "==> sia check gates on the shipped model configs"
cargo run --release -p sia-cli -- check --model resnet18
cargo run --release -p sia-cli -- check --model vgg11

echo "==> telemetry compiled out still passes"
cargo test -q --no-default-features

echo "==> full workspace suite"
cargo test -q --workspace

echo "CI OK"
