#!/usr/bin/env bash
# Repo CI: formatting, workspace-wide lints, and the tier-1 verify
# (build + root test suite) followed by the full workspace suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check (workspace)"
cargo fmt --all --check

# Architectural lint: every blocking protocol must go through the
# sia-sched SyncOps shim so the model checker can explore it. Raw
# `thread::spawn` / `Mutex::new` / `Condvar::new` / `RwLock::new` in
# production sources is a gate failure unless the line carries a
# `concurrency-allow: <reason>` marker (telemetry's internal locks, the
# serve accept loop, test-only real threads, data-partition locks).
# sia-sched itself hosts the real primitives behind the shim and is
# exempt wholesale; integration tests under tests/ drive real threads
# by design.
echo "==> architectural lint: raw threading primitives"
# The marker may sit on the matching line or the next one (rustfmt moves
# trailing comments into multi-line closures).
viol=""
while IFS=: read -r file line text; do
    if ! sed -n "${line}p;$((line + 1))p" "$file" | grep -q 'concurrency-allow'; then
        viol="${viol}${file}:${line}:${text}"$'\n'
    fi
done < <(grep -rn --include='*.rs' -E 'thread::spawn|Mutex::new|Condvar::new|RwLock::new' \
    crates/ src/ | grep -v '^crates/sched/')
if [ -n "$viol" ]; then
    echo "raw threading primitive outside the SyncOps shim (route it" >&2
    echo "through sia-sched, or justify with // concurrency-allow: ...):" >&2
    echo "$viol" >&2
    exit 1
fi

echo "==> cargo clippy -D warnings (workspace)"
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy -p sia-telemetry --no-default-features --all-targets -- -D warnings

echo "==> tier-1: release build + root tests"
cargo build --release
cargo test -q

# Schedule exploration of the pool/serve concurrency protocols: the
# production code (generic over SyncOps, instantiated at ModelSync) runs
# under exhaustive bounded-preemption DFS plus a seeded random walk, and
# the mutant self-tests prove each bug class is still caught with a
# replayable trace. Also part of `cargo test -q` above; the named run
# keeps the gate visible and fails fast with the full schedule trace.
echo "==> sia-sched: schedule exploration of the concurrency protocols"
cargo test -q -p sia-sched
cargo test -q --test sched_protocols

# Debug-profile pass over the integer datapath crates with overflow checks
# forced on: any wrap in the fixed-point/accumulator paths aborts here
# instead of wrapping silently in release.
echo "==> debug-profile datapath tests with overflow checks on"
RUSTFLAGS="-C overflow-checks=on" \
    cargo test -q -p sia-fixed -p sia-snn -p sia-accel -p sia-check -p sia-repro

# Smoke benches, gated against the committed baselines. Each family first
# asserts kernel bit-exactness (sparse ≡ dense conv, blocked ≡ reference
# GEMM) before timing anything, then compares the production kernel's
# min-of-iters against results/baselines/<family>-smoke.json. The slack is
# deliberately generous (noise-aware threshold + 400% on a shared 1-core
# runner): this catches order-of-magnitude regressions — an accidentally
# disabled skip path, a dropped thread pool — not single-digit drift.
# Refresh after an intentional change: sia bench <family> --smoke --update-baseline
for family in conv gemm eval serve; do
    echo "==> $family bench (smoke, baseline-gated)"
    cargo run --release -p sia-cli -- bench "$family" --smoke \
        --check-baseline --rel-slack 400 \
        --out "/tmp/sia_bench_${family}_smoke.json"
done

# Kernel calibration gates: the committed smoke calibration must stay
# loadable (format version + deterministic policy), and a fresh smoke
# measurement on this runner must fit, save and round-trip through
# --check. Refresh the committed file after a format change:
#   sia calibrate --smoke --out results/calibration/smoke.json
echo "==> kernel calibration: committed file + fresh smoke measurement"
cargo run --release -p sia-cli -- calibrate --check results/calibration/smoke.json
cargo run --release -p sia-cli -- calibrate --smoke --out /tmp/sia_ci_calibration.json
cargo run --release -p sia-cli -- calibrate --check /tmp/sia_ci_calibration.json

# Data-parallel trainer smoke at --threads 4: drives the shared pool,
# gradient sharding and BN-stat replay end-to-end through the CLI (result
# determinism vs thread count is covered by the sia-nn test suite).
echo "==> train smoke with --threads 4"
cargo run --release -p sia-cli -- train --out /tmp/sia_ci_train.img \
    --width 2 --size 8 --epochs 1 --threads 4 --micro-batch 8

# Adaptive early-exit gates. The proptest suite proves the two deployment
# contracts (unreachable thresholds are bit-identical to fixed-T on all
# three backends; pool exits are thread-count independent), then a
# margin-policy smoke eval on the train-smoke image enforces a hard
# accuracy ceiling versus its own fixed-T reference run (--max-acc-drop
# re-evaluates with ExitPolicy::Fixed and fails on a larger drop).
echo "==> early exit: proptest contracts + accuracy-drop ceiling"
cargo test -q --test early_exit
# (margin 2 on the 1-epoch smoke model: ~1/3 of images exit early while
# staying inside the ceiling; looser thresholds exit near-random logits)
cargo run --release -p sia-cli -- eval /tmp/sia_ci_train.img --smoke \
    --timesteps 4 --policy margin --exit-margin 2 --max-acc-drop 0.05

# Live serving gate: boot `sia serve` on an ephemeral port with the image
# the train smoke just produced, drive it with the `bench serve` load
# generator (which re-verifies every response bit-for-bit against a local
# threads=1 serving unit on the same artifact), post /shutdown, and require
# the server process to exit cleanly. Latency is gated against the same
# committed serve-smoke baseline as the self-hosted run above.
echo "==> serve smoke: live server + load generator"
SERVE_PORT_FILE=/tmp/sia_ci_serve_port
rm -f "$SERVE_PORT_FILE"
cargo run --release -p sia-cli -- serve /tmp/sia_ci_train.img \
    --port 0 --port-file "$SERVE_PORT_FILE" --timesteps 2 --threads 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SERVE_PORT_FILE" ] && break
    sleep 0.1
done
if ! [ -s "$SERVE_PORT_FILE" ]; then
    echo "serve never wrote its port file" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
# --allow-missing: url mode drives the one live server, so the baseline's
# self-hosted early-exit cases (c{n}@margin) cannot run here.
cargo run --release -p sia-cli -- bench serve --smoke \
    --url "127.0.0.1:$(cat "$SERVE_PORT_FILE")" --model /tmp/sia_ci_train.img \
    --shutdown --check-baseline --rel-slack 400 --allow-missing \
    --out /tmp/sia_bench_serve_live.json
wait "$SERVE_PID"

echo "==> sia check gates on the shipped model configs"
cargo run --release -p sia-cli -- check --model resnet18
cargo run --release -p sia-cli -- check --model vgg11

echo "==> telemetry compiled out still passes"
cargo test -q --no-default-features

echo "==> full workspace suite"
cargo test -q --workspace

echo "CI OK"
