//! Criterion microbenchmarks for the hot kernels of the reproduction:
//! the PE datapath, the spiking core, the aggregation core, the tensor
//! GEMM/convolution used in training, the functional SNN timestep, one
//! full layer on the cycle-level machine, and the static checker (so the
//! `sia run`/`sia eval` pre-flight gate stays effectively free).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use sia_accel::aggregation::{run_tile, BnCoefficients};
use sia_accel::pe::ProcessingElement;
use sia_accel::spiking_core::run_conv_pass;
use sia_accel::{compile_for, SiaConfig, SiaMachine};
use sia_bench::synthetic_spikes;
use sia_fixed::Q8_8;
use sia_nn::{ActSpec, BnSpec, ConvSpec, LinearSpec, NetworkSpec, SpecItem};
use sia_snn::network::NeuronMode;
use sia_snn::{convert, ConvertOptions, IntRunner};
use sia_tensor::{conv2d_forward, matmul, Conv2dGeom, Tensor};

fn bench_pe(c: &mut Criterion) {
    c.bench_function("pe/accumulate_row", |b| {
        let mut pe = ProcessingElement::new();
        b.iter(|| {
            pe.accumulate_row(black_box(&[17, -9, 23]), black_box(&[true, false, true]));
            black_box(pe.psum())
        });
    });
}

fn bench_spiking_core(c: &mut Criterion) {
    let geom = Conv2dGeom {
        in_channels: 16,
        out_channels: 16,
        in_h: 16,
        in_w: 16,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let weights: Vec<i8> = (0..geom.weight_count())
        .map(|i| ((i * 37 % 255) as i32 - 127) as i8)
        .collect();
    let cfg = SiaConfig::pynq_z2();
    for rate in [0.05f64, 0.16, 0.5] {
        let spikes = synthetic_spikes(16, 16, 16, rate, 1);
        c.bench_function(&format!("spiking_core/conv16x16@16_rate{rate}"), |b| {
            b.iter(|| {
                black_box(run_conv_pass(
                    black_box(&geom),
                    black_box(&weights),
                    0,
                    16,
                    black_box(&spikes),
                    &cfg,
                ))
            });
        });
    }
}

fn bench_aggregation(c: &mut Criterion) {
    let cfg = SiaConfig::pynq_z2();
    let bn = BnCoefficients {
        g: vec![Q8_8::from_f32(1.3); 16],
        h: vec![-12; 16],
    };
    let psums: Vec<i16> = (0..4096).map(|i| ((i * 97) % 400) as i16 - 200).collect();
    c.bench_function("aggregation/run_tile_4096", |b| {
        b.iter_batched(
            || vec![64i16; 4096],
            |mut mems| {
                black_box(run_tile(
                    black_box(&psums),
                    &mut mems,
                    &bn,
                    |i| i / 256,
                    128,
                    NeuronMode::If,
                    &cfg,
                ))
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_tensor(c: &mut Criterion) {
    let a = Tensor::full(vec![64, 64], 0.5);
    let b_t = Tensor::full(vec![64, 64], 0.25);
    c.bench_function("tensor/matmul_64", |b| {
        b.iter(|| black_box(matmul(black_box(&a), black_box(&b_t))));
    });
    let geom = Conv2dGeom {
        in_channels: 8,
        out_channels: 8,
        in_h: 16,
        in_w: 16,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let x = Tensor::full(vec![1, 8, 16, 16], 0.3);
    let w = Tensor::full(vec![8, 8, 3, 3], 0.1);
    c.bench_function("tensor/conv2d_8x16x16", |b| {
        b.iter(|| black_box(conv2d_forward(black_box(&x), black_box(&w), &geom)));
    });
}

fn small_network() -> sia_snn::SnnNetwork {
    let geom = Conv2dGeom {
        in_channels: 3,
        out_channels: 8,
        in_h: 16,
        in_w: 16,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let spec = NetworkSpec {
        name: "bench".into(),
        input: (3, 16, 16),
        items: vec![
            SpecItem::Conv(ConvSpec {
                geom,
                weights: Tensor::full(vec![8, 3, 3, 3], 0.08),
                bn: Some(BnSpec {
                    gamma: vec![1.0; 8],
                    beta: vec![0.0; 8],
                    mean: vec![0.1; 8],
                    var: vec![1.0; 8],
                    eps: 1e-5,
                }),
                act: Some(ActSpec {
                    levels: 8,
                    step: 1.0,
                }),
            }),
            SpecItem::Conv(ConvSpec {
                geom: Conv2dGeom {
                    in_channels: 8,
                    out_channels: 8,
                    ..geom
                },
                weights: Tensor::full(vec![8, 8, 3, 3], 0.05),
                bn: None,
                act: Some(ActSpec {
                    levels: 8,
                    step: 0.8,
                }),
            }),
            SpecItem::GlobalAvgPool,
            SpecItem::Linear(LinearSpec {
                in_features: 8,
                out_features: 10,
                weights: Tensor::full(vec![10, 8], 0.1),
                bias: vec![0.0; 10],
            }),
        ],
    };
    convert(&spec, &ConvertOptions::default())
}

fn bench_snn_runner(c: &mut Criterion) {
    let net = small_network();
    let img = Tensor::full(vec![3, 16, 16], 0.5);
    c.bench_function("snn/int_runner_T8", |b| {
        b.iter(|| black_box(IntRunner::new(&net).run(black_box(&img), 8)));
    });
}

fn bench_machine(c: &mut Criterion) {
    let net = small_network();
    let cfg = SiaConfig::pynq_z2();
    let program = compile_for(&net, &cfg, 8).expect("compiles");
    let img = Tensor::full(vec![3, 16, 16], 0.5);
    c.bench_function("machine/run_T8", |b| {
        b.iter_batched(
            || SiaMachine::new(program.clone(), cfg.clone()),
            |mut m| black_box(m.run(black_box(&img), 8)),
            BatchSize::SmallInput,
        );
    });
}

fn bench_check(c: &mut Criterion) {
    let net = small_network();
    let cfg = SiaConfig::pynq_z2();
    c.bench_function("check/check_network_T8", |b| {
        b.iter(|| black_box(sia_check::check_network(black_box(&net), &cfg, 8)));
    });
    let report = sia_check::check_network(&net, &cfg, 8);
    c.bench_function("check/report_to_json", |b| {
        b.iter(|| black_box(report.to_json()));
    });
}

criterion_group!(
    benches,
    bench_pe,
    bench_spiking_core,
    bench_aggregation,
    bench_tensor,
    bench_snn_runner,
    bench_machine,
    bench_check
);
criterion_main!(benches);
