//! Ablation: the co-design's central trade, measured — the multiplier-free
//! event-driven SIA vs a dense DSP-MAC baseline (the architecture class of
//! Table IV's rows \[18\]–\[22\]) on the same layers.
//!
//! The SIA executes T sparse binary passes with mux-adders; the dense
//! design one dense pass with DSP multipliers. The win the paper claims is
//! utilisation efficiency (GOPS/PE, GOPS/DSP), not raw latency.

use sia_accel::spiking_core::run_conv_pass;
use sia_accel::SiaConfig;
use sia_bench::{header, synthetic_spikes};
use sia_hwmodel::dense::{dense_conv, dense_resources, DenseConfig, EventDrivenComparison};
use sia_hwmodel::resources::estimate;
use sia_tensor::Conv2dGeom;

fn sia_cycles(geom: &Conv2dGeom, rate: f64, cfg: &SiaConfig, timesteps: usize) -> u64 {
    let weights: Vec<i8> = (0..geom.weight_count())
        .map(|i| ((i * 41 % 255) as i32 - 127) as i8)
        .collect();
    let mut total = 0u64;
    for t in 0..timesteps {
        let spikes = synthetic_spikes(geom.in_channels, geom.in_h, geom.in_w, rate, t as u64);
        let mut start = 0;
        while start < geom.out_channels {
            let size = (geom.out_channels - start).min(cfg.pe_count());
            total += run_conv_pass(geom, &weights, start, size, &spikes, cfg).cycles;
            start += size;
        }
    }
    total
}

fn main() {
    let sia_cfg = SiaConfig::pynq_z2();
    let dense_cfg = DenseConfig {
        clock_hz: sia_cfg.clock_hz, // same clock for a fair cycle comparison
        ..DenseConfig::baseline_64()
    };
    let sia_dsps = estimate(&sia_cfg).dsps;
    let dense_res = dense_resources(&dense_cfg);
    let timesteps = 8;

    header("Ablation — event-driven SIA vs dense DSP-MAC baseline (64 PEs each, 100 MHz)");
    println!(
        "{:<22} {:>6} {:>14} {:>14} {:>9} {:>9}",
        "layer", "rate", "SIA cy (T=8)", "dense cy", "cy ratio", "DSP ratio"
    );
    let layers = [
        (64usize, 64usize, 32usize),
        (128, 128, 16),
        (256, 256, 8),
        (512, 512, 4),
    ];
    for &(cin, cout, hw) in &layers {
        let geom = Conv2dGeom {
            in_channels: cin,
            out_channels: cout,
            in_h: hw,
            in_w: hw,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        for rate in [0.05f64, 0.16, 0.5] {
            let cmp = EventDrivenComparison {
                sia_cycles: sia_cycles(&geom, rate, &sia_cfg, timesteps),
                dense_cycles: dense_conv(&geom, &dense_cfg).cycles,
                sia_dsps,
                dense_dsps: dense_res.dsps,
            };
            println!(
                "{:<22} {:>6.2} {:>14} {:>14} {:>9.2} {:>9.2}",
                format!("conv3x3 {cin}->{cout}@{hw}"),
                rate,
                cmp.sia_cycles,
                cmp.dense_cycles,
                cmp.cycle_ratio(),
                cmp.dsp_ratio()
            );
        }
    }
    println!(
        "\nReading: at the measured spike rates (~0.12-0.16) the SIA's T=8\n\
         sparse passes cost roughly the same cycles as one dense pass — while\n\
         using {sia_dsps} DSPs instead of {}. At rate 0.5 the event-driven\n\
         advantage disappears: sparsity is the resource the co-design spends.",
        dense_res.dsps
    );
}
