//! Ablation: the aggregation core's **mode bit** (IF vs LIF) and the
//! PS-side **readout burn-in**, on the converted slim ResNet-18.
//!
//! The paper's accuracy results use IF; LIF is supported by the same
//! activation unit (§III-B). Conversion theory matches IF exactly, so LIF
//! should lose accuracy at equal thresholds — this quantifies how much.
//! Run with `--quick` for CI scale.

use sia_bench::{header, resnet_pipeline, threads_from_args, RunScale};
use sia_snn::network::{NeuronMode, SnnItem};
use sia_snn::{BatchEvaluator, EvalConfig, FloatEngineFactory, SnnNetwork};
use std::sync::Arc;

fn with_mode(net: &SnnNetwork, mode: NeuronMode) -> SnnNetwork {
    let mut out = net.clone();
    for item in &mut out.items {
        match item {
            SnnItem::InputConv(c) | SnnItem::Conv(c) | SnnItem::ConvPsum(c) => c.mode = mode,
            SnnItem::BlockAdd(a) => a.mode = mode,
            _ => {}
        }
    }
    out
}

fn accuracy(net: &Arc<SnnNetwork>, data: &sia_dataset::SynthDataset, t: usize, burn: usize) -> f32 {
    BatchEvaluator::new(EvalConfig {
        timesteps: t,
        burn_in: burn,
        threads: threads_from_args(),
        ..EvalConfig::default()
    })
    .evaluate(FloatEngineFactory::new(Arc::clone(net)), &data.test)
    .accuracy()
}

fn main() {
    let scale = RunScale::from_args();
    let pipeline = resnet_pipeline(scale);

    header("Ablation — neuron mode (T = 16, burn-in 4)");
    println!(
        "IF  (mode 0): {:.3}",
        accuracy(&pipeline.snn, &pipeline.data, 16, 4)
    );
    for leak_shift in [4u32, 3, 2] {
        let lif = Arc::new(with_mode(&pipeline.snn, NeuronMode::Lif { leak_shift }));
        println!(
            "LIF (λ = 2^-{leak_shift}): {:.3}",
            accuracy(&lif, &pipeline.data, 16, 4)
        );
    }

    header("Ablation — readout burn-in (IF)");
    for t in [8usize, 16] {
        for burn in [0usize, 2, 4, 6] {
            if burn < t {
                println!(
                    "T = {t:>2}, burn-in {burn}: {:.3}",
                    accuracy(&pipeline.snn, &pipeline.data, t, burn)
                );
            }
        }
    }
    println!(
        "\nExpected shape: IF beats LIF (conversion assumes no leak), and a\n\
         few burn-in steps lift low-T accuracy by discarding the transient."
    );
}
