//! Ablation: PE-array scaling — the design-space exploration the
//! "reconfigurable... architecture design methodology" title promises.
//! Sweeps the array from 4×4 to 16×16 and reports resources, power, peak
//! throughput and the measured latency of the reference conv layer
//! (3×3, 64 kernels, 64 channels, 32×32 @ rate 0.16).

use sia_accel::spiking_core::run_conv_pass;
use sia_accel::{plan_conv, SiaConfig};
use sia_bench::{header, synthetic_spikes};
use sia_hwmodel::power::power_model;
use sia_hwmodel::resources::{estimate, PYNQ_Z2_AVAILABLE};
use sia_tensor::Conv2dGeom;

fn layer_ms(cfg: &SiaConfig) -> f64 {
    // 256 kernels so that arrays larger than 8x8 still shrink the group
    // count (a 64-kernel layer cannot use more than 64 PEs)
    let geom = Conv2dGeom {
        in_channels: 64,
        out_channels: 256,
        in_h: 32,
        in_w: 32,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let spikes = synthetic_spikes(64, 32, 32, 0.16, 3);
    let weights: Vec<i8> = (0..geom.weight_count())
        .map(|i| ((i * 29 % 255) as i32 - 127) as i8)
        .collect();
    let timesteps = 8;
    let (groups, _fp, traffic) = plan_conv(&geom, cfg, timesteps, 0);
    let mut compute = 0u64;
    for &(start, size) in &groups {
        compute += run_conv_pass(&geom, &weights, start, size, &spikes, cfg).cycles;
    }
    let cycles = compute.max(traffic.cycles(cfg) / timesteps as u64)
        + cfg.layer_overhead_cycles / timesteps as u64;
    cycles as f64 / cfg.clock_hz as f64 * 1e3
}

fn main() {
    header("Ablation — PE-array scaling (100 MHz, PYNQ-Z2 memory map)");
    println!(
        "{:>6} {:>8} {:>8} {:>6} {:>8} {:>10} {:>10} {:>6}",
        "array", "LUTs", "FFs", "DSPs", "peakGOPS", "power(W)", "conv(ms)", "fits?"
    );
    for dim in [4usize, 6, 8, 12, 16] {
        let cfg = SiaConfig {
            pe_rows: dim,
            pe_cols: dim,
            ..SiaConfig::pynq_z2()
        };
        let r = estimate(&cfg);
        let p = power_model(&cfg);
        println!(
            "{:>3}x{:<3} {:>8} {:>8} {:>6} {:>8.1} {:>10.2} {:>10.3} {:>6}",
            dim,
            dim,
            r.luts,
            r.ffs,
            r.dsps,
            cfg.peak_ops_per_second() / 1e9,
            p.total_watts(),
            layer_ms(&cfg),
            if r.fits(&PYNQ_Z2_AVAILABLE) {
                "yes"
            } else {
                "NO"
            }
        );
    }
    println!(
        "\nExpected shape: latency falls roughly linearly with the PE count\n\
         until the layer becomes transfer-bound; resources and power rise\n\
         linearly; the 8x8 point is the paper's prototype."
    );
}
