//! Ablation: **conversion vs direct surrogate-gradient training** — the
//! two routes to an SNN the paper's background section weighs before
//! choosing conversion. Both are trained on the same dataset and evaluated
//! at the same timestep counts. Run with `--quick` for CI scale.

use sia_bench::{header, resnet_pipeline, threads_from_args, RunScale};
use sia_dataset::LabelledSet;
use sia_snn::surrogate::{SurrogateConfig, SurrogateMlp};
use sia_snn::{BatchEvaluator, EvalConfig, FloatEngineFactory};
use sia_tensor::Tensor;
use std::sync::Arc;

fn flat_set(set: &LabelledSet) -> LabelledSet {
    let mut imgs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..set.len() {
        let (img, label) = set.get(i);
        imgs.push(Tensor::from_vec(vec![img.numel()], img.data().to_vec()));
        labels.push(label);
    }
    LabelledSet::new(imgs, labels)
}

fn main() {
    let scale = RunScale::from_args();

    // Route 1: the paper's pipeline — ANN training + QAT + conversion.
    let t0 = std::time::Instant::now();
    let pipeline = resnet_pipeline(scale);
    let conversion_train_time = t0.elapsed();
    let acc_at = |t: usize, burn: usize| -> f32 {
        BatchEvaluator::new(EvalConfig {
            timesteps: t,
            burn_in: burn,
            threads: threads_from_args(),
            ..EvalConfig::default()
        })
        .evaluate(
            FloatEngineFactory::new(Arc::clone(&pipeline.snn)),
            &pipeline.data.test,
        )
        .accuracy()
    };

    // Route 2: direct surrogate-gradient training of an MLP-SNN at T = 8.
    let train_flat = flat_set(&pipeline.data.train);
    let test_flat = flat_set(&pipeline.data.test);
    let inputs = pipeline.data.train.get(0).0.numel();
    let mut surrogate = SurrogateMlp::new(inputs, &[256, 128], 10, 0x9A);
    let cfg = SurrogateConfig {
        timesteps: 8,
        epochs: if scale == RunScale::Quick { 8 } else { 20 },
        lr: 0.03,
        ..SurrogateConfig::default()
    };
    let t1 = std::time::Instant::now();
    let losses = surrogate.train(&train_flat, &cfg);
    let surrogate_train_time = t1.elapsed();

    header("Ablation — conversion pipeline vs direct surrogate-gradient training");
    println!(
        "{:<34} {:>10} {:>10} {:>12} {:>12}",
        "method", "params", "T=8 acc", "T=32 acc", "train time"
    );
    println!(
        "{:<34} {:>10} {:>9.1}% {:>11.1}% {:>11.0?}",
        "conversion (slim ResNet-18)",
        "78k conv",
        acc_at(8, 4) * 100.0,
        acc_at(32, 4) * 100.0,
        conversion_train_time
    );
    println!(
        "{:<34} {:>10} {:>9.1}% {:>11}  {:>11.0?}",
        "surrogate BPTT (MLP 256-128)",
        surrogate.param_count(),
        surrogate.accuracy(&test_flat, 8) * 100.0,
        "n/a*",
        surrogate_train_time
    );
    println!(
        "\n* the surrogate net is trained *for* T=8; running it longer changes\n\
         the operating point it was optimised for ({:.1}% at T=32).",
        surrogate.accuracy(&test_flat, 32) * 100.0
    );
    println!(
        "final surrogate training loss: {:.4} (from {:.4})",
        losses.last().unwrap(),
        losses.first().unwrap()
    );
    println!(
        "\nReading: surrogate training reaches low-T accuracy directly but\n\
         requires T-fold BPTT compute per step and cannot reuse a pre-trained\n\
         ANN; the conversion route trains once at FP32 and retargets any T —\n\
         the deployment flexibility the paper's methodology is built on."
    );
}
