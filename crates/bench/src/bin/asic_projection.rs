//! Regenerates the §V ASIC projection: "we also synthesized the SIA
//! architecture with TSMC 40 nm technology projecting a throughput of
//! 192 GOPS with a frequency of 500 MHz consuming 11 mm² and 2.17 W".

use sia_accel::SiaConfig;
use sia_bench::{header, print_vs};
use sia_hwmodel::asic_projection;

fn main() {
    let cfg = SiaConfig::pynq_z2();
    header("TSMC 40 nm ASIC projection (paper §V)");
    let p = asic_projection(&cfg, 500_000_000);
    print_vs("throughput", 192.0, p.gops, "GOPS");
    print_vs("area", 11.0, p.area_mm2, "mm^2");
    print_vs("power", 2.17, p.watts, "W");
    println!("energy efficiency: {:.1} GOPS/W", p.gops_per_watt());

    header("Frequency sweep (same architecture)");
    for mhz in [100u64, 250, 500, 750, 1000] {
        println!("{}", asic_projection(&cfg, mhz * 1_000_000));
    }

    header("Scaling toward the 600 GOPS/W future-work target");
    // Larger arrays amortise the SRAM static power over more ops.
    for dim in [8usize, 16, 24, 32] {
        let big = SiaConfig {
            pe_rows: dim,
            pe_cols: dim,
            ..cfg.clone()
        };
        let p = asic_projection(&big, 500_000_000);
        println!(
            "{dim:>2}x{dim:<2} array: {:>7.0} GOPS  {:>5.1} mm²  {:>5.2} W  {:>6.1} GOPS/W",
            p.gops,
            p.area_mm2,
            p.watts,
            p.gops_per_watt()
        );
    }
}
