//! Regenerates **Fig. 6**: average spike rate across the layers of the
//! optimised ResNet-18 (paper: overall ≈ 0.12 spikes/timestep with no
//! significant decreasing trend in deeper layers). Run with `--quick` for
//! CI scale and `--threads N` for multi-core evaluation.

use sia_bench::{header, resnet_pipeline, threads_from_args, RunScale};
use sia_snn::{BatchEvaluator, EvalConfig, FloatEngineFactory};
use std::sync::Arc;

fn main() {
    let scale = RunScale::from_args();
    let pipeline = resnet_pipeline(scale);
    let n = pipeline.data.test.len().min(100);

    let merged = BatchEvaluator::new(EvalConfig {
        timesteps: 8,
        threads: threads_from_args(),
        ..EvalConfig::default()
    })
    .evaluate(
        FloatEngineFactory::new(Arc::clone(&pipeline.snn)),
        &pipeline.data.test.take(n),
    )
    .stats;

    header("Fig. 6 — average spike rate per ResNet-18 stage (T = 8)");
    let rates = merged.rates();
    for (name, rate) in merged.names.iter().zip(&rates) {
        let bar = "#".repeat((rate * 120.0) as usize);
        println!("{name:<14} {rate:.4} {bar}");
    }
    println!(
        "\noverall rate {:.4} (paper: ≈ 0.12)",
        merged.overall_rate()
    );
    // trend check: no significant decrease with depth (paper's observation,
    // attributed to reset-by-subtraction + per-layer thresholds)
    let half = rates.len() / 2;
    let early: f32 = rates[..half].iter().sum::<f32>() / half as f32;
    let late: f32 = rates[half..].iter().sum::<f32>() / (rates.len() - half) as f32;
    println!(
        "mean early-layer rate {early:.4} vs late-layer {late:.4} — {}",
        if late > 0.5 * early {
            "no collapse in deep layers (matches the paper)"
        } else {
            "deep layers decay (differs from the paper)"
        }
    );
}
