//! Regenerates **Fig. 7**: classification accuracy of the 8-bit ResNet-18
//! SNN as a function of spike timesteps, against the FP32 baseline (blue)
//! and the quantized ANN (red).
//!
//! Run with `--quick` for a CI-scale run and `--threads N` to spread the
//! evaluation over N worker threads (bit-identical results for any N).
//! The paper's absolute accuracies (95.83 / 94.37 / 94.71 on CIFAR-10) are
//! not reproducible without CIFAR-10 and GPU-scale training; the *shape*
//! claims checked here are: the quantized ANN sits close below FP32, the
//! SNN curve rises with T and crosses the quantized ANN, settling within a
//! small gap of FP32 (see EXPERIMENTS.md for the latency-scale caveat on
//! slim networks).

use sia_bench::{header, resnet_pipeline, threads_from_args, RunScale};
use sia_snn::{BatchEvaluator, EvalConfig, FloatEngineFactory, IntEngineFactory};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let scale = RunScale::from_args();
    let threads = threads_from_args();
    let pipeline = resnet_pipeline(scale);
    let t_max = 32;
    let burn_in = 4;
    let n = pipeline.data.test.len();

    let t0 = Instant::now();
    let float_eval = BatchEvaluator::new(EvalConfig {
        timesteps: t_max,
        burn_in,
        threads,
        ..EvalConfig::default()
    })
    .evaluate(
        FloatEngineFactory::new(Arc::clone(&pipeline.snn)),
        &pipeline.data.test,
    );
    let int_eval = BatchEvaluator::new(EvalConfig {
        timesteps: 8,
        burn_in,
        threads,
        ..EvalConfig::default()
    })
    .evaluate(
        IntEngineFactory::new(Arc::clone(&pipeline.snn)),
        &pipeline.data.test,
    );
    let wall = t0.elapsed();

    header("Fig. 7 — ResNet-18 accuracy vs spike timesteps");
    println!(
        "paper reference (CIFAR-10, full width): FP32 95.83%%, quantized 94.37%%, SNN@8 94.71%%"
    );
    println!(
        "this run (synthetic, slim w8@16x16):    FP32 {:.2}%, quantized {:.2}%",
        pipeline.outcome.fp32_accuracy * 100.0,
        pipeline.outcome.quantized_accuracy * 100.0
    );
    println!("\n{:>4} {:>12} {:>12}", "T", "SNN float %", "notes");
    for t in [1usize, 2, 4, 8, 12, 16, 24, 32] {
        let acc = float_eval.accuracy_at(t - 1) * 100.0;
        let note = if t == 8 {
            format!("(int datapath: {:.2}%)", int_eval.accuracy() * 100.0)
        } else if t <= burn_in {
            "(inside readout burn-in)".to_string()
        } else {
            String::new()
        };
        println!("{t:>4} {acc:>11.2}% {note}");
    }
    let final_acc = float_eval.accuracy();
    println!(
        "\nshape checks: SNN@{t_max} within {:.2} points of quantized ANN; curve rises {:.2} → {:.2}",
        (pipeline.outcome.quantized_accuracy - final_acc) * 100.0,
        float_eval.accuracy_at(0) * 100.0,
        final_acc * 100.0
    );
    println!(
        "\nevaluated {n} images × (T=32 float + T=8 int) on {threads} thread(s) in {:.2}s ({:.1} img/s)",
        wall.as_secs_f64(),
        n as f64 / wall.as_secs_f64().max(1e-9)
    );
}
