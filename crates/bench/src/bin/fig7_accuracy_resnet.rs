//! Regenerates **Fig. 7**: classification accuracy of the 8-bit ResNet-18
//! SNN as a function of spike timesteps, against the FP32 baseline (blue)
//! and the quantized ANN (red).
//!
//! Run with `--quick` for a CI-scale run. The paper's absolute accuracies
//! (95.83 / 94.37 / 94.71 on CIFAR-10) are not reproducible without
//! CIFAR-10 and GPU-scale training; the *shape* claims checked here are:
//! the quantized ANN sits close below FP32, the SNN curve rises with T and
//! crosses the quantized ANN, settling within a small gap of FP32 (see
//! EXPERIMENTS.md for the latency-scale caveat on slim networks).

use sia_bench::{header, resnet_pipeline, RunScale};
use sia_snn::{FloatRunner, IntRunner};

fn main() {
    let scale = RunScale::from_args();
    let pipeline = resnet_pipeline(scale);
    let t_max = 32;
    let burn_in = 4;
    let n = pipeline.data.test.len();

    let mut float_correct = vec![0usize; t_max];
    let mut int_correct_t8 = 0usize;
    for i in 0..n {
        let (img, label) = pipeline.data.test.get(i);
        let out = FloatRunner::new(&pipeline.snn).run_with(img, t_max, burn_in);
        for (t, c) in float_correct.iter_mut().enumerate() {
            if out.predicted_at(t) == label {
                *c += 1;
            }
        }
        let int_out = IntRunner::new(&pipeline.snn).run_with(img, 8, burn_in);
        if int_out.predicted() == label {
            int_correct_t8 += 1;
        }
    }

    header("Fig. 7 — ResNet-18 accuracy vs spike timesteps");
    println!(
        "paper reference (CIFAR-10, full width): FP32 95.83%%, quantized 94.37%%, SNN@8 94.71%%"
    );
    println!(
        "this run (synthetic, slim w8@16x16):    FP32 {:.2}%, quantized {:.2}%",
        pipeline.outcome.fp32_accuracy * 100.0,
        pipeline.outcome.quantized_accuracy * 100.0
    );
    println!("\n{:>4} {:>12} {:>12}", "T", "SNN float %", "notes");
    for t in [1usize, 2, 4, 8, 12, 16, 24, 32] {
        let acc = float_correct[t - 1] as f32 / n as f32 * 100.0;
        let note = if t == 8 {
            format!("(int datapath: {:.2}%)", int_correct_t8 as f32 / n as f32 * 100.0)
        } else if t <= burn_in {
            "(inside readout burn-in)".to_string()
        } else {
            String::new()
        };
        println!("{t:>4} {acc:>11.2}% {note}");
    }
    let final_acc = float_correct[t_max - 1] as f32 / n as f32;
    println!(
        "\nshape checks: SNN@{t_max} within {:.2} points of quantized ANN; curve rises {:.2} → {:.2}",
        (pipeline.outcome.quantized_accuracy - final_acc) * 100.0,
        float_correct[0] as f32 / n as f32 * 100.0,
        final_acc * 100.0
    );
}
