//! Regenerates **Fig. 8**: average spike rate across the layers of the
//! optimised VGG-11 (paper: overall ≈ 0.16, flat across depth). Run with
//! `--quick` for CI scale.

use sia_bench::{header, vgg_pipeline, RunScale};
use sia_snn::{spiking_stage_sizes, FloatRunner, SpikeStats};

fn main() {
    let scale = RunScale::from_args();
    let pipeline = vgg_pipeline(scale);
    let timesteps = 8;
    let n = pipeline.data.test.len().min(100);

    let (names, sizes) = spiking_stage_sizes(&pipeline.snn);
    let mut merged = SpikeStats::new(names, sizes);
    for i in 0..n {
        let (img, _) = pipeline.data.test.get(i);
        let out = FloatRunner::new(&pipeline.snn).run(img, timesteps);
        merged.merge(&out.stats);
    }

    header("Fig. 8 — average spike rate per VGG-11 stage (T = 8)");
    for (name, rate) in merged.names.iter().zip(merged.rates()) {
        let bar = "#".repeat((rate * 120.0) as usize);
        println!("{name:<14} {rate:.4} {bar}");
    }
    println!(
        "\noverall rate {:.4} (paper: ≈ 0.16; VGG above ResNet-18's 0.12)",
        merged.overall_rate()
    );
}
