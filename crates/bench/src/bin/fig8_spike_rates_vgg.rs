//! Regenerates **Fig. 8**: average spike rate across the layers of the
//! optimised VGG-11 (paper: overall ≈ 0.16, flat across depth). Run with
//! `--quick` for CI scale and `--threads N` for multi-core evaluation.

use sia_bench::{header, threads_from_args, vgg_pipeline, RunScale};
use sia_snn::{BatchEvaluator, EvalConfig, FloatEngineFactory};
use std::sync::Arc;

fn main() {
    let scale = RunScale::from_args();
    let pipeline = vgg_pipeline(scale);
    let n = pipeline.data.test.len().min(100);

    let merged = BatchEvaluator::new(EvalConfig {
        timesteps: 8,
        threads: threads_from_args(),
        ..EvalConfig::default()
    })
    .evaluate(
        FloatEngineFactory::new(Arc::clone(&pipeline.snn)),
        &pipeline.data.test.take(n),
    )
    .stats;

    header("Fig. 8 — average spike rate per VGG-11 stage (T = 8)");
    for (name, rate) in merged.names.iter().zip(merged.rates()) {
        let bar = "#".repeat((rate * 120.0) as usize);
        println!("{name:<14} {rate:.4} {bar}");
    }
    println!(
        "\noverall rate {:.4} (paper: ≈ 0.16; VGG above ResNet-18's 0.12)",
        merged.overall_rate()
    );
}
