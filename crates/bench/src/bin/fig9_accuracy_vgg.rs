//! Regenerates **Fig. 9**: classification accuracy of the 8-bit VGG-11 SNN
//! as a function of spike timesteps (paper reference on CIFAR-10: FP32
//! 91.25%, quantized 90.05%, SNN 90.47%). Run with `--quick` for CI scale
//! and `--threads N` for multi-core evaluation.

use sia_bench::{header, threads_from_args, vgg_pipeline, RunScale};
use sia_snn::{BatchEvaluator, EvalConfig, FloatEngineFactory};
use std::sync::Arc;

fn main() {
    let scale = RunScale::from_args();
    let pipeline = vgg_pipeline(scale);
    let t_max = 32;
    let burn_in = 4;

    let eval = BatchEvaluator::new(EvalConfig {
        timesteps: t_max,
        burn_in,
        threads: threads_from_args(),
        ..EvalConfig::default()
    })
    .evaluate(
        FloatEngineFactory::new(Arc::clone(&pipeline.snn)),
        &pipeline.data.test,
    );

    header("Fig. 9 — VGG-11 accuracy vs spike timesteps");
    println!(
        "paper reference (CIFAR-10, full width): FP32 91.25%%, quantized 90.05%%, SNN@8 90.47%%"
    );
    println!(
        "this run (synthetic, slim w8@16x16):    FP32 {:.2}%, quantized {:.2}%",
        pipeline.outcome.fp32_accuracy * 100.0,
        pipeline.outcome.quantized_accuracy * 100.0
    );
    println!("\n{:>4} {:>12}", "T", "SNN float %");
    for t in [1usize, 2, 4, 8, 12, 16, 24, 32] {
        let note = if t <= burn_in {
            " (inside readout burn-in)"
        } else {
            ""
        };
        println!("{t:>4} {:>11.2}%{note}", eval.accuracy_at(t - 1) * 100.0);
    }
    println!(
        "\nnote: the spike-domain max pool is an OR gate (an approximation the\n\
         ANN does not share), so VGG converges with a slightly larger gap than\n\
         ResNet — the same ordering the paper reports (90.47 vs 94.71)."
    );
}
