//! Regenerates **Table I**: layer-wise latency of the 8-bit ResNet-18 and
//! VGG-11 layer groups on the PYNQ-Z2 SIA at 100 MHz.
//!
//! Latency is reported per timestep per layer group (the paper's conv rows;
//! the FC row is the full T = 8 driver-paced transfer, matching the paper's
//! ≈ 59 ms). Input spikes are synthetic at the measured average rates of
//! Figs. 6/8 (0.12 for ResNet-18, 0.16 for VGG-11).

use sia_accel::spiking_core::run_conv_pass;
use sia_accel::{plan_conv, SiaConfig};
use sia_bench::{header, print_vs, synthetic_spikes};
use sia_tensor::Conv2dGeom;

/// Per-timestep latency (ms) of one conv layer at the given input rate.
fn conv_latency_ms(geom: &Conv2dGeom, rate: f64, cfg: &SiaConfig, timesteps: usize) -> f64 {
    let spikes = synthetic_spikes(geom.in_channels, geom.in_h, geom.in_w, rate, 0xAB);
    let weights: Vec<i8> = (0..geom.weight_count())
        .map(|i| ((i * 37 % 255) as i32 - 127) as i8)
        .collect();
    let (groups, _fp, traffic) = plan_conv(geom, cfg, timesteps, 0);
    let mut compute = 0u64;
    for &(start, size) in &groups {
        let pass = run_conv_pass(geom, &weights, start, size, &spikes, cfg);
        compute += pass.cycles + cfg.aggregation_pipeline_depth;
    }
    // per-timestep view: compute for one timestep, transfer and overhead
    // amortised over the T-step inference (ping-pong overlaps them)
    let transfer_per_t = traffic.cycles(cfg) / timesteps as u64;
    let cycles = compute.max(transfer_per_t) + cfg.layer_overhead_cycles / timesteps as u64;
    cycles as f64 / cfg.clock_hz as f64 * 1e3
}

/// FC latency over the full inference (driver-paced MMIO, Table I
/// convention).
fn fc_latency_ms(
    in_features: usize,
    out_features: usize,
    cfg: &SiaConfig,
    timesteps: usize,
) -> f64 {
    let weight_words = (in_features * out_features).div_ceil(4);
    let spike_words = in_features.div_ceil(32);
    let words = (weight_words + spike_words + out_features) * timesteps + 4;
    sia_accel::axi::mmio_cycles(words, cfg) as f64 / cfg.clock_hz as f64 * 1e3
}

fn conv(cin: usize, cout: usize, hw: usize, stride: usize) -> Conv2dGeom {
    Conv2dGeom {
        in_channels: cin,
        out_channels: cout,
        in_h: hw,
        in_w: hw,
        kernel: 3,
        stride,
        padding: 1,
    }
}

fn main() {
    let cfg = SiaConfig::pynq_z2();
    let timesteps = 8;

    header("Table I — ResNet-18 layer-group latency (ms), rate 0.12");
    // Table I groups: 5 convs of 64@32², 4 of 128@16², 4 of 256@8², 4 of
    // 512@4², FC 512×10. The stem conv has C_in = 3; stage transitions
    // halve the input channel count on the first conv of each group.
    let rate = 0.12;
    let g64: Vec<Conv2dGeom> = std::iter::once(conv(3, 64, 32, 1))
        .chain(std::iter::repeat_n(conv(64, 64, 32, 1), 4))
        .collect();
    let g128: Vec<Conv2dGeom> = std::iter::once(conv(64, 128, 32, 2))
        .chain(std::iter::repeat_n(conv(128, 128, 16, 1), 3))
        .collect();
    let g256: Vec<Conv2dGeom> = std::iter::once(conv(128, 256, 16, 2))
        .chain(std::iter::repeat_n(conv(256, 256, 8, 1), 3))
        .collect();
    let g512: Vec<Conv2dGeom> = std::iter::once(conv(256, 512, 8, 2))
        .chain(std::iter::repeat_n(conv(512, 512, 4, 1), 3))
        .collect();
    let group_ms = |geoms: &[Conv2dGeom]| -> f64 {
        geoms
            .iter()
            .map(|g| conv_latency_ms(g, rate, &cfg, timesteps))
            .sum()
    };
    print_vs("Conv 5 (3x3,64) @32x32", 4.73, group_ms(&g64), "ms");
    print_vs("Conv 4 (3x3,128) @16x16", 3.58, group_ms(&g128), "ms");
    print_vs("Conv 4 (3x3,256) @8x8", 3.58, group_ms(&g256), "ms");
    print_vs("Conv 4 (3x3,512) @4x4", 3.57, group_ms(&g512), "ms");
    print_vs(
        "FC (512x10)",
        58.929,
        fc_latency_ms(512, 10, &cfg, timesteps),
        "ms",
    );

    header("Table I — VGG-11 layer latency (ms), rate 0.16");
    let rate = 0.16;
    print_vs(
        "Conv (3x3,64) @32x32",
        0.94,
        conv_latency_ms(&conv(64, 64, 32, 1), rate, &cfg, timesteps),
        "ms",
    );
    print_vs(
        "Conv (3x3,128) @16x16",
        0.89,
        conv_latency_ms(&conv(128, 128, 16, 1), rate, &cfg, timesteps),
        "ms",
    );
    print_vs(
        "Conv 2 (3x3,256) @8x8",
        2.68,
        2.0 * conv_latency_ms(&conv(256, 256, 8, 1), rate, &cfg, timesteps),
        "ms",
    );
    print_vs(
        "Conv 3 (3x3,512) @4x4",
        2.67,
        3.0 * conv_latency_ms(&conv(512, 512, 4, 1), rate, &cfg, timesteps),
        "ms",
    );
    print_vs(
        "FC (512x10)",
        58.72,
        fc_latency_ms(512, 10, &cfg, timesteps),
        "ms",
    );

    println!(
        "\nShape checks: equal-MAC conv groups land within a factor ~2 of each\n\
         other and of the paper; the FC row dominates everything, driver-paced.\n\
         (Our per-timestep convention and the calibrated MMIO/overhead constants\n\
         are documented in EXPERIMENTS.md.)"
    );
}
