//! Regenerates **Table II**: latency as a function of the kernel size
//! (3×3 → 11×11, 64 kernels, 32×32 maps) — the reconfigurability
//! demonstration. The PE's three multiplexers consume wider kernel rows in
//! ⌈K/3⌉ segments per row, and the event-driven skip applies per segment.

use sia_accel::spiking_core::run_conv_pass;
use sia_accel::{plan_conv, SiaConfig};
use sia_bench::{header, print_vs, synthetic_spikes};
use sia_tensor::Conv2dGeom;

fn latency_ms(kernel: usize, in_channels: usize, cfg: &SiaConfig, timesteps: usize) -> f64 {
    let geom = Conv2dGeom {
        in_channels,
        out_channels: 64,
        in_h: 32,
        in_w: 32,
        kernel,
        stride: 1,
        padding: kernel / 2,
    };
    let spikes = synthetic_spikes(in_channels, 32, 32, 0.16, 0x7E);
    let weights: Vec<i8> = (0..geom.weight_count())
        .map(|i| ((i * 53 % 255) as i32 - 127) as i8)
        .collect();
    let (groups, _fp, traffic) = plan_conv(&geom, cfg, timesteps, 0);
    let mut compute = 0u64;
    for &(start, size) in &groups {
        compute += run_conv_pass(&geom, &weights, start, size, &spikes, cfg).cycles
            + cfg.aggregation_pipeline_depth;
    }
    let transfer_per_t = traffic.cycles(cfg) / timesteps as u64;
    let cycles = compute.max(transfer_per_t) + cfg.layer_overhead_cycles / timesteps as u64;
    cycles as f64 / cfg.clock_hz as f64 * 1e3
}

fn main() {
    let cfg = SiaConfig::pynq_z2();
    let timesteps = 8;
    let paper = [(3usize, 0.9479f64), (5, 0.95), (7, 0.9677), (11, 0.9839)];

    header("Table II — latency vs kernel size (64 kernels @32x32, C_in=64)");
    for (k, p) in paper {
        print_vs(
            &format!("Conv ({k}x{k},64)"),
            p,
            latency_ms(k, 64, &cfg, timesteps),
            "ms",
        );
    }

    header("Same sweep at C_in = 3 (first-layer geometry)");
    for (k, p) in paper {
        print_vs(
            &format!("Conv ({k}x{k},64)"),
            p,
            latency_ms(k, 3, &cfg, timesteps),
            "ms",
        );
    }

    println!(
        "\nShape check: the paper's sweep is near-flat (+3.8% from 3x3 to\n\
         11x11) because transfers and fixed overhead dominate the first-layer\n\
         geometry; our C_in=3 sweep reproduces that flatness, while at\n\
         C_in=64 the extra row segments of wide kernels become compute-bound."
    );
}
