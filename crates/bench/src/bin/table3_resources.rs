//! Regenerates **Table III**: FPGA resource utilisation of the SIA on the
//! PYNQ-Z2, from the structural resource model, plus the power estimate.

use sia_accel::SiaConfig;
use sia_bench::header;
use sia_hwmodel::power::power_model;
use sia_hwmodel::resources::{estimate, PYNQ_Z2_AVAILABLE};

fn main() {
    let cfg = SiaConfig::pynq_z2();
    let report = estimate(&cfg);

    header("Table III — FPGA resource utilisation (PYNQ-Z2)");
    let paper = [
        ("LUTs", 11_932u64, 53_200u64, 22.43f64),
        ("FFs", 8_157, 105_400, 7.67),
        ("DSPs", 17, 220, 7.67),
        ("BRAMs", 95, 140, 67.86),
        ("LUTRAMs", 158, 17_400, 0.90),
        ("BUFG", 1, 32, 3.13),
    ];
    let measured = [
        report.luts,
        report.ffs,
        report.dsps,
        report.brams,
        report.lutram,
        report.bufg,
    ];
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "resource", "paper", "model", "available", "paper%", "model%"
    );
    for ((name, p_used, avail, p_pct), m) in paper.iter().zip(measured) {
        println!(
            "{name:<10} {p_used:>10} {m:>10} {avail:>10} {p_pct:>7.2}% {:>7.2}%",
            m as f64 / *avail as f64 * 100.0
        );
    }
    assert!(report.fits(&PYNQ_Z2_AVAILABLE));

    header("Per-block breakdown (model)");
    for (name, b) in &report.blocks {
        println!(
            "{name:<18} {:>6} LUT {:>6} FF {:>3} DSP {:>3} BRAM",
            b.luts, b.ffs, b.dsps, b.brams
        );
    }

    header("Power (paper: 1.54 W total)");
    let p = power_model(&cfg);
    println!("{p}");
}
