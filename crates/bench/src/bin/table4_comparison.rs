//! Regenerates **Table IV**: the comparison with prior FPGA accelerators,
//! with this work's row computed from the hardware models.

use sia_accel::SiaConfig;
use sia_bench::header;
use sia_hwmodel::baselines::{baseline_rows, headline_ratios, this_work_row};

fn main() {
    let cfg = SiaConfig::pynq_z2();

    header("Table IV — performance comparison with prior art");
    for row in baseline_rows() {
        println!("{row}");
    }
    let ours = this_work_row(&cfg);
    println!("{ours}");

    let (pe_ratio, dsp_ratio) = headline_ratios(&cfg);
    println!(
        "\nHeadline (abstract) ratios vs best prior art:\n\
         PE efficiency   {:.3} GOPS/PE = {pe_ratio:.2}x  (paper claims 2x)\n\
         DSP efficiency  {:.2} GOPS/DSP = {dsp_ratio:.2}x (paper claims 4.5x)",
        ours.gops_per_pe().unwrap_or(0.0),
        ours.gops_per_dsp().unwrap_or(0.0),
    );
    println!(
        "Energy efficiency {:.2} GOPS/W — the highest of all rows reporting power",
        ours.gops_per_watt().unwrap_or(0.0)
    );
}
