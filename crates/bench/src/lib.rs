//! Shared harness for the table/figure regeneration binaries.
//!
//! Every table and figure of the paper's evaluation section has a binary in
//! `src/bin/` (see DESIGN.md §4 for the index); the helpers here hold the
//! code they share: the train → quantize → convert pipeline on the slim
//! networks, synthetic spike-grid generation for the data-independent
//! latency tables, and side-by-side paper-vs-measured printing.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sia_dataset::{SynthConfig, SynthDataset};
use sia_nn::resnet::ResNet;
use sia_nn::trainer::TrainConfig;
use sia_nn::vgg::Vgg;
use sia_nn::Model;
use sia_quant::{quantize_pipeline, QatConfig, QuantizedOutcome};
use sia_snn::{convert, ConvertOptions, SnnNetwork};
use std::sync::Arc;

/// Scale of a figure run: `quick` trains smaller/shorter (CI-friendly),
/// `full` is the default reported in EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunScale {
    /// Reduced sample counts and epochs.
    Quick,
    /// The EXPERIMENTS.md configuration.
    Full,
}

impl RunScale {
    /// Parses `--quick` from the process arguments.
    #[must_use]
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            RunScale::Quick
        } else {
            RunScale::Full
        }
    }
}

/// Parses `--threads N` from the process arguments (default 1; `0` means
/// one worker per available core). Passed to [`sia_snn::BatchEvaluator`]
/// by the accuracy/spike-rate figure binaries.
#[must_use]
pub fn threads_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            return args.next().and_then(|v| v.parse().ok()).unwrap_or(1);
        }
    }
    1
}

/// Everything the accuracy/spike-rate figures need.
pub struct TrainedPipeline {
    /// The dataset the curves are measured on.
    pub data: SynthDataset,
    /// Quantisation outcome (FP32 + quantized accuracies, steps).
    pub outcome: QuantizedOutcome,
    /// The converted spiking network, shared with the engine factories
    /// ([`sia_snn::FloatEngineFactory`] et al. take an `Arc`).
    pub snn: Arc<SnnNetwork>,
}

fn dataset(scale: RunScale) -> SynthDataset {
    let cfg = SynthConfig {
        image_size: 16,
        noise_std: 0.10,
        seed: 0x51A,
    };
    match scale {
        RunScale::Quick => SynthDataset::generate(&cfg, 300, 80),
        RunScale::Full => SynthDataset::generate(&cfg, 1000, 200),
    }
}

fn train_cfg(scale: RunScale) -> TrainConfig {
    match scale {
        RunScale::Quick => TrainConfig {
            epochs: 6,
            batch_size: 32,
            lr: 0.05,
            augment_shift: 1,
            lr_decay_epochs: vec![5],
            ..TrainConfig::default()
        },
        RunScale::Full => TrainConfig {
            epochs: 16,
            batch_size: 32,
            lr: 0.05,
            augment_shift: 1,
            lr_decay_epochs: vec![12, 15],
            ..TrainConfig::default()
        },
    }
}

fn qat_cfg(scale: RunScale) -> QatConfig {
    QatConfig {
        levels: 8,
        calib_fraction: 0.95,
        calib_batch: 32,
        finetune: TrainConfig {
            epochs: if scale == RunScale::Quick { 2 } else { 5 },
            batch_size: 32,
            lr: 0.01,
            augment_shift: 1,
            lr_decay_epochs: vec![],
            ..TrainConfig::default()
        },
    }
}

fn finish(mut model: Box<dyn Model>, data: SynthDataset, scale: RunScale) -> TrainedPipeline {
    let t0 = std::time::Instant::now();
    let report = sia_nn::trainer::train(model.as_mut(), &data, &train_cfg(scale));
    eprintln!(
        "[harness] trained {} to {:.3} test accuracy in {:.0?}",
        model.name(),
        report.final_test_acc(),
        t0.elapsed()
    );
    let outcome = quantize_pipeline(model.as_mut(), &data, &qat_cfg(scale));
    eprintln!(
        "[harness] quantized: fp32 {:.3} → quant {:.3}",
        outcome.fp32_accuracy, outcome.quantized_accuracy
    );
    let snn = convert(
        &model.to_spec(),
        &ConvertOptions {
            input_max_abs: 1.0,
            ..ConvertOptions::default()
        },
    );
    TrainedPipeline {
        data,
        outcome,
        snn: Arc::new(snn),
    }
}

/// Trains, quantizes and converts the slim ResNet-18 (Figs. 6 and 7).
#[must_use]
pub fn resnet_pipeline(scale: RunScale) -> TrainedPipeline {
    let data = dataset(scale);
    let model = Box::new(ResNet::resnet18(8, 16, 10, 0xE5));
    finish(model, data, scale)
}

/// Trains, quantizes and converts the slim VGG-11 (Figs. 8 and 9).
#[must_use]
pub fn vgg_pipeline(scale: RunScale) -> TrainedPipeline {
    let data = dataset(scale);
    let model = Box::new(Vgg::vgg11(8, 16, 10, 0xB6));
    finish(model, data, scale)
}

/// A random spike bitmap `[channels, h, w]` at the given rate (the measured
/// average rates of Figs. 6/8 drive the Table I/II latency benches).
#[must_use]
pub fn synthetic_spikes(channels: usize, h: usize, w: usize, rate: f64, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..channels * h * w)
        .map(|_| u8::from(rng.gen_bool(rate)))
        .collect()
}

/// Prints a two-column paper-vs-measured comparison line.
pub fn print_vs(label: &str, paper: f64, measured: f64, unit: &str) {
    let ratio = if paper != 0.0 {
        measured / paper
    } else {
        f64::NAN
    };
    println!("{label:<28} paper {paper:>10.4} {unit:<8} measured {measured:>10.4} {unit:<8} (x{ratio:.2})");
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_spikes_hit_requested_rate() {
        let s = synthetic_spikes(16, 32, 32, 0.16, 1);
        let rate = s.iter().map(|&v| v as f64).sum::<f64>() / s.len() as f64;
        assert!((rate - 0.16).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn synthetic_spikes_are_seeded() {
        assert_eq!(
            synthetic_spikes(2, 4, 4, 0.5, 9),
            synthetic_spikes(2, 4, 4, 0.5, 9)
        );
        assert_ne!(
            synthetic_spikes(2, 4, 4, 0.5, 9),
            synthetic_spikes(2, 4, 4, 0.5, 10)
        );
    }

    #[test]
    fn quick_dataset_is_smaller() {
        assert!(dataset(RunScale::Quick).train.len() < dataset(RunScale::Full).train.len());
    }
}
