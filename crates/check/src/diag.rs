//! Machine-readable diagnostics and the check report.
//!
//! Every finding carries a stable **rule id** (`overflow.*`, `sat.*`,
//! `budget.*`, `exit.*`), a severity, a span into the network's item list, and — where
//! one exists — a suggested fix (e.g. a channel-tiling factor). The report
//! renders as human text ([`std::fmt::Display`]) or JSON
//! ([`CheckReport::to_json`], hand-rolled: this crate has zero external
//! dependencies), and supports `--deny`-style promotion of warning rules to
//! errors.

use crate::overflow::StageCheck;
use std::fmt;

/// Diagnostic severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Precision or performance hazard; the model still runs correctly
    /// (saturating arithmetic, chunked streaming, DDR spills).
    Warning,
    /// The model is broken for the accelerator: a value wraps, a conversion
    /// clamped a coefficient, or a layer cannot be scheduled.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Where in the network a diagnostic points.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// Index into [`sia_snn::SnnNetwork::items`].
    pub item_index: usize,
    /// Human-readable stage name (compiler naming scheme, e.g.
    /// `conv3x3,64@16`).
    pub name: String,
}

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (see [`rules`]).
    pub rule: &'static str,
    /// Severity after any `--deny` promotion.
    pub severity: Severity,
    /// Network location.
    pub span: Span,
    /// First offending output channel, when the finding is per-channel.
    pub channel: Option<usize>,
    /// What can go wrong, with the offending values.
    pub message: String,
    /// Suggested fix, when one is mechanical (e.g. a tiling factor).
    pub suggestion: Option<String>,
    /// Whether `--deny` promoted this from warning to error.
    pub promoted: bool,
}

impl Diagnostic {
    /// Builds a diagnostic (no channel, no suggestion; use the setters).
    #[must_use]
    pub fn new(
        rule: &'static str,
        severity: Severity,
        item_index: usize,
        name: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            severity,
            span: Span {
                item_index,
                name: name.into(),
            },
            channel: None,
            message: message.into(),
            suggestion: None,
            promoted: false,
        }
    }

    /// Attaches the first offending channel.
    #[must_use]
    pub fn with_channel(mut self, channel: usize) -> Self {
        self.channel = Some(channel);
        self
    }

    /// Attaches a suggested fix.
    #[must_use]
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] item {} ({}): {}",
            self.severity, self.rule, self.span.item_index, self.span.name, self.message
        )?;
        if let Some(c) = self.channel {
            write!(f, " [first channel {c}]")?;
        }
        if let Some(s) = &self.suggestion {
            write!(f, "\n    fix: {s}")?;
        }
        Ok(())
    }
}

/// The merged result of the overflow pass and the budget lints.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Model name (from the converted network).
    pub model: String,
    /// Timestep count the membrane analysis covered.
    pub timesteps: usize,
    /// All findings, ordered by item index then rule.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-stage value intervals (evidence for the verdict, and the data the
    /// soundness proptests validate against concrete runs).
    pub stages: Vec<StageCheck>,
}

impl CheckReport {
    /// Number of error-severity findings (after any promotion).
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// `true` when the model has no error-severity findings — the gate
    /// `sia run`/`sia eval` enforce.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.error_count() == 0
    }

    /// `true` when the interval analysis proved every integer operation
    /// exact: no `overflow.*` finding and no `sat.*` finding. When this
    /// holds, the runtime saturation telemetry counter
    /// (`snn.membrane.saturated`) is guaranteed to stay at zero for every
    /// input — the property the dynamic cross-validation test asserts.
    #[must_use]
    pub fn overflow_free(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.rule.starts_with("overflow.") || d.rule.starts_with("sat."))
    }

    /// Promotes findings whose rule id matches any of `denied` to errors.
    /// A pattern matches its exact rule id or any id it prefixes
    /// (`sat` denies all `sat.*` rules; `budget.weight-sram` denies only
    /// that rule).
    pub fn deny(&mut self, denied: &[String]) {
        for d in &mut self.diagnostics {
            if d.severity == Severity::Error {
                continue;
            }
            let hit = denied
                .iter()
                .any(|p| d.rule == p || (d.rule.starts_with(p.as_str()) && p.len() < d.rule.len()));
            if hit {
                d.severity = Severity::Error;
                d.promoted = true;
            }
        }
    }

    /// Renders the report as a single JSON object (stable field order; no
    /// external dependencies).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 128 * self.diagnostics.len());
        out.push_str("{\"model\":");
        json_string(&mut out, &self.model);
        out.push_str(&format!(
            ",\"timesteps\":{},\"verdict\":\"{}\",\"overflow_free\":{},\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.timesteps,
            if self.passed() { "pass" } else { "fail" },
            self.overflow_free(),
            self.error_count(),
            self.warning_count(),
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            json_string(&mut out, d.rule);
            out.push_str(&format!(
                ",\"severity\":\"{}\",\"item\":{},\"stage\":",
                d.severity, d.span.item_index
            ));
            json_string(&mut out, &d.span.name);
            match d.channel {
                Some(c) => out.push_str(&format!(",\"channel\":{c}")),
                None => out.push_str(",\"channel\":null"),
            }
            out.push_str(",\"message\":");
            json_string(&mut out, &d.message);
            out.push_str(",\"suggestion\":");
            match &d.suggestion {
                Some(s) => json_string(&mut out, s),
                None => out.push_str("null"),
            }
            out.push_str(&format!(",\"promoted\":{}}}", d.promoted));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sia check: {} (T = {}): {} — {} error(s), {} warning(s)",
            self.model,
            self.timesteps,
            if self.passed() { "PASS" } else { "FAIL" },
            self.error_count(),
            self.warning_count(),
        )?;
        if self.overflow_free() {
            writeln!(
                f,
                "  interval analysis: every integer operation proven exact \
                 (no wrap, no saturation reachable)"
            )?;
        }
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Appends a JSON string literal (quotes, backslashes and control
/// characters escaped).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Static description of one lint/analysis rule.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable rule id.
    pub id: &'static str,
    /// Default severity (before `--deny` promotion).
    pub severity: Severity,
    /// One-line description.
    pub summary: &'static str,
}

/// All rule ids this crate can emit, with default severities — the source of
/// the README rule table and of `sia check --list-rules`.
#[must_use]
pub fn rules() -> &'static [RuleInfo] {
    &[
        RuleInfo {
            id: "overflow.dense-acc",
            severity: Severity::Error,
            summary: "dense-input 32-bit accumulator can wrap (undefined value)",
        },
        RuleInfo {
            id: "overflow.coeff-g",
            severity: Severity::Error,
            summary: "batch-norm multiplier G clamped during Q8.8 conversion",
        },
        RuleInfo {
            id: "overflow.coeff-h",
            severity: Severity::Error,
            summary: "batch-norm offset H clamped during 16-bit conversion",
        },
        RuleInfo {
            id: "overflow.skip-add",
            severity: Severity::Error,
            summary: "residual identity-skip current clamped during conversion",
        },
        RuleInfo {
            id: "sat.psum",
            severity: Severity::Warning,
            summary: "16-bit partial sum can saturate under the worst-case spike pattern",
        },
        RuleInfo {
            id: "sat.current",
            severity: Severity::Warning,
            summary: "batch-norm current (y·G + H) can clamp at the 16-bit rails",
        },
        RuleInfo {
            id: "sat.membrane",
            severity: Severity::Warning,
            summary: "membrane potential can pin at a 16-bit rail within T timesteps",
        },
        RuleInfo {
            id: "budget.config",
            severity: Severity::Error,
            summary: "the accelerator configuration itself is invalid",
        },
        RuleInfo {
            id: "budget.weight-sram",
            severity: Severity::Warning,
            summary: "kernel-group weights exceed the weight SRAM (chunked streaming)",
        },
        RuleInfo {
            id: "budget.membrane-bank",
            severity: Severity::Warning,
            summary: "membranes exceed a ping-pong U-bank (DDR spill each timestep)",
        },
        RuleInfo {
            id: "budget.residual-sram",
            severity: Severity::Error,
            summary: "residual currents exceed the residual memory",
        },
        RuleInfo {
            id: "budget.output-sram",
            severity: Severity::Error,
            summary: "output spike bitmap exceeds the output memory",
        },
        RuleInfo {
            id: "budget.pe-map",
            severity: Severity::Warning,
            summary:
                "kernel wider than the PE array edge (row-segment schedule, lower utilisation)",
        },
        RuleInfo {
            id: "exit.unreachable-threshold",
            severity: Severity::Warning,
            summary: "early-exit confidence threshold the head's logit bounds prove unreachable",
        },
        RuleInfo {
            id: "exit.trivial-threshold",
            severity: Severity::Warning,
            summary: "early-exit threshold every logit vector satisfies (exits at first boundary)",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckReport {
        CheckReport {
            model: "m".into(),
            timesteps: 8,
            diagnostics: vec![
                Diagnostic::new("sat.membrane", Severity::Warning, 2, "conv3x3,8@4", "peaks")
                    .with_channel(1)
                    .with_suggestion("reduce gain"),
                Diagnostic::new(
                    "budget.output-sram",
                    Severity::Error,
                    3,
                    "conv1x1,8@4",
                    "big",
                ),
            ],
            stages: Vec::new(),
        }
    }

    #[test]
    fn counting_and_verdict() {
        let r = sample();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(!r.passed());
        assert!(!r.overflow_free());
    }

    #[test]
    fn deny_promotes_by_prefix() {
        let mut r = sample();
        r.deny(&["sat".into()]);
        assert_eq!(r.error_count(), 2);
        assert!(r.diagnostics[0].promoted);
        // exact id also matches; unrelated prefixes do not
        let mut r2 = sample();
        r2.deny(&["sat.membrane".into(), "budget.weight-sram".into()]);
        assert_eq!(r2.error_count(), 2);
        let mut r3 = sample();
        r3.deny(&["sat.current".into()]);
        assert_eq!(r3.error_count(), 1);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"verdict\":\"fail\""));
        assert!(j.contains("\"rule\":\"sat.membrane\""));
        assert!(j.contains("\"channel\":1"));
        assert!(j.contains("\"suggestion\":\"reduce gain\""));
        assert_eq!(j.matches("\"rule\"").count(), 2);
    }

    #[test]
    fn json_escapes_strings() {
        let mut s = String::new();
        json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn display_mentions_rule_and_fix() {
        let txt = sample().to_string();
        assert!(txt.contains("FAIL"));
        assert!(txt.contains("warning[sat.membrane]"));
        assert!(txt.contains("fix: reduce gain"));
    }

    #[test]
    fn rule_table_ids_are_unique_and_namespaced() {
        let rs = rules();
        for (i, a) in rs.iter().enumerate() {
            assert!(
                a.id.starts_with("overflow.")
                    || a.id.starts_with("sat.")
                    || a.id.starts_with("budget.")
                    || a.id.starts_with("exit.")
            );
            for b in &rs[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }
}
