//! Early-exit threshold soundness lints.
//!
//! The adaptive driver ([`sia_snn::drive_policy`]) stops integrating
//! timesteps once the head's logits clear a confidence threshold. Whether a
//! threshold *can ever* clear is a static property of the head: logits are
//! time-averaged spike counts through the folded FC weights, so each class
//! logit lives in a t-independent interval
//!
//! ```text
//! logit_c ∈ [ Σ_ch min(w_c,ch, 0)·area·scale + bias_c ,
//!             Σ_ch max(w_c,ch, 0)·area·scale + bias_c ]
//! ```
//!
//! (binary spikes: each of the `area = in_h·in_w` positions of a channel
//! fires at most once per timestep, and the readout divides by the executed
//! timestep count). From the per-class boxes this pass bounds the best
//! achievable top1−top2 margin and the lowest achievable normalised softmax
//! entropy, and flags:
//!
//! * `exit.unreachable-threshold` — the policy can never fire: the margin
//!   threshold exceeds the best achievable margin, the entropy threshold is
//!   below the lowest achievable entropy, or the check window leaves no
//!   exit boundary before the final timestep. The run silently degrades to
//!   fixed-T, paying the confidence checks for nothing.
//! * `exit.trivial-threshold` — the policy always fires at the first
//!   boundary (margin ≤ 0, or normalised entropy ≥ 1): every image exits at
//!   the earliest opportunity regardless of confidence, which is a timestep
//!   *budget*, not an adaptive policy.
//!
//! Both are warnings (the model still runs correctly), promotable with
//! `--deny exit`.

use crate::diag::{Diagnostic, Severity};
use sia_snn::{normalized_entropy, ExitPolicy, SnnItem, SnnLinear, SnnNetwork};

/// Per-class logit interval of the accumulating head, independent of the
/// executed timestep count (the readout time-averages the accumulator).
fn head_logit_bounds(l: &SnnLinear) -> (Vec<f32>, Vec<f32>) {
    let area = (l.in_h * l.in_w) as f32;
    let scale = l.q.scale();
    let mut lo = Vec::with_capacity(l.out);
    let mut hi = Vec::with_capacity(l.out);
    for o in 0..l.out {
        let row = &l.weights[o * l.channels..(o + 1) * l.channels];
        let (neg, pos) = row.iter().fold((0i64, 0i64), |(n, p), &w| {
            let w = i64::from(w);
            (n + w.min(0), p + w.max(0))
        });
        lo.push(neg as f32 * area * scale + l.bias[o]);
        hi.push(pos as f32 * area * scale + l.bias[o]);
    }
    (lo, hi)
}

/// Best achievable top1−top2 logit margin under the per-class boxes: one
/// class at its upper bound, every other at its lower bound. Always ≥ 0
/// for the class with the largest upper bound.
fn max_achievable_margin(lo: &[f32], hi: &[f32]) -> f32 {
    let mut best = 0.0f32;
    for (c, &top) in hi.iter().enumerate() {
        let runner_up = lo
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != c)
            .map(|(_, &v)| v)
            .fold(f32::NEG_INFINITY, f32::max);
        best = best.max(top - runner_up);
    }
    best
}

/// Lowest achievable normalised softmax entropy under the boxes: entropy is
/// minimised at maximal separation, so evaluate each "class `c` at its top,
/// everyone else at their bottom" corner and keep the smallest.
fn min_achievable_entropy(lo: &[f32], hi: &[f32]) -> f32 {
    let mut best = f32::INFINITY;
    let mut v = lo.to_vec();
    for c in 0..hi.len() {
        v[c] = hi[c];
        best = best.min(normalized_entropy(&v));
        v[c] = lo[c];
    }
    best
}

/// Lints an early-exit policy against the network's head: can the
/// threshold ever fire, and does it ever *not* fire? `timesteps` is the
/// fixed-T budget the adaptive run would fall back to.
#[must_use]
pub fn lint_exit(net: &SnnNetwork, policy: ExitPolicy, timesteps: usize) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if !policy.is_adaptive() {
        return diags;
    }
    let Some((idx, head)) = net
        .items
        .iter()
        .enumerate()
        .find_map(|(i, item)| match item {
            SnnItem::Head(l) => Some((i, l)),
            _ => None,
        })
    else {
        return diags;
    };
    let name = format!("head,{}@{}", head.out, head.channels);
    let window = policy.chunk_window(timesteps);
    if window >= timesteps && timesteps > 0 {
        diags.push(
            Diagnostic::new(
                "exit.unreachable-threshold",
                Severity::Warning,
                idx,
                name,
                format!(
                    "check window {window} leaves no exit boundary before the final \
                     timestep (T = {timesteps}); the adaptive policy degrades to fixed-T"
                ),
            )
            .with_suggestion(format!(
                "use --exit-window smaller than {timesteps} (1 checks after every timestep)"
            )),
        );
        return diags;
    }
    let (lo, hi) = head_logit_bounds(head);
    match policy {
        ExitPolicy::Margin { threshold, .. } => {
            let max_margin = max_achievable_margin(&lo, &hi);
            if threshold > max_margin {
                diags.push(
                    Diagnostic::new(
                        "exit.unreachable-threshold",
                        Severity::Warning,
                        idx,
                        name,
                        format!(
                            "margin threshold {threshold} exceeds the best achievable \
                             top1−top2 logit margin {max_margin:.4} (head weight/bias \
                             interval bound); no input can ever exit early"
                        ),
                    )
                    .with_suggestion(format!(
                        "set --exit-margin at most {max_margin:.4}, or fit a threshold \
                         with `sia calibrate --exit`"
                    )),
                );
            } else if threshold <= 0.0 {
                diags.push(
                    Diagnostic::new(
                        "exit.trivial-threshold",
                        Severity::Warning,
                        idx,
                        name,
                        format!(
                            "margin threshold {threshold} is satisfied by every logit \
                             vector (top1−top2 ≥ 0 always); every image exits at the \
                             first boundary after burn-in"
                        ),
                    )
                    .with_suggestion(
                        "use a positive margin, or cap timesteps directly if a fixed \
                         shorter run is intended",
                    ),
                );
            }
        }
        ExitPolicy::Entropy { threshold, .. } => {
            let min_entropy = min_achievable_entropy(&lo, &hi);
            if threshold < min_entropy {
                diags.push(
                    Diagnostic::new(
                        "exit.unreachable-threshold",
                        Severity::Warning,
                        idx,
                        name,
                        format!(
                            "entropy threshold {threshold} is below the lowest achievable \
                             normalised entropy {min_entropy:.4} (head weight/bias \
                             interval bound); no input can ever exit early"
                        ),
                    )
                    .with_suggestion(format!(
                        "set --exit-entropy at least {min_entropy:.4}, or fit a \
                         threshold with `sia calibrate --exit`"
                    )),
                );
            } else if threshold >= 1.0 {
                diags.push(
                    Diagnostic::new(
                        "exit.trivial-threshold",
                        Severity::Warning,
                        idx,
                        name,
                        format!(
                            "entropy threshold {threshold} is satisfied by every logit \
                             vector (normalised entropy ≤ 1 always); every image exits \
                             at the first boundary after burn-in"
                        ),
                    )
                    .with_suggestion(
                        "use a threshold below 1, or cap timesteps directly if a fixed \
                         shorter run is intended",
                    ),
                );
            }
        }
        ExitPolicy::Fixed => unreachable!("is_adaptive() gated above"),
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_fixed::QuantScale;
    use sia_snn::network::SnnLinear;

    /// A 3-class head over 4 channels with a mix of signs so margins are
    /// genuinely achievable but bounded.
    fn head(weight: i8) -> SnnLinear {
        let channels = 4;
        let out = 3;
        let mut weights = vec![0i8; out * channels];
        for (o, row) in weights.chunks_mut(channels).enumerate() {
            for (c, w) in row.iter_mut().enumerate() {
                *w = if (o + c) % 2 == 0 { weight } else { -weight };
            }
        }
        SnnLinear {
            weights,
            q: QuantScale::new(7),
            bias: vec![0.0; out],
            weights_f: vec![0.0; out * channels],
            channels,
            in_h: 2,
            in_w: 2,
            out,
        }
    }

    fn net_of(l: SnnLinear) -> SnnNetwork {
        SnnNetwork {
            name: "exit-lint".into(),
            input: (1, 2, 2),
            items: vec![SnnItem::Head(l)],
            num_classes: 3,
        }
    }

    #[test]
    fn fixed_policy_is_clean() {
        let net = net_of(head(64));
        assert!(lint_exit(&net, ExitPolicy::Fixed, 8).is_empty());
    }

    #[test]
    fn reachable_margin_is_clean() {
        let net = net_of(head(64));
        let (lo, hi) = match &net.items[0] {
            SnnItem::Head(l) => head_logit_bounds(l),
            _ => unreachable!(),
        };
        let max_margin = max_achievable_margin(&lo, &hi);
        assert!(max_margin > 0.0);
        let policy = ExitPolicy::Margin {
            threshold: max_margin / 2.0,
            window: 1,
        };
        assert!(lint_exit(&net, policy, 8).is_empty());
    }

    #[test]
    fn unreachable_margin_warns() {
        let net = net_of(head(64));
        let policy = ExitPolicy::Margin {
            threshold: 1.0e6,
            window: 1,
        };
        let diags = lint_exit(&net, policy, 8);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "exit.unreachable-threshold");
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("best achievable"));
    }

    #[test]
    fn trivial_margin_warns() {
        let net = net_of(head(64));
        let policy = ExitPolicy::Margin {
            threshold: 0.0,
            window: 1,
        };
        let diags = lint_exit(&net, policy, 8);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "exit.trivial-threshold");
    }

    #[test]
    fn unreachable_entropy_warns_for_flat_head() {
        // Tiny weights → logits confined near zero → softmax stays near
        // uniform → normalised entropy can never drop to 0.2.
        let net = net_of(head(1));
        let policy = ExitPolicy::Entropy {
            threshold: 0.2,
            window: 1,
        };
        let diags = lint_exit(&net, policy, 8);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "exit.unreachable-threshold");
        assert!(diags[0].message.contains("lowest achievable"));
    }

    #[test]
    fn trivial_entropy_warns() {
        let net = net_of(head(64));
        let policy = ExitPolicy::Entropy {
            threshold: 1.0,
            window: 1,
        };
        let diags = lint_exit(&net, policy, 8);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "exit.trivial-threshold");
    }

    #[test]
    fn window_without_boundary_warns() {
        let net = net_of(head(64));
        let policy = ExitPolicy::Margin {
            threshold: 0.1,
            window: 8,
        };
        let diags = lint_exit(&net, policy, 8);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "exit.unreachable-threshold");
        assert!(diags[0].message.contains("no exit boundary"));
    }

    #[test]
    fn bounds_contain_simulated_logits() {
        // Cross-check the interval against a concrete run: drive the head
        // alone with alternating full/empty spike planes and confirm every
        // readout logit stays inside its box.
        let l = head(64);
        let (lo, hi) = head_logit_bounds(&l);
        let area = l.in_h * l.in_w;
        let per_t: [usize; 3] = [0, area / 2, area];
        for &fired in &per_t {
            for (o, (&lo_o, &hi_o)) in lo.iter().zip(&hi).enumerate() {
                // every channel fires `fired` of its positions each timestep
                let acc: i64 = (0..l.channels)
                    .map(|c| i64::from(l.weights[o * l.channels + c]) * fired as i64)
                    .sum();
                let logit = acc as f32 * l.q.scale() + l.bias[o];
                assert!(
                    logit >= lo_o - 1e-4 && logit <= hi_o + 1e-4,
                    "class {o}: {logit} outside [{lo_o}, {hi_o}]"
                );
            }
        }
    }
}
