//! The abstract domain: closed integer intervals in `i64`.
//!
//! Every quantity on the SIA datapath (INT8 weight codes, 16-bit partial
//! sums and membranes, the 32-bit dense-input accumulator) is an integer, so
//! a single wide interval type covers them all; the rail checks
//! ([`Interval::fits_i16`], [`Interval::fits_i32`]) decide whether a value
//! provably stays inside its hardware register.
//!
//! Soundness of the transfer functions rests on monotonicity: every datapath
//! operation modelled here (`+`, the Q8.8 rounded multiply for a fixed
//! coefficient, clamping) maps the endpoints of an input interval to the
//! endpoints of the output set, so evaluating an operation on `[lo, hi]`
//! yields an interval containing every concrete result. The proptest suite
//! in this crate drives random concrete values through the real
//! [`sia_fixed`] operations to validate exactly that containment.

use sia_fixed::q::FRAC_BITS;
use sia_fixed::Q8_8;

/// A closed integer interval `[lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// The degenerate interval `[v, v]`.
    #[must_use]
    pub const fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Builds `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// Shifts both bounds by a constant.
    #[must_use]
    pub fn offset(self, d: i64) -> Interval {
        Interval {
            lo: self.lo + d,
            hi: self.hi + d,
        }
    }

    /// Smallest interval containing both operands.
    #[must_use]
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Whether `v` lies inside the interval.
    #[must_use]
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether every value is strictly inside the 16-bit rails — i.e. no
    /// saturating 16-bit operation producing a value in this interval can
    /// have clamped (saturation is observable only *at* the rails, because
    /// [`sia_fixed::sat::add16`] clamps exactly to `i16::MIN`/`i16::MAX`).
    #[must_use]
    pub fn fits_i16(self) -> bool {
        self.lo > i64::from(i16::MIN) && self.hi < i64::from(i16::MAX)
    }

    /// Whether every value fits the 32-bit accumulator without wrapping.
    #[must_use]
    pub fn fits_i32(self) -> bool {
        self.lo >= i64::from(i32::MIN) && self.hi <= i64::from(i32::MAX)
    }

    /// The interval after a saturating clamp to the 16-bit rails — what the
    /// hardware register actually holds.
    #[must_use]
    pub fn clamp_i16(self) -> Interval {
        let lo = self.lo.clamp(i64::from(i16::MIN), i64::from(i16::MAX));
        let hi = self.hi.clamp(i64::from(i16::MIN), i64::from(i16::MAX));
        Interval { lo, hi }
    }

    /// The interval after a clamp to the 32-bit rails.
    #[must_use]
    pub fn clamp_i32(self) -> Interval {
        let lo = self.lo.clamp(i64::from(i32::MIN), i64::from(i32::MAX));
        let hi = self.hi.clamp(i64::from(i32::MIN), i64::from(i32::MAX));
        Interval { lo, hi }
    }

    /// Image of the interval under the Q8.8 rounded multiply
    /// (`Q8_8::mul_int` / `mul_int_wide`), **before** the final 16-bit
    /// clamp. For a fixed coefficient the rounded product is monotone in the
    /// integer operand (nondecreasing for `g ≥ 0`, nonincreasing for
    /// `g < 0`), so the image of `[lo, hi]` is spanned by the images of the
    /// endpoints.
    #[must_use]
    pub fn mul_q8_8(self, g: Q8_8) -> Interval {
        let a = mul_q8_8_exact(g, self.lo);
        let b = mul_q8_8_exact(g, self.hi);
        Interval {
            lo: a.min(b),
            hi: a.max(b),
        }
    }
}

/// The exact rounded product `round(g·y / 256)` with round-half-away-from-
/// zero — bit-identical to [`Q8_8::mul_int`]/[`Q8_8::mul_int_wide`] minus
/// their saturating clamp (their operands always fit `i64` here).
#[must_use]
pub fn mul_q8_8_exact(g: Q8_8, y: i64) -> i64 {
    let prod = i64::from(g.to_raw()) * y;
    let half = 1i64 << (FRAC_BITS - 1);
    if prod >= 0 {
        (prod + half) >> FRAC_BITS
    } else {
        -((-prod + half) >> FRAC_BITS)
    }
}

/// Exact interval sum (both operands range independently).
impl std::ops::Add for Interval {
    type Output = Interval;

    fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_hull() {
        let a = Interval::new(-3, 5);
        let b = Interval::point(2);
        assert_eq!(a + b, Interval::new(-1, 7));
        assert_eq!(a.offset(-2), Interval::new(-5, 3));
        assert_eq!(a.hull(Interval::new(4, 9)), Interval::new(-3, 9));
        assert!(a.contains(0));
        assert!(!a.contains(6));
    }

    #[test]
    fn rail_checks() {
        assert!(Interval::new(-32767, 32766).fits_i16());
        assert!(!Interval::new(-32768, 0).fits_i16());
        assert!(!Interval::new(0, 32767).fits_i16());
        assert!(Interval::new(i64::from(i32::MIN), i64::from(i32::MAX)).fits_i32());
        assert!(!Interval::new(0, i64::from(i32::MAX) + 1).fits_i32());
    }

    #[test]
    fn clamping_maps_endpoints() {
        assert_eq!(
            Interval::new(-100_000, 100_000).clamp_i16(),
            Interval::new(-32768, 32767)
        );
        assert_eq!(Interval::new(-5, 5).clamp_i16(), Interval::new(-5, 5));
    }

    #[test]
    fn mul_q8_8_exact_matches_mul_int_in_range() {
        for graw in [-20000i16, -256, -1, 0, 1, 129, 256, 17000] {
            let g = Q8_8::from_raw(graw);
            for y in [-3000i64, -7, 0, 5, 2500] {
                let exact = mul_q8_8_exact(g, y);
                if (i64::from(i16::MIN)..=i64::from(i16::MAX)).contains(&exact) {
                    assert_eq!(exact, i64::from(g.mul_int(y as i16)), "g={graw} y={y}");
                }
            }
        }
    }

    #[test]
    fn mul_interval_orients_by_sign() {
        let y = Interval::new(-10, 20);
        let pos = y.mul_q8_8(Q8_8::from_f32(2.0));
        assert_eq!(pos, Interval::new(-20, 40));
        let neg = y.mul_q8_8(Q8_8::from_f32(-2.0));
        assert_eq!(neg, Interval::new(-40, 20));
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    fn inverted_interval_rejected() {
        let _ = Interval::new(1, 0);
    }
}
