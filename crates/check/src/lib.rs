//! Static verification of converted SNNs against the SIA.
//!
//! The paper's premise is that the workload is *co-designed* to fit the
//! accelerator: INT8 weights, a 16-bit saturating integer datapath with Q8.8
//! batch-norm coefficients, and hard on-chip budgets (8 kB weight SRAM,
//! 64 kB ping-pong membrane banks, 128 kB residual memory, 56 kB output
//! memory, an 8×8 PE array). This crate makes that fit a **compile-time
//! property** instead of a runtime discovery:
//!
//! * [`overflow`] — an abstract-interpretation pass that propagates integer
//!   value intervals layer by layer through a converted
//!   [`sia_snn::SnnNetwork`] (weights × binary spikes per timestep, the Q8.8
//!   batch-norm affine, membrane accumulation with reset-by-subtraction over
//!   `T` timesteps) and either *proves* that no i8/i16/Q-format operation
//!   can wrap or clamp, or reports the first stage, the offending channel
//!   range and the worst-case input that can saturate;
//! * [`lints`] — a hardware-budget lint suite checking every layer against
//!   the SIA resource model ([`sia_accel::SiaConfig`]) with machine-readable
//!   diagnostics (rule id, severity, span into the network, suggested fix —
//!   e.g. a channel-tiling factor);
//! * [`diag`] — the diagnostic/report types shared by both passes, with
//!   text and JSON renderings and `--deny`-style severity promotion.
//!
//! The datapath distinction the rules encode:
//!
//! * **`overflow.*` (errors)** — values that *wrap* (the unsaturated 32-bit
//!   dense-input accumulator) or that were silently clamped while the model
//!   was converted (Q8.8 `G`, 16-bit `H`, the residual skip current). These
//!   corrupt the computation; a clean model must have none.
//! * **`sat.*` (warnings)** — 16-bit saturations reachable under the
//!   worst-case spike pattern. The hardware clamps these *by design*
//!   ([`sia_fixed::sat`]), so they cost precision, not correctness, and are
//!   promotable to errors with `--deny`.
//! * **`budget.*`** — resource-model violations: hard errors where the
//!   compiler could not schedule the layer at all, warnings where it falls
//!   back to chunked streaming or DDR spills.
//! * **`exit.*` (warnings)** — early-exit policy soundness ([`exit`]): a
//!   confidence threshold the head's logit intervals prove unreachable
//!   (the adaptive run silently degrades to fixed-T) or trivially
//!   satisfied (every image exits at the first boundary).
//!
//! # Examples
//!
//! ```
//! use sia_accel::SiaConfig;
//! # let spec = sia_check::doctest_spec();
//! let net = sia_snn::convert(&spec, &sia_snn::ConvertOptions::default());
//! let report = sia_check::check_network(&net, &SiaConfig::pynq_z2(), 8);
//! if report.passed() {
//!     println!("{report}");
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod diag;
pub mod exit;
pub mod interval;
pub mod lints;
pub mod overflow;

pub use diag::{rules, CheckReport, Diagnostic, RuleInfo, Severity, Span};
pub use exit::lint_exit;
pub use interval::Interval;
pub use lints::lint_budgets;
pub use overflow::{analyze, Analysis, StageCheck};

use sia_accel::SiaConfig;
use sia_snn::SnnNetwork;

/// Runs the full static check: the interval-analysis overflow pass plus the
/// hardware-budget lints, merged into one [`CheckReport`].
///
/// `timesteps` bounds the membrane iteration (the report is specific to a
/// `T`-timestep inference, matching how the network will be run).
#[must_use]
pub fn check_network(net: &SnnNetwork, config: &SiaConfig, timesteps: usize) -> CheckReport {
    let analysis = overflow::analyze(net, timesteps);
    let mut diagnostics = analysis.diagnostics;
    diagnostics.extend(lints::lint_budgets(net, config, timesteps));
    diagnostics.sort_by(|a, b| {
        (a.span.item_index, a.rule, a.channel).cmp(&(b.span.item_index, b.rule, b.channel))
    });
    CheckReport {
        model: net.name.clone(),
        timesteps,
        diagnostics,
        stages: analysis.stages,
    }
}

/// Builds a tiny spec for the crate-level doctest (hidden helper; not part
/// of the verification API).
#[doc(hidden)]
#[must_use]
pub fn doctest_spec() -> sia_nn::NetworkSpec {
    use sia_nn::{ActSpec, ConvSpec, LinearSpec, NetworkSpec, SpecItem};
    use sia_tensor::{Conv2dGeom, Tensor};
    let geom = Conv2dGeom {
        in_channels: 1,
        out_channels: 2,
        in_h: 4,
        in_w: 4,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    NetworkSpec {
        name: "doctest".into(),
        input: (1, 4, 4),
        items: vec![
            SpecItem::Conv(ConvSpec {
                geom,
                weights: Tensor::full(vec![2, 1, 3, 3], 0.05),
                bn: None,
                act: Some(ActSpec {
                    levels: 8,
                    step: 1.0,
                }),
            }),
            SpecItem::GlobalAvgPool,
            SpecItem::Linear(LinearSpec {
                in_features: 2,
                out_features: 2,
                weights: Tensor::full(vec![2, 2], 0.1),
                bias: vec![0.0; 2],
            }),
        ],
    }
}

#[cfg(test)]
mod proptests;
