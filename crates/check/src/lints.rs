//! Hardware-budget lints against the SIA resource model.
//!
//! Each PL-resident layer is planned with the accelerator compiler's own
//! scheduler ([`sia_accel::plan_conv`]) and the resulting
//! [`sia_accel::LayerFootprint`] is checked against the memory map of the
//! target [`SiaConfig`] (paper Fig. 5 / §III):
//!
//! | rule | budget (PYNQ-Z2) | outcome when exceeded |
//! |------|------------------|-----------------------|
//! | `budget.weight-sram`   | 8 kB weight SRAM (64 × 3×3 kernels) | chunked weight streaming (warning) |
//! | `budget.membrane-bank` | 64 kB ping-pong U-banks (16 384 neurons/bank) | DDR membrane spill per timestep (warning) |
//! | `budget.residual-sram` | 128 kB residual memory | unschedulable (error) |
//! | `budget.output-sram`   | 56 kB output memory | unschedulable (error) |
//! | `budget.pe-map`        | 8×8 PE array | row-segment schedule, lower utilisation (warning) |
//!
//! Errors here coincide exactly with the compiler's
//! [`sia_accel::CompileError::LayerTooLarge`] rejections; warnings are the
//! fallback paths (streaming, spills) that cost bandwidth and latency but
//! still execute. Suggested fixes carry the mechanical remedy — the
//! channel-tiling factor that would bring the layer back inside the budget.

use crate::diag::{Diagnostic, Severity};
use sia_accel::{plan_conv, SiaConfig};
use sia_snn::{SnnConv, SnnItem, SnnNetwork};

/// Lints one PL-scheduled convolution geometry.
fn lint_conv(
    c: &SnnConv,
    config: &SiaConfig,
    timesteps: usize,
    idx: usize,
    name: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let (_groups, footprint, _traffic) = plan_conv(&c.geom, config, timesteps, 0);
    let kernel_bytes = c.geom.in_channels * c.geom.kernel * c.geom.kernel;
    let group_bytes = config.pe_count().min(c.geom.out_channels) * kernel_bytes;
    if footprint.weight_chunks > 1 {
        diags.push(
            Diagnostic::new(
                "budget.weight-sram",
                Severity::Warning,
                idx,
                name,
                format!(
                    "kernel-group weights ({group_bytes} B) exceed the {} B weight SRAM; \
                     the compiler streams them in {} input-channel chunks per pass",
                    config.weight_mem_bytes, footprint.weight_chunks
                ),
            )
            .with_suggestion(format!(
                "tile input channels by a factor of {} so one chunk fits the weight \
                 memory, or shrink the layer width",
                footprint.weight_chunks
            )),
        );
    }
    if let Err(reason) = footprint.check(config) {
        // plan_conv clamps the chunk size, so in practice only the output
        // and residual memories can fail here; map the message to its rule.
        let rule = if reason.contains("output memory") {
            "budget.output-sram"
        } else if reason.contains("residual memory") {
            "budget.residual-sram"
        } else {
            "budget.weight-sram"
        };
        let factor = footprint
            .spike_out_bytes
            .div_ceil(config.output_mem_bytes.max(1))
            .max(2);
        diags.push(
            Diagnostic::new(rule, Severity::Error, idx, name, reason).with_suggestion(format!(
                "tile the layer's output channels by a factor of {factor} and run the \
                 slices as separate passes"
            )),
        );
    }
    let spill = footprint.membrane_spill_bytes(config);
    if spill > 0 {
        let bank_neurons = config.membrane_mem_bytes / 4;
        diags.push(
            Diagnostic::new(
                "budget.membrane-bank",
                Severity::Warning,
                idx,
                name,
                format!(
                    "{} membranes exceed the {} neurons one ping-pong U-bank holds \
                     ({} B membrane memory); {spill} B spill to DDR every timestep",
                    footprint.neurons, bank_neurons, config.membrane_mem_bytes
                ),
            )
            .with_suggestion(format!(
                "tile channels by a factor of {} so each slice's membranes fit one bank",
                footprint.neurons.div_ceil(bank_neurons)
            )),
        );
    }
    if c.geom.kernel > config.pe_rows {
        diags.push(
            Diagnostic::new(
                "budget.pe-map",
                Severity::Warning,
                idx,
                name,
                format!(
                    "kernel {0}x{0} is wider than the {1}x{2} PE array edge; rows are \
                     processed in segments, lowering PE utilisation",
                    c.geom.kernel, config.pe_rows, config.pe_cols
                ),
            )
            .with_suggestion(format!(
                "prefer kernels of at most {}x{} (the array is sized for 3x3)",
                config.pe_rows, config.pe_rows
            )),
        );
    }
}

/// Runs the budget lint suite for a `timesteps`-step inference on `config`.
#[must_use]
pub fn lint_budgets(net: &SnnNetwork, config: &SiaConfig, timesteps: usize) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if let Err(m) = config.validate() {
        diags.push(Diagnostic::new(
            "budget.config",
            Severity::Error,
            0,
            "config",
            format!("invalid accelerator configuration: {m}"),
        ));
        return diags;
    }
    for (idx, item) in net.items.iter().enumerate() {
        match item {
            // The dense first layer and the head run PS-side (frame
            // conversion / driver-paced FC): no PL budgets apply.
            SnnItem::InputConv(_) | SnnItem::Head(_) => {}
            SnnItem::Conv(c) | SnnItem::ConvPsum(c) => {
                let name = format!(
                    "conv{}x{},{}@{}",
                    c.geom.kernel,
                    c.geom.kernel,
                    c.geom.out_channels,
                    c.geom.out_hw().0
                );
                lint_conv(c, config, timesteps, idx, &name, &mut diags);
            }
            SnnItem::BlockAdd(a) => {
                let name = format!("block-add@{}", a.h);
                if let Some(d) = &a.down {
                    lint_conv(d, config, timesteps, idx, &name, &mut diags);
                }
                // The skip currents stream through the residual memory: one
                // i16 per neuron per timestep (compiler footprint model).
                let residual_bytes = a.neurons() * 2;
                if residual_bytes > config.residual_mem_bytes {
                    diags.push(
                        Diagnostic::new(
                            "budget.residual-sram",
                            Severity::Error,
                            idx,
                            name.clone(),
                            format!(
                                "{residual_bytes} B of residual currents exceed the {} B \
                                 residual memory",
                                config.residual_mem_bytes
                            ),
                        )
                        .with_suggestion(format!(
                            "tile the block's channels by a factor of {}",
                            residual_bytes.div_ceil(config.residual_mem_bytes)
                        )),
                    );
                }
                let out_bytes = a.neurons().div_ceil(8);
                if out_bytes > config.output_mem_bytes {
                    diags.push(
                        Diagnostic::new(
                            "budget.output-sram",
                            Severity::Error,
                            idx,
                            name,
                            format!(
                                "{out_bytes} B of output spikes exceed the {} B output memory",
                                config.output_mem_bytes
                            ),
                        )
                        .with_suggestion(format!(
                            "tile the block's channels by a factor of {}",
                            out_bytes.div_ceil(config.output_mem_bytes)
                        )),
                    );
                }
            }
            SnnItem::BlockStart | SnnItem::MaxPoolOr { .. } => {}
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_fixed::{QuantScale, Q8_8};
    use sia_snn::network::{ConvInput, NeuronMode, SnnLinear};
    use sia_tensor::Conv2dGeom;

    /// Hand-builds a converted conv with unit coefficients.
    fn conv(geom: Conv2dGeom, theta: i16) -> SnnConv {
        let n = geom.weight_count();
        let co = geom.out_channels;
        SnnConv {
            geom,
            weights: vec![1i8; n],
            q_w: QuantScale::new(7),
            input: ConvInput::Spikes { value: 1.0 },
            g: vec![Q8_8::ONE; co],
            h: vec![0; co],
            theta,
            nu: 1.0 / f32::from(theta.max(1)),
            gf: vec![1.0 / f32::from(theta.max(1)); co],
            hf: vec![0.0; co],
            step: 1.0,
            levels: 8,
            mode: NeuronMode::If,
        }
    }

    fn head(channels: usize) -> SnnLinear {
        SnnLinear {
            weights: vec![1i8; 2 * channels],
            q: QuantScale::new(7),
            bias: vec![0.0; 2],
            weights_f: vec![0.01; 2 * channels],
            channels,
            in_h: 1,
            in_w: 1,
            out: 2,
        }
    }

    fn net_of(items: Vec<SnnItem>) -> SnnNetwork {
        SnnNetwork {
            name: "lint-test".into(),
            input: (1, 8, 8),
            items,
            num_classes: 2,
        }
    }

    #[test]
    fn small_conv_is_clean() {
        let g = Conv2dGeom {
            in_channels: 4,
            out_channels: 8,
            in_h: 8,
            in_w: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let net = net_of(vec![SnnItem::Conv(conv(g, 128)), SnnItem::Head(head(8))]);
        let diags = lint_budgets(&net, &SiaConfig::pynq_z2(), 8);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn oversized_weights_warn_with_tiling_factor() {
        // 64 kernels × (64·3·3 = 576 B) = 36 kB > 8 kB weight SRAM
        let g = Conv2dGeom {
            in_channels: 64,
            out_channels: 64,
            in_h: 8,
            in_w: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let net = net_of(vec![SnnItem::Conv(conv(g, 128)), SnnItem::Head(head(64))]);
        let diags = lint_budgets(&net, &SiaConfig::pynq_z2(), 8);
        let w = diags
            .iter()
            .find(|d| d.rule == "budget.weight-sram")
            .expect("weight lint");
        assert_eq!(w.severity, Severity::Warning);
        assert!(w.suggestion.as_ref().unwrap().contains("factor of 5"));
    }

    #[test]
    fn membrane_spill_warns() {
        // 64 × 32 × 32 = 65 536 neurons > 16 384-neuron bank
        let g = Conv2dGeom {
            in_channels: 4,
            out_channels: 64,
            in_h: 32,
            in_w: 32,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let net = net_of(vec![SnnItem::Conv(conv(g, 128)), SnnItem::Head(head(64))]);
        let diags = lint_budgets(&net, &SiaConfig::pynq_z2(), 8);
        let m = diags
            .iter()
            .find(|d| d.rule == "budget.membrane-bank")
            .expect("membrane lint");
        assert!(m.message.contains("65536 membranes"));
        assert!(m.suggestion.as_ref().unwrap().contains("factor of 4"));
    }

    #[test]
    fn output_overflow_is_an_error() {
        // 1 024 × 64 × 64 spikes / 8 = 524 288 B > 56 kB output memory; use
        // 1×1 kernels to keep the weight side small.
        let g = Conv2dGeom {
            in_channels: 1,
            out_channels: 1024,
            in_h: 64,
            in_w: 64,
            kernel: 1,
            stride: 1,
            padding: 0,
        };
        let net = net_of(vec![SnnItem::Conv(conv(g, 128)), SnnItem::Head(head(1024))]);
        let diags = lint_budgets(&net, &SiaConfig::pynq_z2(), 8);
        let e = diags
            .iter()
            .find(|d| d.rule == "budget.output-sram")
            .expect("output lint");
        assert_eq!(e.severity, Severity::Error);
    }

    #[test]
    fn wide_kernels_trip_pe_map() {
        let g = Conv2dGeom {
            in_channels: 1,
            out_channels: 4,
            in_h: 32,
            in_w: 32,
            kernel: 11,
            stride: 1,
            padding: 5,
        };
        let net = net_of(vec![SnnItem::Conv(conv(g, 128)), SnnItem::Head(head(4))]);
        let diags = lint_budgets(&net, &SiaConfig::pynq_z2(), 8);
        assert!(diags.iter().any(|d| d.rule == "budget.pe-map"));
    }

    #[test]
    fn invalid_config_short_circuits() {
        let g = Conv2dGeom {
            in_channels: 4,
            out_channels: 8,
            in_h: 8,
            in_w: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let net = net_of(vec![SnnItem::Conv(conv(g, 128)), SnnItem::Head(head(8))]);
        let mut cfg = SiaConfig::pynq_z2();
        cfg.pe_rows = 0;
        let diags = lint_budgets(&net, &cfg, 8);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "budget.config");
        assert_eq!(diags[0].severity, Severity::Error);
    }
}
