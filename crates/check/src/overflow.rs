//! The abstract-interpretation overflow pass.
//!
//! Walks a converted [`SnnNetwork`] item by item, mirroring the integer
//! runner's arithmetic exactly (same tap sets, same Q8.8 rounding, same
//! reset-by-subtraction dynamics) but on [`Interval`]s instead of concrete
//! values:
//!
//! * **partial sums** — every spiking input is a bit, so a conv output
//!   channel's partial sum over one timestep lies in
//!   `[Σ min(w, 0), Σ max(w, 0)]` over that kernel's taps; any *prefix* of
//!   the saturating accumulation is a subset sum of the same taps and lies
//!   inside the same interval, so proving the bounds inside the 16-bit
//!   rails proves no intermediate `acc_weight` clamps either. The dense
//!   first layer scales each tap by its INT8 code range `[−128, 127]` and
//!   checks the *unsaturated* 32-bit accumulator instead (a wrap there is
//!   a correctness bug, not a graceful clamp).
//! * **batch-norm currents** — the Q8.8 rounded product is monotone in the
//!   integer operand for a fixed coefficient, so interval endpoints map to
//!   endpoints ([`Interval::mul_q8_8`]); the `+H` offset and residual adds
//!   are exact interval sums checked against the 16-bit rails.
//! * **membranes** — reset-by-subtraction is iterated on the reachable-set
//!   interval for `T` timesteps from the θ/2 pre-charge. The transfer
//!   `v ↦ v − θ·[v ≥ θ]` is not monotone, so the pass cases on whether
//!   every / no / some trajectory resets: when only some do, the
//!   post-reset set still lies within `[min(lo+c_lo, 0), max(hi+c_hi−θ,
//!   θ−1)]`. The **pre-reset peak** interval is what the 16-bit `add16`
//!   sees, so that is what the rail check uses — matching the runtime
//!   telemetry counter, which observes membranes pinned at a rail.
//!
//! Conversion-fidelity checks ride the same walk: the pass re-derives every
//! Q8.8 `G`, 16-bit `H` and residual skip current from the float reference
//! parameters through the *same* checked helpers the converter uses
//! ([`Q8_8::try_from_f32`], [`sat::i16_from_f32`]), so "this model clamped
//! during conversion" has one shared definition.

use crate::diag::{Diagnostic, Severity};
use crate::interval::Interval;
use sia_fixed::{sat, Q8_8};
use sia_snn::network::NeuronMode;
use sia_snn::{SnnConv, SnnItem, SnnNetwork};

/// Value intervals proven for one network stage.
#[derive(Clone, Debug)]
pub struct StageCheck {
    /// Index into [`SnnNetwork::items`].
    pub item_index: usize,
    /// Stage name (compiler naming scheme).
    pub name: String,
    /// Pre-clamp partial-sum interval in weight-code units (hull over output
    /// channels). For the head this is the per-timestep evidence interval in
    /// folded-weight codes.
    pub psum: Interval,
    /// Per-timestep membrane current in membrane LSBs, after the datapath's
    /// own clamps (hull over output channels).
    pub current: Interval,
    /// Pre-reset membrane extremes over all `T` timesteps (hull over
    /// channels); equals `current` for non-spiking stages and the total
    /// accumulated evidence for the head. Only meaningful as a bound on
    /// concrete runs while no `sat.*`/`overflow.*` finding names this stage
    /// (after a clamp the concrete trajectory diverges from the exact one).
    pub peak: Interval,
    /// Whether the stage owns membranes (spiking dynamics were iterated).
    pub spiking: bool,
}

/// Result of the overflow pass.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// One entry per value-carrying stage, in network order.
    pub stages: Vec<StageCheck>,
    /// Findings (`overflow.*` errors, `sat.*` warnings).
    pub diagnostics: Vec<Diagnostic>,
}

/// Per-channel current intervals of one conv stage plus the psum hull.
struct ConvCurrents {
    psum_hull: Interval,
    currents: Vec<Interval>,
}

const RAIL_HI: i64 = i16::MAX as i64;
const RAIL_LO: i64 = i16::MIN as i64;

fn name_of(item: &SnnItem) -> String {
    match item {
        SnnItem::InputConv(c) => format!(
            "input-conv{}x{},{}",
            c.geom.kernel, c.geom.kernel, c.geom.out_channels
        ),
        SnnItem::Conv(c) | SnnItem::ConvPsum(c) => format!(
            "conv{}x{},{}@{}",
            c.geom.kernel,
            c.geom.kernel,
            c.geom.out_channels,
            c.geom.out_hw().0
        ),
        SnnItem::BlockStart => "block-start".into(),
        SnnItem::BlockAdd(a) => format!("block-add@{}", a.h),
        SnnItem::MaxPoolOr { h, .. } => format!("or-pool@{h}"),
        SnnItem::Head(l) => format!("fc{}x{}", l.channels * l.in_h * l.in_w, l.out),
    }
}

/// Re-derives the integer coefficients from the float reference through the
/// shared checked conversions and reports any that clamped.
fn check_coefficients(c: &SnnConv, idx: usize, name: &str, diags: &mut Vec<Diagnostic>) {
    let mut g_clamped = Vec::new();
    let mut h_clamped = Vec::new();
    for co in 0..c.geom.out_channels {
        if Q8_8::try_from_f32(c.gf[co] / c.nu).1.is_clamped() {
            g_clamped.push(co);
        }
        if sat::i16_from_f32(c.hf[co] / c.nu).1.is_clamped() {
            h_clamped.push(co);
        }
    }
    if let Some(&first) = g_clamped.first() {
        diags.push(
            Diagnostic::new(
                "overflow.coeff-g",
                Severity::Error,
                idx,
                name,
                format!(
                    "batch-norm multiplier G = g/ν = {:.1} exceeds the Q8.8 range ±128 \
                     ({} of {} channels); the converted coefficient was silently clamped",
                    c.gf[first] / c.nu,
                    g_clamped.len(),
                    c.geom.out_channels
                ),
            )
            .with_channel(first)
            .with_suggestion(
                "lower the conversion gain target (g_target) or rescale the batch-norm γ \
                 so every |g/ν| stays below 128",
            ),
        );
    }
    if let Some(&first) = h_clamped.first() {
        diags.push(
            Diagnostic::new(
                "overflow.coeff-h",
                Severity::Error,
                idx,
                name,
                format!(
                    "batch-norm offset H = h/ν = {:.0} exceeds the 16-bit range \
                     ({} of {} channels); the converted offset was silently clamped",
                    c.hf[first] / c.nu,
                    h_clamped.len(),
                    c.geom.out_channels
                ),
            )
            .with_channel(first)
            .with_suggestion(
                "rescale the batch-norm β/μ (or retrain with BN) so every per-timestep \
                 offset |h/ν| stays below 32768",
            ),
        );
    }
}

/// Interval currents of a spiking-input conv: binary spikes, saturating
/// 16-bit accumulation, Q8.8 batch norm.
fn spiking_currents(
    c: &SnnConv,
    idx: usize,
    name: &str,
    diags: &mut Vec<Diagnostic>,
) -> ConvCurrents {
    let taps = c.geom.in_channels * c.geom.kernel * c.geom.kernel;
    let mut psum_hull: Option<Interval> = None;
    let mut currents = Vec::with_capacity(c.geom.out_channels);
    let mut psum_sat = Vec::new();
    let mut cur_sat = Vec::new();
    for co in 0..c.geom.out_channels {
        let (mut neg, mut pos) = (0i64, 0i64);
        for t in 0..taps {
            let w = i64::from(c.weights[co * taps + t]);
            if w < 0 {
                neg += w;
            } else {
                pos += w;
            }
        }
        let psum = Interval::new(neg, pos);
        psum_hull = Some(psum_hull.map_or(psum, |h| h.hull(psum)));
        if !psum.fits_i16() {
            psum_sat.push((co, psum));
        }
        let prod = psum.clamp_i16().mul_q8_8(c.g[co]);
        let with_h = prod.clamp_i16().offset(i64::from(c.h[co]));
        if !prod.fits_i16() || !with_h.fits_i16() {
            cur_sat.push((co, with_h));
        }
        currents.push(with_h.clamp_i16());
    }
    if let Some(&(first, iv)) = psum_sat.first() {
        diags.push(
            Diagnostic::new(
                "sat.psum",
                Severity::Warning,
                idx,
                name,
                format!(
                    "16-bit partial sum can reach {iv} and saturate at ±32767 \
                     ({} of {} channels); worst-case input: every receptive-field \
                     spike active on same-signed taps",
                    psum_sat.len(),
                    c.geom.out_channels
                ),
            )
            .with_channel(first),
        );
    }
    if let Some(&(first, iv)) = cur_sat.first() {
        diags.push(
            Diagnostic::new(
                "sat.current",
                Severity::Warning,
                idx,
                name,
                format!(
                    "batch-norm current y·G + H can reach {iv} and clamp at the 16-bit \
                     rails ({} of {} channels); worst-case input: every receptive-field \
                     spike active on same-signed taps",
                    cur_sat.len(),
                    c.geom.out_channels
                ),
            )
            .with_channel(first),
        );
    }
    ConvCurrents {
        psum_hull: psum_hull.unwrap_or(Interval::point(0)),
        currents,
    }
}

/// Interval currents of the dense first layer: INT8 codes in `[−128, 127]`,
/// *unsaturated* 32-bit accumulation (a wrap is an error), then the wide
/// Q8.8 multiply.
fn dense_currents(
    c: &SnnConv,
    idx: usize,
    name: &str,
    diags: &mut Vec<Diagnostic>,
) -> ConvCurrents {
    let taps = c.geom.in_channels * c.geom.kernel * c.geom.kernel;
    let mut psum_hull: Option<Interval> = None;
    let mut currents = Vec::with_capacity(c.geom.out_channels);
    let mut wrap = Vec::new();
    let mut cur_sat = Vec::new();
    for co in 0..c.geom.out_channels {
        let (mut lo, mut hi) = (0i64, 0i64);
        for t in 0..taps {
            let w = i64::from(c.weights[co * taps + t]);
            lo += (-128 * w).min(127 * w);
            hi += (-128 * w).max(127 * w);
        }
        let psum = Interval::new(lo, hi);
        psum_hull = Some(psum_hull.map_or(psum, |h| h.hull(psum)));
        if !psum.fits_i32() {
            wrap.push((co, psum));
        }
        let prod = psum.clamp_i32().mul_q8_8(c.g[co]);
        let with_h = prod.clamp_i16().offset(i64::from(c.h[co]));
        if !prod.fits_i16() || !with_h.fits_i16() {
            cur_sat.push((co, with_h));
        }
        currents.push(with_h.clamp_i16());
    }
    if let Some(&(first, iv)) = wrap.first() {
        diags.push(
            Diagnostic::new(
                "overflow.dense-acc",
                Severity::Error,
                idx,
                name,
                format!(
                    "dense-input partial sum can reach {iv} and wrap the unsaturated \
                     32-bit PS-side accumulator ({} of {} channels); worst-case input: \
                     full-scale INT8 codes matching each tap's sign",
                    wrap.len(),
                    c.geom.out_channels
                ),
            )
            .with_channel(first)
            .with_suggestion("split the layer's input channels or reduce the input scale"),
        );
    }
    if let Some(&(first, iv)) = cur_sat.first() {
        diags.push(
            Diagnostic::new(
                "sat.current",
                Severity::Warning,
                idx,
                name,
                format!(
                    "first-layer current y·G + H can reach {iv} and clamp at the \
                     16-bit rails ({} of {} channels); worst-case input: full-scale \
                     INT8 codes matching each tap's sign",
                    cur_sat.len(),
                    c.geom.out_channels
                ),
            )
            .with_channel(first),
        );
    }
    ConvCurrents {
        psum_hull: psum_hull.unwrap_or(Interval::point(0)),
        currents,
    }
}

/// The LIF leak `u ← u − (u >> λ)` on one bound (monotone nondecreasing in
/// `u`, so it maps interval endpoints to endpoints).
fn leak(u: i64, shift: u32) -> i64 {
    u - (u >> shift.min(15))
}

/// Iterates the reset-by-subtraction dynamics on the reachable-set interval
/// for `t_max` timesteps from the θ/2 pre-charge. Returns the pre-reset
/// peak interval (what `add16` sees) and the first timestep at which it can
/// touch a 16-bit rail.
pub(crate) fn membrane_iter(
    cur: Interval,
    theta: i64,
    mode: NeuronMode,
    t_max: usize,
) -> (Interval, Option<usize>) {
    let (mut lo, mut hi) = (theta / 2, theta / 2);
    let mut peak = Interval::new(lo, hi);
    let mut first_sat = None;
    for t in 0..t_max {
        if let NeuronMode::Lif { leak_shift } = mode {
            lo = leak(lo, leak_shift);
            hi = leak(hi, leak_shift);
        }
        let pl = lo + cur.lo;
        let ph = hi + cur.hi;
        peak = peak.hull(Interval::new(pl, ph));
        if first_sat.is_none() && (pl <= RAIL_LO || ph >= RAIL_HI) {
            first_sat = Some(t);
        }
        if ph < theta {
            // no trajectory can reset
            lo = pl;
            hi = ph;
        } else if pl >= theta {
            // every trajectory resets
            lo = pl - theta;
            hi = ph - theta;
        } else {
            // some reset (landing in [0, ph−θ]), some end just below θ
            hi = (ph - theta).max(theta - 1);
            lo = pl.min(0);
        }
    }
    (peak, first_sat)
}

/// Runs the membrane analysis over every channel of a spiking stage,
/// reporting the first channel whose pre-reset peak can touch a rail.
fn membrane_pass(
    currents: &[Interval],
    theta: i16,
    mode: NeuronMode,
    timesteps: usize,
    idx: usize,
    name: &str,
    diags: &mut Vec<Diagnostic>,
) -> Interval {
    let th = i64::from(theta);
    let mut peak_hull: Option<Interval> = None;
    let mut sat: Option<(usize, usize, Interval)> = None;
    let mut sat_count = 0usize;
    for (co, &cur) in currents.iter().enumerate() {
        let (peak, first) = membrane_iter(cur, th, mode, timesteps);
        peak_hull = Some(peak_hull.map_or(peak, |h| h.hull(peak)));
        if let Some(t) = first {
            sat_count += 1;
            if sat.is_none() {
                sat = Some((co, t, peak));
            }
        }
    }
    if let Some((co, t, peak)) = sat {
        diags.push(
            Diagnostic::new(
                "sat.membrane",
                Severity::Warning,
                idx,
                name,
                format!(
                    "membrane potential can reach {peak} and pin at a 16-bit rail from \
                     timestep {t} ({sat_count} of {} channels); worst-case input: the \
                     extreme per-timestep current sustained every timestep",
                    currents.len()
                ),
            )
            .with_channel(co)
            .with_suggestion(
                "lower the conversion gain target (g_target) or rescale the batch norm \
                 so per-timestep currents stay well below the rails",
            ),
        );
    }
    peak_hull.unwrap_or(Interval::point(0))
}

fn hull_of(currents: &[Interval]) -> Interval {
    currents
        .iter()
        .copied()
        .reduce(Interval::hull)
        .unwrap_or(Interval::point(0))
}

/// Runs the overflow pass for a `timesteps`-step inference.
///
/// # Panics
///
/// Panics on structurally malformed networks (a `BlockAdd` without a
/// preceding `ConvPsum`, or mismatched residual channel counts) — the same
/// preconditions the runners enforce.
#[must_use]
pub fn analyze(net: &SnnNetwork, timesteps: usize) -> Analysis {
    let mut stages = Vec::new();
    let mut diags = Vec::new();
    // Per-channel currents of the pending ConvPsum stage, waiting for its
    // closing BlockAdd (mirrors the runner's `pending` buffer).
    let mut pending: Option<Vec<Interval>> = None;
    for (idx, item) in net.items.iter().enumerate() {
        let name = name_of(item);
        match item {
            SnnItem::InputConv(c) => {
                check_coefficients(c, idx, &name, &mut diags);
                let cc = dense_currents(c, idx, &name, &mut diags);
                let peak = membrane_pass(
                    &cc.currents,
                    c.theta,
                    c.mode,
                    timesteps,
                    idx,
                    &name,
                    &mut diags,
                );
                stages.push(StageCheck {
                    item_index: idx,
                    name,
                    psum: cc.psum_hull,
                    current: hull_of(&cc.currents),
                    peak,
                    spiking: true,
                });
            }
            SnnItem::Conv(c) => {
                check_coefficients(c, idx, &name, &mut diags);
                let cc = spiking_currents(c, idx, &name, &mut diags);
                let peak = membrane_pass(
                    &cc.currents,
                    c.theta,
                    c.mode,
                    timesteps,
                    idx,
                    &name,
                    &mut diags,
                );
                stages.push(StageCheck {
                    item_index: idx,
                    name,
                    psum: cc.psum_hull,
                    current: hull_of(&cc.currents),
                    peak,
                    spiking: true,
                });
            }
            SnnItem::ConvPsum(c) => {
                check_coefficients(c, idx, &name, &mut diags);
                let cc = spiking_currents(c, idx, &name, &mut diags);
                let current = hull_of(&cc.currents);
                stages.push(StageCheck {
                    item_index: idx,
                    name,
                    psum: cc.psum_hull,
                    current,
                    peak: current,
                    spiking: false,
                });
                pending = Some(cc.currents);
            }
            SnnItem::BlockStart | SnnItem::MaxPoolOr { .. } => {
                // spikes stay binary; nothing numeric happens here
            }
            SnnItem::BlockAdd(a) => {
                let main = pending
                    .take()
                    .expect("BlockAdd without a preceding ConvPsum");
                let skip: Vec<Interval> = match &a.down {
                    Some(d) => {
                        check_coefficients(d, idx, &name, &mut diags);
                        let cc = spiking_currents(d, idx, &name, &mut diags);
                        cc.currents
                    }
                    None => {
                        let (skip_add, status) = sat::i16_from_f32(a.skip_value / a.nu);
                        if status.is_clamped() {
                            diags.push(
                                Diagnostic::new(
                                    "overflow.skip-add",
                                    Severity::Error,
                                    idx,
                                    name.clone(),
                                    format!(
                                        "identity-skip current skip/ν = {:.0} exceeds the \
                                         16-bit range and was clamped during conversion",
                                        a.skip_value / a.nu
                                    ),
                                )
                                .with_suggestion(
                                    "rescale the block's activation step so the skip \
                                     current fits 16 bits",
                                ),
                            );
                        }
                        let s = i64::from(skip_add);
                        vec![Interval::new(s.min(0), s.max(0)); a.channels]
                    }
                };
                assert_eq!(
                    main.len(),
                    skip.len(),
                    "residual channel mismatch (main {}, skip {})",
                    main.len(),
                    skip.len()
                );
                let mut currents = Vec::with_capacity(main.len());
                let mut add_sat: Option<(usize, Interval)> = None;
                let mut add_sat_count = 0usize;
                for (co, (&m, &s)) in main.iter().zip(&skip).enumerate() {
                    let sum = m + s;
                    if !sum.fits_i16() {
                        add_sat_count += 1;
                        if add_sat.is_none() {
                            add_sat = Some((co, sum));
                        }
                    }
                    currents.push(sum.clamp_i16());
                }
                if let Some((co, iv)) = add_sat {
                    diags.push(
                        Diagnostic::new(
                            "sat.current",
                            Severity::Warning,
                            idx,
                            name.clone(),
                            format!(
                                "residual add (main + skip current) can reach {iv} and \
                                 clamp at the 16-bit rails ({add_sat_count} of {} channels)",
                                currents.len()
                            ),
                        )
                        .with_channel(co),
                    );
                }
                let peak = membrane_pass(
                    &currents, a.theta, a.mode, timesteps, idx, &name, &mut diags,
                );
                stages.push(StageCheck {
                    item_index: idx,
                    name,
                    psum: hull_of(&main),
                    current: hull_of(&currents),
                    peak,
                    spiking: true,
                });
            }
            SnnItem::Head(l) => {
                // i64 evidence accumulator: per timestep each class gains a
                // subset sum of (area-replicated) folded weight codes.
                let area = (l.in_h * l.in_w) as i64;
                let mut per_t: Option<Interval> = None;
                for o in 0..l.out {
                    let (mut neg, mut pos) = (0i64, 0i64);
                    for ch in 0..l.channels {
                        let w = i64::from(l.weights[o * l.channels + ch]);
                        if w < 0 {
                            neg += w * area;
                        } else {
                            pos += w * area;
                        }
                    }
                    let iv = Interval::new(neg, pos);
                    per_t = Some(per_t.map_or(iv, |h| h.hull(iv)));
                }
                let per_t = per_t.unwrap_or(Interval::point(0));
                let total = Interval::new(per_t.lo * timesteps as i64, per_t.hi * timesteps as i64);
                stages.push(StageCheck {
                    item_index: idx,
                    name,
                    psum: per_t,
                    current: per_t,
                    peak: total,
                    spiking: false,
                });
            }
        }
    }
    Analysis {
        stages,
        diagnostics: diags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membrane_iter_constant_positive_current_stays_bounded() {
        // current 60, θ = 128: the neuron spikes roughly every other step and
        // the membrane can never exceed θ − 1 + 60.
        let (peak, sat) = membrane_iter(Interval::point(60), 128, NeuronMode::If, 64);
        assert!(sat.is_none());
        assert!(peak.hi <= 127 + 60);
        assert!(peak.lo >= 0);
    }

    #[test]
    fn membrane_iter_negative_current_drifts_down() {
        let (peak, sat) = membrane_iter(Interval::point(-100), 128, NeuronMode::If, 16);
        assert!(sat.is_none());
        assert_eq!(peak.lo, 64 - 16 * 100);
        // 16 more steps must eventually cross the rail
        let (_, sat2) = membrane_iter(Interval::point(-2100), 128, NeuronMode::If, 16);
        assert!(sat2.is_some());
    }

    #[test]
    fn membrane_iter_super_threshold_current_grows() {
        // current > θ: one subtraction per step cannot keep up; must flag.
        let (_, sat) = membrane_iter(Interval::point(5000), 1024, NeuronMode::If, 16);
        // peak(t) = 512 + 5000 + t·(5000 − 1024) first reaches 32767 at t = 7
        assert_eq!(sat, Some(7));
    }

    #[test]
    fn membrane_iter_lif_leak_caps_growth() {
        // With a strong leak the membrane converges instead of growing.
        let cur = Interval::point(3000);
        let (_, sat_if) = membrane_iter(cur, 8192, NeuronMode::If, 64);
        // IF with sub-threshold current 3000 < θ: grows 3000/step minus one
        // reset per crossing... it resets; stays bounded
        assert!(sat_if.is_none());
        let (peak_lif, sat_lif) = membrane_iter(
            Interval::point(900),
            8192,
            NeuronMode::Lif { leak_shift: 2 },
            64,
        );
        assert!(sat_lif.is_none());
        // leak equilibrium: u ≈ 4·900 = 3600 < θ, never spikes
        assert!(peak_lif.hi <= 4700);
    }

    #[test]
    fn membrane_iter_flags_rail_touch_exactly() {
        // θ/2 = 16383, current exactly reaching 32767 on the first step
        let (peak, sat) = membrane_iter(Interval::point(16384), 32766, NeuronMode::If, 4);
        assert_eq!(sat, Some(0)); // 16383 + 16384 = 32767 touches the rail
                                  // after the reset (u = 1) two more steps reach 1 + 2·16384
        assert_eq!(peak.hi, 32769);
    }
}
