//! Soundness properties: every interval the analysis claims must contain the
//! concrete values the *real* integer datapath produces.
//!
//! Each property drives random concrete inputs through the actual runtime
//! operations ([`sia_snn::conv_psums_int`], [`sia_snn::conv_psums_dense`],
//! [`sia_snn::neuron::step_int`], the [`sia_fixed`] saturating helpers) and
//! checks containment against the corresponding [`StageCheck`] /
//! [`membrane_iter`] claims. Containment is only asserted for stages with no
//! `sat.*`/`overflow.*` finding — after a clamp the concrete trajectory
//! legitimately diverges from the exact-arithmetic interval — which is
//! exactly the guarantee [`crate::CheckReport::overflow_free`] advertises.

use crate::interval::Interval;
use crate::overflow::{analyze, membrane_iter};
use proptest::prelude::*;
use sia_fixed::{sat, QuantScale, Q8_8};
use sia_snn::network::{ConvInput, NeuronMode, SnnConv};
use sia_snn::neuron::step_int;
use sia_snn::{conv_psums_dense, conv_psums_int, SnnItem, SnnNetwork};
use sia_tensor::Conv2dGeom;

/// Builds a converted conv whose float reference parameters round-trip
/// exactly through the checked conversions (so no spurious `overflow.coeff-*`
/// findings): `gf = G·ν` with `G` an exact Q8.8 value, `hf = H·ν`.
fn conv_of(
    geom: Conv2dGeom,
    weights: Vec<i8>,
    g_raw: Vec<i16>,
    h: Vec<i16>,
    theta: i16,
    input: ConvInput,
    mode: NeuronMode,
) -> SnnConv {
    let nu = 0.25f32;
    let gf: Vec<f32> = g_raw.iter().map(|&r| f32::from(r) / 256.0 * nu).collect();
    let hf: Vec<f32> = h.iter().map(|&v| f32::from(v) * nu).collect();
    SnnConv {
        geom,
        weights,
        q_w: QuantScale::new(7),
        input,
        g: g_raw.iter().map(|&r| Q8_8::from_raw(r)).collect(),
        h,
        theta,
        nu,
        gf,
        hf,
        step: 1.0,
        levels: 8,
        mode,
    }
}

fn single_conv_net(conv: SnnConv, dense: bool) -> SnnNetwork {
    let input = (conv.geom.in_channels, conv.geom.in_h, conv.geom.in_w);
    let item = if dense {
        SnnItem::InputConv(conv)
    } else {
        SnnItem::Conv(conv)
    };
    SnnNetwork {
        name: "proptest".into(),
        input,
        items: vec![item],
        num_classes: 2,
    }
}

fn vec_of<T>(elem: impl Strategy<Value = T>, n: usize) -> impl Strategy<Value = Vec<T>> {
    proptest::collection::vec(elem, n..=n)
}

fn mode_strategy() -> impl Strategy<Value = NeuronMode> {
    prop_oneof![
        Just(NeuronMode::If),
        (1u32..4).prop_map(|leak_shift| NeuronMode::Lif { leak_shift }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Spiking conv: concrete 16-bit psums and batch-norm currents lie inside
    /// the claimed stage intervals for every random weight set and spike map.
    #[test]
    fn spiking_psums_and_currents_contained(
        in_channels in 1usize..4,
        out_channels in 1usize..5,
        hw in 4usize..7,
        kernel in prop_oneof![Just(1usize), Just(3usize)],
        weights in vec_of(-8i8..9, 4 * 3 * 3 * 3),
        g_raw in vec_of(-512i16..513, 4),
        h in vec_of(-1000i16..1001, 4),
        spikes in vec_of(0u8..2, 3 * 6 * 6),
    ) {
        let geom = Conv2dGeom {
            in_channels, out_channels,
            in_h: hw, in_w: hw,
            kernel, stride: 1, padding: kernel / 2,
        };
        let taps = in_channels * kernel * kernel;
        let conv = conv_of(
            geom,
            weights[..out_channels * taps].to_vec(),
            g_raw[..out_channels].to_vec(),
            h[..out_channels].to_vec(),
            512,
            ConvInput::Spikes { value: 1.0 },
            NeuronMode::If,
        );
        let spikes = &spikes[..in_channels * hw * hw];
        let net = single_conv_net(conv, false);
        let analysis = analyze(&net, 4);
        // Small weights / coefficients: the stage must be provably clean.
        prop_assert!(analysis.diagnostics.is_empty(), "{:?}", analysis.diagnostics);
        let stage = &analysis.stages[0];
        let SnnItem::Conv(c) = &net.items[0] else { unreachable!() };
        let psums = conv_psums_int(c, spikes);
        let (oh, ow) = c.geom.out_hw();
        for (i, &p) in psums.iter().enumerate() {
            let co = i / (oh * ow);
            prop_assert!(
                stage.psum.contains(i64::from(p)),
                "psum {p} outside {} (channel {co})", stage.psum
            );
            let cur = sat::add16(c.g[co].mul_int(p), c.h[co]);
            prop_assert!(
                stage.current.contains(i64::from(cur)),
                "current {cur} outside {}", stage.current
            );
        }
    }

    /// Dense first layer: concrete 32-bit psums over random INT8 codes and
    /// the wide-multiply currents lie inside the claimed intervals.
    #[test]
    fn dense_psums_and_currents_contained(
        out_channels in 1usize..5,
        hw in 4usize..7,
        weights in vec_of(-3i8..4, 4 * 2 * 3 * 3),
        g_raw in vec_of(-200i16..201, 4),
        h in vec_of(-500i16..501, 4),
        codes in vec_of(-128i8..=127i8, 2 * 6 * 6),
    ) {
        let geom = Conv2dGeom {
            in_channels: 2, out_channels,
            in_h: hw, in_w: hw,
            kernel: 3, stride: 1, padding: 1,
        };
        let conv = conv_of(
            geom,
            weights[..out_channels * 2 * 9].to_vec(),
            g_raw[..out_channels].to_vec(),
            h[..out_channels].to_vec(),
            512,
            ConvInput::Dense { scale: 0.01 },
            NeuronMode::If,
        );
        let codes = &codes[..2 * hw * hw];
        let net = single_conv_net(conv, true);
        let analysis = analyze(&net, 4);
        let clean = !analysis
            .diagnostics
            .iter()
            .any(|d| d.rule.starts_with("overflow.") || d.rule.starts_with("sat."));
        prop_assert!(clean, "{:?}", analysis.diagnostics);
        let stage = &analysis.stages[0];
        let SnnItem::InputConv(c) = &net.items[0] else { unreachable!() };
        let psums = conv_psums_dense(c, codes);
        let (oh, ow) = c.geom.out_hw();
        for (i, &p) in psums.iter().enumerate() {
            let co = i / (oh * ow);
            prop_assert!(
                stage.psum.contains(i64::from(p)),
                "dense psum {p} outside {}", stage.psum
            );
            let cur = sat::add16(c.g[co].mul_int_wide(p), c.h[co]);
            prop_assert!(
                stage.current.contains(i64::from(cur)),
                "dense current {cur} outside {}", stage.current
            );
        }
    }

    /// Membrane dynamics: a concrete neuron driven by arbitrary per-timestep
    /// currents inside the claimed current interval (a) stays bit-identical
    /// to the runtime's `step_int`, and (b) keeps its pre-reset potential
    /// inside the claimed peak interval whenever no saturation was claimed.
    #[test]
    fn membrane_trajectory_contained(
        theta in 64i16..4097,
        c_lo in -4000i64..4001,
        span in 0i64..3000,
        mode in mode_strategy(),
        picks in vec_of(0u64..=u64::MAX, 24),
    ) {
        let cur = Interval::new(c_lo, c_lo + span);
        let timesteps = picks.len();
        let (peak, first_sat) = membrane_iter(cur, i64::from(theta), mode, timesteps);
        // Concrete currents: an arbitrary value inside `cur` each timestep.
        let currents: Vec<i16> = picks
            .iter()
            .map(|&p| (cur.lo + (p % (span as u64 + 1)) as i64) as i16)
            .collect();
        let mut u_mirror = theta / 2; // runtime pre-charge
        let mut u_real = theta / 2;
        for (t, &c) in currents.iter().enumerate() {
            if let NeuronMode::Lif { leak_shift } = mode {
                u_mirror = sat::sub16(u_mirror, sat::asr16(u_mirror, leak_shift));
            }
            let pre = sat::add16(u_mirror, c);
            if first_sat.is_none() {
                prop_assert!(
                    peak.contains(i64::from(pre)),
                    "pre-reset u {pre} at t={t} outside claimed peak {peak}"
                );
                prop_assert!(
                    pre < i16::MAX && pre > i16::MIN,
                    "rail touched at t={t} though none was claimed"
                );
            }
            u_mirror = if pre >= theta { sat::sub16(pre, theta) } else { pre };
            let _ = step_int(&mut u_real, c, theta, mode);
            prop_assert_eq!(u_mirror, u_real, "mirror diverged from step_int at t={}", t);
        }
    }

    /// The interval image of the Q8.8 multiply brackets the runtime's
    /// saturating `mul_int` for every coefficient and operand.
    #[test]
    fn q8_8_multiply_image_contains_mul_int(g_raw: i16, y: i16) {
        let g = Q8_8::from_raw(g_raw);
        let claimed = Interval::point(i64::from(y)).mul_q8_8(g).clamp_i16();
        let concrete = i64::from(g.mul_int(y));
        prop_assert!(
            claimed.contains(concrete),
            "mul_int({g_raw}, {y}) = {concrete} outside {claimed}"
        );
    }
}
