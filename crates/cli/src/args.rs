//! Minimal typed argument parsing (no external dependencies).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: subcommand, positional arguments and `--flags`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` and bare `--switch` options (switches map to "true").
    pub options: BTreeMap<String, String>,
}

/// Argument errors, with the offending token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// `--key` given without a value where one is required.
    BadValue {
        /// Option name.
        key: String,
        /// The unparsable value.
        value: String,
        /// Expected type.
        expected: &'static str,
    },
    /// A required option is missing.
    Missing {
        /// Option name.
        key: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no subcommand given (try `sia help`)"),
            ArgError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "--{key}: expected {expected}, got '{value}'")
            }
            ArgError::Missing { key } => write!(f, "missing required option --{key}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses a token stream (everything after the program name).
    ///
    /// Flags take the following token as their value unless it begins with
    /// `--` or is absent, in which case they are switches ("true").
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::MissingCommand`] on an empty stream.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = tokens.into_iter().peekable();
        let mut command = None;
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().unwrap(),
                    _ => "true".to_string(),
                };
                args.options.insert(key.to_string(), value);
            } else if command.is_none() {
                command = Some(tok);
            } else {
                args.positional.push(tok);
            }
        }
        args.command = command.ok_or(ArgError::MissingCommand)?;
        Ok(args)
    }

    /// String option with a default.
    #[must_use]
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Required string option.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::Missing`] when absent.
    pub fn str_required(&self, key: &str) -> Result<String, ArgError> {
        self.options
            .get(key)
            .cloned()
            .ok_or_else(|| ArgError::Missing {
                key: key.to_string(),
            })
    }

    /// Integer option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when present but unparsable.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.clone(),
                expected: "an integer",
            }),
        }
    }

    /// Float option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when present but unparsable.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.clone(),
                expected: "a number",
            }),
        }
    }

    /// Boolean switch (present ⇒ true).
    #[must_use]
    pub fn switch(&self, key: &str) -> bool {
        self.options.get(key).is_some_and(|v| v == "true")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn command_positional_and_flags() {
        let a = parse("run model.sia --timesteps 16 --events").unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.positional, vec!["model.sia"]);
        assert_eq!(a.usize_or("timesteps", 8).unwrap(), 16);
        assert!(a.switch("events"));
        assert!(!a.switch("verbose"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse("train").unwrap();
        assert_eq!(a.usize_or("epochs", 8).unwrap(), 8);
        assert_eq!(a.str_or("model", "resnet18"), "resnet18");
    }

    #[test]
    fn float_options_parse_with_defaults() {
        let a = parse("bench --rel-slack 37.5").unwrap();
        assert!((a.f64_or("rel-slack", 25.0).unwrap() - 37.5).abs() < 1e-12);
        assert!((a.f64_or("mad-k", 4.0).unwrap() - 4.0).abs() < 1e-12);
        let bad = parse("bench --rel-slack lots").unwrap();
        assert!(bad.f64_or("rel-slack", 25.0).is_err());
    }

    #[test]
    fn empty_stream_is_an_error() {
        assert_eq!(parse("").unwrap_err(), ArgError::MissingCommand);
    }

    #[test]
    fn bad_integer_is_reported_with_key() {
        let a = parse("train --epochs banana").unwrap();
        let err = a.usize_or("epochs", 1).unwrap_err();
        assert!(err.to_string().contains("epochs"));
        assert!(err.to_string().contains("banana"));
    }

    #[test]
    fn required_option_errors_when_missing() {
        let a = parse("train").unwrap();
        assert!(a.str_required("out").is_err());
    }

    #[test]
    fn flag_followed_by_flag_is_a_switch() {
        let a = parse("run --events --timesteps 4").unwrap();
        assert!(a.switch("events"));
        assert_eq!(a.usize_or("timesteps", 8).unwrap(), 4);
    }
}
