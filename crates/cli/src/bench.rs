//! `sia bench` — the unified benchmark registry.
//!
//! Every bench family (`gemm`, `conv`, `eval`) shares one methodology and
//! one JSON schema ([`sia_perf::bench`]): discard `warmup` calls, time
//! `iters` calls individually, keep the **min** as the comparison point
//! (the least-noise estimate on a time-shared host) and carry median +
//! MAD so `--check-baseline` can widen its threshold on cases that were
//! already noisy when the baseline was recorded, instead of one global
//! fudge factor.
//!
//! ```text
//! sia bench gemm --smoke --update-baseline      # record results/baselines/gemm-smoke.json
//! sia bench gemm --smoke --check-baseline       # fail (exit 1) on a regression
//! ```

use crate::args::Args;
use crate::{data_for, err};
use sia_perf::bench::{
    check_against_baseline, summarize_ns, BenchCase, BenchReport, HostInfo, Threshold,
};
use std::hint::black_box;
use std::time::Instant;

/// The bench registry: `sia bench <name>` dispatches through this table.
type BenchFn = fn(&Args, bool, usize) -> Result<BenchReport, String>;

const BENCHES: &[(&str, BenchFn)] = &[
    ("conv", bench_conv),
    ("gemm", bench_gemm),
    ("eval", bench_eval),
    ("serve", bench_serve),
];

/// Runs one bench family, writes its JSON, and optionally records or
/// checks the committed baseline (`--update-baseline` / `--check-baseline`,
/// stored under `--baseline-dir`, default `results/baselines/`).
pub fn cmd_bench(args: &Args) -> Result<(), String> {
    let which = args
        .positional
        .first()
        .map_or("conv", String::as_str)
        .to_string();
    let smoke = args.switch("smoke");
    let threads = args.usize_or("threads", 4).map_err(err)?;
    let Some(&(_, run)) = BENCHES.iter().find(|(name, _)| *name == which) else {
        let names: Vec<&str> = BENCHES.iter().map(|(name, _)| *name).collect();
        return Err(format!("unknown bench '{which}' ({})", names.join("|")));
    };
    let report = run(args, smoke, threads)?;
    let doc = report.to_json();
    let default_out = format!("BENCH_{which}.json");
    let out_path = args.str_or("out", &default_out);
    std::fs::write(&out_path, &doc).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!(
        "results written to {out_path} (host: {} logical / {} physical cpus)",
        report.host.logical_cpus, report.host.physical_cpus
    );
    if !smoke {
        let mirror = format!("results/bench_{which}.json");
        if std::fs::create_dir_all("results").is_ok() && std::fs::write(&mirror, &doc).is_ok() {
            println!("results mirrored to {mirror}");
        }
    }
    let dir = args.str_or("baseline-dir", "results/baselines");
    let baseline_path = format!("{dir}/{which}{}.json", if smoke { "-smoke" } else { "" });
    if args.switch("update-baseline") {
        std::fs::create_dir_all(&dir).map_err(|e| format!("creating {dir}: {e}"))?;
        std::fs::write(&baseline_path, &doc)
            .map_err(|e| format!("writing {baseline_path}: {e}"))?;
        println!("baseline updated: {baseline_path}");
    }
    if args.switch("check-baseline") {
        let text = std::fs::read_to_string(&baseline_path).map_err(|e| {
            format!(
                "cannot read baseline `{baseline_path}`: {e}\n(record one with \
                 `sia bench {which}{} --update-baseline`)",
                if smoke { " --smoke" } else { "" }
            )
        })?;
        let baseline = BenchReport::from_json(&text)
            .map_err(|e| format!("baseline `{baseline_path}`: {e}"))?;
        let threshold = Threshold {
            rel_slack: args.f64_or("rel-slack", 25.0).map_err(err)? / 100.0,
            mad_k: args.f64_or("mad-k", 4.0).map_err(err)?,
        };
        let mut outcome = check_against_baseline(&report, &baseline, threshold);
        // `--allow-missing`: a mode that structurally cannot produce every
        // baseline case (e.g. `bench serve --url` cannot host the second
        // early-exit server, so the `c{n}@margin` cases never run) may opt
        // out of the missing-coverage failure; timed cases still gate.
        if args.switch("allow-missing") && !outcome.missing.is_empty() {
            println!(
                "note: {} baseline case(s) not produced in this mode: {}",
                outcome.missing.len(),
                outcome.missing.join(", ")
            );
            outcome.missing.clear();
        }
        print!("{}", outcome.render());
        if !outcome.passed() {
            return Err(format!(
                "bench `{which}` regressed against {baseline_path} (see the diff above; \
                 re-record with --update-baseline if the change is intentional)"
            ));
        }
        println!(
            "baseline check passed ({} case(s) within threshold)",
            outcome.diffs.len()
        );
    }
    Ok(())
}

/// Discards `warmup` calls, then times `iters` calls individually.
fn sample<R>(warmup: u32, iters: u32, mut f: impl FnMut() -> R) -> Vec<u64> {
    for _ in 0..warmup {
        let _ = black_box(f());
    }
    (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            let _ = black_box(f());
            t0.elapsed().as_nanos() as u64
        })
        .collect()
}

/// Benchmarks the blocked, register-tiled GEMM against the naive reference
/// across the conv-as-GEMM layer shapes of the paper's two networks
/// (im2col maps a conv to `M = out_ch`, `K = in_ch·k²`, `N = out_h·out_w`),
/// asserting bit-exactness of all three flows on every shape first. The
/// regression-tracked number (`min_ns`) is the production kernel: the
/// blocked GEMM on the `--threads` column.
fn bench_gemm(_args: &Args, smoke: bool, threads: usize) -> Result<BenchReport, String> {
    use sia_tensor::{
        matmul, matmul_a_bt, matmul_a_bt_reference, matmul_at_b, matmul_at_b_reference,
        matmul_reference, pool, set_kernel, Kernel, Tensor,
    };

    // (name, M, K, N): im2col GEMM shapes from Table I — ResNet-18 and
    // VGG-11 at base width 64, 32×32 input — plus the FC head.
    let full: &[(&'static str, usize, usize, usize)] = &[
        ("resnet18.stem 3->64@32", 64, 27, 1024),
        ("resnet18.s1.conv 64->64@32", 64, 576, 1024),
        ("resnet18.s2.down 64->128@16", 128, 576, 256),
        ("resnet18.s2.conv 128->128@16", 128, 1152, 256),
        ("resnet18.s3.conv 256->256@8", 256, 2304, 64),
        ("resnet18.s4.conv 512->512@4", 512, 4608, 16),
        ("vgg11.conv2 64->128@16", 128, 576, 256),
        ("vgg11.conv4 256->256@8", 256, 2304, 64),
        ("vgg11.conv6 512->512@4", 512, 4608, 16),
        ("head.fc 512->10 (batch 32)", 32, 512, 10),
    ];
    let small: &[(&'static str, usize, usize, usize)] = &[
        ("smoke.conv 16->16@8", 16, 144, 64),
        ("smoke.fc 64->10 (batch 8)", 8, 64, 10),
    ];
    let shapes = if smoke { small } else { full };
    let warmup = 1u32;
    // Deterministic data with exact zeros (the kernels' skip path).
    let fill = |count: usize, seed: u64| -> Vec<f32> {
        let mut state = seed | 1;
        (0..count)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let r = state >> 33;
                if r.is_multiple_of(5) {
                    0.0
                } else {
                    (r % 2001) as f32 / 1000.0 - 1.0
                }
            })
            .collect()
    };
    let assert_bits = |name: &str, flow: &str, a: &Tensor, b: &Tensor| {
        if a.data().len() != b.data().len()
            || a.data()
                .iter()
                .zip(b.data())
                .any(|(x, y)| x.to_bits() != y.to_bits())
        {
            return Err(format!(
                "blocked {flow} diverges bitwise from the reference on '{name}'"
            ));
        }
        Ok(())
    };
    let prev_threads = pool::threads();
    set_kernel(Kernel::Blocked);
    let mut cases = Vec::new();
    let host = HostInfo::detect();
    println!(
        "blocked vs reference GEMM, {threads}-thread column, host {} logical / {} physical cpus{}",
        host.logical_cpus,
        host.physical_cpus,
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<30} {:>14} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "shape (MxKxN)", "", "ref ns", "blk@1 ns", "blk@N ns", "x@1", "x@N"
    );
    for &(name, m, k, n) in shapes {
        let a = Tensor::from_vec(vec![m, k], fill(m * k, 0x5EED ^ (m * k) as u64));
        let b = Tensor::from_vec(vec![k, n], fill(k * n, 0xB0B ^ (k * n) as u64));
        // --- bit-exactness gates, all three flows, before any timing ---
        pool::set_threads(threads.max(2));
        assert_bits(name, "matmul", &matmul(&a, &b), &matmul_reference(&a, &b))?;
        let at = Tensor::from_vec(vec![k, m], fill(k * m, 0xA7 ^ (k * m) as u64));
        assert_bits(
            name,
            "matmul_at_b",
            &matmul_at_b(&at, &b),
            &matmul_at_b_reference(&at, &b),
        )?;
        let bt = Tensor::from_vec(vec![n, k], fill(n * k, 0xB7 ^ (n * k) as u64));
        assert_bits(
            name,
            "matmul_a_bt",
            &matmul_a_bt(&a, &bt),
            &matmul_a_bt_reference(&a, &bt),
        )?;
        // --- timing ---
        let flops = 2.0 * (m * k * n) as f64;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let iters = if smoke {
            7u32
        } else {
            ((1.2e9 / flops) as u32).clamp(5, 400)
        };
        let ref_samples = sample(warmup, iters, || matmul_reference(&a, &b));
        pool::set_threads(1);
        let one_samples = sample(warmup, iters, || matmul(&a, &b));
        pool::set_threads(threads);
        let mt_samples = sample(warmup, iters, || matmul(&a, &b));
        let (ref_min, _, _) = summarize_ns(&ref_samples);
        let (one_min, _, _) = summarize_ns(&one_samples);
        let (mt_min, mt_median, mt_mad) = summarize_ns(&mt_samples);
        println!(
            "{name:<30} {:>14} {ref_min:>12} {one_min:>12} {mt_min:>12} \
             {:>7.2}x {:>7.2}x",
            format!("{m}x{k}x{n}"),
            ref_min as f64 / one_min.max(1) as f64,
            ref_min as f64 / mt_min.max(1) as f64
        );
        cases.push(BenchCase {
            name: name.to_string(),
            iters: u64::from(iters),
            warmup: u64::from(warmup),
            min_ns: mt_min,
            median_ns: mt_median,
            mad_ns: mt_mad,
            metrics: vec![
                ("m".to_string(), m as f64),
                ("k".to_string(), k as f64),
                ("n".to_string(), n as f64),
                ("ref_min_ns".to_string(), ref_min as f64),
                ("blocked_1t_min_ns".to_string(), one_min as f64),
                (
                    "speedup_1t".to_string(),
                    ref_min as f64 / one_min.max(1) as f64,
                ),
                (
                    "speedup_mt".to_string(),
                    ref_min as f64 / mt_min.max(1) as f64,
                ),
                (
                    "gflops_blocked_mt".to_string(),
                    flops / mt_min.max(1) as f64,
                ),
            ],
        });
    }
    pool::set_threads(prev_threads);
    Ok(BenchReport {
        bench: "gemm".to_string(),
        host,
        threads,
        cases,
    })
}

/// Micro-benchmarks the spiking conv kernels: the word-parallel
/// event-driven scatter and the register-tiled dense kernel (the two
/// production paths) against the scalar scatter, the scalar dense gather
/// and the byte-wise reference, asserting bit-exactness of every kernel
/// at every density before timing anything.
///
/// Timing is **interleaved**: every round times each (case, kernel) pair
/// once, so no kernel enjoys a privately warmed cache or branch-predictor
/// state — the methodology fix for the old dense-timing anomaly, where
/// the gather's data-dependent branch was timed predictable-first. The
/// tracked `min_ns` is the production kernel the resolved
/// [`sia_snn::KernelPolicy`] picks for that case's density; slower
/// reference kernels run fewer rounds. Non-smoke runs add a fine density
/// grid around the calibrated scatter↔dense crossover (marked
/// `fine: 1`); smoke keeps the fixed case list so the committed
/// `conv-smoke` baseline stays comparable run to run.
fn bench_conv(args: &Args, smoke: bool, _threads: usize) -> Result<BenchReport, String> {
    use sia_fixed::{QuantScale, Q8_8};
    use sia_snn::network::{ConvInput, NeuronMode, SnnConv};
    use sia_snn::{
        conv_psums_int, conv_psums_int_gather_ref, conv_psums_int_plane, conv_psums_int_scatter,
        conv_psums_int_scatter_scalar, conv_psums_int_tiled, Calibration, ConvScratch,
        KernelPolicy, SpikePlane,
    };
    use sia_tensor::Conv2dGeom;

    // Representative mid-network residual-stage geometry (scaled down in
    // smoke mode, where only the equivalence asserts matter).
    let (ch, hw, iters, ref_iters) = if smoke {
        (8, 8, 7u32, 7u32)
    } else {
        (32, 16, 200, 20)
    };
    let geom = Conv2dGeom {
        in_channels: ch,
        out_channels: ch,
        in_h: hw,
        in_w: hw,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let conv = SnnConv {
        geom,
        weights: (0..geom.weight_count())
            .map(|i| (((i * 31) % 255) as i32 - 127) as i8)
            .collect(),
        q_w: QuantScale::new(7),
        input: ConvInput::Spikes { value: 1.0 },
        g: vec![Q8_8::ONE; ch],
        h: vec![0; ch],
        theta: 128,
        nu: 1.0 / 128.0,
        gf: vec![1.0; ch],
        hf: vec![0.0; ch],
        step: 1.0,
        levels: 8,
        mode: NeuronMode::If,
    };
    let n_out = geom.out_neurons();

    // The policy whose choices `min_ns` tracks: explicit flags win;
    // otherwise a loaded host calibration; otherwise a fresh in-process
    // measurement — so the bench always reports a *measured* crossover.
    let resolved = crate::calibrate::resolve_policy(args)?;
    let (policy, model) = match resolved {
        KernelPolicy::Calibrated(m) => (resolved, m),
        other => {
            let cal = Calibration::measure(smoke);
            let policy = if other == KernelPolicy::Auto {
                cal.policy()
            } else {
                other
            };
            (policy, cal.model)
        }
    };
    let crossover = model.crossover_density(&geom);

    // Fixed density ladder, plus (full mode only) a fine grid around the
    // measured crossover so BENCH_conv.json pins down where the policy
    // flips. Smoke keeps the fixed list: baseline checks fail on missing
    // cases, and the crossover moves from host to host.
    let base = [1u32, 5, 10, 25, 50, 100];
    let mut densities: Vec<(u32, bool)> = base.iter().map(|&p| (p, false)).collect();
    if !smoke {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cross_pct = (crossover * 100.0).round().clamp(1.0, 99.0) as u32;
        for off in [-4i64, -2, -1, 0, 1, 2, 4] {
            let p = i64::from(cross_pct) + off;
            if (1..=99).contains(&p) {
                let p = u32::try_from(p).expect("in range");
                if !densities.iter().any(|&(q, _)| q == p) {
                    densities.push((p, true));
                }
            }
        }
        densities.sort_unstable();
    }

    struct Case {
        pct: u32,
        fine: bool,
        bytes: Vec<u8>,
        plane: SpikePlane,
        measured_density: f64,
        spikes: u64,
    }
    let cases_in: Vec<Case> = densities
        .iter()
        .map(|&(pct, fine)| {
            let n = ch * hw * hw;
            let mut state = u64::from(pct) << 17 | 1;
            let bytes: Vec<u8> = (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    u8::from((state >> 33) % 100 < u64::from(pct))
                })
                .collect();
            let set = bytes.iter().map(|&b| u32::from(b)).sum::<u32>();
            let mut plane = SpikePlane::default();
            plane.pack_from_bytes(ch, hw, hw, &bytes);
            Case {
                pct,
                fine,
                measured_density: f64::from(set) / n as f64,
                spikes: plane.count_ones(),
                bytes,
                plane,
            }
        })
        .collect();

    // Bit-exactness gate: never time a kernel that disagrees with the
    // byte-wise reference.
    let mut scr = ConvScratch::new();
    for c in &cases_in {
        let reference = conv_psums_int(&conv, &c.bytes);
        let checks: [(&str, Vec<i16>); 5] = [
            (
                "scatter",
                conv_psums_int_scatter(&conv, &c.plane, &mut scr, 0).to_vec(),
            ),
            (
                "scalar scatter",
                conv_psums_int_scatter_scalar(&conv, &c.plane, &mut scr, 0).to_vec(),
            ),
            (
                "tiled",
                conv_psums_int_tiled(&conv, &c.plane, &mut scr, 0).to_vec(),
            ),
            (
                "gather",
                conv_psums_int_gather_ref(&conv, &c.plane, &mut scr).to_vec(),
            ),
            (
                "policy",
                conv_psums_int_plane(&conv, &c.plane, policy, &mut scr, 0).to_vec(),
            ),
        ];
        for (kernel, got) in checks {
            if got != reference {
                return Err(format!(
                    "{kernel} kernel diverges from the byte reference at {}% density",
                    c.pct
                ));
            }
        }
    }

    println!(
        "conv {ch}x{hw}x{hw} k3 s1 p1, {iters} iters/kernel, crossover {:.1}%{}",
        crossover * 100.0,
        if smoke { " (smoke)" } else { "" }
    );

    // Interleaved timing: round-robin across every (case, kernel) pair.
    let ncases = cases_in.len();
    let mut scatter_s: Vec<Vec<u64>> = vec![Vec::with_capacity(iters as usize); ncases];
    let mut tiled_s: Vec<Vec<u64>> = vec![Vec::with_capacity(iters as usize); ncases];
    let mut scalar_min = vec![u64::MAX; ncases];
    let mut gather_min = vec![u64::MAX; ncases];
    let mut byte_min = vec![u64::MAX; ncases];
    let time_ns = |f: &mut dyn FnMut()| -> u64 {
        let t0 = Instant::now();
        f();
        t0.elapsed().as_nanos() as u64
    };
    for round in 0..iters {
        for (i, c) in cases_in.iter().enumerate() {
            scatter_s[i].push(time_ns(&mut || {
                black_box(conv_psums_int_scatter(&conv, black_box(&c.plane), &mut scr, 0).len());
            }));
            tiled_s[i].push(time_ns(&mut || {
                black_box(conv_psums_int_tiled(&conv, black_box(&c.plane), &mut scr, 0).len());
            }));
            if round < ref_iters {
                scalar_min[i] = scalar_min[i].min(time_ns(&mut || {
                    black_box(
                        conv_psums_int_scatter_scalar(&conv, black_box(&c.plane), &mut scr, 0)
                            .len(),
                    );
                }));
                gather_min[i] = gather_min[i].min(time_ns(&mut || {
                    black_box(
                        conv_psums_int_gather_ref(&conv, black_box(&c.plane), &mut scr).len(),
                    );
                }));
                byte_min[i] = byte_min[i].min(time_ns(&mut || {
                    black_box(conv_psums_int(&conv, black_box(&c.bytes)).len());
                }));
            }
        }
        // Round 0 is the warmup for every pair: drop its samples.
        if round == 0 {
            for i in 0..ncases {
                scatter_s[i].clear();
                tiled_s[i].clear();
            }
        }
    }

    println!(
        "{:>8} {:>9} {:>7} {:>10} {:>10} {:>10} {:>10} {:>11} {:>8} {:>8}",
        "density",
        "measured",
        "kernel",
        "prod ns",
        "scatter",
        "tiled",
        "scalar",
        "gather",
        "x scal",
        "x dense"
    );
    let mut cases = Vec::new();
    for (i, c) in cases_in.iter().enumerate() {
        let (scatter_min, scatter_median, scatter_mad) = summarize_ns(&scatter_s[i]);
        let (tiled_min, tiled_median, tiled_mad) = summarize_ns(&tiled_s[i]);
        let sparse_selected = policy.picks_sparse(&geom, c.spikes, n_out);
        let (prod_min, prod_median, prod_mad, kernel) = if sparse_selected {
            (scatter_min, scatter_median, scatter_mad, "scatter")
        } else {
            (tiled_min, tiled_median, tiled_mad, "tiled")
        };
        let speedup_vs_scalar = scalar_min[i] as f64 / prod_min.max(1) as f64;
        let speedup_vs_dense = gather_min[i] as f64 / prod_min.max(1) as f64;
        println!(
            "{:>7}% {:>8.1}% {kernel:>7} {prod_min:>10} {scatter_min:>10} {tiled_min:>10} {:>10} {:>11} {:>7.2}x {:>7.1}x",
            c.pct,
            100.0 * c.measured_density,
            scalar_min[i],
            gather_min[i],
            speedup_vs_scalar,
            speedup_vs_dense,
        );
        cases.push(BenchCase {
            name: format!("d{:03}", c.pct),
            iters: u64::from(iters - 1),
            warmup: 1,
            min_ns: prod_min,
            median_ns: prod_median,
            mad_ns: prod_mad,
            metrics: vec![
                ("measured_density".to_string(), c.measured_density),
                ("fine".to_string(), f64::from(u8::from(c.fine))),
                ("crossover_density".to_string(), crossover),
                (
                    "sparse_selected".to_string(),
                    f64::from(u8::from(sparse_selected)),
                ),
                ("scatter_min_ns".to_string(), scatter_min as f64),
                ("tiled_min_ns".to_string(), tiled_min as f64),
                ("scalar_min_ns".to_string(), scalar_min[i] as f64),
                ("gather_min_ns".to_string(), gather_min[i] as f64),
                ("byte_min_ns".to_string(), byte_min[i] as f64),
                ("speedup_vs_scalar".to_string(), speedup_vs_scalar),
                ("speedup_vs_dense".to_string(), speedup_vs_dense),
            ],
        });
    }
    Ok(BenchReport {
        bench: "conv".to_string(),
        host: HostInfo::detect(),
        threads: 1,
        cases,
    })
}

/// The model artifact the serving-path benches run: `--model <path>` loads
/// a real deployment image; otherwise an untrained quantized network is
/// written to image bytes and loaded back through the **same**
/// parse-hash-verify pipeline (`sia_serve::load_bytes`) serving uses, so
/// the bench measures the artifact path, not an in-memory shortcut.
fn untrained_image_bytes(args: &Args) -> Result<Vec<u8>, String> {
    use sia_accel::{write_image, SiaConfig};
    use sia_nn::resnet::ResNet;
    use sia_nn::Model;
    use sia_snn::{convert, ConvertOptions};

    let size = args
        .usize_or("size", if args.switch("smoke") { 8 } else { 16 })
        .map_err(err)?;
    let mut model: Box<dyn Model> = Box::new(ResNet::resnet18(4, size, 10, 0xC11));
    model.visit_activations(&mut |a| a.make_quantized(8));
    let net = convert(&model.to_spec(), &ConvertOptions::default());
    Ok(write_image(&net, &SiaConfig::pynq_z2()))
}

fn bench_model(args: &Args, timesteps: usize) -> Result<sia_serve::LoadedModel, String> {
    if let Some(path) = args.options.get("model") {
        if path == "true" {
            return Err("--model needs a model.sia path".to_string());
        }
        return sia_serve::load_file(path, timesteps);
    }
    let bytes = untrained_image_bytes(args)?;
    sia_serve::load_bytes(&bytes, "resnet18-w4-untrained (in-memory)", timesteps)
}

/// End-to-end inference throughput through the [`BatchEvaluator`] on all
/// three engine backends. The model rides the shared deployment-image
/// pipeline ([`bench_model`]): an untrained quantized network by default
/// (execution cost does not depend on trained weights), or `--model
/// <path>` for a real artifact.
fn bench_eval(args: &Args, smoke: bool, threads: usize) -> Result<BenchReport, String> {
    use sia_serve::Backend;
    use sia_snn::{BatchEvaluator, EvalConfig, EvalEncoding, ExitPolicy};

    // The full run uses the deployment timestep budget (T=8) so the
    // `int-exit` speedup is measured against the same fixed-T baseline the
    // accuracy numbers quote; smoke keeps T=2 for CI latency.
    let (images, timesteps, iters, warmup) = if smoke {
        (6usize, 2usize, 3u32, 1u32)
    } else {
        (24, 8, 4, 1)
    };
    let model = bench_model(args, timesteps)?;
    let size = model.network.input.1;
    let data = data_for(size);
    let set = data.test.take(images);
    let evaluator = BatchEvaluator::new(EvalConfig {
        timesteps,
        burn_in: 0,
        threads,
        encoding: EvalEncoding::Dense,
        exit: ExitPolicy::Fixed,
    });
    println!(
        "eval bench: {} (hash {}), {images} images, T={timesteps}, {threads} thread(s){}",
        model.source,
        model.hash_hex(),
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<10} {:>6} {:>14} {:>16} {:>10}",
        "backend", "iters", "min ms/pass", "median ms/pass", "img/s"
    );
    let policy = crate::calibrate::resolve_policy(args)?;
    let mut cases = Vec::new();
    let mut int_fixed_min = 0u64;
    for backend in [Backend::Float, Backend::Int, Backend::Accel] {
        let samples = sample(warmup, iters, || {
            crate::evaluate_backend(&evaluator, backend, &model, timesteps, policy, &set)
                .expect("bench backend evaluates")
        });
        let (min, median, mad) = summarize_ns(&samples);
        if backend == Backend::Int {
            int_fixed_min = min;
        }
        println!(
            "{:<10} {iters:>6} {:>14.2} {:>16.2} {:>10.1}",
            backend.as_str(),
            min as f64 / 1e6,
            median as f64 / 1e6,
            images as f64 / (min.max(1) as f64 / 1e9)
        );
        cases.push(BenchCase {
            name: backend.as_str().to_string(),
            iters: u64::from(iters),
            warmup: u64::from(warmup),
            min_ns: min,
            median_ns: median,
            mad_ns: mad,
            metrics: vec![(
                "images_per_s".to_string(),
                images as f64 / (min.max(1) as f64 / 1e9),
            )],
        });
    }
    // Adaptive early-exit case: the int backend under a logit-margin policy,
    // tracked against the fixed int pass above (`speedup_vs_fixed`). One
    // untimed pass records the executed-timestep statistics.
    let exit = ExitPolicy::Margin {
        threshold: 0.5,
        window: 1,
    };
    let exit_eval = BatchEvaluator::new(EvalConfig {
        timesteps,
        burn_in: 0,
        threads,
        encoding: EvalEncoding::Dense,
        exit,
    });
    let samples = sample(warmup, iters, || {
        crate::evaluate_backend(&exit_eval, Backend::Int, &model, timesteps, policy, &set)
            .expect("bench backend evaluates")
    });
    let (min, median, mad) = summarize_ns(&samples);
    let outcome =
        crate::evaluate_backend(&exit_eval, Backend::Int, &model, timesteps, policy, &set)?;
    println!(
        "{:<10} {iters:>6} {:>14.2} {:>16.2} {:>10.1}  (avg T {:.2}, exit {:.0}%)",
        "int-exit",
        min as f64 / 1e6,
        median as f64 / 1e6,
        images as f64 / (min.max(1) as f64 / 1e9),
        outcome.avg_t(),
        outcome.exit_rate() * 100.0
    );
    cases.push(BenchCase {
        name: "int-exit".to_string(),
        iters: u64::from(iters),
        warmup: u64::from(warmup),
        min_ns: min,
        median_ns: median,
        mad_ns: mad,
        metrics: vec![
            (
                "images_per_s".to_string(),
                images as f64 / (min.max(1) as f64 / 1e9),
            ),
            ("avg_t".to_string(), f64::from(outcome.avg_t())),
            ("exit_rate".to_string(), f64::from(outcome.exit_rate())),
            (
                "speedup_vs_fixed".to_string(),
                int_fixed_min as f64 / min.max(1) as f64,
            ),
        ],
    });
    Ok(BenchReport {
        bench: "eval".to_string(),
        host: HostInfo::detect(),
        threads,
        cases,
    })
}

/// Nearest-rank quantile over a sorted sample vector, in microseconds.
fn quantile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let idx = (((sorted_ns.len() - 1) as f64) * q).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

/// A self-hosted serve-bench instance: server handle, its accept-loop
/// thread, the loaded model, and the base URL clients dial.
type HostedServer = (
    std::sync::Arc<sia_serve::Server>,
    std::thread::JoinHandle<Result<(), String>>,
    std::sync::Arc<sia_serve::LoadedModel>,
    String,
);

/// The `/predict` load generator: sweeps client concurrency against a
/// `sia serve` instance and reports per-request latency quantiles and
/// throughput per level.
///
/// Self-hosts an ephemeral server by default (same artifact pipeline as
/// `bench eval`); `--url host:port` drives an already-running `sia serve`
/// instead (the CI smoke gate's mode), with `--shutdown` POSTing
/// `/shutdown` when done. Before any timing, a determinism gate checks
/// served predictions bit-for-bit against a local single-threaded serving
/// unit on the same model — skipped (with a notice) only when `--url` is
/// given without `--model`, since there is no local artifact to compare.
///
/// In hosted mode with the default fixed-T policy, the whole sweep runs a
/// second time against a server with a margin early-exit policy
/// (`c{n}@margin` cases) so `BENCH_serve.json` records the p50/p95/p99
/// latency deltas early exit buys.
fn bench_serve(args: &Args, smoke: bool, threads: usize) -> Result<BenchReport, String> {
    use sia_serve::{
        images_json, parse_predictions, Backend, Client, LoadedModel, ModelRegistry, ServeConfig,
        Server, ServingUnit,
    };
    use sia_telemetry::json::{self, Json};
    use std::sync::Arc;

    let per_client = args
        .usize_or("requests", if smoke { 6 } else { 32 })
        .map_err(err)?;
    let levels: Vec<usize> = if smoke { vec![1, 2] } else { vec![1, 2, 4, 8] };
    let timesteps = args
        .usize_or("timesteps", if smoke { 2 } else { 4 })
        .map_err(err)?;
    let exit = crate::calibrate::resolve_exit_policy(args)?;
    let kernel_policy = crate::calibrate::resolve_policy(args)?;

    // One measurement pass against a live server at `addr`: /healthz probe,
    // request corpus, bitwise determinism gate (the local reference runs
    // `gate_exit` — it must mirror the server's policy to match bits), and
    // the concurrency sweep. `suffix` tags the case names; `baseline`
    // attaches p50/p95/p99 latency deltas against the same-concurrency
    // fixed-policy case.
    let measure = |addr: &str,
                   local_model: Option<&Arc<LoadedModel>>,
                   gate_exit: sia_snn::ExitPolicy,
                   suffix: &str,
                   baseline: Option<&[BenchCase]>|
     -> Result<Vec<BenchCase>, String> {
        // --- interrogate the server ---
        let mut probe = Client::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
        let (status, body) = probe
            .get("/healthz")
            .map_err(|e| format!("GET /healthz: {e}"))?;
        if status != 200 {
            return Err(format!(
                "/healthz returned {status}: {}",
                String::from_utf8_lossy(&body)
            ));
        }
        let health = std::str::from_utf8(&body)
            .map_err(|e| e.to_string())
            .and_then(|s| json::parse(s).map_err(|e| format!("bad /healthz body: {e}")))?;
        let served_hash = health
            .get("model")
            .and_then(Json::as_str)
            .ok_or("/healthz missing model hash")?
            .to_string();
        let served_backend: Backend = health
            .get("backend")
            .and_then(Json::as_str)
            .ok_or("/healthz missing backend")?
            .parse()?;
        let served_timesteps = health
            .get("timesteps")
            .and_then(Json::as_u64)
            .ok_or("/healthz missing timesteps")? as usize;
        let served_burn_in = health.get("burn_in").and_then(Json::as_u64).unwrap_or(0) as usize;
        let dims = match health.get("input") {
            Some(Json::Arr(v)) if v.len() == 3 => {
                let mut it = v.iter().map(|x| x.as_u64().unwrap_or(0) as usize);
                (
                    it.next().unwrap_or(0),
                    it.next().unwrap_or(0),
                    it.next().unwrap_or(0),
                )
            }
            _ => return Err("/healthz missing input dims".to_string()),
        };
        println!(
            "serve bench: {addr} model {served_hash} backend {served_backend} \
             T={served_timesteps} input {}x{}x{}{}{}",
            dims.0,
            dims.1,
            dims.2,
            if gate_exit.is_adaptive() {
                format!(" early-exit {}", gate_exit.kind())
            } else {
                String::new()
            },
            if smoke { " (smoke)" } else { "" }
        );

        // --- request corpus: real dataset images at the served size ---
        let data = data_for(dims.1);
        let set = data.test.take(if smoke { 4 } else { 16 });
        let images: Vec<sia_tensor::Tensor> =
            (0..set.len()).map(|i| set.get(i).0.clone()).collect();
        let bodies: Arc<Vec<Vec<u8>>> = Arc::new(
            images
                .iter()
                .map(|img| images_json(std::slice::from_ref(img)).into_bytes())
                .collect(),
        );

        // --- determinism gate: served bits == local single-thread bits ---
        let expected = if let Some(model) = local_model {
            if model.hash_hex() != served_hash {
                return Err(format!(
                    "served model {served_hash} is not the local artifact {} — \
                     refusing to compare predictions across different models",
                    model.hash_hex()
                ));
            }
            let gate = ServingUnit::start(
                Arc::clone(model),
                ServeConfig {
                    backend: served_backend,
                    threads: 1,
                    timesteps: served_timesteps,
                    burn_in: served_burn_in,
                    max_batch: images.len().max(1),
                    max_delay_us: 0,
                    queue_capacity: images.len().max(1) * 2,
                    kernel_policy: sia_snn::KernelPolicy::Auto,
                    exit: gate_exit,
                },
            )?;
            let expected = gate
                .predict(images.clone())
                .map_err(|e| format!("local reference predict: {e}"))?;
            gate.shutdown();
            for (i, body) in bodies.iter().enumerate() {
                let (status, resp) = probe
                    .post("/predict", body)
                    .map_err(|e| format!("POST /predict: {e}"))?;
                if status != 200 {
                    return Err(format!(
                        "/predict returned {status}: {}",
                        String::from_utf8_lossy(&resp)
                    ));
                }
                let got = parse_predictions(&resp)?;
                let want = &expected[i];
                let same_bits = got.len() == 1
                    && got[0].class == want.class
                    && got[0].logits.len() == want.logits.len()
                    && got[0]
                        .logits
                        .iter()
                        .zip(&want.logits)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                if !same_bits {
                    return Err(format!(
                        "determinism gate failed: served prediction for image {i} \
                         diverges bitwise from the local single-thread reference"
                    ));
                }
            }
            println!(
                "determinism gate: {} served predictions bit-identical to the \
                 local single-thread reference",
                bodies.len()
            );
            Some(Arc::new(expected))
        } else {
            println!(
                "determinism gate skipped: --url without --model leaves no \
                 local artifact to compare against"
            );
            None
        };

        // --- concurrency sweep ---
        println!(
            "{:<8} {:>9} {:>12} {:>12} {:>12} {:>12} {:>10}",
            "clients", "requests", "min ms", "p50 ms", "p95 ms", "p99 ms", "img/s"
        );
        let mut cases = Vec::new();
        for &concurrency in &levels {
            let t0 = Instant::now();
            let mut handles = Vec::new();
            for worker in 0..concurrency {
                let addr = addr.to_string();
                let bodies = Arc::clone(&bodies);
                let expected = expected.clone();
                handles.push(std::thread::spawn(move || -> Result<Vec<u64>, String> {
                    // concurrency-allow: load-generator client threads
                    let mut client = Client::connect(&addr)
                        .map_err(|e| format!("client {worker}: connecting {addr}: {e}"))?;
                    let mut samples = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let idx = (worker + i) % bodies.len();
                        let t = Instant::now();
                        let (status, resp) = client
                            .post("/predict", &bodies[idx])
                            .map_err(|e| format!("client {worker}: POST /predict: {e}"))?;
                        samples.push(t.elapsed().as_nanos() as u64);
                        if status != 200 {
                            return Err(format!(
                                "client {worker}: /predict returned {status}: {}",
                                String::from_utf8_lossy(&resp)
                            ));
                        }
                        if let Some(expected) = &expected {
                            let got = parse_predictions(&resp)
                                .map_err(|e| format!("client {worker}: {e}"))?;
                            let want = &expected[idx];
                            if got.len() != 1
                                || got[0].class != want.class
                                || got[0].logits.len() != want.logits.len()
                                || got[0]
                                    .logits
                                    .iter()
                                    .zip(&want.logits)
                                    .any(|(a, b)| a.to_bits() != b.to_bits())
                            {
                                return Err(format!(
                                    "client {worker}: served prediction for image {idx} \
                                     diverged under {concurrency} concurrent clients"
                                ));
                            }
                        }
                    }
                    Ok(samples)
                }));
            }
            let mut samples = Vec::new();
            for handle in handles {
                samples.extend(
                    handle
                        .join()
                        .map_err(|_| "load client panicked".to_string())??,
                );
            }
            let wall_s = t0.elapsed().as_secs_f64();
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let (min, median, mad) = summarize_ns(&samples);
            let (p50, p95, p99) = (
                quantile_us(&sorted, 0.50),
                quantile_us(&sorted, 0.95),
                quantile_us(&sorted, 0.99),
            );
            let images_per_s = samples.len() as f64 / wall_s.max(1e-9);
            println!(
                "{concurrency:<8} {:>9} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>10.1}",
                samples.len(),
                min as f64 / 1e6,
                p50 / 1e3,
                p95 / 1e3,
                p99 / 1e3,
                images_per_s
            );
            let mut metrics = vec![
                ("concurrency".to_string(), concurrency as f64),
                ("p50_us".to_string(), p50),
                ("p95_us".to_string(), p95),
                ("p99_us".to_string(), p99),
                ("images_per_s".to_string(), images_per_s),
            ];
            if let Some(baseline) = baseline {
                let fixed_name = format!("c{concurrency}");
                let base_metric = |key: &str| -> Option<f64> {
                    baseline
                        .iter()
                        .find(|c| c.name == fixed_name)?
                        .metrics
                        .iter()
                        .find(|(k, _)| k == key)
                        .map(|&(_, v)| v)
                };
                for (delta_key, key, val) in [
                    ("p50_delta_us", "p50_us", p50),
                    ("p95_delta_us", "p95_us", p95),
                    ("p99_delta_us", "p99_us", p99),
                ] {
                    if let Some(base) = base_metric(key) {
                        metrics.push((delta_key.to_string(), val - base));
                    }
                }
            }
            cases.push(BenchCase {
                name: format!("c{concurrency}{suffix}"),
                iters: samples.len() as u64,
                warmup: 0,
                min_ns: min,
                median_ns: median,
                mad_ns: mad,
                metrics,
            });
        }
        Ok(cases)
    };

    // --- remote mode: one pass against the given server ---
    if let Some(url) = args.options.get("url").cloned() {
        if url == "true" {
            return Err("--url needs a host:port".to_string());
        }
        let local_model = if args.options.contains_key("model") {
            Some(Arc::new(bench_model(args, timesteps)?))
        } else {
            None
        };
        // The gate replays whatever exit flags were passed; they must match
        // the remote server's policy for the bitwise comparison to hold.
        let cases = measure(&url, local_model.as_ref(), exit, "", None)?;
        if args.switch("shutdown") {
            let mut client =
                Client::connect(&url).map_err(|e| format!("connecting {url} for shutdown: {e}"))?;
            client
                .post("/shutdown", b"{}")
                .map_err(|e| format!("POST /shutdown: {e}"))?;
        }
        return Ok(BenchReport {
            bench: "serve".to_string(),
            host: HostInfo::detect(),
            threads,
            cases,
        });
    }

    // --- hosted mode ---
    let backend: Backend = args.str_or("backend", "int").parse()?;
    let burn_in = args.usize_or("burn-in", 0).map_err(err)?;
    let max_batch = args.usize_or("max-batch", 16).map_err(err)?;
    let max_delay_us = args.usize_or("max-delay-us", 500).map_err(err)? as u64;
    let queue_capacity = args.usize_or("queue", 256).map_err(err)?;
    let host_one = |exit: sia_snn::ExitPolicy| -> Result<HostedServer, String> {
        let config = ServeConfig {
            backend,
            threads,
            timesteps,
            burn_in,
            max_batch,
            max_delay_us,
            queue_capacity,
            kernel_policy,
            exit,
        };
        let registry = Arc::new(ModelRegistry::new(timesteps));
        let model = if let Some(path) = args.options.get("model") {
            if path == "true" {
                return Err("--model needs a model.sia path".to_string());
            }
            registry.load(path)?
        } else {
            // self-hosting needs a file the registry can key: write the
            // untrained image to a temp path and load it back
            let tmp =
                std::env::temp_dir().join(format!("sia-bench-serve-{}.sia", std::process::id()));
            let bytes = untrained_image_bytes(args)?;
            std::fs::write(&tmp, &bytes).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
            let loaded = registry.load(tmp.to_str().ok_or("temp path is not UTF-8")?)?;
            let _ = std::fs::remove_file(&tmp);
            loaded
        };
        let server = Server::bind("127.0.0.1", 0, registry, Arc::clone(&model), config)?;
        let addr = format!("127.0.0.1:{}", server.port());
        let thread = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.run()) // concurrency-allow: load-generator host thread
        };
        Ok((server, thread, model, addr))
    };
    let stop = |server: Arc<Server>,
                thread: std::thread::JoinHandle<Result<(), String>>|
     -> Result<(), String> {
        server.request_shutdown();
        thread
            .join()
            .map_err(|_| "server thread panicked".to_string())?
    };

    let (server, thread, model, addr) = host_one(exit)?;
    let fixed_cases = match measure(&addr, Some(&model), exit, "", None) {
        Ok(cases) => {
            stop(server, thread)?;
            cases
        }
        Err(e) => {
            let _ = stop(server, thread);
            return Err(e);
        }
    };
    // Second pass with a margin early-exit policy (only when the primary
    // pass was fixed-T): same model, same corpus, latency deltas recorded
    // against the matching `c{n}` case.
    let adaptive = if exit.is_adaptive() {
        Vec::new()
    } else {
        let margin = sia_snn::ExitPolicy::Margin {
            threshold: 0.5,
            window: 1,
        };
        let (server, thread, model, addr) = host_one(margin)?;
        match measure(&addr, Some(&model), margin, "@margin", Some(&fixed_cases)) {
            Ok(cases) => {
                stop(server, thread)?;
                cases
            }
            Err(e) => {
                let _ = stop(server, thread);
                return Err(e);
            }
        }
    };
    let mut cases = fixed_cases;
    cases.extend(adaptive);
    Ok(BenchReport {
        bench: "serve".to_string(),
        host: HostInfo::detect(),
        threads,
        cases,
    })
}
