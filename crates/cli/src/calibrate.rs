//! `sia calibrate` — measured-per-host kernel auto-tuning, plus the
//! `--kernel-policy` / `--calibration` resolution shared by `eval`,
//! `serve` and `bench`.
//!
//! The measurement itself lives in [`sia_snn::calibrate`]; this module is
//! the CLI veneer: where the file goes, how a policy is picked from flags,
//! and the CI validation mode (`--check`) that keeps the committed smoke
//! calibration loadable.

use crate::args::Args;
use sia_snn::calibrate::default_path;
use sia_snn::{Calibration, KernelPolicy};
use std::path::{Path, PathBuf};

/// Directory the toolchain keeps calibration files in by default.
pub(crate) const CALIBRATION_DIR: &str = "results/calibration";

/// `sia calibrate [--smoke] [--out FILE] [--check FILE]`.
///
/// Without `--check`: runs the kernel micro-benchmark (`--smoke` shrinks
/// it to the CI configuration), fits the cost model and writes the
/// host-keyed calibration file (default
/// `results/calibration/<host_key>.json`, override with `--out`).
///
/// With `--check FILE`: no measurement — loads `FILE`, verifies the
/// format version, and verifies determinism (two loads of the same file
/// prescribe the identical policy). This is the CI gate over the
/// committed smoke calibration.
///
/// # Errors
///
/// Measurement never fails; saving, loading, or a failed `--check` does.
pub(crate) fn cmd_calibrate(args: &Args) -> Result<(), String> {
    if let Some(path) = args.options.get("check") {
        return check_file(Path::new(path));
    }
    let quick = args.switch("smoke");
    let cal = Calibration::measure(quick);
    let out = args
        .options
        .get("out")
        .map_or_else(|| default_path(Path::new(CALIBRATION_DIR)), PathBuf::from);
    cal.save(&out)?;
    let g = bench_geom();
    println!(
        "calibrated {} ({}): scatter {} ps/lane + {} ps/out, dense {} ps/lane",
        cal.host,
        if quick { "smoke" } else { "full" },
        cal.model.scatter_ps_per_lane,
        cal.model.scatter_ps_per_out,
        cal.model.dense_ps_per_lane,
    );
    println!(
        "scatter→dense crossover at {:.1}% density (32ch 16×16 k3); wrote {}",
        cal.model.crossover_density(&g) * 100.0,
        out.display()
    );
    Ok(())
}

/// Validates a calibration file: parse + version gate + deterministic
/// policy (identical decisions from two independent loads).
fn check_file(path: &Path) -> Result<(), String> {
    let a = Calibration::load(path)?;
    let b = Calibration::load(path)?;
    if a.policy() != b.policy() {
        return Err(format!(
            "{}: policy not deterministic across loads",
            path.display()
        ));
    }
    let g = bench_geom();
    let cross = a.model.crossover_density(&g);
    if !(0.0..=1.0).contains(&cross) {
        return Err(format!("{}: degenerate crossover {cross}", path.display()));
    }
    println!(
        "{}: ok (host {}, crossover {:.1}%)",
        path.display(),
        a.host,
        cross * 100.0
    );
    Ok(())
}

/// The geometry crossovers are reported against (the conv bench subject).
fn bench_geom() -> sia_tensor::Conv2dGeom {
    sia_tensor::Conv2dGeom {
        in_channels: 32,
        out_channels: 32,
        in_h: 16,
        in_w: 16,
        kernel: 3,
        stride: 1,
        padding: 1,
    }
}

/// Resolves the psum kernel policy from `--kernel-policy
/// auto|sparse|dense|calibrated` and `--calibration PATH`.
///
/// With no flags, a calibration measured on this host is auto-loaded from
/// `results/calibration/<host_key>.json` when present (falling back to
/// the built-in heuristic); `--kernel-policy auto` skips the auto-load;
/// `calibrated` makes a loadable file mandatory.
///
/// # Errors
///
/// Unknown policy names; `calibrated` without a loadable file; an
/// explicit `--calibration` file that fails to load or was measured on a
/// different host.
pub(crate) fn resolve_policy(args: &Args) -> Result<KernelPolicy, String> {
    let explicit = args.options.get("calibration");
    let load_explicit = |path: &String| -> Result<Calibration, String> {
        let cal = Calibration::load(Path::new(path))?;
        if !cal.matches_host() {
            return Err(format!(
                "{path}: calibrated for host '{}', this host is '{}' (re-run `sia calibrate`)",
                cal.host,
                sia_snn::host_key()
            ));
        }
        Ok(cal)
    };
    match args.options.get("kernel-policy").map(String::as_str) {
        Some("sparse") => Ok(KernelPolicy::ForceSparse),
        Some("dense") => Ok(KernelPolicy::ForceDense),
        Some("auto") => Ok(KernelPolicy::Auto),
        Some("calibrated") => match explicit {
            Some(path) => Ok(load_explicit(path)?.policy()),
            None => {
                let path = default_path(Path::new(CALIBRATION_DIR));
                let cal = Calibration::load(&path).map_err(|e| {
                    format!("--kernel-policy calibrated: {e} (run `sia calibrate` first)")
                })?;
                Ok(cal.policy())
            }
        },
        Some(other) => Err(format!(
            "--kernel-policy '{other}' unknown (auto|sparse|dense|calibrated)"
        )),
        None => {
            if let Some(path) = explicit {
                return Ok(load_explicit(path)?.policy());
            }
            // Opportunistic: use a previously measured calibration for
            // this host when one exists, the heuristic otherwise.
            let path = default_path(Path::new(CALIBRATION_DIR));
            match Calibration::load(&path) {
                Ok(cal) if cal.matches_host() => Ok(cal.policy()),
                _ => Ok(KernelPolicy::Auto),
            }
        }
    }
}
