//! `sia calibrate` — measured-per-host kernel auto-tuning and early-exit
//! threshold fitting, plus the `--kernel-policy` / `--calibration` /
//! `--policy` resolution shared by `eval`, `serve` and `bench`.
//!
//! The measurements live in [`sia_snn::calibrate`] (kernel cost model) and
//! [`sia_snn::exit`] (confidence thresholds); this module is the CLI
//! veneer: where the files go, how policies are picked from flags, and the
//! CI validation modes (`--check`) that keep the committed smoke
//! calibrations loadable.

use crate::args::Args;
use sia_snn::calibrate::default_path;
use sia_snn::{default_exit_path, Calibration, ExitCalibration, ExitPolicy, KernelPolicy};
use std::path::{Path, PathBuf};

/// Directory the toolchain keeps calibration files in by default.
pub(crate) const CALIBRATION_DIR: &str = "results/calibration";

/// `sia calibrate [--smoke] [--out FILE] [--check FILE]`.
///
/// Without `--check`: runs the kernel micro-benchmark (`--smoke` shrinks
/// it to the CI configuration), fits the cost model and writes the
/// host-keyed calibration file (default
/// `results/calibration/<host_key>.json`, override with `--out`).
///
/// With `--check FILE`: no measurement — loads `FILE`, verifies the
/// format version, and verifies determinism (two loads of the same file
/// prescribe the identical policy). This is the CI gate over the
/// committed smoke calibration.
///
/// # Errors
///
/// Measurement never fails; saving, loading, or a failed `--check` does.
pub(crate) fn cmd_calibrate(args: &Args) -> Result<(), String> {
    if args.options.contains_key("exit") {
        return calibrate_exit(args);
    }
    if let Some(path) = args.options.get("check") {
        return check_file(Path::new(path));
    }
    let quick = args.switch("smoke");
    let cal = Calibration::measure(quick);
    let out = args
        .options
        .get("out")
        .map_or_else(|| default_path(Path::new(CALIBRATION_DIR)), PathBuf::from);
    cal.save(&out)?;
    let g = bench_geom();
    println!(
        "calibrated {} ({}): scatter {} ps/lane + {} ps/out, dense {} ps/lane",
        cal.host,
        if quick { "smoke" } else { "full" },
        cal.model.scatter_ps_per_lane,
        cal.model.scatter_ps_per_out,
        cal.model.dense_ps_per_lane,
    );
    println!(
        "scatter→dense crossover at {:.1}% density (32ch 16×16 k3); wrote {}",
        cal.model.crossover_density(&g) * 100.0,
        out.display()
    );
    Ok(())
}

/// Validates a calibration file: parse + version gate + deterministic
/// policy (identical decisions from two independent loads).
fn check_file(path: &Path) -> Result<(), String> {
    let a = Calibration::load(path)?;
    let b = Calibration::load(path)?;
    if a.policy() != b.policy() {
        return Err(format!(
            "{}: policy not deterministic across loads",
            path.display()
        ));
    }
    let g = bench_geom();
    let cross = a.model.crossover_density(&g);
    if !(0.0..=1.0).contains(&cross) {
        return Err(format!("{}: degenerate crossover {cross}", path.display()));
    }
    println!(
        "{}: ok (host {}, crossover {:.1}%)",
        path.display(),
        a.host,
        cross * 100.0
    );
    Ok(())
}

/// The geometry crossovers are reported against (the conv bench subject).
fn bench_geom() -> sia_tensor::Conv2dGeom {
    sia_tensor::Conv2dGeom {
        in_channels: 32,
        out_channels: 32,
        in_h: 16,
        in_w: 16,
        kernel: 3,
        stride: 1,
        padding: 1,
    }
}

/// `sia calibrate --exit <model.sia>`: fits early-exit confidence
/// thresholds on held-out data and writes
/// `results/calibration/exit.json` (override with `--out`).
///
/// The calibration set is the *training* split of the synthetic dataset —
/// disjoint from the test split `sia eval` scores — replayed at fixed T on
/// the integer backend. Because the chunked driver is bit-exact, replaying
/// the fixed-T logit trajectories under candidate thresholds reproduces
/// exactly what an adaptive run would have computed, so the whole
/// threshold grid costs one fixed-T pass.
fn calibrate_exit(args: &Args) -> Result<(), String> {
    let exit_value = args.str_or("exit", "true");
    let path = if exit_value == "true" {
        args.positional
            .first()
            .cloned()
            .ok_or("usage: sia calibrate --exit <model.sia>")?
    } else {
        exit_value
    };
    let timesteps = args.usize_or("timesteps", 8).map_err(crate::err)?;
    let burn_in = args.usize_or("burn-in", 0).map_err(crate::err)?;
    let window = args.usize_or("exit-window", 1).map_err(crate::err)?;
    let max_acc_drop = args.f64_or("max-acc-drop", 0.01).map_err(crate::err)?;
    let n_images = args
        .usize_or("images", if args.switch("smoke") { 40 } else { 200 })
        .map_err(crate::err)?;
    let model = sia_serve::load_for_run(&path, false, timesteps)?;
    let data = crate::data_for(model.network.input.1);
    let set = data.train.take(n_images);
    let mut runner = sia_snn::IntRunner::new(&model.network);
    let mut runs = Vec::with_capacity(set.len());
    let mut labels = Vec::with_capacity(set.len());
    for i in 0..set.len() {
        let (img, label) = set.get(i);
        runs.push(runner.run_with(img, timesteps, burn_in).logits_per_t);
        labels.push(label);
    }
    let name = Path::new(&path)
        .file_stem()
        .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned());
    let cal = ExitCalibration::fit(&runs, &labels, burn_in, window, max_acc_drop, &name);
    let out = args.options.get("out").map_or_else(
        || default_exit_path(Path::new(CALIBRATION_DIR)),
        PathBuf::from,
    );
    cal.save(&out)?;
    println!(
        "exit calibration for {name} on {} images at T={timesteps} (window {window}, \
         accuracy floor {:.1}% − {:.1}pp):",
        set.len(),
        cal.fixed_accuracy * 100.0,
        max_acc_drop * 100.0
    );
    println!(
        "  margin  ≥ {:.3}: accuracy {:.1}%, avg T {:.2}",
        cal.margin_threshold,
        cal.margin_accuracy * 100.0,
        cal.margin_avg_t
    );
    println!(
        "  entropy ≤ {:.3}: accuracy {:.1}%, avg T {:.2}",
        cal.entropy_threshold,
        cal.entropy_accuracy * 100.0,
        cal.entropy_avg_t
    );
    println!("wrote {}", out.display());
    Ok(())
}

/// Resolves the early-exit policy from `--policy
/// fixed|margin|entropy|calibrated`, `--exit-margin T`, `--exit-entropy T`,
/// `--exit-window W` and `--exit-calibration PATH`.
///
/// A bare `--exit-margin`/`--exit-entropy` threshold implies its family;
/// `calibrated` loads the fitted margin threshold from the exit
/// calibration file (default `results/calibration/exit.json`).
///
/// # Errors
///
/// Unknown policy names, unparsable thresholds, or `calibrated` without a
/// loadable exit-calibration file.
pub(crate) fn resolve_exit_policy(args: &Args) -> Result<ExitPolicy, String> {
    let threshold = |key: &str, default: f32| -> Result<f32, String> {
        Ok(args.f64_or(key, f64::from(default)).map_err(crate::err)? as f32)
    };
    let window = args.usize_or("exit-window", 1).map_err(crate::err)?.max(1);
    let margin = || -> Result<ExitPolicy, String> {
        Ok(ExitPolicy::Margin {
            threshold: threshold("exit-margin", 0.5)?,
            window,
        })
    };
    let entropy = || -> Result<ExitPolicy, String> {
        Ok(ExitPolicy::Entropy {
            threshold: threshold("exit-entropy", 0.2)?,
            window,
        })
    };
    match args.options.get("policy").map(String::as_str) {
        None => {
            // a bare threshold flag implies its policy family
            if args.options.contains_key("exit-margin") {
                margin()
            } else if args.options.contains_key("exit-entropy") {
                entropy()
            } else {
                Ok(ExitPolicy::Fixed)
            }
        }
        Some("fixed") => Ok(ExitPolicy::Fixed),
        Some("margin") => margin(),
        Some("entropy") => entropy(),
        Some("calibrated") => {
            let path = args.options.get("exit-calibration").map_or_else(
                || default_exit_path(Path::new(CALIBRATION_DIR)),
                PathBuf::from,
            );
            let cal = ExitCalibration::load(&path).map_err(|e| {
                format!("--policy calibrated: {e} (run `sia calibrate --exit` first)")
            })?;
            Ok(cal.margin_policy())
        }
        Some(other) => Err(format!(
            "--policy '{other}' unknown (fixed|margin|entropy|calibrated)"
        )),
    }
}

/// Resolves the psum kernel policy from `--kernel-policy
/// auto|sparse|dense|calibrated` and `--calibration PATH`.
///
/// With no flags, a calibration measured on this host is auto-loaded from
/// `results/calibration/<host_key>.json` when present (falling back to
/// the built-in heuristic); `--kernel-policy auto` skips the auto-load;
/// `calibrated` makes a loadable file mandatory.
///
/// # Errors
///
/// Unknown policy names; `calibrated` without a loadable file; an
/// explicit `--calibration` file that fails to load or was measured on a
/// different host.
pub(crate) fn resolve_policy(args: &Args) -> Result<KernelPolicy, String> {
    let explicit = args.options.get("calibration");
    let load_explicit = |path: &String| -> Result<Calibration, String> {
        let cal = Calibration::load(Path::new(path))?;
        if !cal.matches_host() {
            return Err(format!(
                "{path}: calibrated for host '{}', this host is '{}' (re-run `sia calibrate`)",
                cal.host,
                sia_snn::host_key()
            ));
        }
        Ok(cal)
    };
    match args.options.get("kernel-policy").map(String::as_str) {
        Some("sparse") => Ok(KernelPolicy::ForceSparse),
        Some("dense") => Ok(KernelPolicy::ForceDense),
        Some("auto") => Ok(KernelPolicy::Auto),
        Some("calibrated") => match explicit {
            Some(path) => Ok(load_explicit(path)?.policy()),
            None => {
                let path = default_path(Path::new(CALIBRATION_DIR));
                let cal = Calibration::load(&path).map_err(|e| {
                    format!("--kernel-policy calibrated: {e} (run `sia calibrate` first)")
                })?;
                Ok(cal.policy())
            }
        },
        Some(other) => Err(format!(
            "--kernel-policy '{other}' unknown (auto|sparse|dense|calibrated)"
        )),
        None => {
            if let Some(path) = explicit {
                return Ok(load_explicit(path)?.policy());
            }
            // Opportunistic: use a previously measured calibration for
            // this host when one exists, the heuristic otherwise.
            let path = default_path(Path::new(CALIBRATION_DIR));
            match Calibration::load(&path) {
                Ok(cal) if cal.matches_host() => Ok(cal.policy()),
                _ => Ok(KernelPolicy::Auto),
            }
        }
    }
}
