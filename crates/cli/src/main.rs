//! `sia` — the command-line face of the reproduction.
//!
//! ```text
//! sia train   --model resnet18 --width 4 --size 16 --epochs 8 --out model.sia
//! sia info    model.sia
//! sia check   model.sia [--timesteps 16] [--format text|json] [--deny <rules>]
//! sia run     model.sia [--timesteps 16] [--burn-in 4] [--images 20] [--events]
//! sia eval    model.sia [--backend float|int|accel] [--threads 4] [--timesteps 8]
//! sia serve   model.sia [--port 8080] [--backend float|int|accel] [--threads 0]
//!             [--max-batch 16] [--max-delay-us 2000] [--queue 256]
//! sia explore [--clock-mhz 100]
//! sia calibrate [--smoke] [--out cal.json] [--check cal.json]
//! sia bench   [conv|gemm|eval|serve] [--out BENCH_conv.json] [--smoke] [--threads 4]
//!             [--check-baseline] [--update-baseline] [--baseline-dir DIR]
//! sia trace   metrics.jsonl
//! sia report  metrics.jsonl [--html report.html] [--trace spans.json]
//! sia help
//! ```
//!
//! `train` runs the full Fig.-1 pipeline (FP32 training → L=8 quantized
//! ReLU + INT8 weights → IF conversion) on the synthetic dataset and writes
//! a deployment image; `run` loads one, compiles it for the PYNQ-Z2
//! configuration and classifies held-out images on the cycle-level SIA.
//! `eval` classifies a whole held-out split through the [`BatchEvaluator`]
//! on any of the three engine backends, with `--threads N` worker threads
//! (results are bit-identical for every thread count).
//!
//! `serve` keeps the same engines resident behind an HTTP front end
//! (`/predict`, `/healthz`, `/metrics`, `/models`; see [`sia_serve`]) with
//! dynamic request batching and bounded-queue backpressure; served
//! predictions are bit-identical to `sia eval` on the same model, backend
//! and timesteps. `bench serve` is its load generator.
//!
//! `check` statically verifies a model against the SIA — the
//! interval-analysis overflow pass plus the hardware-budget lints from
//! [`sia_check`] — and exits 0 (pass), 1 (errors, including `--deny`-promoted
//! warnings) or 2 (usage). `run` and `eval` run the same verification and
//! refuse models with error-severity findings.
//!
//! `bench` runs one family from the unified registry (see [`bench`]):
//! `conv` and `gemm` are the kernel micro-benchmarks (bit-exactness
//! asserted before any timing), `eval` is end-to-end inference throughput
//! through the [`BatchEvaluator`]. All three share the `sia_perf` JSON
//! schema and the `--check-baseline`/`--update-baseline` regression gate.
//! `--smoke` shrinks any of them to a CI-friendly pass.
//!
//! `train` takes `--threads N` (shared pool workers for GEMM/conv and
//! trainer shards) and `--micro-batch M` (data-parallel gradient shard
//! size); trained weights are bit-identical for every thread count.
//!
//! `train` and `run` take `--metrics <out.jsonl>` to stream structured
//! telemetry events (or bare `--metrics` to print the counter/gauge table
//! on exit) and `--trace <out.json>` to export a Chrome `trace_event`
//! flamegraph; `trace` summarises a previously written JSONL file and
//! `report` (see [`report`]) turns one into per-layer attribution with a
//! roofline classification, reconciled exactly against the run's counters.

#![forbid(unsafe_code)]

mod args;
mod bench;
mod calibrate;
mod report;

use args::{ArgError, Args};
use sia_accel::{compile_for, write_image, SiaConfig, SiaEngineFactory, SiaMachine};
use sia_dataset::{SynthConfig, SynthDataset};
use sia_hwmodel::energy_report;
use sia_nn::resnet::ResNet;
use sia_nn::trainer::TrainConfig;
use sia_nn::vgg::Vgg;
use sia_nn::Model;
use sia_quant::{quantize_pipeline, QatConfig};
use sia_serve::{Backend, LoadedModel, ModelRegistry, ServeConfig, Server};
use sia_snn::encode::rate_encode;
use sia_snn::{
    convert, BatchEvaluator, ConvertOptions, EvalConfig, EvalEncoding, FloatEngineFactory,
    InputEncoding, IntEngineFactory, SnnItem,
};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match args.command.as_str() {
        "train" => with_metrics(&args, cmd_train).map(|()| ExitCode::SUCCESS),
        "info" => cmd_info(&args).map(|()| ExitCode::SUCCESS),
        "check" => cmd_check(&args),
        "run" => with_metrics(&args, cmd_run).map(|()| ExitCode::SUCCESS),
        "eval" => with_metrics(&args, cmd_eval).map(|()| ExitCode::SUCCESS),
        "serve" => with_metrics(&args, cmd_serve).map(|()| ExitCode::SUCCESS),
        "explore" => cmd_explore(&args).map(|()| ExitCode::SUCCESS),
        "calibrate" => calibrate::cmd_calibrate(&args).map(|()| ExitCode::SUCCESS),
        "bench" => bench::cmd_bench(&args).map(|()| ExitCode::SUCCESS),
        "trace" => report::cmd_trace(&args).map(|()| ExitCode::SUCCESS),
        "report" => report::cmd_report(&args).map(|()| ExitCode::SUCCESS),
        "help" | "--help" => {
            print!("{HELP}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand '{other}' (try `sia help`)")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const HELP: &str = "\
sia — spiking inference accelerator toolchain (paper reproduction)

USAGE:
  sia train   --out model.sia [--model resnet18|vgg11] [--width N]
              [--size N] [--epochs N] [--levels L] [--events]
              [--threads N] [--micro-batch N]
              [--metrics [out.jsonl]] [--trace out.json]
  sia info    <model.sia>
  sia check   <model.sia> [--timesteps N] [--format text|json] [--deny <rules>]
  sia check   --model resnet18|vgg11 [--width N] [--size N] [--events] [...]
  sia check   --list-rules
  sia run     <model.sia> [--timesteps N] [--burn-in N] [--images N] [--events]
              [--metrics [out.jsonl]] [--trace out.json]
  sia eval    <model.sia> [--backend float|int|accel] [--threads N]
              [--timesteps N] [--burn-in N] [--images N] [--events] [--smoke]
              [--kernel-policy auto|sparse|dense|calibrated]
              [--policy fixed|margin|entropy|calibrated] [--exit-margin X]
              [--exit-entropy X] [--exit-window N] [--exit-calibration FILE]
              [--policy-sweep] [--min-accuracy X] [--max-acc-drop X]
              [--calibration FILE] [--metrics [out.jsonl]] [--trace out.json]
  sia serve   <model.sia> [--host H] [--port N] [--backend float|int|accel]
              [--threads N] [--timesteps N] [--burn-in N] [--max-batch N]
              [--max-delay-us N] [--queue N] [--port-file FILE]
              [--kernel-policy auto|sparse|dense|calibrated] [--calibration FILE]
              [--policy fixed|margin|entropy|calibrated] [--exit-margin X]
              [--exit-entropy X] [--exit-window N] [--exit-calibration FILE]
  sia calibrate [--smoke] [--out FILE] | sia calibrate --check FILE
  sia calibrate --exit <model.sia> [--timesteps N] [--exit-window N]
              [--max-acc-drop X] [--images N] [--smoke] [--out FILE]
  sia explore [--clock-mhz N]
  sia bench   [conv|gemm|eval|serve] [--out FILE.json] [--smoke] [--threads N]
              [--check-baseline] [--update-baseline] [--baseline-dir DIR]
              [--rel-slack PCT] [--mad-k K] [--allow-missing]
  sia bench   serve [--url HOST:PORT | --model model.sia] [--backend B]
              [--images N] [--shutdown] [...]
  sia trace   <metrics.jsonl>
  sia report  <metrics.jsonl> [--html report.html] [--trace spans.json]
  sia help

  --metrics out.jsonl  stream telemetry events to a JSON-lines file
  --metrics            print the counter/gauge/histogram table on exit
  --trace out.json     export spans as Chrome trace_event JSON
                       (open in chrome://tracing or ui.perfetto.dev)

  `serve` answers POST /predict with predictions bit-identical to
  `sia eval` on the same model/backend/timesteps; batching coalesces
  requests for up to --max-delay-us or --max-batch items, and a full
  --queue rejects with HTTP 503 instead of growing without bound.
  GET /metrics exposes the telemetry snapshot (p50/p95/p99 of
  snn.eval.image_us included); POST /models with a path field hot-swaps
  after static verification passes; POST /shutdown drains and exits.
  --port 0 picks an ephemeral port (write it with --port-file).

  `bench` runs one family from the unified registry — `conv` (event-driven
  scatter kernel vs dense, bit-exactness asserted at every density),
  `gemm` (blocked register-tiled GEMM vs naive across ResNet-18/VGG-11
  shapes), `eval` (end-to-end img/s through the BatchEvaluator on all
  three backends) or `serve` (HTTP load generator: latency quantiles and
  images/sec vs client concurrency against a self-hosted server, or
  --url for a running one; with a model available it first asserts served
  predictions match the local engine bit-for-bit; --shutdown stops the
  target afterwards). Every family writes one JSON schema (warmup
  discard, min-of-iters, median + MAD; default BENCH_<name>.json).
  --update-baseline records the run under --baseline-dir (default
  results/baselines/); --check-baseline exits 1 when any case exceeds its
  noise-aware threshold: min > baseline × (1 + rel-slack% + mad-k × MAD/median).
  --allow-missing downgrades baseline cases this mode cannot produce
  (e.g. serve --url cannot host the early-exit comparison server) from a
  failure to a notice.

  `report` joins a metrics file's accel.layer events into a per-layer
  table — wall-time, cycles, effective vs nominal ops, GOPS, spike
  density, AXI stalls, compute/memory/driver-bound classification against
  the Fig. 5 roofline — and reconciles every sum against the run's own
  counters (exit 1 on any mismatch). --html writes a self-contained
  dashboard; add --trace spans.json for an inline flamegraph.

  `train --threads N` runs GEMM/conv and trainer shards on N pool workers
  (0 = one per core); `--micro-batch M` shards each batch for data-parallel
  gradient accumulation. Weights are bit-identical for every N.

  `check` statically verifies a model against the SIA (fixed-point interval
  analysis + hardware budget lints). --deny takes a comma-separated list of
  rule ids or prefixes (e.g. `--deny sat,budget.weight-sram`) promoted to
  errors. Exit codes: 0 pass, 1 errors, 2 usage. `run` and `eval` refuse
  models whose check reports errors.

  `calibrate` micro-benchmarks the sparse (event-driven scatter) and dense
  (register-tiled) conv kernels on this host, fits an integer cost model
  and writes results/calibration/<host_key>.json. `eval`/`serve`/`bench`
  auto-load a matching calibration; --kernel-policy picks a kernel
  explicitly (sparse|dense), `auto` reverts to the built-in heuristic and
  `calibrated` makes the file mandatory (--calibration overrides the
  path). --check validates a file without measuring (the CI gate).

  Adaptive early exit: --policy margin|entropy stops integrating timesteps
  once the head's logits clear a confidence threshold (--exit-margin /
  --exit-entropy, checked every --exit-window timesteps after --burn-in).
  `calibrate --exit` fits thresholds on held-out training data (accuracy
  floor --max-acc-drop below fixed-T) and writes
  results/calibration/exit.json; --policy calibrated loads it. `eval`
  prints avg executed T and exit rate; --policy-sweep prints the
  accuracy / avg-T / img/s Pareto table over a threshold grid;
  --min-accuracy and --max-acc-drop turn the run into a CI gate (exit 1
  below the floor). Unsound thresholds (provably unreachable or trivially
  satisfied) are flagged by the `exit.*` static lints before the run.
";

/// Runs `cmd` with the `--metrics`/`--trace` sinks installed around it.
fn with_metrics(args: &Args, cmd: fn(&Args) -> Result<(), String>) -> Result<(), String> {
    let metrics = args.options.get("metrics").cloned();
    if let Some(v) = &metrics {
        let path = if v == "true" { None } else { Some(v.as_str()) };
        sia_telemetry::install_jsonl(path).map_err(|e| format!("opening metrics sink: {e}"))?;
    }
    let result = cmd(args);
    if let Some(v) = &metrics {
        // Close the file with the run's final counter values: `sia report`
        // reconciles the per-layer event sums against exactly this event.
        sia_telemetry::emit_counters(&sia_telemetry::global_snapshot());
        let _ = sia_telemetry::uninstall_jsonl();
        if v == "true" {
            print!(
                "{}",
                sia_telemetry::render_table(&sia_telemetry::global_snapshot())
            );
        } else if result.is_ok() {
            println!("metrics written to {v}");
        }
    }
    if let Some(out) = args.options.get("trace") {
        let doc = sia_telemetry::chrome_trace_json(&sia_telemetry::take_trace_events());
        std::fs::write(out, doc).map_err(|e| format!("writing {out}: {e}"))?;
        if result.is_ok() {
            println!("chrome trace written to {out} (open in chrome://tracing)");
        }
    }
    result
}

/// Prints a usage error and yields the usage exit code (2).
fn usage(msg: impl std::fmt::Display) -> Result<ExitCode, String> {
    eprintln!("error: {msg}");
    Ok(ExitCode::from(2))
}

/// Loads the model to check: either a deployment image (positional path,
/// carrying its own target config, via the shared [`sia_serve::parse_file`]
/// loader — unverified, since `check` is the verifier) or a freshly
/// converted untrained `--model resnet18|vgg11` (static legality does not
/// depend on training).
fn check_subject(
    args: &Args,
) -> Result<Result<(sia_snn::SnnNetwork, SiaConfig), String>, ArgError> {
    if let Some(path) = args.positional.first() {
        return Ok(sia_serve::parse_file(path));
    }
    let model_kind = args.str_required("model")?;
    let width = args.usize_or("width", 4)?;
    let size = args.usize_or("size", 16)?;
    let mut model: Box<dyn Model> = match model_kind.as_str() {
        "resnet18" => Box::new(ResNet::resnet18(width, size, 10, 0xC11)),
        "vgg11" => Box::new(Vgg::vgg11(width, size, 10, 0xC11)),
        other => return Ok(Err(format!("unknown model '{other}' (resnet18|vgg11)"))),
    };
    // Static legality only needs the architecture and the quantized
    // activation grid, not trained weights.
    model.visit_activations(&mut |a| a.make_quantized(8));
    let snn = convert(
        &model.to_spec(),
        &ConvertOptions {
            encoding: if args.switch("events") {
                InputEncoding::EventDriven
            } else {
                InputEncoding::DirectCurrent
            },
            ..ConvertOptions::default()
        },
    );
    Ok(Ok((snn, SiaConfig::pynq_z2())))
}

fn cmd_check(args: &Args) -> Result<ExitCode, String> {
    if args.switch("list-rules") {
        println!("{:<22} {:<8} rule", "id", "default");
        for r in sia_check::rules() {
            println!("{:<22} {:<8} {}", r.id, r.severity.to_string(), r.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }
    let format = args.str_or("format", "text");
    if format != "text" && format != "json" {
        return usage(format!("--format: expected text|json, got '{format}'"));
    }
    let timesteps = match args.usize_or("timesteps", 16) {
        Ok(t) => t,
        Err(e) => return usage(e),
    };
    let denied: Vec<String> = match args.options.get("deny") {
        None => Vec::new(),
        Some(v) if v == "true" => return usage("--deny needs a rule id or prefix"),
        Some(v) => v.split(',').map(|s| s.trim().to_string()).collect(),
    };
    for pat in &denied {
        if !sia_check::rules()
            .iter()
            .any(|r| r.id == pat || (r.id.starts_with(pat.as_str()) && pat.len() < r.id.len()))
        {
            return usage(format!(
                "--deny: '{pat}' matches no rule (see `sia check --list-rules`)"
            ));
        }
    }
    let (net, cfg) = match check_subject(args) {
        Ok(Ok(subject)) => subject,
        Ok(Err(e)) => return Err(e),
        Err(ArgError::Missing { .. }) => {
            return usage("usage: sia check <model.sia> | sia check --model resnet18|vgg11");
        }
        Err(e) => return usage(e),
    };
    let mut report = sia_check::check_network(&net, &cfg, timesteps);
    report.deny(&denied);
    if format == "json" {
        println!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

// `run`/`eval`/`serve` all load through `sia_serve::load_for_run` /
// `ModelRegistry`, which enforce the shared encoding guard and the
// static-verification gate (`sia_serve::enforce_static_checks`) with the
// canonical messages — the three near-duplicate load paths this binary
// used to carry live there now.

/// The synthetic dataset every subcommand (and the eval bench) shares.
pub(crate) fn data_for(size: usize) -> SynthDataset {
    SynthDataset::generate(
        &SynthConfig {
            image_size: size,
            noise_std: 0.08,
            seed: 0x51A,
        },
        600,
        100,
    )
}

/// Evaluates a loaded model on one backend through the engine-pool path —
/// the exact pipeline `sia serve` answers `/predict` with, shared by
/// `sia eval` and `sia bench eval`.
pub(crate) fn evaluate_backend(
    evaluator: &BatchEvaluator,
    backend: Backend,
    model: &LoadedModel,
    timesteps: usize,
    policy: sia_snn::KernelPolicy,
    set: &sia_dataset::LabelledSet,
) -> Result<sia_snn::EvalOutcome, String> {
    Ok(match backend {
        Backend::Float => evaluator.evaluate(
            FloatEngineFactory::new(Arc::clone(&model.network)).with_kernel_policy(policy),
            set,
        ),
        Backend::Int => evaluator.evaluate(
            IntEngineFactory::new(Arc::clone(&model.network)).with_kernel_policy(policy),
            set,
        ),
        Backend::Accel => {
            let program =
                compile_for(&model.network, &model.config, timesteps).map_err(|e| e.to_string())?;
            evaluator.evaluate(
                SiaEngineFactory::new(program, model.config.clone()).with_kernel_policy(policy),
                set,
            )
        }
    })
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: sia serve <model.sia>")?;
    let host = args.str_or("host", "127.0.0.1");
    let port = args.usize_or("port", 8080).map_err(err)?;
    let port = u16::try_from(port).map_err(|_| format!("--port {port} out of range"))?;
    let backend: Backend = args.str_or("backend", "int").parse()?;
    let config = ServeConfig {
        backend,
        threads: args.usize_or("threads", 0).map_err(err)?,
        timesteps: args.usize_or("timesteps", 8).map_err(err)?,
        burn_in: args.usize_or("burn-in", 0).map_err(err)?,
        max_batch: args.usize_or("max-batch", 16).map_err(err)?,
        max_delay_us: args.usize_or("max-delay-us", 2000).map_err(err)? as u64,
        queue_capacity: args.usize_or("queue", 256).map_err(err)?,
        kernel_policy: calibrate::resolve_policy(args)?,
        exit: calibrate::resolve_exit_policy(args)?,
    };
    let registry = Arc::new(ModelRegistry::new(config.timesteps));
    let model = registry.load(path)?;
    warn_exit_policy(&model.network, config.exit, config.timesteps);
    let server = Server::bind(&host, port, registry, model, config)?;
    if let Some(port_file) = args.options.get("port-file") {
        std::fs::write(port_file, server.port().to_string())
            .map_err(|e| format!("writing {port_file}: {e}"))?;
    }
    let unit = server.serving();
    let exit_label = if config.exit.is_adaptive() {
        format!(" (early exit: {} policy)", config.exit.kind())
    } else {
        String::new()
    };
    println!(
        "serving {path} on http://{host}:{} — {} backend, {} worker(s), T={}{exit_label}, \
         batch ≤{} / ≤{}µs, queue {} (POST /shutdown to stop)",
        server.port(),
        config.backend,
        unit.workers(),
        config.timesteps,
        config.max_batch,
        config.max_delay_us,
        config.queue_capacity
    );
    server.run()
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let out = args.str_required("out").map_err(err)?;
    let model_kind = args.str_or("model", "resnet18");
    let width = args.usize_or("width", 4).map_err(err)?;
    let size = args.usize_or("size", 16).map_err(err)?;
    let epochs = args.usize_or("epochs", 8).map_err(err)?;
    let threads = args.usize_or("threads", 1).map_err(err)?;
    let micro_batch = args.usize_or("micro-batch", 0).map_err(err)?;
    let levels = args.usize_or("levels", 8).map_err(err)?;
    if levels < 2 {
        return Err("--levels must be at least 2".into());
    }
    let events = args.switch("events");
    let data = data_for(size);
    let mut model: Box<dyn Model> = match model_kind.as_str() {
        "resnet18" => Box::new(ResNet::resnet18(width, size, 10, 0xC11)),
        "vgg11" => Box::new(Vgg::vgg11(width, size, 10, 0xC11)),
        other => return Err(format!("unknown model '{other}' (resnet18|vgg11)")),
    };
    println!("training {} on the synthetic dataset…", model.name());
    let report = sia_nn::trainer::train(
        model.as_mut(),
        &data,
        &TrainConfig {
            epochs,
            lr_decay_epochs: vec![epochs.saturating_sub(2).max(1)],
            threads,
            micro_batch,
            ..TrainConfig::default()
        },
    );
    println!("FP32 test accuracy {:.3}", report.final_test_acc());
    // The QAT fine-tune epochs inherit the same pool/sharding settings.
    // `--levels L` sets the QCFS quantization depth: accuracy saturates
    // near T ≈ L timesteps, so a low-T or early-exit deployment wants a
    // matching (smaller) L rather than the paper's default 8.
    let mut qat = QatConfig {
        levels,
        ..QatConfig::default()
    };
    qat.finetune.threads = threads;
    qat.finetune.micro_batch = micro_batch;
    let outcome = quantize_pipeline(model.as_mut(), &data, &qat);
    println!("quantized accuracy {:.3}", outcome.quantized_accuracy);
    let spec = model.to_spec();
    println!("plan: {}", spec.summary());
    let snn = convert(
        &spec,
        &ConvertOptions {
            encoding: if events {
                InputEncoding::EventDriven
            } else {
                InputEncoding::DirectCurrent
            },
            ..ConvertOptions::default()
        },
    );
    let report = sia_check::check_network(&snn, &SiaConfig::pynq_z2(), 16);
    if report.passed() {
        println!("static check: pass ({} warning(s))", report.warning_count());
    } else {
        println!(
            "static check: FAIL — {} error(s); `sia run` will refuse this model \
             (see `sia check {out}`)",
            report.error_count()
        );
    }
    let image = write_image(&snn, &SiaConfig::pynq_z2());
    std::fs::write(&out, &image).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} ({} bytes)", out, image.len());
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: sia info <model.sia>")?;
    let (net, cfg) = sia_serve::parse_file(path)?;
    println!("{net}");
    println!(
        "input {}x{}x{}, target: {}x{} PE array @ {} MHz",
        net.input.0,
        net.input.1,
        net.input.2,
        cfg.pe_rows,
        cfg.pe_cols,
        cfg.clock_hz / 1_000_000
    );
    for (i, item) in net.items.iter().enumerate() {
        match item {
            SnnItem::InputConv(c) => println!("  [{i}] input-conv {} (θ={})", c.geom, c.theta),
            SnnItem::Conv(c) => println!("  [{i}] conv {} (θ={})", c.geom, c.theta),
            SnnItem::ConvPsum(c) => println!("  [{i}] conv-psum {}", c.geom),
            SnnItem::BlockStart => println!("  [{i}] block-start"),
            SnnItem::BlockAdd(a) => println!(
                "  [{i}] block-add {}ch@{}x{} (down={}, θ={})",
                a.channels,
                a.h,
                a.w,
                a.down.is_some(),
                a.theta
            ),
            SnnItem::MaxPoolOr { channels, h, w } => {
                println!("  [{i}] or-pool {channels}ch@{h}x{w}");
            }
            SnnItem::Head(l) => println!("  [{i}] head {}→{}", l.channels, l.out),
        }
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: sia run <model.sia>")?;
    let timesteps = args.usize_or("timesteps", 16).map_err(err)?;
    let burn_in = args.usize_or("burn-in", 4).map_err(err)?;
    let n_images = args.usize_or("images", 20).map_err(err)?;
    let use_events = args.switch("events");
    let model = sia_serve::load_for_run(path, use_events, timesteps)?;
    let (net, cfg) = (&*model.network, &model.config);
    let data = data_for(net.input.1);
    let program = compile_for(net, cfg, timesteps).map_err(|e| e.to_string())?;
    let mut machine = SiaMachine::new(program, cfg.clone());
    let n = n_images.min(data.test.len());
    let mut correct = 0usize;
    let mut last_run = None;
    for i in 0..n {
        let (img, label) = data.test.get(i);
        let run = if use_events {
            machine.run_events(&rate_encode(img, timesteps, 1.0), timesteps, burn_in)
        } else {
            machine.run_with(img, timesteps, burn_in)
        };
        if run.predicted() == label {
            correct += 1;
        }
        last_run = Some(run);
    }
    println!("{correct}/{n} correct at T={timesteps} (burn-in {burn_in}) on the cycle-level SIA");
    if let Some(run) = last_run {
        println!(
            "per-inference: {:.3} ms, overall spike rate {:.3}",
            run.report.total_ms(),
            run.stats.overall_rate()
        );
        println!("energy: {}", energy_report(cfg, &run.report));
    }
    Ok(())
}

/// Prints early-exit soundness warnings (`exit.*` lints) for a policy the
/// user is about to run with.
fn warn_exit_policy(net: &sia_snn::SnnNetwork, exit: sia_snn::ExitPolicy, timesteps: usize) {
    for d in sia_check::lint_exit(net, exit, timesteps) {
        eprintln!("{d}");
    }
}

/// One measured point on the accuracy-vs-timesteps Pareto front.
struct SweepPoint {
    label: String,
    accuracy: f32,
    avg_t: f32,
    exit_rate: f32,
    img_s: f64,
}

/// `sia eval --policy-sweep`: evaluates the fixed baseline plus a grid of
/// margin and entropy thresholds and prints the Pareto table (accuracy,
/// average executed T, exit rate, throughput per policy).
fn eval_policy_sweep(
    backend: Backend,
    model: &LoadedModel,
    base: EvalConfig,
    policy: sia_snn::KernelPolicy,
    set: &sia_dataset::LabelledSet,
) -> Result<(), String> {
    use sia_snn::ExitPolicy;
    let timesteps = base.timesteps;
    const MARGINS: [f32; 5] = [0.1, 0.25, 0.5, 1.0, 2.0];
    const ENTROPIES: [f32; 5] = [0.5, 0.3, 0.2, 0.1, 0.05];
    let mut grid: Vec<(String, ExitPolicy)> = vec![("fixed".into(), ExitPolicy::Fixed)];
    grid.extend(MARGINS.iter().map(|&threshold| {
        (
            format!("margin ≥ {threshold}"),
            ExitPolicy::Margin {
                threshold,
                window: 1,
            },
        )
    }));
    grid.extend(ENTROPIES.iter().map(|&threshold| {
        (
            format!("entropy ≤ {threshold}"),
            ExitPolicy::Entropy {
                threshold,
                window: 1,
            },
        )
    }));
    let mut points = Vec::with_capacity(grid.len());
    for (label, exit) in grid {
        let evaluator = BatchEvaluator::new(EvalConfig { exit, ..base });
        let t0 = std::time::Instant::now();
        let outcome = evaluate_backend(&evaluator, backend, model, timesteps, policy, set)?;
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        points.push(SweepPoint {
            label,
            accuracy: outcome.accuracy(),
            avg_t: outcome.avg_t(),
            exit_rate: outcome.exit_rate(),
            img_s: outcome.total as f64 / wall,
        });
    }
    println!(
        "policy sweep: {} images, T={timesteps}, {backend} backend",
        set.len()
    );
    println!(
        "{:<16} {:>9} {:>7} {:>9} {:>9}",
        "policy", "accuracy", "avg T", "exit %", "img/s"
    );
    for p in &points {
        println!(
            "{:<16} {:>8.1}% {:>7.2} {:>8.1}% {:>9.1}",
            p.label,
            p.accuracy * 100.0,
            p.avg_t,
            p.exit_rate * 100.0,
            p.img_s
        );
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: sia eval <model.sia>")?;
    let backend = args.str_or("backend", "int");
    let timesteps = args.usize_or("timesteps", 8).map_err(err)?;
    let burn_in = args.usize_or("burn-in", 0).map_err(err)?;
    let smoke = args.switch("smoke");
    let n_images = args
        .usize_or("images", if smoke { 40 } else { 100 })
        .map_err(err)?;
    let threads = args.usize_or("threads", 1).map_err(err)?;
    let use_events = args.switch("events");
    let backend: Backend = backend.parse()?;
    let model = sia_serve::load_for_run(path, use_events, timesteps)?;
    let data = data_for(model.network.input.1);
    let set = data.test.take(n_images);
    let encoding = if use_events {
        EvalEncoding::Events {
            value_per_event: 1.0,
        }
    } else {
        EvalEncoding::Dense
    };
    let policy = calibrate::resolve_policy(args)?;
    if args.switch("policy-sweep") {
        return eval_policy_sweep(
            backend,
            &model,
            EvalConfig {
                timesteps,
                burn_in,
                threads,
                encoding,
                exit: sia_snn::ExitPolicy::Fixed,
            },
            policy,
            &set,
        );
    }
    let exit = calibrate::resolve_exit_policy(args)?;
    warn_exit_policy(&model.network, exit, timesteps);
    let evaluator = BatchEvaluator::new(EvalConfig {
        timesteps,
        burn_in,
        threads,
        encoding,
        exit,
    });
    let t0 = std::time::Instant::now();
    let outcome = evaluate_backend(&evaluator, backend, &model, timesteps, policy, &set)?;
    let wall = t0.elapsed();
    println!(
        "{}/{} correct ({:.1}%) at T={timesteps} (burn-in {burn_in}) on the {backend} backend",
        outcome.correct(),
        outcome.total,
        outcome.accuracy() * 100.0
    );
    if exit.is_adaptive() {
        println!(
            "early exit ({} policy): avg T {:.2} of {timesteps}, {:.1}% of images exited early",
            exit.kind(),
            outcome.avg_t(),
            outcome.exit_rate() * 100.0
        );
    }
    let threads_label = if threads == 0 {
        "auto".to_string()
    } else {
        threads.to_string()
    };
    println!(
        "{threads_label} thread(s), {:.2}s wall ({:.1} img/s)",
        wall.as_secs_f64(),
        outcome.total as f64 / wall.as_secs_f64().max(1e-9)
    );
    println!("{}", outcome.stats);
    if let Some(min) = args.options.get("min-accuracy") {
        let min: f32 = min
            .parse()
            .map_err(|_| format!("--min-accuracy: '{min}' is not a number"))?;
        if outcome.accuracy() < min {
            return Err(format!(
                "accuracy {:.3} below the --min-accuracy floor {min}",
                outcome.accuracy()
            ));
        }
    }
    if exit.is_adaptive() && args.options.contains_key("max-acc-drop") {
        let drop = args.f64_or("max-acc-drop", 0.01).map_err(err)? as f32;
        let fixed_eval = BatchEvaluator::new(EvalConfig {
            timesteps,
            burn_in,
            threads,
            encoding,
            exit: sia_snn::ExitPolicy::Fixed,
        });
        let fixed = evaluate_backend(&fixed_eval, backend, &model, timesteps, policy, &set)?;
        let floor = fixed.accuracy() - drop;
        println!(
            "fixed-T reference: {:.1}% accuracy (adaptive floor {:.1}%)",
            fixed.accuracy() * 100.0,
            floor * 100.0
        );
        if outcome.accuracy() < floor {
            return Err(format!(
                "adaptive accuracy {:.3} dropped more than {drop} below the fixed-T \
                 accuracy {:.3}",
                outcome.accuracy(),
                fixed.accuracy()
            ));
        }
    }
    Ok(())
}

fn cmd_explore(args: &Args) -> Result<(), String> {
    let mhz = args.usize_or("clock-mhz", 100).map_err(err)? as u64;
    println!(
        "{:<8} {:>8} {:>6} {:>9} {:>9} {:>10}",
        "array", "LUTs", "DSPs", "peakGOPS", "GOPS/W", "fits Z7020"
    );
    for dim in [4usize, 8, 12, 16] {
        let cfg = SiaConfig {
            pe_rows: dim,
            pe_cols: dim,
            clock_hz: mhz * 1_000_000,
            ..SiaConfig::pynq_z2()
        };
        let r = sia_hwmodel::resources::estimate(&cfg);
        let m = sia_hwmodel::metrics(&cfg);
        println!(
            "{:<8} {:>8} {:>6} {:>9.1} {:>9.2} {:>10}",
            format!("{dim}x{dim}"),
            r.luts,
            r.dsps,
            m.gops,
            m.gops_per_watt,
            if r.fits(&sia_hwmodel::resources::PYNQ_Z2_AVAILABLE) {
                "yes"
            } else {
                "NO"
            }
        );
    }
    Ok(())
}

pub(crate) fn err(e: ArgError) -> String {
    e.to_string()
}
