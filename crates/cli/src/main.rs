//! `sia` — the command-line face of the reproduction.
//!
//! ```text
//! sia train   --model resnet18 --width 4 --size 16 --epochs 8 --out model.sia
//! sia info    model.sia
//! sia check   model.sia [--timesteps 16] [--format text|json] [--deny <rules>]
//! sia run     model.sia [--timesteps 16] [--burn-in 4] [--images 20] [--events]
//! sia eval    model.sia [--backend float|int|accel] [--threads 4] [--timesteps 8]
//! sia explore [--clock-mhz 100]
//! sia bench   [conv|gemm] [--out BENCH_conv.json] [--smoke] [--threads 4]
//! sia trace   metrics.jsonl
//! sia help
//! ```
//!
//! `train` runs the full Fig.-1 pipeline (FP32 training → L=8 quantized
//! ReLU + INT8 weights → IF conversion) on the synthetic dataset and writes
//! a deployment image; `run` loads one, compiles it for the PYNQ-Z2
//! configuration and classifies held-out images on the cycle-level SIA.
//! `eval` classifies a whole held-out split through the [`BatchEvaluator`]
//! on any of the three engine backends, with `--threads N` worker threads
//! (results are bit-identical for every thread count).
//!
//! `check` statically verifies a model against the SIA — the
//! interval-analysis overflow pass plus the hardware-budget lints from
//! [`sia_check`] — and exits 0 (pass), 1 (errors, including `--deny`-promoted
//! warnings) or 2 (usage). `run` and `eval` run the same verification and
//! refuse models with error-severity findings.
//!
//! `bench conv` times the event-driven (scatter) integer conv kernel against
//! the dense reference at several spike densities, asserts bit-exactness on
//! each case, and writes the results as JSON; `bench gemm` does the same for
//! the blocked, register-tiled FP32 GEMM against the naive reference across
//! the paper networks' layer shapes. `--smoke` shrinks either to a
//! CI-friendly correctness pass.
//!
//! `train` takes `--threads N` (shared pool workers for GEMM/conv and
//! trainer shards) and `--micro-batch M` (data-parallel gradient shard
//! size); trained weights are bit-identical for every thread count.
//!
//! `train` and `run` take `--metrics <out.jsonl>` to stream structured
//! telemetry events (or bare `--metrics` to print the counter/gauge table
//! on exit) and `--trace <out.json>` to export a Chrome `trace_event`
//! flamegraph; `trace` summarises a previously written JSONL file.

#![forbid(unsafe_code)]

mod args;

use args::{ArgError, Args};
use sia_accel::{compile_for, read_image, write_image, SiaConfig, SiaMachine};
use sia_dataset::{SynthConfig, SynthDataset};
use sia_hwmodel::energy_report;
use sia_nn::resnet::ResNet;
use sia_nn::trainer::TrainConfig;
use sia_nn::vgg::Vgg;
use sia_nn::Model;
use sia_quant::{quantize_pipeline, QatConfig};
use sia_snn::encode::rate_encode;
use sia_snn::{
    convert, BatchEvaluator, ConvertOptions, EvalConfig, EvalEncoding, FloatRunner, InputEncoding,
    IntRunner, SnnItem,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match args.command.as_str() {
        "train" => with_metrics(&args, cmd_train).map(|()| ExitCode::SUCCESS),
        "info" => cmd_info(&args).map(|()| ExitCode::SUCCESS),
        "check" => cmd_check(&args),
        "run" => with_metrics(&args, cmd_run).map(|()| ExitCode::SUCCESS),
        "eval" => with_metrics(&args, cmd_eval).map(|()| ExitCode::SUCCESS),
        "explore" => cmd_explore(&args).map(|()| ExitCode::SUCCESS),
        "bench" => cmd_bench(&args).map(|()| ExitCode::SUCCESS),
        "trace" => cmd_trace(&args).map(|()| ExitCode::SUCCESS),
        "help" | "--help" => {
            print!("{HELP}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand '{other}' (try `sia help`)")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const HELP: &str = "\
sia — spiking inference accelerator toolchain (paper reproduction)

USAGE:
  sia train   --out model.sia [--model resnet18|vgg11] [--width N]
              [--size N] [--epochs N] [--events]
              [--threads N] [--micro-batch N]
              [--metrics [out.jsonl]] [--trace out.json]
  sia info    <model.sia>
  sia check   <model.sia> [--timesteps N] [--format text|json] [--deny <rules>]
  sia check   --model resnet18|vgg11 [--width N] [--size N] [--events] [...]
  sia check   --list-rules
  sia run     <model.sia> [--timesteps N] [--burn-in N] [--images N] [--events]
              [--metrics [out.jsonl]] [--trace out.json]
  sia eval    <model.sia> [--backend float|int|accel] [--threads N]
              [--timesteps N] [--burn-in N] [--images N] [--events]
              [--metrics [out.jsonl]] [--trace out.json]
  sia explore [--clock-mhz N]
  sia bench   [conv|gemm] [--out FILE.json] [--smoke] [--threads N]
  sia trace   <metrics.jsonl>
  sia help

  --metrics out.jsonl  stream telemetry events to a JSON-lines file
  --metrics            print the counter/gauge/histogram table on exit
  --trace out.json     export spans as Chrome trace_event JSON
                       (open in chrome://tracing or ui.perfetto.dev)

  `bench conv` micro-benchmarks the event-driven (scatter) integer conv
  kernel against the dense reference at spike densities 1..100 %, asserting
  bit-exactness on every case, and writes mean ns/op + speedups as JSON
  (default BENCH_conv.json). `bench gemm` benchmarks the blocked,
  register-tiled GEMM against the naive reference across ResNet-18/VGG-11
  layer shapes (bit-exactness asserted on all three flows first; default
  BENCH_gemm.json, mirrored to results/bench_gemm.json). --smoke runs a
  fast correctness-only pass of either.

  `train --threads N` runs GEMM/conv and trainer shards on N pool workers
  (0 = one per core); `--micro-batch M` shards each batch for data-parallel
  gradient accumulation. Weights are bit-identical for every N.

  `check` statically verifies a model against the SIA (fixed-point interval
  analysis + hardware budget lints). --deny takes a comma-separated list of
  rule ids or prefixes (e.g. `--deny sat,budget.weight-sram`) promoted to
  errors. Exit codes: 0 pass, 1 errors, 2 usage. `run` and `eval` refuse
  models whose check reports errors.
";

/// Runs `cmd` with the `--metrics`/`--trace` sinks installed around it.
fn with_metrics(args: &Args, cmd: fn(&Args) -> Result<(), String>) -> Result<(), String> {
    let metrics = args.options.get("metrics").cloned();
    if let Some(v) = &metrics {
        let path = if v == "true" { None } else { Some(v.as_str()) };
        sia_telemetry::install_jsonl(path).map_err(|e| format!("opening metrics sink: {e}"))?;
    }
    let result = cmd(args);
    if let Some(v) = &metrics {
        let _ = sia_telemetry::uninstall_jsonl();
        if v == "true" {
            print!(
                "{}",
                sia_telemetry::render_table(&sia_telemetry::global_snapshot())
            );
        } else if result.is_ok() {
            println!("metrics written to {v}");
        }
    }
    if let Some(out) = args.options.get("trace") {
        let doc = sia_telemetry::chrome_trace_json(&sia_telemetry::take_trace_events());
        std::fs::write(out, doc).map_err(|e| format!("writing {out}: {e}"))?;
        if result.is_ok() {
            println!("chrome trace written to {out} (open in chrome://tracing)");
        }
    }
    result
}

/// Dispatches `sia bench [conv|gemm]` (default `conv`, the historical
/// behaviour).
fn cmd_bench(args: &Args) -> Result<(), String> {
    match args.positional.first().map_or("conv", String::as_str) {
        "conv" => cmd_bench_conv(args),
        "gemm" => cmd_bench_gemm(args),
        other => Err(format!("unknown bench '{other}' (conv|gemm)")),
    }
}

/// One timed GEMM layer shape.
struct GemmCase {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    ref_ns: f64,
    blocked_1t_ns: f64,
    blocked_nt_ns: f64,
}

/// Benchmarks the blocked, register-tiled GEMM against the naive reference
/// across the conv-as-GEMM layer shapes of the paper's two networks
/// (im2col maps a conv to `M = out_ch`, `K = in_ch·k²`, `N = out_h·out_w`),
/// asserting bit-exactness of all three flows on every shape first.
fn cmd_bench_gemm(args: &Args) -> Result<(), String> {
    use sia_tensor::{
        matmul, matmul_a_bt, matmul_a_bt_reference, matmul_at_b, matmul_at_b_reference,
        matmul_reference, pool, set_kernel, Kernel, Tensor,
    };
    use std::hint::black_box;
    use std::time::Instant;

    let out_path = args.str_or("out", "BENCH_gemm.json");
    let smoke = args.switch("smoke");
    let threads = args.usize_or("threads", 4).map_err(err)?;
    // (name, M, K, N): im2col GEMM shapes from Table I — ResNet-18 and
    // VGG-11 at base width 64, 32×32 input — plus the FC head.
    let full: &[(&'static str, usize, usize, usize)] = &[
        ("resnet18.stem 3->64@32", 64, 27, 1024),
        ("resnet18.s1.conv 64->64@32", 64, 576, 1024),
        ("resnet18.s2.down 64->128@16", 128, 576, 256),
        ("resnet18.s2.conv 128->128@16", 128, 1152, 256),
        ("resnet18.s3.conv 256->256@8", 256, 2304, 64),
        ("resnet18.s4.conv 512->512@4", 512, 4608, 16),
        ("vgg11.conv2 64->128@16", 128, 576, 256),
        ("vgg11.conv4 256->256@8", 256, 2304, 64),
        ("vgg11.conv6 512->512@4", 512, 4608, 16),
        ("head.fc 512->10 (batch 32)", 32, 512, 10),
    ];
    let small: &[(&'static str, usize, usize, usize)] = &[
        ("smoke.conv 16->16@8", 16, 144, 64),
        ("smoke.fc 64->10 (batch 8)", 8, 64, 10),
    ];
    let shapes = if smoke { small } else { full };
    // Deterministic data with exact zeros (the kernels' skip path).
    let fill = |count: usize, seed: u64| -> Vec<f32> {
        let mut state = seed | 1;
        (0..count)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let r = state >> 33;
                if r.is_multiple_of(5) {
                    0.0
                } else {
                    (r % 2001) as f32 / 1000.0 - 1.0
                }
            })
            .collect()
    };
    let assert_bits = |name: &str, flow: &str, a: &Tensor, b: &Tensor| {
        if a.data().len() != b.data().len()
            || a.data()
                .iter()
                .zip(b.data())
                .any(|(x, y)| x.to_bits() != y.to_bits())
        {
            return Err(format!(
                "blocked {flow} diverges bitwise from the reference on '{name}'"
            ));
        }
        Ok(())
    };
    let prev_threads = pool::threads();
    set_kernel(Kernel::Blocked);
    let mut cases = Vec::new();
    println!(
        "blocked vs reference GEMM, {threads}-thread column, host cpus {}{}",
        std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get),
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<30} {:>14} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "shape (MxKxN)", "", "ref ns", "blk@1 ns", "blk@N ns", "x@1", "x@N"
    );
    for &(name, m, k, n) in shapes {
        let a = Tensor::from_vec(vec![m, k], fill(m * k, 0x5EED ^ (m * k) as u64));
        let b = Tensor::from_vec(vec![k, n], fill(k * n, 0xB0B ^ (k * n) as u64));
        // --- bit-exactness gates, all three flows, before any timing ---
        pool::set_threads(threads.max(2));
        assert_bits(name, "matmul", &matmul(&a, &b), &matmul_reference(&a, &b))?;
        let at = Tensor::from_vec(vec![k, m], fill(k * m, 0xA7 ^ (k * m) as u64));
        assert_bits(
            name,
            "matmul_at_b",
            &matmul_at_b(&at, &b),
            &matmul_at_b_reference(&at, &b),
        )?;
        let bt = Tensor::from_vec(vec![n, k], fill(n * k, 0xB7 ^ (n * k) as u64));
        assert_bits(
            name,
            "matmul_a_bt",
            &matmul_a_bt(&a, &bt),
            &matmul_a_bt_reference(&a, &bt),
        )?;
        // --- timing ---
        let flops = 2.0 * (m * k * n) as f64;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let iters = if smoke {
            3u32
        } else {
            ((1.2e9 / flops) as u32).clamp(5, 400)
        };
        // Min-of-iters: the minimum is the best estimate of the true cost
        // on a shared host — every slower sample is noise added on top.
        let time = |f: &dyn Fn() -> Tensor| {
            let _ = black_box(f()); // warm-up (and pack-buffer growth)
            let mut best = f64::INFINITY;
            for _ in 0..iters {
                let t0 = Instant::now();
                let _ = black_box(f());
                best = best.min(t0.elapsed().as_nanos() as f64);
            }
            best
        };
        let ref_ns = time(&|| matmul_reference(&a, &b));
        pool::set_threads(1);
        let blocked_1t_ns = time(&|| matmul(&a, &b));
        pool::set_threads(threads);
        let blocked_nt_ns = time(&|| matmul(&a, &b));
        println!(
            "{name:<30} {:>14} {ref_ns:>12.0} {blocked_1t_ns:>12.0} {blocked_nt_ns:>12.0} \
             {:>7.2}x {:>7.2}x",
            format!("{m}x{k}x{n}"),
            ref_ns / blocked_1t_ns,
            ref_ns / blocked_nt_ns
        );
        cases.push(GemmCase {
            name,
            m,
            k,
            n,
            ref_ns,
            blocked_1t_ns,
            blocked_nt_ns,
        });
    }
    pool::set_threads(prev_threads);
    let case_json: Vec<String> = cases
        .iter()
        .map(|c| {
            let flops = 2.0 * (c.m * c.k * c.n) as f64;
            format!(
                "    {{\"name\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
                 \"ref_ns\": {:.1}, \"blocked_1t_ns\": {:.1}, \"blocked_{}t_ns\": {:.1}, \
                 \"speedup_1t\": {:.3}, \"speedup_{}t\": {:.3}, \
                 \"gflops_ref\": {:.3}, \"gflops_blocked_1t\": {:.3}, \"gflops_blocked_{}t\": {:.3}}}",
                c.name,
                c.m,
                c.k,
                c.n,
                c.ref_ns,
                c.blocked_1t_ns,
                threads,
                c.blocked_nt_ns,
                c.ref_ns / c.blocked_1t_ns,
                threads,
                c.ref_ns / c.blocked_nt_ns,
                flops / c.ref_ns,
                flops / c.blocked_1t_ns,
                threads,
                flops / c.blocked_nt_ns,
            )
        })
        .collect();
    let cpus = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let (mr, nr, mc, kc, nc) = sia_tensor::TILING;
    let doc = format!(
        "{{\n  \"bench\": \"gemm_blocked\",\n  \"tiling\": {{\"mr\": {mr}, \"nr\": {nr}, \
         \"mc\": {mc}, \"kc\": {kc}, \"nc\": {nc}}},\n  \"threads\": {threads},\n  \
         \"smoke\": {smoke},\n  \"bit_exact\": true,\n  \
         \"host\": {{\"arch\": \"{}\", \"os\": \"{}\", \"cpus\": {cpus}}},\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        std::env::consts::ARCH,
        std::env::consts::OS,
        case_json.join(",\n")
    );
    std::fs::write(&out_path, &doc).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("results written to {out_path}");
    if !smoke {
        let mirror = "results/bench_gemm.json";
        if std::fs::create_dir_all("results").is_ok() && std::fs::write(mirror, &doc).is_ok() {
            println!("results mirrored to {mirror}");
        }
    }
    Ok(())
}

/// One measured density point of the conv-kernel benchmark.
struct BenchCase {
    density_pct: u32,
    /// Fraction of input pixels actually set (after pseudo-random draw).
    measured_density: f64,
    sparse_ns: f64,
    dense_ns: f64,
    byte_ns: f64,
}

/// Micro-benchmarks the event-driven (scatter) integer conv kernel against
/// the dense plane kernel and the byte-wise reference, asserting
/// bit-exactness at every density before timing anything.
fn cmd_bench_conv(args: &Args) -> Result<(), String> {
    use sia_fixed::{Q8_8, QuantScale};
    use sia_snn::network::{ConvInput, NeuronMode, SnnConv};
    use sia_snn::{conv_psums_int, conv_psums_int_plane, ConvScratch, KernelPolicy, SpikePlane};
    use sia_tensor::Conv2dGeom;
    use std::hint::black_box;
    use std::time::Instant;

    let out_path = args.str_or("out", "BENCH_conv.json");
    let smoke = args.switch("smoke");
    // Representative mid-network residual-stage geometry (scaled down in
    // smoke mode, where only the equivalence asserts matter).
    let (ch, hw, iters) = if smoke { (8, 8, 5) } else { (32, 16, 300) };
    let geom = Conv2dGeom {
        in_channels: ch,
        out_channels: ch,
        in_h: hw,
        in_w: hw,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let conv = SnnConv {
        geom,
        weights: (0..geom.weight_count())
            .map(|i| (((i * 31) % 255) as i32 - 127) as i8)
            .collect(),
        q_w: QuantScale::new(7),
        input: ConvInput::Spikes { value: 1.0 },
        g: vec![Q8_8::ONE; ch],
        h: vec![0; ch],
        theta: 128,
        nu: 1.0 / 128.0,
        gf: vec![1.0; ch],
        hf: vec![0.0; ch],
        step: 1.0,
        levels: 8,
        mode: NeuronMode::If,
    };
    let time_kernel = |policy: KernelPolicy, plane: &SpikePlane, scr: &mut ConvScratch| {
        // warm-up pass also populates the transposed-weight cache
        let _ = black_box(conv_psums_int_plane(&conv, plane, policy, scr, 0));
        let t0 = Instant::now();
        for _ in 0..iters {
            let _ = black_box(conv_psums_int_plane(&conv, black_box(plane), policy, scr, 0));
        }
        t0.elapsed().as_nanos() as f64 / f64::from(iters)
    };
    let mut scr = ConvScratch::new();
    let mut cases = Vec::new();
    println!(
        "conv {ch}x{hw}x{hw} k3 s1 p1, {iters} iters/kernel{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "density", "measured", "sparse ns", "dense ns", "byte ns", "speedup"
    );
    for density_pct in [1u32, 5, 10, 25, 50, 100] {
        let n = ch * hw * hw;
        let mut state = u64::from(density_pct) << 17 | 1;
        let bytes: Vec<u8> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                u8::from((state >> 33) % 100 < u64::from(density_pct))
            })
            .collect();
        let set = bytes.iter().map(|&b| u32::from(b)).sum::<u32>();
        let measured_density = f64::from(set) / n as f64;
        let mut plane = SpikePlane::default();
        plane.pack_from_bytes(ch, hw, hw, &bytes);
        // bit-exactness gate: never time a kernel that disagrees
        let reference = conv_psums_int(&conv, &bytes);
        for policy in [KernelPolicy::ForceSparse, KernelPolicy::ForceDense] {
            let got = conv_psums_int_plane(&conv, &plane, policy, &mut scr, 0);
            if got != reference.as_slice() {
                return Err(format!(
                    "{policy:?} kernel diverges from the byte reference at {density_pct}% density"
                ));
            }
        }
        let sparse_ns = time_kernel(KernelPolicy::ForceSparse, &plane, &mut scr);
        let dense_ns = time_kernel(KernelPolicy::ForceDense, &plane, &mut scr);
        let t0 = Instant::now();
        for _ in 0..iters {
            let _ = black_box(conv_psums_int(&conv, black_box(&bytes)));
        }
        let byte_ns = t0.elapsed().as_nanos() as f64 / f64::from(iters);
        println!(
            "{:>7}% {:>9.1}% {:>12.0} {:>12.0} {:>12.0} {:>7.2}x",
            density_pct,
            100.0 * measured_density,
            sparse_ns,
            dense_ns,
            byte_ns,
            dense_ns / sparse_ns
        );
        cases.push(BenchCase {
            density_pct,
            measured_density,
            sparse_ns,
            dense_ns,
            byte_ns,
        });
    }
    let case_json: Vec<String> = cases
        .iter()
        .map(|c| {
            format!(
                "    {{\"density_pct\": {}, \"measured_density\": {:.4}, \
                 \"sparse_ns\": {:.1}, \"dense_ns\": {:.1}, \"byte_ns\": {:.1}, \
                 \"speedup_vs_dense\": {:.3}}}",
                c.density_pct,
                c.measured_density,
                c.sparse_ns,
                c.dense_ns,
                c.byte_ns,
                c.dense_ns / c.sparse_ns
            )
        })
        .collect();
    let threads = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let doc = format!(
        "{{\n  \"bench\": \"conv_psums_int\",\n  \"geometry\": {{\"in_channels\": {ch}, \
         \"out_channels\": {ch}, \"hw\": {hw}, \"kernel\": 3, \"stride\": 1, \"padding\": 1}},\n  \
         \"iters\": {iters},\n  \"smoke\": {smoke},\n  \
         \"host\": {{\"arch\": \"{}\", \"os\": \"{}\", \"cpus\": {threads}}},\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        std::env::consts::ARCH,
        std::env::consts::OS,
        case_json.join(",\n")
    );
    std::fs::write(&out_path, doc).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("results written to {out_path}");
    Ok(())
}

/// Summarises a `--metrics` JSON-lines file: event counts, the training
/// curve, per-layer accelerator cycle totals, and per-stage spike
/// sparsity (from the `snn.stage` events every backend emits).
fn cmd_trace(args: &Args) -> Result<(), String> {
    use sia_telemetry::json::{parse, Json};
    let path = args
        .positional
        .first()
        .ok_or("usage: sia trace <metrics.jsonl>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut kinds: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut epochs: Vec<Json> = Vec::new();
    // per-layer (name → count, total, compute, transfer, spikes)
    let mut layers: std::collections::BTreeMap<String, [u64; 4]> = std::collections::BTreeMap::new();
    let mut layer_order: Vec<String> = Vec::new();
    // per spiking stage (name → spikes, spike slots, taps processed, taps skipped)
    let mut stages: std::collections::BTreeMap<String, [u64; 4]> = std::collections::BTreeMap::new();
    let mut stage_order: Vec<String> = Vec::new();
    let mut malformed = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(ev) = parse(line) else {
            malformed += 1;
            continue;
        };
        let Some(kind) = ev.get("ev").and_then(Json::as_str) else {
            malformed += 1;
            continue;
        };
        *kinds.entry(kind.to_string()).or_insert(0) += 1;
        match kind {
            "train.epoch" => epochs.push(ev),
            "accel.layer" => {
                let name = ev.get("name").and_then(Json::as_str).unwrap_or("?");
                let field = |k: &str| ev.get(k).and_then(Json::as_u64).unwrap_or(0);
                let entry = layers.entry(name.to_string()).or_insert_with(|| {
                    layer_order.push(name.to_string());
                    [0; 4]
                });
                entry[0] += field("total_cycles");
                entry[1] += field("compute_cycles");
                entry[2] += field("transfer_cycles");
                entry[3] += field("spikes");
            }
            "snn.stage" => {
                let name = ev.get("name").and_then(Json::as_str).unwrap_or("?");
                let field = |k: &str| ev.get(k).and_then(Json::as_u64).unwrap_or(0);
                let entry = stages.entry(name.to_string()).or_insert_with(|| {
                    stage_order.push(name.to_string());
                    [0; 4]
                });
                entry[0] += field("spikes");
                entry[1] += field("neurons") * field("timesteps");
                entry[2] += field("taps_processed");
                entry[3] += field("taps_skipped");
            }
            _ => {}
        }
    }
    println!("{path}: {} event kinds", kinds.len());
    for (kind, n) in &kinds {
        println!("  {kind:<24} {n:>8}");
    }
    if malformed > 0 {
        println!("  ({malformed} malformed lines skipped)");
    }
    if !epochs.is_empty() {
        println!("\ntraining curve");
        println!(
            "  {:>5} {:>9} {:>10} {:>9} {:>9}",
            "epoch", "loss", "train_acc", "test_acc", "lr"
        );
        for e in &epochs {
            println!(
                "  {:>5} {:>9.4} {:>10.3} {:>9.3} {:>9.5}",
                e.get("epoch").and_then(Json::as_u64).unwrap_or(0),
                e.get("loss").and_then(Json::as_f64).unwrap_or(0.0),
                e.get("train_acc").and_then(Json::as_f64).unwrap_or(0.0),
                e.get("test_acc").and_then(Json::as_f64).unwrap_or(0.0),
                e.get("lr").and_then(Json::as_f64).unwrap_or(0.0),
            );
        }
    }
    if !layers.is_empty() {
        println!("\naccelerator layers (summed over runs)");
        println!(
            "  {:<22} {:>12} {:>12} {:>12} {:>10}",
            "layer", "total(cy)", "compute(cy)", "transfer(cy)", "spikes"
        );
        for name in &layer_order {
            let [total, compute, transfer, spikes] = layers[name];
            println!("  {name:<22} {total:>12} {compute:>12} {transfer:>12} {spikes:>10}");
        }
    }
    if !stages.is_empty() {
        println!("\nspiking-stage sparsity (summed over runs)");
        println!(
            "  {:<22} {:>12} {:>9} {:>14} {:>12} {:>7}",
            "stage", "spikes", "density", "taps processed", "taps skipped", "skip%"
        );
        for name in &stage_order {
            let [spikes, slots, processed, skipped] = stages[name];
            let density = spikes as f64 / slots.max(1) as f64;
            let skip_pct = 100.0 * skipped as f64 / (processed + skipped).max(1) as f64;
            println!(
                "  {name:<22} {spikes:>12} {density:>9.4} {processed:>14} {skipped:>12} {skip_pct:>6.1}%"
            );
        }
    }
    Ok(())
}

/// Prints a usage error and yields the usage exit code (2).
fn usage(msg: impl std::fmt::Display) -> Result<ExitCode, String> {
    eprintln!("error: {msg}");
    Ok(ExitCode::from(2))
}

/// Loads the model to check: either a deployment image (positional path,
/// carrying its own target config) or a freshly converted untrained
/// `--model resnet18|vgg11` (static legality does not depend on training).
fn check_subject(args: &Args) -> Result<Result<(sia_snn::SnnNetwork, SiaConfig), String>, ArgError> {
    if let Some(path) = args.positional.first() {
        return Ok(std::fs::read(path)
            .map_err(|e| format!("reading {path}: {e}"))
            .and_then(|bytes| read_image(&bytes).map_err(|e| e.to_string())));
    }
    let model_kind = args.str_required("model")?;
    let width = args.usize_or("width", 4)?;
    let size = args.usize_or("size", 16)?;
    let mut model: Box<dyn Model> = match model_kind.as_str() {
        "resnet18" => Box::new(ResNet::resnet18(width, size, 10, 0xC11)),
        "vgg11" => Box::new(Vgg::vgg11(width, size, 10, 0xC11)),
        other => return Ok(Err(format!("unknown model '{other}' (resnet18|vgg11)"))),
    };
    // Static legality only needs the architecture and the quantized
    // activation grid, not trained weights.
    model.visit_activations(&mut |a| a.make_quantized(8));
    let snn = convert(
        &model.to_spec(),
        &ConvertOptions {
            encoding: if args.switch("events") {
                InputEncoding::EventDriven
            } else {
                InputEncoding::DirectCurrent
            },
            ..ConvertOptions::default()
        },
    );
    Ok(Ok((snn, SiaConfig::pynq_z2())))
}

fn cmd_check(args: &Args) -> Result<ExitCode, String> {
    if args.switch("list-rules") {
        println!("{:<22} {:<8} rule", "id", "default");
        for r in sia_check::rules() {
            println!("{:<22} {:<8} {}", r.id, r.severity.to_string(), r.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }
    let format = args.str_or("format", "text");
    if format != "text" && format != "json" {
        return usage(format!("--format: expected text|json, got '{format}'"));
    }
    let timesteps = match args.usize_or("timesteps", 16) {
        Ok(t) => t,
        Err(e) => return usage(e),
    };
    let denied: Vec<String> = match args.options.get("deny") {
        None => Vec::new(),
        Some(v) if v == "true" => return usage("--deny needs a rule id or prefix"),
        Some(v) => v.split(',').map(|s| s.trim().to_string()).collect(),
    };
    for pat in &denied {
        if !sia_check::rules().iter().any(|r| {
            r.id == pat || (r.id.starts_with(pat.as_str()) && pat.len() < r.id.len())
        }) {
            return usage(format!(
                "--deny: '{pat}' matches no rule (see `sia check --list-rules`)"
            ));
        }
    }
    let (net, cfg) = match check_subject(args) {
        Ok(Ok(subject)) => subject,
        Ok(Err(e)) => return Err(e),
        Err(ArgError::Missing { .. }) => {
            return usage("usage: sia check <model.sia> | sia check --model resnet18|vgg11");
        }
        Err(e) => return usage(e),
    };
    let mut report = sia_check::check_network(&net, &cfg, timesteps);
    report.deny(&denied);
    if format == "json" {
        println!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// The gate `run`/`eval` enforce: refuse models whose static verification
/// reports error-severity findings.
fn enforce_static_checks(
    net: &sia_snn::SnnNetwork,
    cfg: &SiaConfig,
    timesteps: usize,
) -> Result<(), String> {
    let report = sia_check::check_network(net, cfg, timesteps);
    if report.passed() {
        return Ok(());
    }
    let first = report
        .diagnostics
        .iter()
        .find(|d| d.severity == sia_check::Severity::Error)
        .expect("failed report has an error");
    Err(format!(
        "model fails static verification ({} error(s)); first: {first}\n\
         (run `sia check` on this model for the full report)",
        report.error_count()
    ))
}

fn data_for(size: usize) -> SynthDataset {
    SynthDataset::generate(
        &SynthConfig {
            image_size: size,
            noise_std: 0.08,
            seed: 0x51A,
        },
        600,
        100,
    )
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let out = args.str_required("out").map_err(err)?;
    let model_kind = args.str_or("model", "resnet18");
    let width = args.usize_or("width", 4).map_err(err)?;
    let size = args.usize_or("size", 16).map_err(err)?;
    let epochs = args.usize_or("epochs", 8).map_err(err)?;
    let threads = args.usize_or("threads", 1).map_err(err)?;
    let micro_batch = args.usize_or("micro-batch", 0).map_err(err)?;
    let events = args.switch("events");
    let data = data_for(size);
    let mut model: Box<dyn Model> = match model_kind.as_str() {
        "resnet18" => Box::new(ResNet::resnet18(width, size, 10, 0xC11)),
        "vgg11" => Box::new(Vgg::vgg11(width, size, 10, 0xC11)),
        other => return Err(format!("unknown model '{other}' (resnet18|vgg11)")),
    };
    println!("training {} on the synthetic dataset…", model.name());
    let report = sia_nn::trainer::train(
        model.as_mut(),
        &data,
        &TrainConfig {
            epochs,
            lr_decay_epochs: vec![epochs.saturating_sub(2).max(1)],
            threads,
            micro_batch,
            ..TrainConfig::default()
        },
    );
    println!("FP32 test accuracy {:.3}", report.final_test_acc());
    // The QAT fine-tune epochs inherit the same pool/sharding settings.
    let mut qat = QatConfig::default();
    qat.finetune.threads = threads;
    qat.finetune.micro_batch = micro_batch;
    let outcome = quantize_pipeline(model.as_mut(), &data, &qat);
    println!("quantized accuracy {:.3}", outcome.quantized_accuracy);
    let spec = model.to_spec();
    println!("plan: {}", spec.summary());
    let snn = convert(
        &spec,
        &ConvertOptions {
            encoding: if events {
                InputEncoding::EventDriven
            } else {
                InputEncoding::DirectCurrent
            },
            ..ConvertOptions::default()
        },
    );
    let report = sia_check::check_network(&snn, &SiaConfig::pynq_z2(), 16);
    if report.passed() {
        println!(
            "static check: pass ({} warning(s))",
            report.warning_count()
        );
    } else {
        println!(
            "static check: FAIL — {} error(s); `sia run` will refuse this model \
             (see `sia check {out}`)",
            report.error_count()
        );
    }
    let image = write_image(&snn, &SiaConfig::pynq_z2());
    std::fs::write(&out, &image).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} ({} bytes)", out, image.len());
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: sia info <model.sia>")?;
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let (net, cfg) = read_image(&bytes).map_err(|e| e.to_string())?;
    println!("{net}");
    println!(
        "input {}x{}x{}, target: {}x{} PE array @ {} MHz",
        net.input.0,
        net.input.1,
        net.input.2,
        cfg.pe_rows,
        cfg.pe_cols,
        cfg.clock_hz / 1_000_000
    );
    for (i, item) in net.items.iter().enumerate() {
        match item {
            SnnItem::InputConv(c) => println!("  [{i}] input-conv {} (θ={})", c.geom, c.theta),
            SnnItem::Conv(c) => println!("  [{i}] conv {} (θ={})", c.geom, c.theta),
            SnnItem::ConvPsum(c) => println!("  [{i}] conv-psum {}", c.geom),
            SnnItem::BlockStart => println!("  [{i}] block-start"),
            SnnItem::BlockAdd(a) => println!(
                "  [{i}] block-add {}ch@{}x{} (down={}, θ={})",
                a.channels,
                a.h,
                a.w,
                a.down.is_some(),
                a.theta
            ),
            SnnItem::MaxPoolOr { channels, h, w } => {
                println!("  [{i}] or-pool {channels}ch@{h}x{w}");
            }
            SnnItem::Head(l) => println!("  [{i}] head {}→{}", l.channels, l.out),
        }
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: sia run <model.sia>")?;
    let timesteps = args.usize_or("timesteps", 16).map_err(err)?;
    let burn_in = args.usize_or("burn-in", 4).map_err(err)?;
    let n_images = args.usize_or("images", 20).map_err(err)?;
    let use_events = args.switch("events");
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let (net, cfg) = read_image(&bytes).map_err(|e| e.to_string())?;
    let event_net = !matches!(net.items.first(), Some(SnnItem::InputConv(_)));
    if use_events != event_net {
        return Err(format!(
            "model expects {} input (retrain with{} --events)",
            if event_net { "event-stream" } else { "dense" },
            if event_net { "" } else { "out" }
        ));
    }
    enforce_static_checks(&net, &cfg, timesteps)?;
    let data = data_for(net.input.1);
    let program = compile_for(&net, &cfg, timesteps).map_err(|e| e.to_string())?;
    let mut machine = SiaMachine::new(program, cfg.clone());
    let n = n_images.min(data.test.len());
    let mut correct = 0usize;
    let mut last_run = None;
    for i in 0..n {
        let (img, label) = data.test.get(i);
        let run = if use_events {
            machine.run_events(&rate_encode(img, timesteps, 1.0), timesteps, burn_in)
        } else {
            machine.run_with(img, timesteps, burn_in)
        };
        if run.predicted() == label {
            correct += 1;
        }
        last_run = Some(run);
    }
    println!(
        "{correct}/{n} correct at T={timesteps} (burn-in {burn_in}) on the cycle-level SIA"
    );
    if let Some(run) = last_run {
        println!(
            "per-inference: {:.3} ms, overall spike rate {:.3}",
            run.report.total_ms(),
            run.stats.overall_rate()
        );
        println!("energy: {}", energy_report(&cfg, &run.report));
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: sia eval <model.sia>")?;
    let backend = args.str_or("backend", "int");
    let timesteps = args.usize_or("timesteps", 8).map_err(err)?;
    let burn_in = args.usize_or("burn-in", 0).map_err(err)?;
    let n_images = args.usize_or("images", 100).map_err(err)?;
    let threads = args.usize_or("threads", 1).map_err(err)?;
    let use_events = args.switch("events");
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let (net, cfg) = read_image(&bytes).map_err(|e| e.to_string())?;
    let event_net = !matches!(net.items.first(), Some(SnnItem::InputConv(_)));
    if use_events != event_net {
        return Err(format!(
            "model expects {} input (retrain with{} --events)",
            if event_net { "event-stream" } else { "dense" },
            if event_net { "" } else { "out" }
        ));
    }
    enforce_static_checks(&net, &cfg, timesteps)?;
    let data = data_for(net.input.1);
    let set = data.test.take(n_images);
    let evaluator = BatchEvaluator::new(EvalConfig {
        timesteps,
        burn_in,
        threads,
        encoding: if use_events {
            EvalEncoding::Events { value_per_event: 1.0 }
        } else {
            EvalEncoding::Dense
        },
    });
    let t0 = std::time::Instant::now();
    let outcome = match backend.as_str() {
        "float" => evaluator.evaluate(|| FloatRunner::new(&net), &set),
        "int" => evaluator.evaluate(|| IntRunner::new(&net), &set),
        "accel" => {
            let program = compile_for(&net, &cfg, timesteps).map_err(|e| e.to_string())?;
            evaluator.evaluate(|| SiaMachine::new(program.clone(), cfg.clone()), &set)
        }
        other => return Err(format!("unknown backend '{other}' (float|int|accel)")),
    };
    let wall = t0.elapsed();
    println!(
        "{}/{} correct ({:.1}%) at T={timesteps} (burn-in {burn_in}) on the {backend} backend",
        outcome.correct(),
        outcome.total,
        outcome.accuracy() * 100.0
    );
    let threads_label = if threads == 0 {
        "auto".to_string()
    } else {
        threads.to_string()
    };
    println!(
        "{threads_label} thread(s), {:.2}s wall ({:.1} img/s)",
        wall.as_secs_f64(),
        outcome.total as f64 / wall.as_secs_f64().max(1e-9)
    );
    println!("{}", outcome.stats);
    Ok(())
}

fn cmd_explore(args: &Args) -> Result<(), String> {
    let mhz = args.usize_or("clock-mhz", 100).map_err(err)? as u64;
    println!(
        "{:<8} {:>8} {:>6} {:>9} {:>9} {:>10}",
        "array", "LUTs", "DSPs", "peakGOPS", "GOPS/W", "fits Z7020"
    );
    for dim in [4usize, 8, 12, 16] {
        let cfg = SiaConfig {
            pe_rows: dim,
            pe_cols: dim,
            clock_hz: mhz * 1_000_000,
            ..SiaConfig::pynq_z2()
        };
        let r = sia_hwmodel::resources::estimate(&cfg);
        let m = sia_hwmodel::metrics(&cfg);
        println!(
            "{:<8} {:>8} {:>6} {:>9.1} {:>9.2} {:>10}",
            format!("{dim}x{dim}"),
            r.luts,
            r.dsps,
            m.gops,
            m.gops_per_watt,
            if r.fits(&sia_hwmodel::resources::PYNQ_Z2_AVAILABLE) {
                "yes"
            } else {
                "NO"
            }
        );
    }
    Ok(())
}

fn err(e: ArgError) -> String {
    e.to_string()
}
