//! `sia report` — per-layer performance attribution from a metrics file —
//! and `sia trace`, the event-stream summariser. Both load JSONL through
//! [`sia_perf::EventLog`], so a missing, empty or truncated-mid-write file
//! becomes a diagnostic and a nonzero exit, never a panic.

use crate::args::Args;
use sia_perf::attribution::{attribute, Attribution, ReconCheck};
use sia_perf::html::{render_report, FlameSpan};
use sia_perf::{EventLog, RooflineModel};
use sia_telemetry::json::{parse, Json};

/// Builds the per-layer attribution report:
///
/// ```text
/// sia report metrics.jsonl [--html report.html] [--trace spans.json]
/// ```
///
/// Prints the per-layer table, the roofline classification and the
/// reconciliation checks; fails (exit 1) when any accounting identity is
/// violated. `--html` additionally writes a self-contained single-file
/// dashboard (sortable tables + flamegraph when `--trace` supplies the
/// Chrome-trace spans of the same run).
pub fn cmd_report(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: sia report <metrics.jsonl> [--html report.html] [--trace spans.json]")?;
    let log = EventLog::load(path)?;
    if let Some(note) = log.skipped_note() {
        eprintln!("{note}");
    }
    let att = attribute(&log)?;
    let (roof, roof_src) = match log
        .last_of_kind("accel.config")
        .and_then(RooflineModel::from_config_event)
    {
        Some(model) => (model, "from the run's accel.config event"),
        None => (
            RooflineModel::pynq_z2(),
            "assumed PYNQ-Z2 prototype (no accel.config event in this file)",
        ),
    };
    println!(
        "{path}: {} accel.layer events over {} layers",
        att.events,
        att.layers.len()
    );
    println!(
        "roofline: peak {:.1} GOPS, stream {:.0} MB/s, driver {:.1}k words/s, \
         ridge {:.0} ops/byte  [{roof_src}]",
        roof.peak_ops_per_sec / 1e9,
        roof.stream_bytes_per_sec / 1e6,
        roof.mmio_words_per_sec / 1e3,
        roof.ridge_intensity()
    );
    println!();
    print_layer_table(&att, &roof);

    // The accounting identity: every column sum must equal the live
    // counter the same run recorded. A missing counters event (a run cut
    // short, or a file from an older build) is reported, not invented.
    let counters = log.counters();
    println!();
    if counters.is_empty() {
        println!(
            "reconciliation: skipped — no `telemetry.counters` event in this file \
             (run was cut short, or recorded by an older build)"
        );
    } else {
        let checks = att.reconcile(&counters);
        print_recon_table(&checks);
        let failed = checks.iter().filter(|c| !c.ok()).count();
        if failed > 0 {
            return Err(format!(
                "{failed} reconciliation identit{} failed — the metrics file and the \
                 run's counters disagree (corrupt file or instrumentation drift)",
                if failed == 1 { "y" } else { "ies" }
            ));
        }
        println!(
            "all {} identities hold — attribution is exact, not estimated",
            checks.len()
        );
    }

    if let Some(out) = args.options.get("html") {
        let spans = match args.options.get("trace") {
            Some(trace_path) => load_spans(trace_path)?,
            None => Vec::new(),
        };
        let checks = if counters.is_empty() {
            Vec::new()
        } else {
            att.reconcile(&counters)
        };
        let title = format!("sia report — {path}");
        let doc = render_report(&title, &att, &roof, &checks, &spans);
        std::fs::write(out, doc).map_err(|e| format!("writing {out}: {e}"))?;
        println!("html report written to {out} (self-contained, open in any browser)");
    }
    Ok(())
}

fn print_layer_table(att: &Attribution, roof: &RooflineModel) {
    println!(
        "{:<22} {:>5} {:>12} {:>9} {:>7} {:>13} {:>13} {:>8} {:>8} {:>12} {:>9}",
        "layer",
        "runs",
        "total cy",
        "ms",
        "GOPS",
        "eff ops",
        "nominal ops",
        "eff/nom",
        "density",
        "axi stall cy",
        "bound"
    );
    for l in &att.layers {
        println!(
            "{:<22} {:>5} {:>12} {:>9.4} {:>7.2} {:>13} {:>13} {:>8.3} {:>8.4} {:>12} {:>9}",
            l.name,
            l.occurrences,
            l.total_cycles,
            l.ms(roof.clock_hz),
            l.effective_gops(roof.clock_hz),
            l.ops,
            l.nominal_ops,
            l.event_efficiency(),
            l.spike_density(),
            l.axi_stall_cycles(),
            roof.classify(l).label()
        );
    }
    let total_cycles = att.total_cycles();
    let total_ms = if roof.clock_hz == 0 {
        0.0
    } else {
        total_cycles as f64 / roof.clock_hz as f64 * 1e3
    };
    let total_gops = if total_cycles == 0 || roof.clock_hz == 0 {
        0.0
    } else {
        att.total_ops() as f64 / (total_cycles as f64 / roof.clock_hz as f64) / 1e9
    };
    println!(
        "{:<22} {:>5} {:>12} {:>9.4} {:>7.2} {:>13} {:>13}",
        "TOTAL",
        att.events,
        total_cycles,
        total_ms,
        total_gops,
        att.total_ops(),
        att.total_nominal_ops()
    );
}

fn print_recon_table(checks: &[ReconCheck]) {
    println!("reconciliation (event sums vs live counters)");
    for c in checks {
        match c.counter_value {
            Some(v) if c.ok() => {
                println!("  {:<24} {:>14} == {:<14} ok", c.counter, c.event_sum, v);
            }
            Some(v) => {
                println!(
                    "  {:<24} {:>14} != {:<14} MISMATCH",
                    c.counter, c.event_sum, v
                );
            }
            None => {
                println!(
                    "  {:<24} {:>14}    (counter missing) FAIL",
                    c.counter, c.event_sum
                );
            }
        }
    }
}

/// Loads the spans of a Chrome trace document (what `--trace out.json`
/// writes) for the HTML flamegraph.
fn load_spans(path: &str) -> Result<Vec<FlameSpan>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read trace file `{path}`: {e}"))?;
    let doc =
        parse(text.trim()).map_err(|e| format!("trace file `{path}` is not valid JSON: {e}"))?;
    let Some(Json::Arr(items)) = doc.get("traceEvents") else {
        return Err(format!(
            "trace file `{path}` is not a Chrome trace document (no `traceEvents` array)"
        ));
    };
    Ok(items
        .iter()
        .filter_map(|ev| {
            let u = |k: &str| ev.get(k).and_then(Json::as_u64);
            Some(FlameSpan {
                // `cat` carries the full dotted span path; `name` is only
                // the leaf segment
                name: ev
                    .get("cat")
                    .or_else(|| ev.get("name"))
                    .and_then(Json::as_str)?
                    .to_string(),
                ts_us: u("ts")?,
                dur_us: u("dur")?,
                tid: u("tid")?,
            })
        })
        .collect())
}

/// Summarises a `--metrics` JSON-lines file: event counts, the training
/// curve, per-layer accelerator cycle totals, and per-stage spike
/// sparsity (from the `snn.stage` events every backend emits).
pub fn cmd_trace(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: sia trace <metrics.jsonl>")?;
    let log = EventLog::load(path)?;
    let mut kinds: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut epochs: Vec<&Json> = Vec::new();
    // per-layer (name → total, compute, transfer, spikes)
    let mut layers: std::collections::BTreeMap<String, [u64; 4]> =
        std::collections::BTreeMap::new();
    let mut layer_order: Vec<String> = Vec::new();
    // per spiking stage (name → spikes, spike slots, taps processed, taps skipped)
    let mut stages: std::collections::BTreeMap<String, [u64; 4]> =
        std::collections::BTreeMap::new();
    let mut stage_order: Vec<String> = Vec::new();
    for ev in &log.events {
        let Some(kind) = ev.get("ev").and_then(Json::as_str) else {
            continue;
        };
        *kinds.entry(kind.to_string()).or_insert(0) += 1;
        match kind {
            "train.epoch" => epochs.push(ev),
            "accel.layer" => {
                let name = ev.get("name").and_then(Json::as_str).unwrap_or("?");
                let field = |k: &str| ev.get(k).and_then(Json::as_u64).unwrap_or(0);
                let entry = layers.entry(name.to_string()).or_insert_with(|| {
                    layer_order.push(name.to_string());
                    [0; 4]
                });
                entry[0] += field("total_cycles");
                entry[1] += field("compute_cycles");
                entry[2] += field("transfer_cycles");
                entry[3] += field("spikes");
            }
            "snn.stage" => {
                let name = ev.get("name").and_then(Json::as_str).unwrap_or("?");
                let field = |k: &str| ev.get(k).and_then(Json::as_u64).unwrap_or(0);
                let entry = stages.entry(name.to_string()).or_insert_with(|| {
                    stage_order.push(name.to_string());
                    [0; 4]
                });
                entry[0] += field("spikes");
                entry[1] += field("neurons") * field("timesteps");
                entry[2] += field("taps_processed");
                entry[3] += field("taps_skipped");
            }
            _ => {}
        }
    }
    println!("{path}: {} event kinds", kinds.len());
    for (kind, n) in &kinds {
        println!("  {kind:<24} {n:>8}");
    }
    if let Some(note) = log.skipped_note() {
        println!("  ({note})");
    }
    if !epochs.is_empty() {
        println!("\ntraining curve");
        println!(
            "  {:>5} {:>9} {:>10} {:>9} {:>9}",
            "epoch", "loss", "train_acc", "test_acc", "lr"
        );
        for e in &epochs {
            println!(
                "  {:>5} {:>9.4} {:>10.3} {:>9.3} {:>9.5}",
                e.get("epoch").and_then(Json::as_u64).unwrap_or(0),
                e.get("loss").and_then(Json::as_f64).unwrap_or(0.0),
                e.get("train_acc").and_then(Json::as_f64).unwrap_or(0.0),
                e.get("test_acc").and_then(Json::as_f64).unwrap_or(0.0),
                e.get("lr").and_then(Json::as_f64).unwrap_or(0.0),
            );
        }
    }
    if !layers.is_empty() {
        println!("\naccelerator layers (summed over runs; see `sia report` for attribution)");
        println!(
            "  {:<22} {:>12} {:>12} {:>12} {:>10}",
            "layer", "total(cy)", "compute(cy)", "transfer(cy)", "spikes"
        );
        for name in &layer_order {
            let [total, compute, transfer, spikes] = layers[name];
            println!("  {name:<22} {total:>12} {compute:>12} {transfer:>12} {spikes:>10}");
        }
    }
    if !stages.is_empty() {
        println!("\nspiking-stage sparsity (summed over runs)");
        println!(
            "  {:<22} {:>12} {:>9} {:>14} {:>12} {:>7}",
            "stage", "spikes", "density", "taps processed", "taps skipped", "skip%"
        );
        for name in &stage_order {
            let [spikes, slots, processed, skipped] = stages[name];
            let density = spikes as f64 / slots.max(1) as f64;
            let skip_pct = 100.0 * skipped as f64 / (processed + skipped).max(1) as f64;
            println!(
                "  {name:<22} {spikes:>12} {density:>9.4} {processed:>14} {skipped:>12} {skip_pct:>6.1}%"
            );
        }
    }
    Ok(())
}
