//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `criterion_group!` / `criterion_main!` / `bench_function`
//! interface the workspace's benches are written against, backed by a
//! simple median-of-runs wall-clock timer instead of criterion's full
//! statistical machinery. Good enough for relative comparisons in this
//! container; not a replacement for real criterion numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// How batched inputs are grouped. Only a hint; the stand-in treats every
/// variant identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Benchmark registry/driver.
#[derive(Debug)]
pub struct Criterion {
    /// Target wall-time per measurement, used to pick iteration counts.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Times `f` and prints one line: name, iterations, ns/iter.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            budget: self.measurement_time,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters == 0 {
            0.0
        } else {
            bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
        };
        println!(
            "bench {name:<40} {:>10} iters {per_iter:>14.1} ns/iter",
            bencher.iters
        );
        self
    }
}

/// Passed to the closure of [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up + calibration run
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += target;
    }

    /// Times `routine` over inputs produced by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut spent = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            spent += start.elapsed();
        }
        self.elapsed += spent;
        self.iters += target;
    }
}

/// Groups benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
