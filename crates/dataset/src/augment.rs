//! Training-time augmentation: random horizontal flip and zero-padded shift.
//!
//! These are the two standard CIFAR-10 augmentations used by the training
//! recipes the paper builds on; both act on single `C×H×W` images.

use rand::rngs::StdRng;
use rand::Rng;
use sia_tensor::Tensor;

/// Mirrors an image left-right.
///
/// # Panics
///
/// Panics if `img` is not rank-3 (`C×H×W`).
#[must_use]
pub fn hflip(img: &Tensor) -> Tensor {
    assert_eq!(img.shape().rank(), 3, "hflip expects C×H×W");
    let (c, h, w) = (img.shape().dim(0), img.shape().dim(1), img.shape().dim(2));
    let mut out = vec![0.0f32; c * h * w];
    let data = img.data();
    for ci in 0..c {
        for y in 0..h {
            let row = (ci * h + y) * w;
            for x in 0..w {
                out[row + x] = data[row + (w - 1 - x)];
            }
        }
    }
    Tensor::from_vec(vec![c, h, w], out)
}

/// Translates an image by `(dy, dx)` pixels, filling exposed pixels with 0.
///
/// # Panics
///
/// Panics if `img` is not rank-3.
#[must_use]
pub fn shift(img: &Tensor, dy: isize, dx: isize) -> Tensor {
    assert_eq!(img.shape().rank(), 3, "shift expects C×H×W");
    let (c, h, w) = (img.shape().dim(0), img.shape().dim(1), img.shape().dim(2));
    let mut out = vec![0.0f32; c * h * w];
    let data = img.data();
    for ci in 0..c {
        for y in 0..h {
            let sy = y as isize - dy;
            if sy < 0 || sy >= h as isize {
                continue;
            }
            for x in 0..w {
                let sx = x as isize - dx;
                if sx < 0 || sx >= w as isize {
                    continue;
                }
                out[(ci * h + y) * w + x] = data[(ci * h + sy as usize) * w + sx as usize];
            }
        }
    }
    Tensor::from_vec(vec![c, h, w], out)
}

/// Applies the standard recipe: 50% horizontal flip, then a uniform shift in
/// `[-max_shift, +max_shift]` on both axes.
#[must_use]
pub fn random_augment(img: &Tensor, max_shift: isize, rng: &mut StdRng) -> Tensor {
    let flipped = if rng.gen_bool(0.5) {
        hflip(img)
    } else {
        img.clone()
    };
    if max_shift == 0 {
        return flipped;
    }
    let dy = rng.gen_range(-max_shift..=max_shift);
    let dx = rng.gen_range(-max_shift..=max_shift);
    shift(&flipped, dy, dx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn img2x2() -> Tensor {
        Tensor::from_vec(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 4.0])
    }

    #[test]
    fn hflip_mirrors_columns() {
        assert_eq!(hflip(&img2x2()).data(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn hflip_is_involutive() {
        let img = img2x2();
        assert_eq!(hflip(&hflip(&img)), img);
    }

    #[test]
    fn shift_zero_is_identity() {
        let img = img2x2();
        assert_eq!(shift(&img, 0, 0), img);
    }

    #[test]
    fn shift_right_fills_zero() {
        assert_eq!(shift(&img2x2(), 0, 1).data(), &[0.0, 1.0, 0.0, 3.0]);
    }

    #[test]
    fn shift_down_fills_zero() {
        assert_eq!(shift(&img2x2(), 1, 0).data(), &[0.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn shift_negative_directions() {
        assert_eq!(shift(&img2x2(), -1, 0).data(), &[3.0, 4.0, 0.0, 0.0]);
        assert_eq!(shift(&img2x2(), 0, -1).data(), &[2.0, 0.0, 4.0, 0.0]);
    }

    #[test]
    fn shift_out_of_frame_is_black() {
        assert_eq!(shift(&img2x2(), 2, 0).sum(), 0.0);
    }

    #[test]
    fn shift_multi_channel_is_per_channel() {
        let img = Tensor::from_vec(vec![2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(shift(&img, 0, 1).data(), &[0.0, 1.0, 0.0, 3.0]);
    }

    #[test]
    fn random_augment_preserves_shape_and_is_seeded() {
        let img = img2x2();
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = StdRng::seed_from_u64(11);
        let a = random_augment(&img, 1, &mut r1);
        let b = random_augment(&img, 1, &mut r2);
        assert_eq!(a.shape().dims(), &[1, 2, 2]);
        assert_eq!(a, b);
    }
}
