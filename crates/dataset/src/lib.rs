//! Synthetic CIFAR-like dataset for the training experiments.
//!
//! The paper trains ResNet-18 and VGG-11 on CIFAR-10. CIFAR-10 itself is not
//! redistributable here, so this crate provides a **seeded, procedurally
//! generated** stand-in: ten visually distinct texture/shape classes rendered
//! as 3-channel images with per-sample colour, position and phase jitter plus
//! additive noise. The substitution is documented in DESIGN.md §2 — the
//! paper's accuracy claims are *relative* (FP32 vs quantized vs SNN), which a
//! learnable 10-class image task preserves.
//!
//! The class designs deliberately mix global structure (gradients), local
//! texture (checkerboards, stripes at several frequencies) and shapes (disk,
//! ring, cross, corner blobs) so that a convolutional hierarchy is genuinely
//! required: a linear classifier on raw pixels scores far below a small CNN.
//!
//! # Examples
//!
//! ```
//! use sia_dataset::{SynthConfig, SynthDataset};
//!
//! let data = SynthDataset::generate(&SynthConfig::small(), 100, 20);
//! assert_eq!(data.train.len(), 100);
//! assert_eq!(data.test.len(), 20);
//! let (img, label) = data.train.get(0);
//! assert_eq!(img.shape().dims(), &[3, 16, 16]);
//! assert!(label < 10);
//! ```

#![forbid(unsafe_code)]

pub mod augment;
pub mod loader;
pub mod synth;

pub use loader::{BatchIter, LabelledSet};
pub use synth::{SynthConfig, SynthDataset, NUM_CLASSES};
