//! Labelled sample storage and mini-batch iteration.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use sia_tensor::Tensor;

/// An in-memory labelled image set.
///
/// # Examples
///
/// ```
/// use sia_dataset::LabelledSet;
/// use sia_tensor::Tensor;
/// let set = LabelledSet::new(vec![Tensor::zeros(vec![3, 4, 4])], vec![7]);
/// assert_eq!(set.len(), 1);
/// assert_eq!(set.get(0).1, 7);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LabelledSet {
    images: Vec<Tensor>,
    labels: Vec<usize>,
}

impl LabelledSet {
    /// Creates a set from parallel vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    #[must_use]
    pub fn new(images: Vec<Tensor>, labels: Vec<usize>) -> Self {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        LabelledSet { images, labels }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Sample `i` as `(image, label)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn get(&self, i: usize) -> (&Tensor, usize) {
        (&self.images[i], self.labels[i])
    }

    /// All labels.
    #[must_use]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Takes the first `n` samples as a new set (cheap truncation for quick
    /// experiments).
    #[must_use]
    pub fn take(&self, n: usize) -> LabelledSet {
        let n = n.min(self.len());
        LabelledSet {
            images: self.images[..n].to_vec(),
            labels: self.labels[..n].to_vec(),
        }
    }

    /// Applies `f` to every image in place (normalisation, augmentation).
    pub fn map_images(&mut self, mut f: impl FnMut(&mut Tensor)) {
        for img in &mut self.images {
            f(img);
        }
    }

    /// Iterator over shuffled mini-batches; each yield is a stacked
    /// `[B,C,H,W]` tensor and its labels. The final short batch is yielded.
    #[must_use]
    pub fn batches<'a>(&'a self, batch_size: usize, rng: &mut StdRng) -> BatchIter<'a> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        BatchIter {
            set: self,
            order,
            pos: 0,
            batch_size,
        }
    }

    /// Iterator over batches in storage order (deterministic evaluation).
    #[must_use]
    pub fn batches_sequential(&self, batch_size: usize) -> BatchIter<'_> {
        assert!(batch_size > 0, "batch size must be positive");
        BatchIter {
            set: self,
            order: (0..self.len()).collect(),
            pos: 0,
            batch_size,
        }
    }
}

/// Mini-batch iterator produced by [`LabelledSet::batches`].
#[derive(Debug)]
pub struct BatchIter<'a> {
    set: &'a LabelledSet,
    order: Vec<usize>,
    pos: usize,
    batch_size: usize,
}

impl Iterator for BatchIter<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.order.len() {
            return None;
        }
        let end = (self.pos + self.batch_size).min(self.order.len());
        let idxs = &self.order[self.pos..end];
        self.pos = end;
        let imgs: Vec<Tensor> = idxs.iter().map(|&i| self.set.images[i].clone()).collect();
        let labels: Vec<usize> = idxs.iter().map(|&i| self.set.labels[i]).collect();
        Some((Tensor::stack(&imgs), labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_set(n: usize) -> LabelledSet {
        let images = (0..n)
            .map(|i| Tensor::full(vec![1, 2, 2], i as f32))
            .collect();
        let labels = (0..n).map(|i| i % 3).collect();
        LabelledSet::new(images, labels)
    }

    #[test]
    fn batches_cover_everything_once() {
        let set = tiny_set(10);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = vec![0usize; 10];
        for (imgs, labels) in set.batches(3, &mut rng) {
            assert_eq!(imgs.shape().dim(0), labels.len());
            for b in 0..labels.len() {
                let v = imgs.batch_item(b).data()[0] as usize;
                seen[v] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn final_short_batch_is_yielded() {
        let set = tiny_set(7);
        let sizes: Vec<usize> = set
            .batches_sequential(3)
            .map(|(t, _)| t.shape().dim(0))
            .collect();
        assert_eq!(sizes, vec![3, 3, 1]);
    }

    #[test]
    fn sequential_batches_preserve_order() {
        let set = tiny_set(4);
        let (imgs, labels) = set.batches_sequential(4).next().unwrap();
        assert_eq!(labels, vec![0, 1, 2, 0]);
        assert_eq!(imgs.batch_item(2).data()[0], 2.0);
    }

    #[test]
    fn shuffle_depends_on_rng_seed() {
        let set = tiny_set(32);
        let collect = |seed: u64| -> Vec<usize> {
            let mut rng = StdRng::seed_from_u64(seed);
            set.batches(32, &mut rng).next().unwrap().1
        };
        assert_ne!(collect(1), collect(2));
        assert_eq!(collect(5), collect(5));
    }

    #[test]
    fn take_truncates() {
        let set = tiny_set(10).take(4);
        assert_eq!(set.len(), 4);
        assert_eq!(set.take(100).len(), 4); // over-take is clamped
    }

    #[test]
    fn map_images_mutates_in_place() {
        let mut set = tiny_set(3);
        set.map_images(|img| img.map_inplace(|x| x + 1.0));
        assert_eq!(set.get(0).0.data()[0], 1.0);
        assert_eq!(set.get(2).0.data()[0], 3.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_construction_rejected() {
        let _ = LabelledSet::new(vec![Tensor::zeros(vec![1])], vec![]);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let set = tiny_set(2);
        let _ = set.batches_sequential(0);
    }
}
