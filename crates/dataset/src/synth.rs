//! Procedural 10-class image generator.

use crate::loader::LabelledSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sia_tensor::Tensor;
use std::f32::consts::PI;

/// Number of classes, matching CIFAR-10.
pub const NUM_CLASSES: usize = 10;

/// Generation parameters for the synthetic dataset.
///
/// # Examples
///
/// ```
/// use sia_dataset::SynthConfig;
/// let cfg = SynthConfig::cifar_like();
/// assert_eq!(cfg.image_size, 32);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SynthConfig {
    /// Square image side in pixels.
    pub image_size: usize,
    /// Standard deviation of the additive Gaussian pixel noise.
    pub noise_std: f32,
    /// Master seed; the dataset is a pure function of the config.
    pub seed: u64,
}

impl SynthConfig {
    /// CIFAR-10-shaped images (3×32×32).
    #[must_use]
    pub fn cifar_like() -> Self {
        SynthConfig {
            image_size: 32,
            noise_std: 0.08,
            seed: 0x51A_2024,
        }
    }

    /// Small 3×16×16 images — same task at a quarter of the compute; used by
    /// the fast training loops in tests and figures.
    #[must_use]
    pub fn small() -> Self {
        SynthConfig {
            image_size: 16,
            noise_std: 0.08,
            seed: 0x51A_2024,
        }
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig::cifar_like()
    }
}

/// A generated train/test split.
#[derive(Clone, Debug)]
pub struct SynthDataset {
    /// Training samples.
    pub train: LabelledSet,
    /// Held-out test samples.
    pub test: LabelledSet,
    /// The configuration the data was generated from.
    pub config: SynthConfig,
}

impl SynthDataset {
    /// Generates `n_train` + `n_test` samples with balanced classes.
    /// Deterministic for a given config.
    ///
    /// # Examples
    ///
    /// ```
    /// use sia_dataset::{SynthConfig, SynthDataset};
    /// let a = SynthDataset::generate(&SynthConfig::small(), 10, 10);
    /// let b = SynthDataset::generate(&SynthConfig::small(), 10, 10);
    /// assert_eq!(a.train.get(3).0.data(), b.train.get(3).0.data());
    /// ```
    #[must_use]
    pub fn generate(config: &SynthConfig, n_train: usize, n_test: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let train = generate_set(config, n_train, &mut rng);
        let test = generate_set(config, n_test, &mut rng);
        SynthDataset {
            train,
            test,
            config: *config,
        }
    }
}

fn generate_set(config: &SynthConfig, n: usize, rng: &mut StdRng) -> LabelledSet {
    let mut images = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % NUM_CLASSES; // balanced
        images.push(render_class(class, config, rng));
        labels.push(class);
    }
    LabelledSet::new(images, labels)
}

/// Renders one sample of `class` under per-sample jitter.
///
/// # Panics
///
/// Panics if `class >= NUM_CLASSES`.
pub fn render_class(class: usize, config: &SynthConfig, rng: &mut StdRng) -> Tensor {
    assert!(class < NUM_CLASSES, "class {class} out of range");
    let s = config.image_size;
    let sf = s as f32;
    // Per-sample jitter: phase, centre offset, base colour, scale.
    let phase: f32 = rng.gen_range(0.0..(2.0 * PI));
    let cx = sf / 2.0 + rng.gen_range(-0.15..0.15) * sf;
    let cy = sf / 2.0 + rng.gen_range(-0.15..0.15) * sf;
    let colour: [f32; 3] = [
        rng.gen_range(0.4..1.0),
        rng.gen_range(0.4..1.0),
        rng.gen_range(0.4..1.0),
    ];
    let freq = rng.gen_range(0.8..1.2);
    let mut data = vec![0.0f32; 3 * s * s];
    for y in 0..s {
        for x in 0..s {
            let xf = x as f32;
            let yf = y as f32;
            let v = match class {
                // 0: horizontal stripes
                0 => 0.5 + 0.5 * (freq * yf * 2.0 * PI / 4.0 + phase).sin(),
                // 1: vertical stripes
                1 => 0.5 + 0.5 * (freq * xf * 2.0 * PI / 4.0 + phase).sin(),
                // 2: diagonal stripes
                2 => 0.5 + 0.5 * (freq * (xf + yf) * 2.0 * PI / 6.0 + phase).sin(),
                // 3: checkerboard
                3 => {
                    let cell = (s / 8).max(2);
                    if ((x / cell) + (y / cell)).is_multiple_of(2) {
                        0.9
                    } else {
                        0.1
                    }
                }
                // 4: filled disk
                4 => {
                    let r = ((xf - cx).powi(2) + (yf - cy).powi(2)).sqrt();
                    if r < sf * 0.28 {
                        0.95
                    } else {
                        0.05
                    }
                }
                // 5: ring
                5 => {
                    let r = ((xf - cx).powi(2) + (yf - cy).powi(2)).sqrt();
                    if (r - sf * 0.3).abs() < sf * 0.08 {
                        0.95
                    } else {
                        0.05
                    }
                }
                // 6: horizontal then vertical gradient per half
                6 => {
                    if yf < sf / 2.0 {
                        xf / sf
                    } else {
                        1.0 - xf / sf
                    }
                }
                // 7: centred cross
                7 => {
                    let band = sf * 0.12;
                    if (xf - cx).abs() < band || (yf - cy).abs() < band {
                        0.9
                    } else {
                        0.08
                    }
                }
                // 8: four corner blobs
                8 => {
                    let corners = [
                        (sf * 0.2, sf * 0.2),
                        (sf * 0.8, sf * 0.2),
                        (sf * 0.2, sf * 0.8),
                        (sf * 0.8, sf * 0.8),
                    ];
                    let near = corners
                        .iter()
                        .map(|&(ax, ay)| ((xf - ax).powi(2) + (yf - ay).powi(2)).sqrt())
                        .fold(f32::INFINITY, f32::min);
                    if near < sf * 0.15 {
                        0.95
                    } else {
                        0.05
                    }
                }
                // 9: radial sinusoid (bullseye texture)
                _ => {
                    let r = ((xf - cx).powi(2) + (yf - cy).powi(2)).sqrt();
                    0.5 + 0.5 * (freq * r * 2.0 * PI / 5.0 + phase).sin()
                }
            };
            for (c, &tint) in colour.iter().enumerate() {
                let noise: f32 = {
                    // Box-Muller from two uniforms; cheap and deterministic.
                    let u1: f32 = rng.gen_range(1e-6..1.0);
                    let u2: f32 = rng.gen_range(0.0..1.0);
                    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
                };
                let px = (v * tint + config.noise_std * noise).clamp(0.0, 1.0);
                data[(c * s + y) * s + x] = px;
            }
        }
    }
    Tensor::from_vec(vec![3, s, s], data)
}

/// Per-channel mean/std normalisation statistics over a set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelStats {
    /// Per-channel means.
    pub mean: [f32; 3],
    /// Per-channel standard deviations.
    pub std: [f32; 3],
}

/// Computes per-channel statistics of a labelled set.
///
/// # Panics
///
/// Panics if the set is empty.
#[must_use]
pub fn channel_stats(set: &LabelledSet) -> ChannelStats {
    assert!(!set.is_empty(), "cannot compute stats of an empty set");
    let mut sum = [0.0f64; 3];
    let mut sum_sq = [0.0f64; 3];
    let mut count = [0usize; 3];
    for i in 0..set.len() {
        let (img, _) = set.get(i);
        let s = img.shape().dim(1) * img.shape().dim(2);
        for c in 0..3 {
            for &px in &img.data()[c * s..(c + 1) * s] {
                sum[c] += f64::from(px);
                sum_sq[c] += f64::from(px) * f64::from(px);
            }
            count[c] += s;
        }
    }
    let mut mean = [0.0f32; 3];
    let mut std = [0.0f32; 3];
    for c in 0..3 {
        let m = sum[c] / count[c] as f64;
        let var = (sum_sq[c] / count[c] as f64 - m * m).max(1e-12);
        mean[c] = m as f32;
        std[c] = var.sqrt() as f32;
    }
    ChannelStats { mean, std }
}

/// Normalises an image in place with the given statistics.
pub fn normalize(img: &mut Tensor, stats: &ChannelStats) {
    let s = img.shape().dim(1) * img.shape().dim(2);
    for c in 0..3 {
        let (m, d) = (stats.mean[c], stats.std[c].max(1e-6));
        for px in &mut img.data_mut()[c * s..(c + 1) * s] {
            *px = (*px - m) / d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::small();
        let a = SynthDataset::generate(&cfg, 20, 5);
        let b = SynthDataset::generate(&cfg, 20, 5);
        for i in 0..20 {
            assert_eq!(a.train.get(i).0.data(), b.train.get(i).0.data());
            assert_eq!(a.train.get(i).1, b.train.get(i).1);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg2 = SynthConfig::small();
        cfg2.seed = 99;
        let a = SynthDataset::generate(&SynthConfig::small(), 5, 0);
        let b = SynthDataset::generate(&cfg2, 5, 0);
        assert_ne!(a.train.get(0).0.data(), b.train.get(0).0.data());
    }

    #[test]
    fn classes_are_balanced() {
        let d = SynthDataset::generate(&SynthConfig::small(), 100, 50);
        let mut counts = [0usize; NUM_CLASSES];
        for i in 0..100 {
            counts[d.train.get(i).1] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn pixels_are_in_unit_range() {
        let d = SynthDataset::generate(&SynthConfig::small(), 30, 0);
        for i in 0..30 {
            let (img, _) = d.train.get(i);
            for &px in img.data() {
                assert!((0.0..=1.0).contains(&px), "pixel {px} out of range");
            }
        }
    }

    #[test]
    fn train_and_test_are_disjoint_draws() {
        // Same class index 0 in train and test must not be pixel-identical
        // (independent jitter draws).
        let d = SynthDataset::generate(&SynthConfig::small(), 10, 10);
        assert_ne!(d.train.get(0).0.data(), d.test.get(0).0.data());
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean intra-class pixel distance should be clearly below mean
        // inter-class distance — otherwise the task is unlearnable.
        let cfg = SynthConfig {
            noise_std: 0.02,
            ..SynthConfig::small()
        };
        let d = SynthDataset::generate(&cfg, 100, 0);
        let dist = |a: &Tensor, b: &Tensor| -> f32 {
            a.data()
                .iter()
                .zip(b.data())
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f32>()
        };
        let mut intra = (0.0f32, 0usize);
        let mut inter = (0.0f32, 0usize);
        for i in 0..40 {
            for j in (i + 1)..40 {
                let (a, la) = d.train.get(i);
                let (b, lb) = d.train.get(j);
                let dd = dist(a, b);
                if la == lb {
                    intra = (intra.0 + dd, intra.1 + 1);
                } else {
                    inter = (inter.0 + dd, inter.1 + 1);
                }
            }
        }
        let intra_mean = intra.0 / intra.1 as f32;
        let inter_mean = inter.0 / inter.1 as f32;
        assert!(
            inter_mean > 1.2 * intra_mean,
            "inter {inter_mean} not above intra {intra_mean}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn render_class_checks_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = render_class(10, &SynthConfig::small(), &mut rng);
    }

    #[test]
    fn channel_stats_and_normalize() {
        let d = SynthDataset::generate(&SynthConfig::small(), 50, 0);
        let stats = channel_stats(&d.train);
        for c in 0..3 {
            assert!(stats.mean[c] > 0.1 && stats.mean[c] < 0.9);
            assert!(stats.std[c] > 0.05);
        }
        let (img, _) = d.train.get(0);
        let mut norm = img.clone();
        normalize(&mut norm, &stats);
        // normalised image should roughly centre near zero
        assert!(norm.mean().abs() < 1.0);
    }

    #[test]
    fn image_size_is_respected() {
        let cfg = SynthConfig {
            image_size: 8,
            ..SynthConfig::small()
        };
        let d = SynthDataset::generate(&cfg, 2, 0);
        assert_eq!(d.train.get(0).0.shape().dims(), &[3, 8, 8]);
    }
}
