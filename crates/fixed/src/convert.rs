//! Symmetric INT8 quantisation with power-of-two scales.
//!
//! The conversion flow of the paper (§II-A, Fig. 1) ports all network
//! parameters to INT8. A weight tensor `w` is represented as
//! `w ≈ q · s` where `q ∈ [−128, 127]` and `s = 2^(−shift)` is the per-layer
//! scale `q_w`. Power-of-two scales keep the hardware multiplier-free: a
//! rescale is a barrel shift, and the batch-norm fold (Eq. 2) absorbs the
//! scale into the `G`/`H` coefficients.

use crate::sat::clamp8;
use std::fmt;

/// A symmetric power-of-two quantisation scale `s = 2^(−shift)`.
///
/// `shift` is the number of fractional bits kept in the INT8 code; e.g. a
/// layer whose weights live in (−1, 1) typically uses `shift = 7` so that the
/// code `127` represents `0.9921875`.
///
/// # Examples
///
/// ```
/// use sia_fixed::QuantScale;
/// let s = QuantScale::for_max_abs(0.9);
/// assert_eq!(s.shift(), 7);
/// assert!((s.scale() - 1.0 / 128.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct QuantScale {
    shift: u8,
}

impl QuantScale {
    /// Creates a scale of `2^(−shift)`.
    ///
    /// # Panics
    ///
    /// Panics if `shift > 15`; larger shifts would underflow every INT8 code
    /// in the 16-bit datapath.
    #[must_use]
    pub fn new(shift: u8) -> Self {
        assert!(shift <= 15, "quantisation shift {shift} exceeds datapath");
        QuantScale { shift }
    }

    /// Chooses the largest power-of-two scale such that `max_abs` still fits
    /// in an INT8 code, i.e. the tightest `shift` with
    /// `max_abs / 2^(−shift) ≤ 127`.
    ///
    /// Degenerate inputs (`max_abs ≤ 0`, NaN) fall back to `shift = 7`.
    #[must_use]
    pub fn for_max_abs(max_abs: f32) -> Self {
        if max_abs <= 0.0 || max_abs.is_nan() || !max_abs.is_finite() {
            return QuantScale { shift: 7 };
        }
        // Want 2^(-shift) >= max_abs / 127  =>  shift <= log2(127 / max_abs)
        let shift = (127.0 / max_abs).log2().floor();
        let shift = shift.clamp(0.0, 15.0) as u8;
        QuantScale { shift }
    }

    /// The number of fractional bits.
    #[inline]
    #[must_use]
    pub fn shift(self) -> u8 {
        self.shift
    }

    /// The real value of one INT8 LSB, `2^(−shift)`.
    #[inline]
    #[must_use]
    pub fn scale(self) -> f32 {
        1.0 / (1i32 << self.shift) as f32
    }
}

impl fmt::Display for QuantScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "2^-{}", self.shift)
    }
}

/// Quantises one real value to an INT8 code under `scale`, rounding to
/// nearest (half away from zero) and saturating at ±127/−128.
///
/// # Examples
///
/// ```
/// use sia_fixed::{quantize_i8, QuantScale};
/// let s = QuantScale::new(7);
/// assert_eq!(quantize_i8(0.5, s), 64);
/// assert_eq!(quantize_i8(10.0, s), 127);
/// assert_eq!(quantize_i8(-10.0, s), -128);
/// ```
#[must_use]
pub fn quantize_i8(v: f32, scale: QuantScale) -> i8 {
    if v.is_nan() {
        return 0;
    }
    let code = (v / scale.scale()).round();
    if code >= i32::MAX as f32 {
        i8::MAX
    } else if code <= i32::MIN as f32 {
        i8::MIN
    } else {
        clamp8(code as i32)
    }
}

/// Recovers the real value of an INT8 code under `scale`.
///
/// # Examples
///
/// ```
/// use sia_fixed::{dequantize_i8, QuantScale};
/// assert_eq!(dequantize_i8(64, QuantScale::new(7)), 0.5);
/// ```
#[inline]
#[must_use]
pub fn dequantize_i8(q: i8, scale: QuantScale) -> f32 {
    f32::from(q) * scale.scale()
}

/// Quantises a whole slice, returning the codes and the scale chosen from the
/// slice's max-abs (the per-layer `q_w` of the paper).
///
/// # Examples
///
/// ```
/// use sia_fixed::convert::quantize_slice;
/// let (codes, scale) = quantize_slice(&[0.5, -0.25, 0.75]);
/// assert_eq!(scale.shift(), 7);
/// assert_eq!(codes, vec![64, -32, 96]);
/// ```
#[must_use]
pub fn quantize_slice(vals: &[f32]) -> (Vec<i8>, QuantScale) {
    let max_abs = vals.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let scale = QuantScale::for_max_abs(max_abs);
    let codes = vals.iter().map(|&v| quantize_i8(v, scale)).collect();
    (codes, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_max_abs_tight_fit() {
        // max_abs = 127 * 2^-7 = 0.9921875 must still fit at shift 7.
        let s = QuantScale::for_max_abs(0.9921875);
        assert_eq!(s.shift(), 7);
        assert_eq!(quantize_i8(0.9921875, s), 127);
    }

    #[test]
    fn for_max_abs_large_values_use_small_shift() {
        let s = QuantScale::for_max_abs(100.0);
        assert_eq!(s.shift(), 0);
        assert_eq!(quantize_i8(100.0, s), 100);
    }

    #[test]
    fn for_max_abs_tiny_values_clamp_to_15() {
        let s = QuantScale::for_max_abs(1e-9);
        assert_eq!(s.shift(), 15);
    }

    #[test]
    fn for_max_abs_degenerate_defaults() {
        assert_eq!(QuantScale::for_max_abs(0.0).shift(), 7);
        assert_eq!(QuantScale::for_max_abs(-1.0).shift(), 7);
        assert_eq!(QuantScale::for_max_abs(f32::NAN).shift(), 7);
    }

    #[test]
    fn quantize_rounds_to_nearest() {
        let s = QuantScale::new(7);
        // 0.5039… is between codes 64 and 65; nearest is 65 at ≥ 64.5 LSB
        assert_eq!(quantize_i8(64.4 / 128.0, s), 64);
        assert_eq!(quantize_i8(64.6 / 128.0, s), 65);
    }

    #[test]
    fn quantize_nan_is_zero() {
        assert_eq!(quantize_i8(f32::NAN, QuantScale::new(7)), 0);
    }

    #[test]
    fn quantize_infinity_saturates() {
        assert_eq!(quantize_i8(f32::INFINITY, QuantScale::new(7)), i8::MAX);
        assert_eq!(quantize_i8(f32::NEG_INFINITY, QuantScale::new(7)), i8::MIN);
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_lsb() {
        let s = QuantScale::new(5);
        for i in -100..100 {
            let v = i as f32 * 0.03;
            if v.abs() > 127.0 * s.scale() {
                continue;
            }
            let q = quantize_i8(v, s);
            let err = (dequantize_i8(q, s) - v).abs();
            assert!(err <= 0.5 * s.scale() + 1e-6, "v={v} err={err}");
        }
    }

    #[test]
    fn quantize_slice_picks_layer_scale() {
        let (codes, scale) = quantize_slice(&[2.0, -1.0, 0.5]);
        assert_eq!(scale.shift(), 5); // 2.0 * 2^5 = 64 ≤ 127; 2^6 would be 128 > 127
        assert_eq!(codes[0], 64);
        assert_eq!(codes[1], -32);
        assert_eq!(codes[2], 16);
    }

    #[test]
    fn quantize_empty_slice() {
        let (codes, scale) = quantize_slice(&[]);
        assert!(codes.is_empty());
        assert_eq!(scale.shift(), 7);
    }

    #[test]
    fn display_formats() {
        assert_eq!(QuantScale::new(7).to_string(), "2^-7");
    }
}
