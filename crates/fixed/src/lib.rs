//! Fixed-point arithmetic substrate for the SIA hardware path.
//!
//! The spiking inference accelerator described in the paper is multiplier-free
//! in its processing elements and uses narrow integer arithmetic everywhere:
//!
//! * synaptic **weights** are INT8 (`i8`) with a per-layer power-of-two scale,
//! * **partial sums**, **membrane potentials** and **thresholds** are 16-bit
//!   saturating integers ("accumulated partial sum (16 bits)" in §III-A),
//! * **batch-norm coefficients** `G`/`H` are 16-bit fixed point values used by
//!   the aggregation core to evaluate `y·G − H` (paper Eq. 2).
//!
//! This crate provides the numeric building blocks shared by the functional
//! SNN simulator (`sia-snn`) and the cycle-level accelerator model
//! (`sia-accel`), so that the two can be proven bit-exact against each other:
//!
//! * [`Q8_8`] — signed 16-bit fixed point with 8 fractional bits, the format
//!   of the batch-norm coefficients,
//! * [`sat`] — saturating add/sub/shift helpers mirroring the RTL datapath,
//! * [`convert`] — float↔fixed conversion and symmetric INT8 quantisation
//!   with power-of-two scales.
//!
//! # Examples
//!
//! ```
//! use sia_fixed::Q8_8;
//!
//! let g = Q8_8::from_f32(1.5);
//! let y = 20i16; // an accumulated partial sum
//! // Aggregation-core batchnorm: y*G in Q8.8, rounded back to integer.
//! assert_eq!(g.mul_int(y), 30);
//! ```

#![forbid(unsafe_code)]

pub mod convert;
pub mod q;
pub mod sat;

pub use convert::{dequantize_i8, quantize_i8, QuantScale};
pub use q::Q8_8;
pub use sat::Saturation;

#[cfg(test)]
mod proptests;
