//! Property-based tests for the fixed-point substrate.

use crate::convert::{dequantize_i8, quantize_i8, quantize_slice, QuantScale};
use crate::q::Q8_8;
use crate::sat::{acc_weight, add16, asr16, clamp16, sub16};
use proptest::prelude::*;

proptest! {
    #[test]
    fn add16_matches_wide_arithmetic(a: i16, b: i16) {
        let wide = i32::from(a) + i32::from(b);
        prop_assert_eq!(i32::from(add16(a, b)), wide.clamp(i32::from(i16::MIN), i32::from(i16::MAX)));
    }

    #[test]
    fn sub16_matches_wide_arithmetic(a: i16, b: i16) {
        let wide = i32::from(a) - i32::from(b);
        prop_assert_eq!(i32::from(sub16(a, b)), wide.clamp(i32::from(i16::MIN), i32::from(i16::MAX)));
    }

    #[test]
    fn acc_weight_equals_add16_of_widened(psum: i16, w: i8) {
        prop_assert_eq!(acc_weight(psum, w), add16(psum, i16::from(w)));
    }

    #[test]
    fn asr16_never_changes_sign_to_opposite(v: i16, s in 0u32..40) {
        let r = asr16(v, s);
        if v >= 0 { prop_assert!(r >= 0); } else { prop_assert!(r <= 0); }
    }

    #[test]
    fn clamp16_is_idempotent(v: i32) {
        let once = clamp16(v);
        prop_assert_eq!(clamp16(i32::from(once)), once);
    }

    #[test]
    fn q88_roundtrip_within_half_lsb(v in -127.0f32..127.0) {
        let q = Q8_8::from_f32(v);
        prop_assert!((q.to_f32() - v).abs() <= Q8_8::max_conversion_error() + 1e-6);
    }

    #[test]
    fn q88_mul_int_close_to_float(g in -16.0f32..16.0, y in -1000i16..1000) {
        let q = Q8_8::from_f32(g);
        let exact = q.to_f32() * f32::from(y);
        let got = f32::from(q.mul_int(y));
        // rounding to integer: error at most 0.5 plus the clamp
        if exact.abs() < 32000.0 {
            prop_assert!((got - exact).abs() <= 0.5 + 1e-3, "g={g} y={y} got={got} exact={exact}");
        }
    }

    #[test]
    fn q88_add_is_commutative(a: i16, b: i16) {
        let (a, b) = (Q8_8::from_raw(a), Q8_8::from_raw(b));
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn q88_mul_is_commutative(a: i16, b: i16) {
        let (a, b) = (Q8_8::from_raw(a), Q8_8::from_raw(b));
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn q88_one_is_mul_identity_for_ints(y: i16) {
        prop_assert_eq!(Q8_8::ONE.mul_int(y), y);
    }

    #[test]
    fn quantize_dequantize_error_bounded(v in -1.0f32..1.0) {
        let s = QuantScale::new(7);
        let q = quantize_i8(v, s);
        let back = dequantize_i8(q, s);
        // in-range values: half-LSB; the extremes saturate at one LSB
        prop_assert!((back - v).abs() <= s.scale() + 1e-6);
    }

    #[test]
    fn quantize_is_monotone(a in -2.0f32..2.0, b in -2.0f32..2.0) {
        let s = QuantScale::new(6);
        if a <= b {
            prop_assert!(quantize_i8(a, s) <= quantize_i8(b, s));
        }
    }

    #[test]
    fn quantize_slice_never_overflows(vals in proptest::collection::vec(-1000.0f32..1000.0, 0..64)) {
        let (codes, scale) = quantize_slice(&vals);
        let representable = 127.0 * scale.scale();
        for (c, v) in codes.iter().zip(&vals) {
            let back = dequantize_i8(*c, scale);
            if v.abs() <= representable {
                // in-range values: error bounded by one LSB of the chosen scale
                prop_assert!((back - v).abs() <= scale.scale() + 1e-4,
                    "v={v} back={back} scale={scale}");
            } else {
                // the layer max-abs exceeded the INT8 range even at shift 0
                // (|v| > 127·scale): either the code sits at a saturation
                // rail, or v was within half an LSB of the last code
                prop_assert!(
                    *c == i8::MAX
                        || *c == i8::MIN
                        || (back - v).abs() <= 0.5 * scale.scale() + 1e-4
                );
            }
        }
    }
}
