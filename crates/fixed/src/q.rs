//! The Q8.8 signed fixed-point format of the aggregation core.
//!
//! §III-B of the paper: batch normalisation "involves real-valued
//! multiplications, performed by fixed-point multipliers", with "accumulated
//! spikes and batchnorm coefficients ... represented in higher precision
//! (16 bit)". We model those coefficients as signed 16-bit values with 8
//! fractional bits (range −128.0 … +127.996, resolution 1/256), the natural
//! choice for coefficients `G = γ·q_w/√(σ²+ε)` and `H = μ·G/q_w − β` whose
//! magnitudes for trained networks sit well inside ±128.

use crate::sat::{clamp16, Saturation};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Number of fractional bits in [`Q8_8`].
pub const FRAC_BITS: u32 = 8;

/// Scale factor (2^8) between a [`Q8_8`] raw value and the real it encodes.
pub const ONE_RAW: i16 = 1 << FRAC_BITS;

/// Signed 16-bit fixed point with 8 integer and 8 fractional bits.
///
/// Arithmetic saturates at the 16-bit rails, mirroring the hardware
/// multiplier/adder in the aggregation core. Rounding is round-half-away-
/// from-zero, which is what a hardware "add half LSB then truncate toward
/// zero" rounder produces.
///
/// # Examples
///
/// ```
/// use sia_fixed::Q8_8;
/// let a = Q8_8::from_f32(2.5);
/// let b = Q8_8::from_f32(-0.5);
/// assert_eq!((a * b).to_f32(), -1.25);
/// assert_eq!((a + b).to_f32(), 2.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Q8_8(i16);

impl Q8_8 {
    /// The value 0.0.
    pub const ZERO: Q8_8 = Q8_8(0);
    /// The value 1.0.
    pub const ONE: Q8_8 = Q8_8(ONE_RAW);
    /// Largest representable value (+127.99609375).
    pub const MAX: Q8_8 = Q8_8(i16::MAX);
    /// Smallest representable value (−128.0).
    pub const MIN: Q8_8 = Q8_8(i16::MIN);

    /// Builds a value from its raw 16-bit two's-complement encoding.
    ///
    /// # Examples
    ///
    /// ```
    /// use sia_fixed::Q8_8;
    /// assert_eq!(Q8_8::from_raw(256), Q8_8::ONE);
    /// ```
    #[inline]
    #[must_use]
    pub const fn from_raw(raw: i16) -> Self {
        Q8_8(raw)
    }

    /// Returns the raw 16-bit encoding, as it would be streamed over AXI to
    /// the accelerator's configuration registers.
    #[inline]
    #[must_use]
    pub const fn to_raw(self) -> i16 {
        self.0
    }

    /// Converts from `f32`, rounding to the nearest representable value and
    /// saturating out-of-range inputs (including infinities). NaN maps to 0,
    /// mirroring a hardware converter that treats an invalid pattern as zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use sia_fixed::Q8_8;
    /// assert_eq!(Q8_8::from_f32(1.0 / 256.0).to_raw(), 1);
    /// assert_eq!(Q8_8::from_f32(1e9), Q8_8::MAX);
    /// assert_eq!(Q8_8::from_f32(f32::NAN), Q8_8::ZERO);
    /// ```
    #[must_use]
    pub fn from_f32(v: f32) -> Self {
        Self::try_from_f32(v).0
    }

    /// Checked variant of [`Q8_8::from_f32`]: returns the converted value
    /// together with a [`Saturation`] status telling whether the input was
    /// representable. The runtime converter and the static checker
    /// (`sia-check`) share this single saturation definition.
    ///
    /// # Examples
    ///
    /// ```
    /// use sia_fixed::{Q8_8, Saturation};
    /// assert_eq!(Q8_8::try_from_f32(1.5), (Q8_8::from_f32(1.5), Saturation::Exact));
    /// assert_eq!(Q8_8::try_from_f32(500.0), (Q8_8::MAX, Saturation::Clamped));
    /// assert_eq!(Q8_8::try_from_f32(f32::NAN), (Q8_8::ZERO, Saturation::Clamped));
    /// ```
    #[must_use]
    pub fn try_from_f32(v: f32) -> (Self, Saturation) {
        if v.is_nan() {
            return (Q8_8::ZERO, Saturation::Clamped);
        }
        let scaled = (v * ONE_RAW as f32).round();
        if scaled > i16::MAX as f32 {
            (Q8_8::MAX, Saturation::Clamped)
        } else if scaled < i16::MIN as f32 {
            (Q8_8::MIN, Saturation::Clamped)
        } else {
            (Q8_8(scaled as i16), Saturation::Exact)
        }
    }

    /// Converts back to `f32` (exact: every Q8.8 value is an f32).
    #[inline]
    #[must_use]
    pub fn to_f32(self) -> f32 {
        f32::from(self.0) / ONE_RAW as f32
    }

    /// Multiplies a 16-bit integer (an accumulated partial sum) by this
    /// coefficient and rounds back to an integer, saturating at the rails:
    /// the core of the aggregation-core batchnorm `y·G`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sia_fixed::Q8_8;
    /// assert_eq!(Q8_8::from_f32(0.5).mul_int(5), 3); // 2.5 rounds away from zero
    /// assert_eq!(Q8_8::from_f32(0.5).mul_int(-5), -3);
    /// assert_eq!(Q8_8::from_f32(2.0).mul_int(20_000), i16::MAX);
    /// ```
    #[must_use]
    pub fn mul_int(self, y: i16) -> i16 {
        let prod = i32::from(self.0) * i32::from(y); // Q8.8 × Q16.0 = Q24.8
        let half = 1i32 << (FRAC_BITS - 1);
        let rounded = if prod >= 0 {
            (prod + half) >> FRAC_BITS
        } else {
            -((-prod + half) >> FRAC_BITS)
        };
        clamp16(rounded)
    }

    /// Like [`Q8_8::mul_int`] but for a 32-bit integer operand — the
    /// PS-side frame-conversion path, where the dense-input partial sum
    /// exceeds 16 bits before batch-norm scaling brings it back into the
    /// membrane range. Identical rounding; saturates to the 16-bit rails.
    ///
    /// # Examples
    ///
    /// ```
    /// use sia_fixed::Q8_8;
    /// assert_eq!(Q8_8::from_f32(0.0078125).mul_int_wide(400_000), 3125);
    /// assert_eq!(Q8_8::ONE.mul_int_wide(400_000), i16::MAX);
    /// ```
    #[must_use]
    pub fn mul_int_wide(self, y: i32) -> i16 {
        let prod = i64::from(self.0) * i64::from(y); // Q8.8 × Q32.0 = Q40.8
        let half = 1i64 << (FRAC_BITS - 1);
        let rounded = if prod >= 0 {
            (prod + half) >> FRAC_BITS
        } else {
            -((-prod + half) >> FRAC_BITS)
        };
        if rounded > i64::from(i16::MAX) {
            i16::MAX
        } else if rounded < i64::from(i16::MIN) {
            i16::MIN
        } else {
            rounded as i16
        }
    }

    /// Saturating fixed-point multiply (Q8.8 × Q8.8 → Q8.8).
    #[must_use]
    pub fn saturating_mul(self, rhs: Q8_8) -> Q8_8 {
        let prod = i32::from(self.0) * i32::from(rhs.0); // Q16.16
        let half = 1i32 << (FRAC_BITS - 1);
        let rounded = if prod >= 0 {
            (prod + half) >> FRAC_BITS
        } else {
            -((-prod + half) >> FRAC_BITS)
        };
        Q8_8(clamp16(rounded))
    }

    /// Saturating addition.
    #[inline]
    #[must_use]
    pub fn saturating_add(self, rhs: Q8_8) -> Q8_8 {
        Q8_8(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    #[must_use]
    pub fn saturating_sub(self, rhs: Q8_8) -> Q8_8 {
        Q8_8(self.0.saturating_sub(rhs.0))
    }

    /// Absolute value, saturating (|MIN| → MAX).
    #[inline]
    #[must_use]
    pub fn abs(self) -> Q8_8 {
        Q8_8(self.0.checked_abs().unwrap_or(i16::MAX))
    }

    /// Worst-case representation error of a single `f32 → Q8_8` conversion
    /// for an in-range input: half an LSB.
    #[must_use]
    pub fn max_conversion_error() -> f32 {
        0.5 / ONE_RAW as f32
    }
}

impl Add for Q8_8 {
    type Output = Q8_8;
    fn add(self, rhs: Q8_8) -> Q8_8 {
        self.saturating_add(rhs)
    }
}

impl Sub for Q8_8 {
    type Output = Q8_8;
    fn sub(self, rhs: Q8_8) -> Q8_8 {
        self.saturating_sub(rhs)
    }
}

impl Mul for Q8_8 {
    type Output = Q8_8;
    fn mul(self, rhs: Q8_8) -> Q8_8 {
        self.saturating_mul(rhs)
    }
}

impl Neg for Q8_8 {
    type Output = Q8_8;
    fn neg(self) -> Q8_8 {
        Q8_8(self.0.checked_neg().unwrap_or(i16::MAX))
    }
}

impl From<i8> for Q8_8 {
    /// Widens an INT8 integer value to Q8.8 (exact).
    fn from(v: i8) -> Self {
        Q8_8(i16::from(v) << FRAC_BITS)
    }
}

impl fmt::Debug for Q8_8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q8_8({})", self.to_f32())
    }
}

impl fmt::Display for Q8_8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_round_trips() {
        assert_eq!(Q8_8::from_f32(1.0), Q8_8::ONE);
        assert_eq!(Q8_8::ONE.to_f32(), 1.0);
    }

    #[test]
    fn from_f32_rounds_to_nearest() {
        // 0.0017 * 256 = 0.4352 → rounds to 0
        assert_eq!(Q8_8::from_f32(0.0017).to_raw(), 0);
        // 0.002 * 256 = 0.512 → rounds to 1
        assert_eq!(Q8_8::from_f32(0.002).to_raw(), 1);
    }

    #[test]
    fn from_f32_saturates() {
        assert_eq!(Q8_8::from_f32(200.0), Q8_8::MAX);
        assert_eq!(Q8_8::from_f32(-200.0), Q8_8::MIN);
        assert_eq!(Q8_8::from_f32(f32::INFINITY), Q8_8::MAX);
        assert_eq!(Q8_8::from_f32(f32::NEG_INFINITY), Q8_8::MIN);
    }

    #[test]
    fn mul_int_identity() {
        for y in [-300i16, -1, 0, 1, 7, 300] {
            assert_eq!(Q8_8::ONE.mul_int(y), y);
        }
    }

    #[test]
    fn mul_int_half_scales() {
        assert_eq!(Q8_8::from_f32(0.5).mul_int(100), 50);
        assert_eq!(Q8_8::from_f32(0.25).mul_int(100), 25);
    }

    #[test]
    fn mul_int_rounds_half_away_from_zero() {
        let half = Q8_8::from_f32(0.5);
        assert_eq!(half.mul_int(1), 1);
        assert_eq!(half.mul_int(-1), -1);
        assert_eq!(half.mul_int(3), 2); // 1.5 → 2
        assert_eq!(half.mul_int(-3), -2);
    }

    #[test]
    fn mul_int_saturates() {
        assert_eq!(Q8_8::MAX.mul_int(i16::MAX), i16::MAX);
        assert_eq!(Q8_8::MIN.mul_int(i16::MAX), i16::MIN);
    }

    #[test]
    fn fixed_mul_is_commutative_and_signed() {
        let a = Q8_8::from_f32(1.5);
        let b = Q8_8::from_f32(-2.0);
        assert_eq!(a * b, b * a);
        assert_eq!((a * b).to_f32(), -3.0);
    }

    #[test]
    fn add_sub_inverse() {
        let a = Q8_8::from_f32(3.25);
        let b = Q8_8::from_f32(1.75);
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn neg_of_min_saturates() {
        assert_eq!((-Q8_8::MIN), Q8_8::MAX);
    }

    #[test]
    fn from_i8_is_exact() {
        assert_eq!(Q8_8::from(-128i8).to_f32(), -128.0);
        assert_eq!(Q8_8::from(127i8).to_f32(), 127.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", Q8_8::ONE), "1");
        assert_eq!(format!("{:?}", Q8_8::ZERO), "Q8_8(0)");
    }
}

#[cfg(test)]
mod wide_tests {
    use super::*;

    #[test]
    fn mul_int_wide_agrees_with_mul_int_in_range() {
        for g in [-300i16, -7, 0, 5, 129, 20000] {
            let q = Q8_8::from_raw(g);
            for y in [-2000i16, -3, 0, 8, 1500] {
                assert_eq!(q.mul_int(y), q.mul_int_wide(i32::from(y)), "g={g} y={y}");
            }
        }
    }

    #[test]
    fn mul_int_wide_saturates_symmetrically() {
        assert_eq!(Q8_8::ONE.mul_int_wide(i32::MAX), i16::MAX);
        assert_eq!(Q8_8::ONE.mul_int_wide(i32::MIN), i16::MIN);
    }
}
