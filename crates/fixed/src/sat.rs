//! Saturating integer helpers mirroring the RTL datapath.
//!
//! Hardware adders of a fixed width either wrap or saturate; the SIA
//! accumulates 16-bit partial sums and membrane potentials, and a silent
//! wrap-around would flip the sign of a membrane potential and corrupt the
//! spike decision. The reference design therefore saturates. Every integer
//! operation performed by the aggregation core and the processing elements
//! goes through the helpers in this module so that the functional simulator
//! and the cycle-level machine share one definition of the datapath
//! semantics.

/// Outcome of a checked float → fixed-point conversion.
///
/// The converter and the static checker (`sia-check`) share this definition:
/// a conversion is [`Saturation::Clamped`] exactly when the runtime value
/// written into the model differs from the mathematically intended one —
/// i.e. the input fell outside the representable range (or was NaN, which a
/// hardware converter flushes to zero).
///
/// # Examples
///
/// ```
/// use sia_fixed::sat::{i16_from_f32, Saturation};
/// assert_eq!(i16_from_f32(1e9), (i16::MAX, Saturation::Clamped));
/// assert_eq!(i16_from_f32(2.5), (3, Saturation::Exact));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Saturation {
    /// The value was representable; the result is the rounded input.
    Exact,
    /// The value fell outside the representable range (or was NaN) and was
    /// clamped to a rail (NaN → 0).
    Clamped,
}

impl Saturation {
    /// `true` when the conversion clamped (lost the intended value).
    #[inline]
    #[must_use]
    pub fn is_clamped(self) -> bool {
        matches!(self, Saturation::Clamped)
    }
}

/// Round a float to the nearest 16-bit integer (half away from zero, the
/// hardware rounder convention) and clamp to the rails, reporting whether
/// clamping occurred. NaN maps to `(0, Clamped)`.
///
/// This is *the* conversion used when batch-norm offsets `H` and residual
/// skip currents are baked into a converted network; the static checker calls
/// the same function so "would this model clamp during conversion?" has a
/// single answer.
///
/// # Examples
///
/// ```
/// use sia_fixed::sat::{i16_from_f32, Saturation};
/// assert_eq!(i16_from_f32(-2.5), (-3, Saturation::Exact));
/// assert_eq!(i16_from_f32(-1e9), (i16::MIN, Saturation::Clamped));
/// assert_eq!(i16_from_f32(f32::NAN), (0, Saturation::Clamped));
/// ```
#[must_use]
pub fn i16_from_f32(v: f32) -> (i16, Saturation) {
    if v.is_nan() {
        return (0, Saturation::Clamped);
    }
    let rounded = v.round();
    if rounded > f32::from(i16::MAX) {
        (i16::MAX, Saturation::Clamped)
    } else if rounded < f32::from(i16::MIN) {
        (i16::MIN, Saturation::Clamped)
    } else {
        (rounded as i16, Saturation::Exact)
    }
}

/// Saturating 16-bit addition, as performed by the PE partial-sum register
/// and the membrane-potential update in the aggregation core.
///
/// # Examples
///
/// ```
/// use sia_fixed::sat::add16;
/// assert_eq!(add16(i16::MAX, 1), i16::MAX);
/// assert_eq!(add16(-3, 5), 2);
/// ```
#[inline]
#[must_use]
pub fn add16(a: i16, b: i16) -> i16 {
    a.saturating_add(b)
}

/// Saturating 16-bit subtraction, used by reset-by-subtraction
/// (`U ← U − θ`, §III-B of the paper).
///
/// # Examples
///
/// ```
/// use sia_fixed::sat::sub16;
/// assert_eq!(sub16(i16::MIN, 1), i16::MIN);
/// assert_eq!(sub16(10, 4), 6);
/// ```
#[inline]
#[must_use]
pub fn sub16(a: i16, b: i16) -> i16 {
    a.saturating_sub(b)
}

/// Widening accumulate of an 8-bit weight into a 16-bit partial sum, the
/// fundamental PE operation (`psum += W`); saturates at the 16-bit rails.
///
/// # Examples
///
/// ```
/// use sia_fixed::sat::acc_weight;
/// assert_eq!(acc_weight(100, -128), -28);
/// assert_eq!(acc_weight(i16::MAX, 1), i16::MAX);
/// ```
#[inline]
#[must_use]
pub fn acc_weight(psum: i16, w: i8) -> i16 {
    psum.saturating_add(i16::from(w))
}

/// Arithmetic right shift used by the LIF leak (`U ← U − (U >> λ)`): shifting
/// by `λ ≥ 16` yields the sign-extension result, matching a hardware barrel
/// shifter that saturates its shift amount.
///
/// # Examples
///
/// ```
/// use sia_fixed::sat::asr16;
/// assert_eq!(asr16(-8, 2), -2);
/// assert_eq!(asr16(1, 63), 0);
/// ```
#[inline]
#[must_use]
pub fn asr16(a: i16, shift: u32) -> i16 {
    a >> shift.min(15)
}

/// Clamp a 32-bit intermediate (e.g. the Q8.8 multiply inside the batch-norm
/// unit) back to the 16-bit rails.
///
/// # Examples
///
/// ```
/// use sia_fixed::sat::clamp16;
/// assert_eq!(clamp16(70_000), i16::MAX);
/// assert_eq!(clamp16(-70_000), i16::MIN);
/// assert_eq!(clamp16(123), 123);
/// ```
#[inline]
#[must_use]
pub fn clamp16(v: i32) -> i16 {
    if v > i32::from(i16::MAX) {
        i16::MAX
    } else if v < i32::from(i16::MIN) {
        i16::MIN
    } else {
        v as i16
    }
}

/// Clamp a 32-bit intermediate to the 8-bit rails (weight quantisation).
///
/// # Examples
///
/// ```
/// use sia_fixed::sat::clamp8;
/// assert_eq!(clamp8(300), i8::MAX);
/// assert_eq!(clamp8(-300), i8::MIN);
/// ```
#[inline]
#[must_use]
pub fn clamp8(v: i32) -> i8 {
    if v > i32::from(i8::MAX) {
        i8::MAX
    } else if v < i32::from(i8::MIN) {
        i8::MIN
    } else {
        v as i8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i16_from_f32_matches_ad_hoc_clamp() {
        // The historical call sites did `v.round().clamp(MIN, MAX) as i16`;
        // the checked helper must agree bit-for-bit on every path.
        for v in [
            0.0f32, 0.4, 0.5, -0.5, 2.49, -2.51, 32767.4, -32768.4, 1e9, -1e9,
        ] {
            let legacy = v.round().clamp(f32::from(i16::MIN), f32::from(i16::MAX)) as i16;
            assert_eq!(i16_from_f32(v).0, legacy, "v={v}");
        }
        assert_eq!(i16_from_f32(f32::NAN).0, 0);
    }

    #[test]
    fn i16_from_f32_reports_status() {
        assert_eq!(i16_from_f32(32767.0), (i16::MAX, Saturation::Exact));
        assert_eq!(i16_from_f32(32768.0), (i16::MAX, Saturation::Clamped));
        assert_eq!(i16_from_f32(-32768.0), (i16::MIN, Saturation::Exact));
        assert_eq!(i16_from_f32(-32769.0), (i16::MIN, Saturation::Clamped));
        assert!(i16_from_f32(f32::INFINITY).1.is_clamped());
        assert!(!i16_from_f32(0.0).1.is_clamped());
    }

    #[test]
    fn add16_saturates_both_rails() {
        assert_eq!(add16(i16::MAX, i16::MAX), i16::MAX);
        assert_eq!(add16(i16::MIN, i16::MIN), i16::MIN);
    }

    #[test]
    fn add16_is_exact_in_range() {
        assert_eq!(add16(1234, -234), 1000);
    }

    #[test]
    fn sub16_saturates_negative_rail() {
        assert_eq!(sub16(i16::MIN, i16::MAX), i16::MIN);
    }

    #[test]
    fn sub16_saturates_positive_rail() {
        assert_eq!(sub16(i16::MAX, i16::MIN), i16::MAX);
    }

    #[test]
    fn acc_weight_widens_before_adding() {
        // -128 as i8 must not wrap when added to a small psum.
        assert_eq!(acc_weight(0, i8::MIN), -128);
        assert_eq!(acc_weight(0, i8::MAX), 127);
    }

    #[test]
    fn acc_weight_saturates() {
        assert_eq!(acc_weight(i16::MAX - 1, 100), i16::MAX);
        assert_eq!(acc_weight(i16::MIN + 1, -100), i16::MIN);
    }

    #[test]
    fn asr16_matches_division_for_positive() {
        assert_eq!(asr16(64, 3), 8);
    }

    #[test]
    fn asr16_rounds_toward_negative_infinity() {
        assert_eq!(asr16(-1, 1), -1); // arithmetic, not logical shift
    }

    #[test]
    fn asr16_clamps_shift_amount() {
        assert_eq!(asr16(-1000, 100), -1); // behaves like shift by 15
        assert_eq!(asr16(1000, 100), 0);
    }

    #[test]
    fn clamp16_identity_in_range() {
        assert_eq!(clamp16(-32768), i16::MIN);
        assert_eq!(clamp16(32767), i16::MAX);
        assert_eq!(clamp16(0), 0);
    }

    #[test]
    fn clamp8_identity_in_range() {
        assert_eq!(clamp8(-128), i8::MIN);
        assert_eq!(clamp8(127), i8::MAX);
    }
}
