//! Saturating integer helpers mirroring the RTL datapath.
//!
//! Hardware adders of a fixed width either wrap or saturate; the SIA
//! accumulates 16-bit partial sums and membrane potentials, and a silent
//! wrap-around would flip the sign of a membrane potential and corrupt the
//! spike decision. The reference design therefore saturates. Every integer
//! operation performed by the aggregation core and the processing elements
//! goes through the helpers in this module so that the functional simulator
//! and the cycle-level machine share one definition of the datapath
//! semantics.

/// Saturating 16-bit addition, as performed by the PE partial-sum register
/// and the membrane-potential update in the aggregation core.
///
/// # Examples
///
/// ```
/// use sia_fixed::sat::add16;
/// assert_eq!(add16(i16::MAX, 1), i16::MAX);
/// assert_eq!(add16(-3, 5), 2);
/// ```
#[inline]
#[must_use]
pub fn add16(a: i16, b: i16) -> i16 {
    a.saturating_add(b)
}

/// Saturating 16-bit subtraction, used by reset-by-subtraction
/// (`U ← U − θ`, §III-B of the paper).
///
/// # Examples
///
/// ```
/// use sia_fixed::sat::sub16;
/// assert_eq!(sub16(i16::MIN, 1), i16::MIN);
/// assert_eq!(sub16(10, 4), 6);
/// ```
#[inline]
#[must_use]
pub fn sub16(a: i16, b: i16) -> i16 {
    a.saturating_sub(b)
}

/// Widening accumulate of an 8-bit weight into a 16-bit partial sum, the
/// fundamental PE operation (`psum += W`); saturates at the 16-bit rails.
///
/// # Examples
///
/// ```
/// use sia_fixed::sat::acc_weight;
/// assert_eq!(acc_weight(100, -128), -28);
/// assert_eq!(acc_weight(i16::MAX, 1), i16::MAX);
/// ```
#[inline]
#[must_use]
pub fn acc_weight(psum: i16, w: i8) -> i16 {
    psum.saturating_add(i16::from(w))
}

/// Arithmetic right shift used by the LIF leak (`U ← U − (U >> λ)`): shifting
/// by `λ ≥ 16` yields the sign-extension result, matching a hardware barrel
/// shifter that saturates its shift amount.
///
/// # Examples
///
/// ```
/// use sia_fixed::sat::asr16;
/// assert_eq!(asr16(-8, 2), -2);
/// assert_eq!(asr16(1, 63), 0);
/// ```
#[inline]
#[must_use]
pub fn asr16(a: i16, shift: u32) -> i16 {
    a >> shift.min(15)
}

/// Clamp a 32-bit intermediate (e.g. the Q8.8 multiply inside the batch-norm
/// unit) back to the 16-bit rails.
///
/// # Examples
///
/// ```
/// use sia_fixed::sat::clamp16;
/// assert_eq!(clamp16(70_000), i16::MAX);
/// assert_eq!(clamp16(-70_000), i16::MIN);
/// assert_eq!(clamp16(123), 123);
/// ```
#[inline]
#[must_use]
pub fn clamp16(v: i32) -> i16 {
    if v > i32::from(i16::MAX) {
        i16::MAX
    } else if v < i32::from(i16::MIN) {
        i16::MIN
    } else {
        v as i16
    }
}

/// Clamp a 32-bit intermediate to the 8-bit rails (weight quantisation).
///
/// # Examples
///
/// ```
/// use sia_fixed::sat::clamp8;
/// assert_eq!(clamp8(300), i8::MAX);
/// assert_eq!(clamp8(-300), i8::MIN);
/// ```
#[inline]
#[must_use]
pub fn clamp8(v: i32) -> i8 {
    if v > i32::from(i8::MAX) {
        i8::MAX
    } else if v < i32::from(i8::MIN) {
        i8::MIN
    } else {
        v as i8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add16_saturates_both_rails() {
        assert_eq!(add16(i16::MAX, i16::MAX), i16::MAX);
        assert_eq!(add16(i16::MIN, i16::MIN), i16::MIN);
    }

    #[test]
    fn add16_is_exact_in_range() {
        assert_eq!(add16(1234, -234), 1000);
    }

    #[test]
    fn sub16_saturates_negative_rail() {
        assert_eq!(sub16(i16::MIN, i16::MAX), i16::MIN);
    }

    #[test]
    fn sub16_saturates_positive_rail() {
        assert_eq!(sub16(i16::MAX, i16::MIN), i16::MAX);
    }

    #[test]
    fn acc_weight_widens_before_adding() {
        // -128 as i8 must not wrap when added to a small psum.
        assert_eq!(acc_weight(0, i8::MIN), -128);
        assert_eq!(acc_weight(0, i8::MAX), 127);
    }

    #[test]
    fn acc_weight_saturates() {
        assert_eq!(acc_weight(i16::MAX - 1, 100), i16::MAX);
        assert_eq!(acc_weight(i16::MIN + 1, -100), i16::MIN);
    }

    #[test]
    fn asr16_matches_division_for_positive() {
        assert_eq!(asr16(64, 3), 8);
    }

    #[test]
    fn asr16_rounds_toward_negative_infinity() {
        assert_eq!(asr16(-1, 1), -1); // arithmetic, not logical shift
    }

    #[test]
    fn asr16_clamps_shift_amount() {
        assert_eq!(asr16(-1000, 100), -1); // behaves like shift by 15
        assert_eq!(asr16(1000, 100), 0);
    }

    #[test]
    fn clamp16_identity_in_range() {
        assert_eq!(clamp16(-32768), i16::MIN);
        assert_eq!(clamp16(32767), i16::MAX);
        assert_eq!(clamp16(0), 0);
    }

    #[test]
    fn clamp8_identity_in_range() {
        assert_eq!(clamp8(-128), i8::MIN);
        assert_eq!(clamp8(127), i8::MAX);
    }
}
