//! The TSMC 40 nm ASIC projection (§V: "192 GOPS with a frequency of
//! 500 MHz consuming 11 mm² and 2.17 W").

use sia_accel::SiaConfig;
use std::fmt;

/// An ASIC design point projected from the FPGA architecture.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AsicProjection {
    /// Target clock in Hz.
    pub clock_hz: u64,
    /// Peak throughput in GOPS.
    pub gops: f64,
    /// Die area in mm².
    pub area_mm2: f64,
    /// Power in watts.
    pub watts: f64,
}

impl AsicProjection {
    /// Energy efficiency in GOPS/W (the paper's future-work target is
    /// 600 GOPS/W; the §V projection lands at ≈ 88).
    #[must_use]
    pub fn gops_per_watt(&self) -> f64 {
        self.gops / self.watts
    }
}

impl fmt::Display for AsicProjection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} MHz: {:.0} GOPS, {:.1} mm², {:.2} W ({:.1} GOPS/W)",
            self.clock_hz / 1_000_000,
            self.gops,
            self.area_mm2,
            self.watts,
            self.gops_per_watt()
        )
    }
}

/// Area coefficients (40 nm standard-cell estimates, calibrated so the
/// default configuration lands on the paper's 11 mm²).
const PE_MM2: f64 = 0.035;
const SRAM_MM2_PER_KB: f64 = 0.022;
const LOGIC_OTHER_MM2: f64 = 1.49;
const INTERCONNECT_FACTOR: f64 = 1.2;

/// Power coefficients: dynamic scales with clock from the FPGA dynamic
/// figure with a technology factor; static from the SRAM macro count.
const DYNAMIC_TECH_FACTOR: f64 = 1.92;
const STATIC_WATTS: f64 = 0.35;

/// Projects the SIA architecture onto a 40 nm ASIC at `clock_hz`.
#[must_use]
pub fn asic_projection(config: &SiaConfig, clock_hz: u64) -> AsicProjection {
    let cfg = SiaConfig {
        clock_hz,
        ..config.clone()
    };
    let gops = cfg.peak_ops_per_second() / 1e9;
    let sram_kb = (cfg.weight_mem_bytes
        + cfg.spike_in_mem_bytes
        + cfg.residual_mem_bytes
        + cfg.membrane_mem_bytes
        + cfg.output_mem_bytes) as f64
        / 1024.0;
    let area = (cfg.pe_count() as f64 * PE_MM2 + sram_kb * SRAM_MM2_PER_KB + LOGIC_OTHER_MM2)
        * INTERCONNECT_FACTOR;
    // FPGA PL dynamic power at this clock, scaled by the technology factor
    let pl_dynamic = crate::power::power_model(&cfg).pl_dynamic_watts;
    let watts = pl_dynamic * DYNAMIC_TECH_FACTOR + STATIC_WATTS;
    AsicProjection {
        clock_hz,
        gops,
        area_mm2: area,
        watts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_projection_point() {
        let p = asic_projection(&SiaConfig::pynq_z2(), 500_000_000);
        assert!((p.gops - 192.0).abs() < 1e-6, "gops {}", p.gops);
        assert!((p.area_mm2 - 11.0).abs() < 0.3, "area {}", p.area_mm2);
        assert!((p.watts - 2.17).abs() < 0.1, "watts {}", p.watts);
    }

    #[test]
    fn throughput_scales_linearly_with_clock() {
        let cfg = SiaConfig::pynq_z2();
        let a = asic_projection(&cfg, 250_000_000);
        let b = asic_projection(&cfg, 500_000_000);
        assert!((b.gops / a.gops - 2.0).abs() < 1e-9);
        assert_eq!(a.area_mm2, b.area_mm2); // area is clock-independent
    }

    #[test]
    fn area_scales_with_pes_and_sram() {
        let cfg = SiaConfig::pynq_z2();
        let base = asic_projection(&cfg, 500_000_000);
        let more_pes = asic_projection(
            &SiaConfig {
                pe_rows: 16,
                pe_cols: 16,
                ..cfg.clone()
            },
            500_000_000,
        );
        assert!(more_pes.area_mm2 > base.area_mm2);
        let more_mem = asic_projection(
            &SiaConfig {
                membrane_mem_bytes: 256 * 1024,
                ..cfg
            },
            500_000_000,
        );
        assert!(more_mem.area_mm2 > base.area_mm2);
    }

    #[test]
    fn display_has_all_figures() {
        let s = asic_projection(&SiaConfig::pynq_z2(), 500_000_000).to_string();
        assert!(s.contains("GOPS") && s.contains("mm²") && s.contains('W'));
    }
}
