//! The prior-art comparison (Table IV): published figures of the five
//! baseline CNN accelerators the paper compares against, plus the derived
//! columns computed the same way for every row.

use crate::throughput::metrics;
use sia_accel::SiaConfig;
use std::fmt;

/// One row of Table IV.
#[derive(Clone, Debug, PartialEq)]
pub struct ComparisonRow {
    /// Citation tag ("[18]", … or "This work").
    pub paper: String,
    /// FPGA platform.
    pub platform: String,
    /// Processing-element count.
    pub pes: u64,
    /// Clock in MHz.
    pub clock_mhz: u64,
    /// Published throughput in GOPS.
    pub gops: f64,
    /// Published power in watts (None where the paper reported N/A).
    pub watts: Option<f64>,
    /// DSP slices used (None where not reported).
    pub dsps: Option<u64>,
    /// Whether the PE-efficiency column is meaningful for this row
    /// (Table IV prints N/A for [22], whose PE count is not comparable).
    pub pe_eff_reported: bool,
}

impl ComparisonRow {
    /// GOPS per PE (Table IV's "PE Eff." column); `None` where the paper
    /// prints N/A.
    #[must_use]
    pub fn gops_per_pe(&self) -> Option<f64> {
        self.pe_eff_reported.then(|| self.gops / self.pes as f64)
    }

    /// GOPS per DSP, when DSP usage was reported.
    #[must_use]
    pub fn gops_per_dsp(&self) -> Option<f64> {
        self.dsps.map(|d| self.gops / d as f64)
    }

    /// GOPS per watt, when power was reported.
    #[must_use]
    pub fn gops_per_watt(&self) -> Option<f64> {
        self.watts.map(|w| self.gops / w)
    }
}

impl fmt::Display for ComparisonRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:<8} {:>5} PEs {:>4} MHz {:>7.1} GOPS {} {} {}",
            self.paper,
            self.platform,
            self.pes,
            self.clock_mhz,
            self.gops,
            self.gops_per_pe()
                .map_or("   N/A GOPS/PE".into(), |v| format!("{v:>6.3} GOPS/PE")),
            self.gops_per_dsp()
                .map_or("   N/A GOPS/DSP".into(), |v| format!("{v:>6.2} GOPS/DSP")),
            self.gops_per_watt()
                .map_or("   N/A GOPS/W".into(), |v| format!("{v:>6.2} GOPS/W")),
        )
    }
}

/// The five prior-art rows of Table IV, as published.
#[must_use]
pub fn baseline_rows() -> Vec<ComparisonRow> {
    vec![
        ComparisonRow {
            paper: "[18]".into(),
            platform: "ZC706".into(),
            pes: 576,
            clock_mhz: 200,
            gops: 198.1,
            watts: None,
            dsps: Some(576),
            pe_eff_reported: true,
        },
        ComparisonRow {
            paper: "[19]".into(),
            platform: "ZC706".into(),
            pes: 780,
            clock_mhz: 150,
            gops: 187.8,
            watts: Some(187.8 / 14.22),
            dsps: Some(780),
            pe_eff_reported: true,
        },
        ComparisonRow {
            paper: "[20]".into(),
            platform: "VC707".into(),
            pes: 64,
            clock_mhz: 200,
            gops: 12.5,
            watts: None,
            dsps: None,
            pe_eff_reported: true,
        },
        ComparisonRow {
            paper: "[21]".into(),
            platform: "VC709".into(),
            pes: 664,
            clock_mhz: 200,
            gops: 220.0,
            watts: Some(220.0 / 22.9),
            dsps: Some(664),
            pe_eff_reported: true,
        },
        ComparisonRow {
            paper: "[22]".into(),
            platform: "XC7Z020".into(),
            pes: 12,
            clock_mhz: 200,
            gops: 187.80,
            watts: Some(187.80 / 19.50),
            dsps: Some(400),
            pe_eff_reported: false, // Table IV prints N/A here
        },
    ]
}

/// The "This work" row, computed from the hardware models rather than
/// copied.
#[must_use]
pub fn this_work_row(config: &SiaConfig) -> ComparisonRow {
    let m = metrics(config);
    let power = crate::power::power_model(config).total_watts();
    let dsps = crate::resources::estimate(config).dsps;
    ComparisonRow {
        paper: "This work".into(),
        platform: "PYNQ-Z2".into(),
        pes: config.pe_count() as u64,
        clock_mhz: config.clock_hz / 1_000_000,
        gops: m.gops,
        watts: Some(power),
        dsps: Some(dsps),
        pe_eff_reported: true,
    }
}

/// The headline ratios of the abstract: PE-efficiency and DSP-efficiency
/// advantage of this work over the best prior-art row.
#[must_use]
pub fn headline_ratios(config: &SiaConfig) -> (f64, f64) {
    let ours = this_work_row(config);
    let best_pe = baseline_rows()
        .iter()
        .filter_map(ComparisonRow::gops_per_pe)
        .fold(0.0f64, f64::max);
    let best_dsp = baseline_rows()
        .iter()
        .filter_map(ComparisonRow::gops_per_dsp)
        .fold(0.0f64, f64::max);
    (
        ours.gops_per_pe().unwrap_or(0.0) / best_pe,
        ours.gops_per_dsp().unwrap_or(0.0) / best_dsp,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_columns_match_table4() {
        let rows = baseline_rows();
        // [18]: 198.1/576 = 0.343 GOPS/PE, 0.34 GOPS/DSP
        assert!((rows[0].gops_per_pe().unwrap() - 0.343).abs() < 5e-3);
        assert!((rows[0].gops_per_dsp().unwrap() - 0.34).abs() < 5e-3);
        // [19]: 0.241 GOPS/PE, 14.22 GOPS/W, 0.24 GOPS/DSP
        assert!((rows[1].gops_per_pe().unwrap() - 0.241).abs() < 5e-3);
        assert!((rows[1].gops_per_watt().unwrap() - 14.22).abs() < 1e-6);
        // [20]: 0.195 GOPS/PE, no DSP/power data
        assert!((rows[2].gops_per_pe().unwrap() - 0.195).abs() < 5e-3);
        assert!(rows[2].gops_per_dsp().is_none());
        assert!(rows[2].gops_per_watt().is_none());
        // [21]: 0.331 GOPS/PE, 22.9 GOPS/W, 0.33 GOPS/DSP
        assert!((rows[3].gops_per_pe().unwrap() - 0.331).abs() < 5e-3);
        // [22]: PE Eff is N/A in Table IV; 0.46 GOPS/DSP, 19.5 GOPS/W
        assert!(rows[4].gops_per_pe().is_none());
        assert!((rows[4].gops_per_dsp().unwrap() - 0.47).abs() < 0.01);
    }

    #[test]
    fn this_work_matches_paper_columns() {
        let row = this_work_row(&SiaConfig::pynq_z2());
        assert_eq!(row.pes, 64);
        assert_eq!(row.clock_mhz, 100);
        assert!((row.gops - 38.4).abs() < 1e-6);
        assert!((row.gops_per_pe().unwrap() - 0.6).abs() < 1e-6);
        assert!((row.gops_per_dsp().unwrap() - 2.26).abs() < 0.02);
        assert!((row.gops_per_watt().unwrap() - 24.93).abs() < 0.15);
    }

    #[test]
    fn headline_ratios_hold() {
        // Abstract: 2× PE efficiency and 4.5× DSP efficiency over the
        // state of the art. Best prior PE eff is 0.343 ([18]) and best DSP
        // eff 0.47 ([22]): 0.6/0.343 ≈ 1.75 and 2.26/0.47 ≈ 4.8 — the
        // paper rounds to "2× and 4.5×".
        let (pe_ratio, dsp_ratio) = headline_ratios(&SiaConfig::pynq_z2());
        assert!((1.5..2.5).contains(&pe_ratio), "PE ratio {pe_ratio}");
        assert!((4.0..5.5).contains(&dsp_ratio), "DSP ratio {dsp_ratio}");
    }

    #[test]
    fn this_work_has_fewest_dsps() {
        let ours = this_work_row(&SiaConfig::pynq_z2()).dsps.unwrap();
        for row in baseline_rows() {
            if let Some(d) = row.dsps {
                assert!(ours < d, "{} uses fewer DSPs than us", row.paper);
            }
        }
    }

    #[test]
    fn display_renders_na_cleanly() {
        let s = baseline_rows()[2].to_string();
        assert!(s.contains("N/A"));
    }
}
