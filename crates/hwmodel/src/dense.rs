//! A dense (non-spiking) DSP-MAC accelerator baseline — the architecture
//! class of Table IV's comparison rows \[18\]–\[22\].
//!
//! Those designs process conventional CNNs: every multiply-accumulate is
//! executed, each PE is built around a DSP slice, and there is no
//! event-driven skipping. Modelling one lets the repository *measure* the
//! co-design's headline trade instead of quoting it: the SIA spends T
//! sparse binary passes where the dense design spends one dense pass, and
//! wins on PE/DSP efficiency precisely because its PEs are mux-adders, not
//! multipliers.

use crate::resources::ResourceCounts;
use sia_tensor::Conv2dGeom;
use std::fmt;

/// Configuration of the dense baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DenseConfig {
    /// MAC units (each consuming one DSP slice).
    pub macs: usize,
    /// Clock in Hz.
    pub clock_hz: u64,
    /// MAC operations per unit per cycle (1 for a classic DSP array).
    pub macs_per_cycle: usize,
}

impl DenseConfig {
    /// A 64-MAC array at 200 MHz — the same PE count as the SIA at the
    /// clock the Table IV baselines use.
    #[must_use]
    pub fn baseline_64() -> Self {
        DenseConfig {
            macs: 64,
            clock_hz: 200_000_000,
            macs_per_cycle: 1,
        }
    }

    /// Peak throughput in ops/s (2 ops per MAC: multiply + add).
    #[must_use]
    pub fn peak_ops_per_second(&self) -> f64 {
        (self.macs * self.macs_per_cycle) as f64 * 2.0 * self.clock_hz as f64
    }
}

/// One dense conv execution estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DenseRun {
    /// Cycles to execute the layer once (dense: every MAC happens).
    pub cycles: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Operations performed (2 × MACs).
    pub ops: u64,
}

impl fmt::Display for DenseRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles ({:.3} ms), {} ops",
            self.cycles,
            self.seconds * 1e3,
            self.ops
        )
    }
}

/// Executes a conv layer geometry on the dense array (analytically: the
/// schedule is dense, so cycles are exactly `MACs / array throughput`).
#[must_use]
pub fn dense_conv(geom: &Conv2dGeom, cfg: &DenseConfig) -> DenseRun {
    let macs = geom.macs() as u64;
    let per_cycle = (cfg.macs * cfg.macs_per_cycle) as u64;
    let cycles = macs.div_ceil(per_cycle);
    DenseRun {
        cycles,
        seconds: cycles as f64 / cfg.clock_hz as f64,
        ops: macs * 2,
    }
}

/// Resource estimate for the dense array: one DSP per MAC plus control
/// logic (coefficients in line with the published utilisation of \[18\]–\[22\],
/// which use ~1 DSP and a few hundred LUTs per PE).
#[must_use]
pub fn dense_resources(cfg: &DenseConfig) -> ResourceCounts {
    ResourceCounts {
        luts: 150 * cfg.macs as u64 + 4000,
        ffs: 120 * cfg.macs as u64 + 3000,
        dsps: cfg.macs as u64,
        brams: 40,
        lutram: 200,
        bufg: 1,
    }
}

/// The comparison the ablation bench prints: SIA (sparse, T timesteps,
/// multiplier-free) vs dense baseline (1 pass, DSP MACs) on one layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EventDrivenComparison {
    /// SIA cycles over all T timesteps.
    pub sia_cycles: u64,
    /// Dense cycles for the single ANN pass.
    pub dense_cycles: u64,
    /// SIA DSP usage (aggregation core only).
    pub sia_dsps: u64,
    /// Dense DSP usage (one per MAC).
    pub dense_dsps: u64,
}

impl EventDrivenComparison {
    /// Cycle ratio (SIA / dense): > 1 means the SNN pays latency for its
    /// multiplier-free datapath; the efficiency win is in DSPs and energy.
    #[must_use]
    pub fn cycle_ratio(&self) -> f64 {
        self.sia_cycles as f64 / self.dense_cycles.max(1) as f64
    }

    /// DSP ratio (dense / SIA): the Table IV utilisation-efficiency story.
    #[must_use]
    pub fn dsp_ratio(&self) -> f64 {
        self.dense_dsps as f64 / self.sia_dsps.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Conv2dGeom {
        Conv2dGeom {
            in_channels: 64,
            out_channels: 64,
            in_h: 32,
            in_w: 32,
            kernel: 3,
            stride: 1,
            padding: 1,
        }
    }

    #[test]
    fn dense_cycles_are_macs_over_array() {
        let cfg = DenseConfig::baseline_64();
        let run = dense_conv(&geom(), &cfg);
        // 37.7M MACs / 64 = 589824 cycles
        assert_eq!(run.cycles, (geom().macs() as u64).div_ceil(64));
        assert_eq!(run.ops, geom().macs() as u64 * 2);
        assert!((run.seconds - run.cycles as f64 / 2e8).abs() < 1e-12);
    }

    #[test]
    fn peak_matches_published_scale() {
        // 64 MACs at 200 MHz = 25.6 GOPS peak; [20]'s 64-PE design reports
        // 12.5 GOPS achieved — the right ballpark.
        let cfg = DenseConfig::baseline_64();
        assert!((cfg.peak_ops_per_second() / 1e9 - 25.6).abs() < 1e-9);
    }

    #[test]
    fn dense_resources_are_dsp_heavy() {
        let r = dense_resources(&DenseConfig::baseline_64());
        assert_eq!(r.dsps, 64); // one DSP per MAC — vs the SIA's 17 total
        assert!(r.luts > 10_000);
    }

    #[test]
    fn comparison_ratios() {
        let c = EventDrivenComparison {
            sia_cycles: 650_000,
            dense_cycles: 589_824,
            sia_dsps: 17,
            dense_dsps: 64,
        };
        assert!(c.cycle_ratio() > 1.0);
        assert!((c.dsp_ratio() - 64.0 / 17.0).abs() < 1e-9);
    }
}
