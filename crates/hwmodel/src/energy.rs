//! Per-inference energy accounting: joins the cycle-level run report with
//! the power model — the numbers an edge deployment actually budgets
//! (mJ per classification, inferences per second, µJ per spike).

use crate::power::{power_model, PowerReport};
use sia_accel::{CycleReport, SiaConfig};
use std::fmt;

/// Energy and rate figures for one inference.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyReport {
    /// Wall-clock latency in seconds.
    pub latency_s: f64,
    /// Board energy for the inference in joules.
    pub total_joules: f64,
    /// The PL-dynamic share of that energy (the part the SIA itself burns).
    pub pl_dynamic_joules: f64,
    /// Sustainable inference rate (1 / latency).
    pub inferences_per_second: f64,
    /// Energy per synaptic operation in picojoules (PL dynamic / ops).
    pub picojoules_per_op: f64,
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} ms, {:.3} mJ/inference ({:.3} mJ PL-dynamic), {:.1} inf/s, {:.1} pJ/op",
            self.latency_s * 1e3,
            self.total_joules * 1e3,
            self.pl_dynamic_joules * 1e3,
            self.inferences_per_second,
            self.picojoules_per_op
        )
    }
}

/// Computes the energy report of one run.
#[must_use]
pub fn energy_report(config: &SiaConfig, report: &CycleReport) -> EnergyReport {
    let power: PowerReport = power_model(config);
    let latency_s = report.total_cycles() as f64 / config.clock_hz as f64;
    let total_joules = power.total_watts() * latency_s;
    // dynamic energy scales with actual PE activity, not wall-clock:
    // idle (skipped) cycles clock-gate the array
    let busy_fraction = report.pe_utilization().max(0.0);
    let pl_dynamic_joules = power.pl_dynamic_watts * latency_s * busy_fraction;
    let ops = report.total_ops();
    EnergyReport {
        latency_s,
        total_joules,
        pl_dynamic_joules,
        inferences_per_second: if latency_s > 0.0 {
            1.0 / latency_s
        } else {
            0.0
        },
        picojoules_per_op: if ops > 0 {
            pl_dynamic_joules / ops as f64 * 1e12
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_accel::LayerCycles;

    fn report(cycles: u64, active: u64, ops: u64) -> CycleReport {
        CycleReport {
            layers: vec![LayerCycles {
                name: "l".into(),
                compute_cycles: cycles,
                transfer_cycles: 0,
                overhead_cycles: 0,
                overlapped: true,
                active_pe_cycles: active,
                ops,
                nominal_ops: ops,
                spikes: 100,
            }],
            clock_hz: 100_000_000,
            pe_count: 64,
        }
    }

    #[test]
    fn latency_and_rate_are_reciprocal() {
        let cfg = SiaConfig::pynq_z2();
        let e = energy_report(&cfg, &report(100_000, 3_200_000, 19_200_000));
        assert!((e.latency_s - 1e-3).abs() < 1e-12);
        assert!((e.inferences_per_second - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn total_energy_is_power_times_time() {
        let cfg = SiaConfig::pynq_z2();
        let e = energy_report(&cfg, &report(100_000, 0, 0));
        // 1.54 W × 1 ms = 1.54 mJ
        assert!(
            (e.total_joules - 1.54e-3).abs() < 2e-5,
            "{}",
            e.total_joules
        );
    }

    #[test]
    fn dynamic_energy_scales_with_utilisation() {
        let cfg = SiaConfig::pynq_z2();
        let half = energy_report(&cfg, &report(100_000, 3_200_000, 1));
        let full = energy_report(&cfg, &report(100_000, 6_400_000, 1));
        assert!(
            (full.pl_dynamic_joules / half.pl_dynamic_joules - 2.0).abs() < 1e-9,
            "dynamic energy must track active-PE cycles"
        );
    }

    #[test]
    fn zero_ops_does_not_divide_by_zero() {
        let cfg = SiaConfig::pynq_z2();
        let e = energy_report(&cfg, &report(1000, 0, 0));
        assert_eq!(e.picojoules_per_op, 0.0);
    }

    #[test]
    fn display_has_units() {
        let cfg = SiaConfig::pynq_z2();
        let s = energy_report(&cfg, &report(1000, 100, 600)).to_string();
        assert!(s.contains("mJ") && s.contains("inf/s") && s.contains("pJ/op"));
    }
}
