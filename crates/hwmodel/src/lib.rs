//! Hardware models of the SIA: FPGA resources (Table III), power and
//! energy efficiency, throughput metrics and the prior-art comparison
//! (Table IV), plus the TSMC 40 nm ASIC projection (§V).
//!
//! The paper's Table III is a single Vivado synthesis snapshot; this crate
//! replaces it with **structural analytic models** — each block's cost is a
//! function of the architecture parameters (PE count, datapath widths,
//! memory sizes), with per-block constants calibrated so that the default
//! PYNQ-Z2 configuration reproduces the published report. That makes the
//! reconfigurability claims explorable: scaling the PE array or the memory
//! map moves every number in a physically sensible way.
//!
//! # Examples
//!
//! ```
//! use sia_accel::SiaConfig;
//! use sia_hwmodel::resources::estimate;
//!
//! let report = estimate(&SiaConfig::pynq_z2());
//! assert_eq!(report.dsps, 17); // Table III
//! ```

#![forbid(unsafe_code)]

pub mod asic;
pub mod baselines;
pub mod dense;
pub mod energy;
pub mod power;
pub mod resources;
pub mod throughput;

pub use asic::{asic_projection, AsicProjection};
pub use baselines::{baseline_rows, this_work_row, ComparisonRow};
pub use dense::{dense_conv, dense_resources, DenseConfig, EventDrivenComparison};
pub use energy::{energy_report, EnergyReport};
pub use power::{power_model, PowerReport};
pub use resources::{estimate, ResourceReport};
pub use throughput::{metrics, ThroughputMetrics};
