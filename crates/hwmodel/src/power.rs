//! Activity-based power model, calibrated to the paper's 1.54 W total for
//! the PYNQ-Z2 prototype.
//!
//! The dominant term on a Zynq board is the PS subsystem (ARM cores + DDR
//! running Linux, ≈ 1.25 W); PL static leakage adds ≈ 0.10 W and the SIA's
//! dynamic power scales with clock frequency and the switched blocks (PEs,
//! BRAMs, DSP lanes).

use crate::resources::estimate;
use sia_accel::SiaConfig;
use std::fmt;

/// Power breakdown in watts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerReport {
    /// Processing-system (ARM + DDR) power.
    pub ps_watts: f64,
    /// Programmable-logic static power.
    pub pl_static_watts: f64,
    /// Programmable-logic dynamic power at the configured clock.
    pub pl_dynamic_watts: f64,
}

impl PowerReport {
    /// Total board power.
    #[must_use]
    pub fn total_watts(&self) -> f64 {
        self.ps_watts + self.pl_static_watts + self.pl_dynamic_watts
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PS {:.2} W + PL static {:.2} W + PL dynamic {:.2} W = {:.2} W",
            self.ps_watts,
            self.pl_static_watts,
            self.pl_dynamic_watts,
            self.total_watts()
        )
    }
}

/// Dynamic power coefficients in mW per GHz of clock (calibrated so the
/// default configuration totals the paper's 1.54 W).
const MW_PER_GHZ_PER_PE: f64 = 10.3125;
const MW_PER_GHZ_PER_BRAM: f64 = 6.0;
const MW_PER_GHZ_PER_DSP: f64 = 10.0;
const MW_PER_GHZ_BASE: f64 = 500.0;

/// Estimates board power for `config` at full activity.
#[must_use]
pub fn power_model(config: &SiaConfig) -> PowerReport {
    let r = estimate(config);
    let f_ghz = config.clock_hz as f64 / 1e9;
    let dynamic_mw = f_ghz
        * (config.pe_count() as f64 * MW_PER_GHZ_PER_PE
            + r.brams as f64 * MW_PER_GHZ_PER_BRAM
            + r.dsps as f64 * MW_PER_GHZ_PER_DSP
            + MW_PER_GHZ_BASE);
    PowerReport {
        ps_watts: 1.25,
        pl_static_watts: 0.10,
        pl_dynamic_watts: dynamic_mw / 1000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_totals_1_54_watts() {
        let p = power_model(&SiaConfig::pynq_z2());
        assert!(
            (p.total_watts() - 1.54).abs() < 0.01,
            "got {:.3} W",
            p.total_watts()
        );
    }

    #[test]
    fn dynamic_power_scales_with_clock() {
        let base = power_model(&SiaConfig::pynq_z2());
        let fast = power_model(&SiaConfig {
            clock_hz: 200_000_000,
            ..SiaConfig::pynq_z2()
        });
        assert!(
            (fast.pl_dynamic_watts / base.pl_dynamic_watts - 2.0).abs() < 1e-9,
            "dynamic power must be linear in clock"
        );
        assert_eq!(fast.ps_watts, base.ps_watts);
    }

    #[test]
    fn more_pes_draw_more_power() {
        let base = power_model(&SiaConfig::pynq_z2());
        let big = power_model(&SiaConfig {
            pe_rows: 16,
            pe_cols: 16,
            ..SiaConfig::pynq_z2()
        });
        assert!(big.total_watts() > base.total_watts());
    }

    #[test]
    fn energy_efficiency_matches_table4() {
        // 38.4 GOPS / 1.54 W = 24.93 GOPS/W
        let cfg = SiaConfig::pynq_z2();
        let gops = cfg.peak_ops_per_second() / 1e9;
        let eff = gops / power_model(&cfg).total_watts();
        assert!((eff - 24.93).abs() < 0.15, "got {eff:.2} GOPS/W");
    }

    #[test]
    fn display_is_informative() {
        let s = power_model(&SiaConfig::pynq_z2()).to_string();
        assert!(s.contains("PL dynamic"));
    }
}
