//! Structural FPGA resource model (reproduces Table III at the default
//! configuration and scales with the architecture parameters).
//!
//! Per-block constants are calibrated against the paper's Vivado 2019.1
//! report for the PYNQ-Z2 (XC7Z020) prototype. The *structure* — what
//! scales with what — is the model's content:
//!
//! * the spiking core scales with the PE count (each PE: three 8-bit
//!   2:1 muxes, a 16-bit saturating adder, the psum register and row
//!   control),
//! * the aggregation core scales with the PE-array column count (one
//!   BN-multiply/activation lane per column; the fixed-point multipliers
//!   are the only DSP consumers — 2 per lane, plus one utility DSP),
//! * block RAM counts follow the §III-D memory map (4 kB usable per
//!   RAMB36) plus a fixed pool of stream double-buffers,
//! * the AXI subsystem is fixed (its FIFOs are the LUTRAM consumers).

use sia_accel::SiaConfig;
use std::fmt;

/// PYNQ-Z2 (XC7Z020) available resources, for utilisation percentages.
pub const PYNQ_Z2_AVAILABLE: ResourceCounts = ResourceCounts {
    luts: 53_200,
    ffs: 105_400,
    dsps: 220,
    brams: 140,
    lutram: 17_400,
    bufg: 32,
};

/// A set of FPGA resource counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceCounts {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP48 slices.
    pub dsps: u64,
    /// RAMB36 blocks.
    pub brams: u64,
    /// LUTs used as distributed RAM.
    pub lutram: u64,
    /// Global clock buffers.
    pub bufg: u64,
}

/// Full estimate: totals plus the per-block breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceReport {
    /// Total LUTs.
    pub luts: u64,
    /// Total flip-flops.
    pub ffs: u64,
    /// Total DSP slices.
    pub dsps: u64,
    /// Total RAMB36 blocks.
    pub brams: u64,
    /// Total LUTRAM.
    pub lutram: u64,
    /// Total clock buffers.
    pub bufg: u64,
    /// `(block name, counts)` breakdown.
    pub blocks: Vec<(String, ResourceCounts)>,
}

impl ResourceReport {
    /// Utilisation percentages against `available`.
    #[must_use]
    pub fn utilisation(&self, available: &ResourceCounts) -> Vec<(String, f64)> {
        vec![
            ("LUTs".into(), pct(self.luts, available.luts)),
            ("FFs".into(), pct(self.ffs, available.ffs)),
            ("DSPs".into(), pct(self.dsps, available.dsps)),
            ("BRAMs".into(), pct(self.brams, available.brams)),
            ("LUTRAMs".into(), pct(self.lutram, available.lutram)),
            ("BUFG".into(), pct(self.bufg, available.bufg)),
        ]
    }

    /// Whether the design fits the given device.
    #[must_use]
    pub fn fits(&self, available: &ResourceCounts) -> bool {
        self.luts <= available.luts
            && self.ffs <= available.ffs
            && self.dsps <= available.dsps
            && self.brams <= available.brams
            && self.lutram <= available.lutram
            && self.bufg <= available.bufg
    }
}

fn pct(used: u64, avail: u64) -> f64 {
    used as f64 / avail as f64 * 100.0
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<14} {:>8}", "resource", "used")?;
        writeln!(f, "{:<14} {:>8}", "LUTs", self.luts)?;
        writeln!(f, "{:<14} {:>8}", "FFs", self.ffs)?;
        writeln!(f, "{:<14} {:>8}", "DSPs", self.dsps)?;
        writeln!(f, "{:<14} {:>8}", "BRAMs", self.brams)?;
        writeln!(f, "{:<14} {:>8}", "LUTRAMs", self.lutram)?;
        write!(f, "{:<14} {:>8}", "BUFG", self.bufg)
    }
}

/// Usable bytes per RAMB36 block (4 kB of the 4.5 kB raw, the practical
/// figure once parity bits are excluded).
const BRAM_BYTES: usize = 4096;

fn brams_for(bytes: usize) -> u64 {
    bytes.div_ceil(BRAM_BYTES) as u64
}

/// Estimates the resource cost of `config`.
///
/// # Panics
///
/// Panics if the configuration fails validation.
#[must_use]
pub fn estimate(config: &SiaConfig) -> ResourceReport {
    config.validate().expect("invalid configuration");
    let pes = config.pe_count() as u64;
    let cols = config.pe_cols as u64;

    // Spiking core: 3 muxes (8 LUT each), 16-bit adder (~24 LUT with the
    // saturation logic), row control (~56 LUT); psum + pipeline registers.
    let spiking = ResourceCounts {
        luts: 104 * pes,
        ffs: 58 * pes,
        ..ResourceCounts::default()
    };
    // Aggregation core: one lane per PE column, each with a Q8.8 multiplier
    // (2 DSP), threshold compare, reset-by-subtraction and LIF shifter.
    let aggregation = ResourceCounts {
        luts: 300 + 90 * cols,
        ffs: 200 + 70 * cols,
        dsps: 2 * cols + 1,
        ..ResourceCounts::default()
    };
    let controller = ResourceCounts {
        luts: 950,
        ffs: 700,
        ..ResourceCounts::default()
    };
    let axi = ResourceCounts {
        luts: 1800,
        ffs: 1900,
        lutram: 158,
        bufg: 1,
        ..ResourceCounts::default()
    };
    let map_brams = brams_for(config.membrane_mem_bytes)
        + brams_for(config.residual_mem_bytes)
        + brams_for(config.output_mem_bytes)
        + brams_for(config.weight_mem_bytes)
        + brams_for(config.spike_in_mem_bytes);
    let buffer_brams = 30; // stream double-buffers and AXI FIFOs
    let memory = ResourceCounts {
        brams: map_brams + buffer_brams,
        luts: 81 + 15 * (map_brams + buffer_brams),
        ffs: 40 + 11 * (map_brams + buffer_brams),
        ..ResourceCounts::default()
    };
    let blocks = vec![
        ("spiking-core".to_string(), spiking),
        ("aggregation-core".to_string(), aggregation),
        ("controller".to_string(), controller),
        ("axi".to_string(), axi),
        ("memory".to_string(), memory),
    ];
    let sum = |f: fn(&ResourceCounts) -> u64| blocks.iter().map(|(_, b)| f(b)).sum();
    ResourceReport {
        luts: sum(|b| b.luts),
        ffs: sum(|b| b.ffs),
        dsps: sum(|b| b.dsps),
        brams: sum(|b| b.brams),
        lutram: sum(|b| b.lutram),
        bufg: sum(|b| b.bufg),
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reproduces_table3() {
        let r = estimate(&SiaConfig::pynq_z2());
        assert_eq!(r.luts, 11_932);
        assert_eq!(r.ffs, 8_157);
        assert_eq!(r.dsps, 17);
        assert_eq!(r.brams, 95);
        assert_eq!(r.lutram, 158);
        assert_eq!(r.bufg, 1);
    }

    #[test]
    fn utilisation_matches_table3_percentages() {
        let r = estimate(&SiaConfig::pynq_z2());
        let u = r.utilisation(&PYNQ_Z2_AVAILABLE);
        let get = |name: &str| u.iter().find(|(n, _)| n == name).unwrap().1;
        assert!((get("LUTs") - 22.43).abs() < 0.05);
        assert!((get("FFs") - 7.74).abs() < 0.1); // paper prints 7.67
        assert!((get("DSPs") - 7.73).abs() < 0.1);
        assert!((get("BRAMs") - 67.86).abs() < 0.05);
        assert!((get("LUTRAMs") - 0.90).abs() < 0.05);
        assert!((get("BUFG") - 3.13).abs() < 0.05);
        assert!(r.fits(&PYNQ_Z2_AVAILABLE));
    }

    #[test]
    fn resources_scale_with_pe_array() {
        let small = estimate(&SiaConfig {
            pe_rows: 4,
            pe_cols: 4,
            ..SiaConfig::pynq_z2()
        });
        let big = estimate(&SiaConfig {
            pe_rows: 16,
            pe_cols: 16,
            ..SiaConfig::pynq_z2()
        });
        let base = estimate(&SiaConfig::pynq_z2());
        assert!(small.luts < base.luts && base.luts < big.luts);
        assert!(small.dsps < base.dsps && base.dsps < big.dsps);
        // memory map unchanged ⇒ BRAMs unchanged
        assert_eq!(small.brams, base.brams);
    }

    #[test]
    fn brams_scale_with_memory_map() {
        let doubled = estimate(&SiaConfig {
            membrane_mem_bytes: 128 * 1024,
            ..SiaConfig::pynq_z2()
        });
        let base = estimate(&SiaConfig::pynq_z2());
        assert_eq!(doubled.brams, base.brams + 16);
    }

    #[test]
    fn a_16x16_array_still_fits_the_z7020() {
        let r = estimate(&SiaConfig {
            pe_rows: 16,
            pe_cols: 16,
            ..SiaConfig::pynq_z2()
        });
        assert!(r.fits(&PYNQ_Z2_AVAILABLE), "{r}");
    }

    #[test]
    fn breakdown_sums_to_totals() {
        let r = estimate(&SiaConfig::pynq_z2());
        let luts: u64 = r.blocks.iter().map(|(_, b)| b.luts).sum();
        assert_eq!(luts, r.luts);
        let brams: u64 = r.blocks.iter().map(|(_, b)| b.brams).sum();
        assert_eq!(brams, r.brams);
    }

    #[test]
    fn display_lists_all_resources() {
        let s = estimate(&SiaConfig::pynq_z2()).to_string();
        assert!(s.contains("LUTs") && s.contains("BRAMs"));
    }
}
