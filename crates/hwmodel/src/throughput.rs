//! Throughput and efficiency metrics (the derived columns of Table IV).

use crate::power::power_model;
use crate::resources::estimate;
use sia_accel::SiaConfig;
use std::fmt;

/// The efficiency metrics the paper reports for its own design and the
/// prior art.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThroughputMetrics {
    /// Peak throughput in GOPS.
    pub gops: f64,
    /// GOPS per processing element.
    pub gops_per_pe: f64,
    /// GOPS per DSP slice.
    pub gops_per_dsp: f64,
    /// GOPS per watt.
    pub gops_per_watt: f64,
}

impl fmt::Display for ThroughputMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} GOPS, {:.3} GOPS/PE, {:.2} GOPS/DSP, {:.2} GOPS/W",
            self.gops, self.gops_per_pe, self.gops_per_dsp, self.gops_per_watt
        )
    }
}

/// Computes the metrics for a configuration using the paper's accounting:
/// peak throughput (all PEs busy, 6 ops per PE per cycle) divided by PEs,
/// synthesised DSP count and modelled board power.
#[must_use]
pub fn metrics(config: &SiaConfig) -> ThroughputMetrics {
    let gops = config.peak_ops_per_second() / 1e9;
    let resources = estimate(config);
    let power = power_model(config);
    ThroughputMetrics {
        gops,
        gops_per_pe: gops / config.pe_count() as f64,
        gops_per_dsp: gops / resources.dsps as f64,
        gops_per_watt: gops / power.total_watts(),
    }
}

/// Effective (achieved) metrics given measured ops and wall-clock seconds
/// from a cycle-level run.
#[must_use]
pub fn effective_metrics(config: &SiaConfig, ops: u64, seconds: f64) -> ThroughputMetrics {
    let gops = ops as f64 / seconds.max(1e-12) / 1e9;
    let resources = estimate(config);
    let power = power_model(config);
    ThroughputMetrics {
        gops,
        gops_per_pe: gops / config.pe_count() as f64,
        gops_per_dsp: gops / resources.dsps as f64,
        gops_per_watt: gops / power.total_watts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_metrics_match_table4() {
        let m = metrics(&SiaConfig::pynq_z2());
        assert!((m.gops - 38.4).abs() < 1e-6);
        assert!((m.gops_per_pe - 0.6).abs() < 1e-6);
        assert!((m.gops_per_dsp - 38.4 / 17.0).abs() < 1e-6); // 2.26 ≈ 2.25
        assert!((m.gops_per_watt - 24.93).abs() < 0.15);
    }

    #[test]
    fn effective_metrics_use_measured_ops() {
        let cfg = SiaConfig::pynq_z2();
        let m = effective_metrics(&cfg, 1_000_000_000, 0.1);
        assert!((m.gops - 10.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_every_metric() {
        let s = metrics(&SiaConfig::pynq_z2()).to_string();
        assert!(s.contains("GOPS/PE") && s.contains("GOPS/W"));
    }
}
