//! Swappable activation: plain ReLU or the L-level quantized clip.
//!
//! Step 2 of the paper's pipeline replaces each ReLU with a *quantized ReLU
//! of L levels* whose step size `s^l` is trained (the QCFS formulation of
//! Bu et al., ref. [12] in the paper):
//!
//! ```text
//! y = (s/L) · clip( floor(x·L/s + 1/2), 0, L )
//! ```
//!
//! Training uses the straight-through estimator for the floor and the
//! LSQ-style gradient for the step size. Step 3 then swaps this activation
//! for an integrate-and-fire neuron with threshold `s^l` (see `sia-snn`).

use crate::layer::Layer;
use crate::param::Param;
use sia_tensor::Tensor;

/// Which activation function the layer computes.
#[derive(Clone, Debug, PartialEq)]
pub enum ActKind {
    /// Plain rectifier, `max(0, x)` — the FP32 baseline network.
    Relu,
    /// L-level quantized clip with learnable step (threshold-to-be).
    QuantClip {
        /// Number of quantization levels `L` (the paper uses `L = 8`,
        /// matching the 8-timestep inference target).
        levels: usize,
    },
}

/// A swappable activation layer.
///
/// # Examples
///
/// ```
/// use sia_nn::{Activation, Layer};
/// use sia_tensor::Tensor;
/// let mut act = Activation::quant_clip(4, 1.0);
/// let x = Tensor::from_vec(vec![5], vec![-1.0, 0.1, 0.5, 0.9, 2.0]);
/// let y = act.forward(&x, false);
/// // step 1.0, 4 levels: quantized to {0, 0, 0.5, 1.0, 1.0}
/// assert_eq!(y.data(), &[0.0, 0.0, 0.5, 1.0, 1.0]);
/// ```
#[derive(Clone, Debug)]
pub struct Activation {
    kind: ActKind,
    /// Learnable step size `s` (meaningful only for `QuantClip`).
    step: Param,
    cached_input: Option<Tensor>,
    observing: bool,
    observed_max: f32,
}

impl Activation {
    /// Plain ReLU.
    #[must_use]
    pub fn relu() -> Self {
        Activation {
            kind: ActKind::Relu,
            step: Param::new_no_decay(Tensor::full(vec![1], 1.0)),
            cached_input: None,
            observing: false,
            observed_max: 0.0,
        }
    }

    /// L-level quantized clip with initial step `s0`.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0` or `s0 <= 0`.
    #[must_use]
    pub fn quant_clip(levels: usize, s0: f32) -> Self {
        assert!(levels > 0, "need at least one quantization level");
        assert!(s0 > 0.0, "step must be positive");
        Activation {
            kind: ActKind::QuantClip { levels },
            step: Param::new_no_decay(Tensor::full(vec![1], s0)),
            cached_input: None,
            observing: false,
            observed_max: 0.0,
        }
    }

    /// The activation kind.
    #[must_use]
    pub fn kind(&self) -> &ActKind {
        &self.kind
    }

    /// Current step size `s` (1.0 for plain ReLU).
    #[must_use]
    pub fn step(&self) -> f32 {
        self.step.value.data()[0]
    }

    /// Overwrites the step size (used by calibration).
    ///
    /// # Panics
    ///
    /// Panics if `s <= 0`.
    pub fn set_step(&mut self, s: f32) {
        assert!(s > 0.0, "step must be positive");
        self.step.value.data_mut()[0] = s;
    }

    /// Converts a ReLU into an L-level quantized clip in place, keeping the
    /// current step (callers typically calibrate afterwards).
    pub fn make_quantized(&mut self, levels: usize) {
        assert!(levels > 0, "need at least one quantization level");
        self.kind = ActKind::QuantClip { levels };
    }

    /// Starts recording the maximum pre-activation value seen by `forward`
    /// (step-size calibration; see `sia-quant`).
    pub fn begin_observation(&mut self) {
        self.observing = true;
        self.observed_max = 0.0;
    }

    /// Stops recording and returns the observed maximum (0 if nothing ran).
    pub fn end_observation(&mut self) -> f32 {
        self.observing = false;
        self.observed_max
    }
}

impl Layer for Activation {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if self.observing {
            self.observed_max = self.observed_max.max(x.max());
            // Calibration must see FP32 statistics: with the not-yet
            // calibrated step in force, shallow layers would clip wrongly and
            // distort the maxima observed by every deeper layer. Act as a
            // plain ReLU until observation ends.
            return x.map(|v| v.max(0.0));
        }
        if train {
            self.cached_input = Some(x.clone());
        }
        match self.kind {
            ActKind::Relu => x.map(|v| v.max(0.0)),
            ActKind::QuantClip { levels } => {
                let s = self.step();
                let l = levels as f32;
                x.map(|v| {
                    let q = (v * l / s + 0.5).floor().clamp(0.0, l);
                    q * s / l
                })
            }
        }
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Activation::backward without training forward");
        match self.kind {
            ActKind::Relu => grad.zip_map(x, |g, v| if v > 0.0 { g } else { 0.0 }),
            ActKind::QuantClip { levels } => {
                let s = self.step();
                let l = levels as f32;
                // LSQ gradient scale stabilises the step update.
                let gscale = 1.0 / ((x.numel() as f32) * l).sqrt();
                let mut ds = 0.0f32;
                let mut gx = vec![0.0f32; grad.numel()];
                for ((out, &g), &v) in gx.iter_mut().zip(grad.data()).zip(x.data()) {
                    if v <= 0.0 {
                        // below the range: no gradient flows
                    } else if v >= s {
                        ds += g; // ∂y/∂s = 1 at the clip rail
                    } else {
                        let q = (v * l / s + 0.5).floor().clamp(0.0, l);
                        let y = q * s / l;
                        ds += g * (y - v) / s; // rounding residual term
                        *out = g;
                    }
                }
                self.step.grad.data_mut()[0] += ds * gscale;
                Tensor::from_vec(grad.shape().dims().to_vec(), gx)
            }
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        if matches!(self.kind, ActKind::QuantClip { .. }) {
            f(&mut self.step);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut act = Activation::relu();
        let x = Tensor::from_vec(vec![4], vec![-2.0, -0.1, 0.1, 2.0]);
        let y = act.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 0.1, 2.0]);
        let gx = act.backward(&Tensor::full(vec![4], 1.0));
        assert_eq!(gx.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn quant_clip_levels_and_rails() {
        let mut act = Activation::quant_clip(8, 2.0);
        // values inside [0, 2]: quantized to multiples of 0.25
        let x = Tensor::from_vec(vec![5], vec![-1.0, 0.1, 0.13, 1.0, 5.0]);
        let y = act.forward(&x, false);
        assert_eq!(y.data()[0], 0.0);
        assert_eq!(y.data()[1], 0.0); // 0.1*4 + 0.5 = 0.9 → floor 0
        assert_eq!(y.data()[2], 0.25); // 0.13*4+0.5 = 1.02 → floor 1
        assert_eq!(y.data()[3], 1.0);
        assert_eq!(y.data()[4], 2.0); // clipped at s
    }

    #[test]
    fn quant_clip_error_bounded_by_half_step() {
        let act_s = 1.5f32;
        let levels = 8;
        let mut act = Activation::quant_clip(levels, act_s);
        for i in 0..100 {
            let v = i as f32 * 0.015; // covers [0, 1.5)
            let y = act.forward(&Tensor::from_vec(vec![1], vec![v]), false);
            assert!(
                (y.data()[0] - v).abs() <= 0.5 * act_s / levels as f32 + 1e-6,
                "v={v} y={}",
                y.data()[0]
            );
        }
    }

    #[test]
    fn ste_passes_gradient_in_range_only() {
        let mut act = Activation::quant_clip(4, 1.0);
        let x = Tensor::from_vec(vec![3], vec![-0.5, 0.5, 1.5]);
        let _ = act.forward(&x, true);
        let gx = act.backward(&Tensor::full(vec![3], 1.0));
        assert_eq!(gx.data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn step_gradient_is_one_at_rail() {
        let mut act = Activation::quant_clip(4, 1.0);
        let x = Tensor::from_vec(vec![1], vec![2.0]); // above the rail
        let _ = act.forward(&x, true);
        let _ = act.backward(&Tensor::full(vec![1], 1.0));
        let gscale = 1.0 / (1.0f32 * 4.0).sqrt();
        assert!((act.step.grad.data()[0] - gscale).abs() < 1e-6);
    }

    #[test]
    fn make_quantized_swaps_kind_and_keeps_step() {
        let mut act = Activation::relu();
        act.set_step(0.7);
        act.make_quantized(8);
        assert_eq!(act.kind(), &ActKind::QuantClip { levels: 8 });
        assert_eq!(act.step(), 0.7);
    }

    #[test]
    fn relu_has_no_trainable_params() {
        let mut relu = Activation::relu();
        let mut quant = Activation::quant_clip(8, 1.0);
        assert_eq!(relu.param_count(), 0);
        assert_eq!(quant.param_count(), 1);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn step_validation() {
        let mut act = Activation::relu();
        act.set_step(0.0);
    }

    #[test]
    fn quant_forward_is_monotone() {
        let mut act = Activation::quant_clip(6, 1.2);
        let xs: Vec<f32> = (-10..30).map(|i| i as f32 * 0.07).collect();
        let y = act.forward(&Tensor::from_vec(vec![xs.len()], xs), false);
        for w in y.data().windows(2) {
            assert!(w[1] >= w[0]);
        }
    }
}
