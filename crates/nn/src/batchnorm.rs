//! 2-D batch normalisation.
//!
//! In the accelerator this operation becomes the aggregation core's
//! `y·G + H` fixed-point stage (paper Eq. 2); during training it is the
//! standard per-channel normalisation with learnable affine terms.

use crate::layer::Layer;
use crate::param::Param;
use sia_tensor::Tensor;

/// Per-channel batch normalisation over NCHW input.
///
/// # Examples
///
/// ```
/// use sia_nn::{BatchNorm2d, Layer};
/// use sia_tensor::Tensor;
/// let mut bn = BatchNorm2d::new(4);
/// let y = bn.forward(&Tensor::zeros(vec![2, 4, 3, 3]), false);
/// assert_eq!(y.shape().dims(), &[2, 4, 3, 3]);
/// ```
#[derive(Clone, Debug)]
pub struct BatchNorm2d {
    channels: usize,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    eps: f32,
    momentum: f32,
    /// Training batches seen, for warm-started running statistics.
    updates: u64,
    cache: Option<BnCache>,
    /// Batch statistics of the last training forward, for the data-parallel
    /// trainer: worker replicas capture them here and the master replays
    /// them in shard order via [`BatchNorm2d::absorb_batch_stats`].
    last_stats: Option<(Vec<f32>, Vec<f32>)>,
}

#[derive(Clone, Debug)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with γ=1, β=0, running stats (0, 1).
    #[must_use]
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            channels,
            gamma: Param::new_no_decay(Tensor::full(vec![channels], 1.0)),
            beta: Param::new_no_decay(Tensor::zeros(vec![channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            eps: 1e-5,
            momentum: 0.3,
            updates: 0,
            cache: None,
            last_stats: None,
        }
    }

    /// Takes the `(mean, var)` batch statistics captured by the most recent
    /// training forward (consumed: a second call returns `None`).
    #[must_use]
    pub fn take_batch_stats(&mut self) -> Option<(Vec<f32>, Vec<f32>)> {
        self.last_stats.take()
    }

    /// Folds externally computed batch statistics into the running stats,
    /// with the exact arithmetic a training forward would have used — the
    /// warm-started EMA and the `updates` increment. The data-parallel
    /// trainer calls this on the master model, in shard order, with the
    /// stats its worker replicas captured; the resulting running stats are
    /// bit-identical to processing the shards sequentially on the master.
    ///
    /// # Panics
    ///
    /// Panics if `mean`/`var` length differs from the channel count.
    pub fn absorb_batch_stats(&mut self, mean: &[f32], var: &[f32]) {
        assert_eq!(mean.len(), self.channels, "mean channel mismatch");
        assert_eq!(var.len(), self.channels, "var channel mismatch");
        self.updates += 1;
        let momentum = self.momentum.max(1.0 / self.updates as f32);
        for ch in 0..self.channels {
            self.running_mean[ch] = (1.0 - momentum) * self.running_mean[ch] + momentum * mean[ch];
            self.running_var[ch] = (1.0 - momentum) * self.running_var[ch] + momentum * var[ch];
        }
    }

    /// Channel count.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// `(γ, β, running_mean, running_var, ε)` — everything the batch-norm
    /// fold (paper Eq. 2) needs.
    #[must_use]
    pub fn export(&self) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>, f32) {
        (
            self.gamma.value.data().to_vec(),
            self.beta.value.data().to_vec(),
            self.running_mean.clone(),
            self.running_var.clone(),
            self.eps,
        )
    }

    fn check(&self, x: &Tensor) -> (usize, usize, usize) {
        assert_eq!(x.shape().rank(), 4, "BatchNorm2d expects NCHW");
        assert_eq!(x.shape().dim(1), self.channels, "channel mismatch");
        (x.shape().dim(0), x.shape().dim(2), x.shape().dim(3))
    }
}

impl Layer for BatchNorm2d {
    #[allow(clippy::needless_range_loop)]
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (n, h, w) = self.check(x);
        let area = h * w;
        let count = (n * area) as f32;
        let c = self.channels;
        let data = x.data();
        let mut out = vec![0.0f32; data.len()];
        let mut x_hat = vec![0.0f32; data.len()];
        let mut inv_stds = vec![0.0f32; c];
        let mut batch_means = vec![0.0f32; c];
        let mut batch_vars = vec![0.0f32; c];
        // Cumulative average over the first batches, EMA afterwards: the
        // running stats would otherwise start at (0, 1) and need ~1/momentum
        // batches before eval mode stops normalising with garbage.
        let momentum = if train {
            self.updates += 1;
            self.momentum.max(1.0 / self.updates as f32)
        } else {
            self.momentum
        };
        for ch in 0..c {
            let (mean, var) = if train {
                let mut sum = 0.0f64;
                let mut sq = 0.0f64;
                for b in 0..n {
                    let base = (b * c + ch) * area;
                    for &v in &data[base..base + area] {
                        sum += f64::from(v);
                        sq += f64::from(v) * f64::from(v);
                    }
                }
                let mean = (sum / f64::from(count)) as f32;
                let var = ((sq / f64::from(count)) as f32 - mean * mean).max(0.0);
                self.running_mean[ch] = (1.0 - momentum) * self.running_mean[ch] + momentum * mean;
                self.running_var[ch] = (1.0 - momentum) * self.running_var[ch] + momentum * var;
                batch_means[ch] = mean;
                batch_vars[ch] = var;
                (mean, var)
            } else {
                (self.running_mean[ch], self.running_var[ch])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[ch] = inv_std;
            let g = self.gamma.value.data()[ch];
            let b_ = self.beta.value.data()[ch];
            for b in 0..n {
                let base = (b * c + ch) * area;
                for i in base..base + area {
                    let xh = (data[i] - mean) * inv_std;
                    x_hat[i] = xh;
                    out[i] = g * xh + b_;
                }
            }
        }
        if train {
            self.cache = Some(BnCache {
                x_hat: Tensor::from_vec(x.shape().dims().to_vec(), x_hat),
                inv_std: inv_stds,
            });
            self.last_stats = Some((batch_means, batch_vars));
        }
        Tensor::from_vec(x.shape().dims().to_vec(), out)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("BatchNorm2d::backward without training forward");
        let (n, h, w) = self.check(grad);
        let area = h * w;
        let count = (n * area) as f32;
        let c = self.channels;
        let gy = grad.data();
        let xh = cache.x_hat.data();
        let mut gx = vec![0.0f32; gy.len()];
        for ch in 0..c {
            let mut dbeta = 0.0f64;
            let mut dgamma = 0.0f64;
            for b in 0..n {
                let base = (b * c + ch) * area;
                for i in base..base + area {
                    dbeta += f64::from(gy[i]);
                    dgamma += f64::from(gy[i]) * f64::from(xh[i]);
                }
            }
            let dbeta = dbeta as f32;
            let dgamma = dgamma as f32;
            self.beta.grad.data_mut()[ch] += dbeta;
            self.gamma.grad.data_mut()[ch] += dgamma;
            let scale = self.gamma.value.data()[ch] * cache.inv_std[ch];
            for b in 0..n {
                let base = (b * c + ch) * area;
                for i in base..base + area {
                    gx[i] = scale * (gy[i] - dbeta / count - xh[i] * dgamma / count);
                }
            }
        }
        Tensor::from_vec(grad.shape().dims().to_vec(), gx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_input(n: usize, c: usize, hw: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::rand_uniform(vec![n, c, hw, hw], 2.0, &mut rng)
    }

    #[test]
    fn train_output_is_normalised() {
        let mut bn = BatchNorm2d::new(3);
        let x = random_input(4, 3, 5, 1).map(|v| v * 3.0 + 1.0);
        let y = bn.forward(&x, true);
        // per-channel mean ≈ 0, var ≈ 1
        let area = 25;
        for ch in 0..3 {
            let mut vals = Vec::new();
            for b in 0..4 {
                let base = (b * 3 + ch) * area;
                vals.extend_from_slice(&y.data()[base..base + area]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = random_input(8, 1, 4, 2).map(|v| v + 5.0);
        for _ in 0..50 {
            let _ = bn.forward(&x, true);
        }
        let y = bn.forward(&x, false);
        // running stats converge to batch stats, so eval output ≈ normalised
        assert!(y.mean().abs() < 0.1, "{}", y.mean());
    }

    #[test]
    fn affine_terms_apply() {
        let mut bn = BatchNorm2d::new(1);
        bn.gamma.value.data_mut()[0] = 2.0;
        bn.beta.value.data_mut()[0] = 3.0;
        let x = random_input(4, 1, 4, 3);
        let y = bn.forward(&x, true);
        assert!((y.mean() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn backward_matches_numeric_gradient() {
        let mut bn = BatchNorm2d::new(2);
        let mut x = random_input(2, 2, 3, 4);
        let gy = Tensor::full(vec![2, 2, 3, 3], 1.0)
            .zip_map(&random_input(2, 2, 3, 5), |a, b| a * 0.3 + b);
        let _ = bn.forward(&x, true);
        let gx = bn.backward(&gy);
        // numeric check on a few coordinates; loss L = <y, gy>
        let eps = 1e-2;
        for idx in [0usize, 7, 20, 35] {
            let orig = x.data()[idx];
            x.data_mut()[idx] = orig + eps;
            let hi: f32 = bn
                .forward(&x, true)
                .data()
                .iter()
                .zip(gy.data())
                .map(|(a, b)| a * b)
                .sum();
            x.data_mut()[idx] = orig - eps;
            let lo: f32 = bn
                .forward(&x, true)
                .data()
                .iter()
                .zip(gy.data())
                .map(|(a, b)| a * b)
                .sum();
            x.data_mut()[idx] = orig;
            let numeric = (hi - lo) / (2.0 * eps);
            assert!(
                (gx.data()[idx] - numeric).abs() < 2e-2,
                "idx {idx}: analytic {} numeric {numeric}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn gamma_beta_gradients_accumulate() {
        let mut bn = BatchNorm2d::new(1);
        let x = random_input(2, 1, 2, 6);
        let gy = Tensor::full(vec![2, 1, 2, 2], 1.0);
        let _ = bn.forward(&x, true);
        let _ = bn.backward(&gy);
        assert!((bn.beta.grad.data()[0] - 8.0).abs() < 1e-4);
    }

    #[test]
    fn absorb_replays_forward_running_stats_exactly() {
        // the master-side replay path must be bit-identical to having run
        // the training forward locally
        let mut fwd = BatchNorm2d::new(2);
        let mut replay = BatchNorm2d::new(2);
        for seed in 0..5 {
            let x = random_input(3, 2, 4, seed);
            let _ = fwd.forward(&x, true);
            let (mean, var) = fwd.take_batch_stats().unwrap();
            assert!(fwd.take_batch_stats().is_none(), "stats must be consumed");
            replay.absorb_batch_stats(&mean, &var);
            assert_eq!(fwd.running_mean, replay.running_mean);
            assert_eq!(fwd.running_var, replay.running_var);
            assert_eq!(fwd.updates, replay.updates);
        }
    }

    #[test]
    fn export_shapes() {
        let bn = BatchNorm2d::new(5);
        let (g, b, m, v, eps) = bn.export();
        assert_eq!(g.len(), 5);
        assert_eq!(b.len(), 5);
        assert_eq!(m.len(), 5);
        assert_eq!(v.len(), 5);
        assert!(eps > 0.0);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_check() {
        let mut bn = BatchNorm2d::new(2);
        let _ = bn.forward(&Tensor::zeros(vec![1, 3, 2, 2]), false);
    }
}
