//! The ResNet basic block: two 3×3 convolutions with an identity or
//! 1×1-downsample skip connection.

use crate::activation::Activation;
use crate::batchnorm::BatchNorm2d;
use crate::conv::Conv2d;
use crate::layer::Layer;
use crate::param::Param;
use crate::spec::{ActSpec, BnSpec, ConvSpec, SpecItem};
use sia_tensor::{Conv2dGeom, Tensor};

/// A pre-activationless ("v1") basic residual block:
///
/// ```text
/// y = act2( bn2(conv2( act1(bn1(conv1(x))) )) + skip(x) )
/// ```
///
/// where `skip` is identity, or a stride-matched 1×1 conv + BN when the
/// block changes resolution or width.
#[derive(Clone, Debug)]
pub struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    /// First activation (public so tests can inspect; mutate via
    /// [`BasicBlock::visit_activations`]).
    act1: Activation,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    down: Option<(Conv2d, BatchNorm2d)>,
    act2: Activation,
    cached_skip_grad_path: bool,
}

impl BasicBlock {
    /// Builds a block mapping `in_ch → out_ch` at input `hw`, downsampling
    /// by `stride` (1 or 2). A 1×1 projection skip is added automatically
    /// whenever shape changes.
    #[must_use]
    pub fn new(in_ch: usize, out_ch: usize, hw: usize, stride: usize, seed: u64) -> Self {
        let g1 = Conv2dGeom {
            in_channels: in_ch,
            out_channels: out_ch,
            in_h: hw,
            in_w: hw,
            kernel: 3,
            stride,
            padding: 1,
        };
        let out_hw = g1.out_hw().0;
        let g2 = Conv2dGeom {
            in_channels: out_ch,
            out_channels: out_ch,
            in_h: out_hw,
            in_w: out_hw,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let down = if stride != 1 || in_ch != out_ch {
            let gd = Conv2dGeom {
                in_channels: in_ch,
                out_channels: out_ch,
                in_h: hw,
                in_w: hw,
                kernel: 1,
                stride,
                padding: 0,
            };
            Some((Conv2d::new(gd, seed ^ 0xD0), BatchNorm2d::new(out_ch)))
        } else {
            None
        };
        BasicBlock {
            conv1: Conv2d::new(g1, seed),
            bn1: BatchNorm2d::new(out_ch),
            act1: Activation::relu(),
            conv2: Conv2d::new(g2, seed ^ 0x1),
            bn2: BatchNorm2d::new(out_ch),
            down,
            act2: Activation::relu(),
            cached_skip_grad_path: false,
        }
    }

    /// Output spatial size.
    #[must_use]
    pub fn out_hw(&self) -> usize {
        self.conv2.geom().in_h
    }

    /// Output channel count.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.conv2.geom().out_channels
    }

    /// Runs the block.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let main = self.conv1.forward(x, train);
        let main = self.bn1.forward(&main, train);
        let main = self.act1.forward(&main, train);
        let main = self.conv2.forward(&main, train);
        let main = self.bn2.forward(&main, train);
        let skip = match &mut self.down {
            Some((conv, bn)) => {
                let s = conv.forward(x, train);
                bn.forward(&s, train)
            }
            None => x.clone(),
        };
        self.cached_skip_grad_path = true;
        self.act2.forward(&main.add(&skip), train)
    }

    /// Backpropagates through the block, returning ∂L/∂x.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.act2.backward(grad);
        // main branch
        let gm = self.bn2.backward(&g);
        let gm = self.conv2.backward(&gm);
        let gm = self.act1.backward(&gm);
        let gm = self.bn1.backward(&gm);
        let gx_main = self.conv1.backward(&gm);
        // skip branch
        let gx_skip = match &mut self.down {
            Some((conv, bn)) => {
                let gs = bn.backward(&g);
                conv.backward(&gs)
            }
            None => g,
        };
        gx_main.add(&gx_skip)
    }

    /// Visits the block's trainable parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.act1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
        if let Some((conv, bn)) = &mut self.down {
            conv.visit_params(f);
            bn.visit_params(f);
        }
        self.act2.visit_params(f);
    }

    /// Visits the block's two activations (in order).
    pub fn visit_activations(&mut self, f: &mut dyn FnMut(&mut Activation)) {
        f(&mut self.act1);
        f(&mut self.act2);
    }

    /// Visits the block's batch-norm layers (main branch, then skip).
    pub fn visit_batchnorms(&mut self, f: &mut dyn FnMut(&mut BatchNorm2d)) {
        f(&mut self.bn1);
        f(&mut self.bn2);
        if let Some((_, bn)) = &mut self.down {
            f(bn);
        }
    }

    /// Emits the block as spec items (`BlockStart`, conv, conv, `BlockAdd`).
    ///
    /// # Panics
    ///
    /// Panics if the activations are still plain ReLU — a spec is only
    /// meaningful for a quantized network (steps are the SNN thresholds).
    #[must_use]
    pub fn to_spec_items(&self) -> Vec<SpecItem> {
        let act1 = act_spec(&self.act1);
        let act2 = act_spec(&self.act2);
        let down = self.down.as_ref().map(|(conv, bn)| ConvSpec {
            geom: *conv.geom(),
            weights: conv.weights().clone(),
            bn: Some(bn_spec(bn)),
            act: None,
        });
        vec![
            SpecItem::BlockStart,
            SpecItem::Conv(ConvSpec {
                geom: *self.conv1.geom(),
                weights: self.conv1.weights().clone(),
                bn: Some(bn_spec(&self.bn1)),
                act: Some(act1),
            }),
            SpecItem::Conv(ConvSpec {
                geom: *self.conv2.geom(),
                weights: self.conv2.weights().clone(),
                bn: Some(bn_spec(&self.bn2)),
                act: None,
            }),
            SpecItem::BlockAdd { down, act: act2 },
        ]
    }
}

/// Extracts an [`ActSpec`] from a quantized activation.
///
/// # Panics
///
/// Panics if the activation is still plain ReLU.
pub(crate) fn act_spec(act: &Activation) -> ActSpec {
    match act.kind() {
        crate::activation::ActKind::QuantClip { levels } => ActSpec {
            levels: *levels,
            step: act.step(),
        },
        crate::activation::ActKind::Relu => {
            panic!("cannot export spec from an unquantized (ReLU) network; run quantisation first")
        }
    }
}

pub(crate) fn bn_spec(bn: &BatchNorm2d) -> BnSpec {
    let (gamma, beta, mean, var, eps) = bn.export();
    BnSpec {
        gamma,
        beta,
        mean,
        var,
        eps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_block_shapes() {
        let mut b = BasicBlock::new(4, 4, 8, 1, 0);
        let y = b.forward(&Tensor::zeros(vec![2, 4, 8, 8]), false);
        assert_eq!(y.shape().dims(), &[2, 4, 8, 8]);
        assert_eq!(b.out_hw(), 8);
        assert_eq!(b.out_channels(), 4);
    }

    #[test]
    fn downsample_block_shapes() {
        let mut b = BasicBlock::new(4, 8, 8, 2, 0);
        let y = b.forward(&Tensor::zeros(vec![1, 4, 8, 8]), false);
        assert_eq!(y.shape().dims(), &[1, 8, 4, 4]);
    }

    #[test]
    fn skip_is_projected_only_when_needed() {
        let plain = BasicBlock::new(4, 4, 8, 1, 0);
        let proj = BasicBlock::new(4, 8, 8, 2, 0);
        assert!(plain.down.is_none());
        assert!(proj.down.is_some());
    }

    #[test]
    fn backward_runs_and_produces_input_grad() {
        let mut b = BasicBlock::new(2, 4, 4, 2, 1);
        let x = Tensor::full(vec![1, 2, 4, 4], 0.5);
        let _ = b.forward(&x, true);
        let gx = b.backward(&Tensor::full(vec![1, 4, 2, 2], 1.0));
        assert_eq!(gx.shape().dims(), &[1, 2, 4, 4]);
    }

    #[test]
    fn gradcheck_through_block() {
        let mut b = BasicBlock::new(2, 2, 4, 1, 7);
        let mut x = Tensor::from_vec(
            vec![1, 2, 4, 4],
            (0..32).map(|i| ((i % 7) as f32) * 0.3 - 0.9).collect(),
        );
        let gy = Tensor::full(vec![1, 2, 4, 4], 1.0);
        let _ = b.forward(&x, true);
        let gx = b.backward(&gy);
        let eps = 1e-2;
        for idx in [3usize, 14, 30] {
            let orig = x.data()[idx];
            x.data_mut()[idx] = orig + eps;
            let hi = b.forward(&x, true).sum();
            x.data_mut()[idx] = orig - eps;
            let lo = b.forward(&x, true).sum();
            x.data_mut()[idx] = orig;
            let numeric = (hi - lo) / (2.0 * eps);
            // batch-norm recomputes batch stats so tolerance is loose
            assert!(
                (gx.data()[idx] - numeric).abs() < 0.15,
                "idx {idx}: analytic {} numeric {numeric}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn visit_activations_yields_two() {
        let mut b = BasicBlock::new(2, 2, 4, 1, 0);
        let mut n = 0;
        b.visit_activations(&mut |_| n += 1);
        assert_eq!(n, 2);
    }

    #[test]
    fn spec_items_for_quantized_block() {
        let mut b = BasicBlock::new(2, 4, 8, 2, 0);
        b.visit_activations(&mut |a| a.make_quantized(8));
        let items = b.to_spec_items();
        assert_eq!(items.len(), 4);
        assert!(matches!(items[0], SpecItem::BlockStart));
        assert!(matches!(
            &items[3],
            SpecItem::BlockAdd { down: Some(_), .. }
        ));
        // inner conv keeps act, outer conv's act is None (applied after add)
        match (&items[1], &items[2]) {
            (SpecItem::Conv(c1), SpecItem::Conv(c2)) => {
                assert!(c1.act.is_some());
                assert!(c2.act.is_none());
                assert!(c1.bn.is_some());
            }
            _ => panic!("unexpected items"),
        }
    }

    #[test]
    #[should_panic(expected = "unquantized")]
    fn spec_requires_quantized_acts() {
        let b = BasicBlock::new(2, 2, 4, 1, 0);
        let _ = b.to_spec_items();
    }

    #[test]
    fn param_count_includes_downsample() {
        let mut plain = BasicBlock::new(4, 4, 8, 1, 0);
        let mut proj = BasicBlock::new(4, 8, 8, 2, 0);
        let count = |b: &mut BasicBlock| {
            let mut n = 0;
            b.visit_params(&mut |p| n += p.numel());
            n
        };
        // plain: 2 convs 4→4 (2·4·4·9) + 2 BN (2·(4+4))
        assert_eq!(count(&mut plain), 2 * 4 * 4 * 9 + 16);
        // proj: conv 4→8 (8·4·9) + conv 8→8 (8·8·9) + down 1×1 (8·4) + 3 BN of 8
        assert_eq!(count(&mut proj), 8 * 4 * 9 + 8 * 8 * 9 + 32 + 3 * 16);
    }
}
