//! 2-D convolution layer (bias-free; shifts live in batch norm, as in the
//! accelerator's aggregation core).

use crate::layer::Layer;
use crate::param::Param;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sia_tensor::{
    conv2d_backward_input, conv2d_backward_weights, conv2d_forward, Conv2dGeom, Tensor,
};

/// A bias-free 2-D convolution with Kaiming-uniform initialisation.
///
/// # Examples
///
/// ```
/// use sia_nn::{Conv2d, Layer};
/// use sia_tensor::{Conv2dGeom, Tensor};
/// let geom = Conv2dGeom { in_channels: 3, out_channels: 8, in_h: 8, in_w: 8,
///                         kernel: 3, stride: 1, padding: 1 };
/// let mut conv = Conv2d::new(geom, 42);
/// let y = conv.forward(&Tensor::zeros(vec![1, 3, 8, 8]), false);
/// assert_eq!(y.shape().dims(), &[1, 8, 8, 8]);
/// ```
#[derive(Clone, Debug)]
pub struct Conv2d {
    geom: Conv2dGeom,
    weight: Param,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates the layer with Kaiming-uniform weights
    /// (`bound = sqrt(6 / fan_in)`), seeded for reproducibility.
    #[must_use]
    pub fn new(geom: Conv2dGeom, seed: u64) -> Self {
        let fan_in = (geom.in_channels * geom.kernel * geom.kernel) as f32;
        let bound = (6.0 / fan_in).sqrt();
        let mut rng = StdRng::seed_from_u64(seed);
        let weight = Param::new(Tensor::rand_uniform(
            vec![
                geom.out_channels,
                geom.in_channels,
                geom.kernel,
                geom.kernel,
            ],
            bound,
            &mut rng,
        ));
        Conv2d {
            geom,
            weight,
            cached_input: None,
        }
    }

    /// The layer geometry.
    #[must_use]
    pub fn geom(&self) -> &Conv2dGeom {
        &self.geom
    }

    /// Read access to the weights (for quantisation and spec export).
    #[must_use]
    pub fn weights(&self) -> &Tensor {
        &self.weight.value
    }

    /// Mutable access to the weights (for weight quantisation in place).
    pub fn weights_mut(&mut self) -> &mut Tensor {
        &mut self.weight.value
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(x.clone());
        }
        conv2d_forward(x, &self.weight.value, &self.geom)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Conv2d::backward without training forward");
        let gw = conv2d_backward_weights(x, grad, &self.geom);
        self.weight.grad.add_assign(&gw);
        conv2d_backward_input(grad, &self.weight.value, &self.geom)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Conv2dGeom {
        Conv2dGeom {
            in_channels: 2,
            out_channels: 3,
            in_h: 4,
            in_w: 4,
            kernel: 3,
            stride: 1,
            padding: 1,
        }
    }

    #[test]
    fn init_is_seeded_and_bounded() {
        let a = Conv2d::new(geom(), 1);
        let b = Conv2d::new(geom(), 1);
        let c = Conv2d::new(geom(), 2);
        assert_eq!(a.weights().data(), b.weights().data());
        assert_ne!(a.weights().data(), c.weights().data());
        let bound = (6.0f32 / 18.0).sqrt();
        assert!(a.weights().max_abs() <= bound);
    }

    #[test]
    fn forward_shape() {
        let mut conv = Conv2d::new(geom(), 3);
        let y = conv.forward(&Tensor::zeros(vec![2, 2, 4, 4]), false);
        assert_eq!(y.shape().dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn backward_accumulates_weight_grad() {
        let mut conv = Conv2d::new(geom(), 3);
        let x = Tensor::full(vec![1, 2, 4, 4], 1.0);
        let _ = conv.forward(&x, true);
        let gy = Tensor::full(vec![1, 3, 4, 4], 1.0);
        let _ = conv.backward(&gy);
        let g1 = conv.weight.grad.clone();
        assert!(g1.norm() > 0.0);
        // second backward accumulates
        let _ = conv.forward(&x, true);
        let _ = conv.backward(&gy);
        assert!((conv.weight.grad.norm() - 2.0 * g1.norm()).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "without training forward")]
    fn backward_requires_training_forward() {
        let mut conv = Conv2d::new(geom(), 3);
        let _ = conv.forward(&Tensor::zeros(vec![1, 2, 4, 4]), false);
        let _ = conv.backward(&Tensor::zeros(vec![1, 3, 4, 4]));
    }

    #[test]
    fn param_count_matches_weight_tensor() {
        let mut conv = Conv2d::new(geom(), 3);
        assert_eq!(conv.param_count(), 3 * 2 * 9);
    }
}
