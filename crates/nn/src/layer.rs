//! The layer abstraction shared by all trainable building blocks.

use crate::param::Param;
use sia_tensor::Tensor;

/// One differentiable network stage.
///
/// Layers cache whatever they need during `forward` and consume the cache in
/// `backward`; callers must pair each `backward` with the immediately
/// preceding `forward` on the same layer (the standard single-stream
/// backprop discipline).
pub trait Layer {
    /// Computes the layer output. `train` selects training behaviour
    /// (batch statistics in batch norm, gradient caches everywhere).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Propagates `grad` (∂L/∂output) to ∂L/∂input, accumulating parameter
    /// gradients along the way.
    ///
    /// # Panics
    ///
    /// Implementations panic if called without a preceding training-mode
    /// `forward` (missing cache).
    fn backward(&mut self, grad: &Tensor) -> Tensor;

    /// Visits every trainable parameter (for the optimizer).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Total number of trainable scalars.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy {
        p: Param,
    }

    impl Layer for Dummy {
        fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
            x.clone()
        }
        fn backward(&mut self, grad: &Tensor) -> Tensor {
            grad.clone()
        }
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.p);
        }
    }

    #[test]
    fn param_count_sums_visits() {
        let mut d = Dummy {
            p: Param::new(Tensor::zeros(vec![5, 2])),
        };
        assert_eq!(d.param_count(), 10);
    }
}
