//! Training framework for the software half of the co-design flow.
//!
//! Implements step 1 of the paper's Fig. 1 pipeline — *"Train an ANN (with
//! FP32 precision) via traditional training methods e.g., back-propagation"*
//! — plus the structural pieces the later steps hang off:
//!
//! * typed layers with explicit forward/backward ([`Conv2d`], [`BatchNorm2d`],
//!   [`Linear`], [`Activation`], pooling),
//! * the two network topologies evaluated in the paper, [`resnet::ResNet`]
//!   (ResNet-18) and [`vgg::Vgg`] (VGG-11), width-parameterised so that the
//!   full-width (paper-scale) and slim (trainable-here) variants share code,
//! * SGD with momentum/weight decay and a step LR schedule ([`optim`]),
//! * a [`trainer`] that runs epochs over the synthetic dataset,
//! * [`spec::NetworkSpec`] — a flat, typed export of a trained network that
//!   the quantiser (`sia-quant`), the SNN converter (`sia-snn`) and the
//!   accelerator compiler (`sia-accel`) all consume.
//!
//! The activation layer is swappable between plain ReLU and the L-level
//! quantized-clip activation of the conversion pipeline (step 2 of Fig. 1);
//! see [`Activation`].
//!
//! # Examples
//!
//! ```
//! use sia_nn::resnet::ResNet;
//! use sia_nn::Model;
//! use sia_tensor::Tensor;
//!
//! let mut net = ResNet::resnet18(8, 16, 10, 0xC0FFEE); // slim width-8, 16×16 input
//! let x = Tensor::zeros(vec![2, 3, 16, 16]);
//! let logits = net.forward(&x, false);
//! assert_eq!(logits.shape().dims(), &[2, 10]);
//! ```

#![forbid(unsafe_code)]

pub mod activation;
pub mod batchnorm;
pub mod block;
pub mod conv;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod model;
pub mod optim;
pub mod param;
pub mod pool;
pub mod resnet;
pub mod sequential;
pub mod spec;
pub mod trainer;

#[cfg(test)]
mod proptests;
pub mod vgg;

pub use activation::{ActKind, Activation};
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use layer::Layer;
pub use linear::Linear;
pub use model::Model;
pub use param::Param;
pub use spec::{ActSpec, BnSpec, ConvSpec, LinearSpec, NetworkSpec, SpecItem};
