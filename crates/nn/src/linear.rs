//! Fully-connected layer (the classification head of both networks).

use crate::layer::Layer;
use crate::param::Param;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sia_tensor::{matmul_a_bt, matmul_at_b, Tensor};

/// A fully-connected layer `y = x·Wᵀ + b` over `[N, in]` batches.
///
/// # Examples
///
/// ```
/// use sia_nn::{Layer, Linear};
/// use sia_tensor::Tensor;
/// let mut fc = Linear::new(8, 10, 1);
/// let y = fc.forward(&Tensor::zeros(vec![4, 8]), false);
/// assert_eq!(y.shape().dims(), &[4, 10]);
/// ```
#[derive(Clone, Debug)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Param, // [out, in]
    bias: Param,   // [out]
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates the layer with Kaiming-uniform weights and zero bias.
    #[must_use]
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        let bound = (6.0 / in_features as f32).sqrt();
        let mut rng = StdRng::seed_from_u64(seed);
        Linear {
            in_features,
            out_features,
            weight: Param::new(Tensor::rand_uniform(
                vec![out_features, in_features],
                bound,
                &mut rng,
            )),
            bias: Param::new_no_decay(Tensor::zeros(vec![out_features])),
            cached_input: None,
        }
    }

    /// Input feature count.
    #[must_use]
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Read access to the `[out, in]` weight matrix.
    #[must_use]
    pub fn weights(&self) -> &Tensor {
        &self.weight.value
    }

    /// Mutable weight access (for weight quantisation in place).
    pub fn weights_mut(&mut self) -> &mut Tensor {
        &mut self.weight.value
    }

    /// Read access to the bias vector.
    #[must_use]
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().rank(), 2, "Linear expects [N, in]");
        assert_eq!(x.shape().dim(1), self.in_features, "feature mismatch");
        if train {
            self.cached_input = Some(x.clone());
        }
        // y[N, out] = x[N, in] · Wᵀ[in, out]
        let mut y = matmul_a_bt(x, &self.weight.value);
        let n = y.shape().dim(0);
        for b in 0..n {
            for o in 0..self.out_features {
                let i = b * self.out_features + o;
                y.data_mut()[i] += self.bias.value.data()[o];
            }
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Linear::backward without training forward");
        // ∂W[out, in] = gradᵀ[out, N] · x[N, in]
        let gw = matmul_at_b(grad, x);
        self.weight.grad.add_assign(&gw);
        let n = grad.shape().dim(0);
        for b in 0..n {
            for o in 0..self.out_features {
                self.bias.grad.data_mut()[o] += grad.data()[b * self.out_features + o];
            }
        }
        // ∂x[N, in] = grad[N, out] · W[out, in]
        sia_tensor::matmul(grad, &self.weight.value)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_applies_weights_and_bias() {
        let mut fc = Linear::new(2, 2, 1);
        fc.weight.value = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        fc.bias.value = Tensor::from_vec(vec![2], vec![10.0, 20.0]);
        let y = fc.forward(&Tensor::from_vec(vec![1, 2], vec![3.0, 4.0]), false);
        assert_eq!(y.data(), &[13.0, 24.0]);
    }

    #[test]
    fn backward_gradcheck() {
        let mut fc = Linear::new(3, 2, 7);
        let mut x = Tensor::from_vec(vec![2, 3], vec![0.5, -1.0, 2.0, 1.0, 0.0, -0.5]);
        let gy = Tensor::from_vec(vec![2, 2], vec![1.0, -1.0, 0.5, 2.0]);
        let _ = fc.forward(&x, true);
        let gx = fc.backward(&gy);
        let eps = 1e-3;
        let loss = |fc: &mut Linear, x: &Tensor| -> f32 {
            fc.forward(x, false)
                .data()
                .iter()
                .zip(gy.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        // input gradient
        for i in 0..6 {
            let orig = x.data()[i];
            x.data_mut()[i] = orig + eps;
            let hi = loss(&mut fc, &x);
            x.data_mut()[i] = orig - eps;
            let lo = loss(&mut fc, &x);
            x.data_mut()[i] = orig;
            let numeric = (hi - lo) / (2.0 * eps);
            assert!((gx.data()[i] - numeric).abs() < 1e-2);
        }
        // weight gradient (spot check)
        for i in [0usize, 3, 5] {
            let orig = fc.weight.value.data()[i];
            fc.weight.value.data_mut()[i] = orig + eps;
            let hi = loss(&mut fc, &x);
            fc.weight.value.data_mut()[i] = orig - eps;
            let lo = loss(&mut fc, &x);
            fc.weight.value.data_mut()[i] = orig;
            let numeric = (hi - lo) / (2.0 * eps);
            assert!((fc.weight.grad.data()[i] - numeric).abs() < 1e-2);
        }
    }

    #[test]
    fn bias_gradient_sums_over_batch() {
        let mut fc = Linear::new(1, 2, 3);
        let x = Tensor::zeros(vec![3, 1]);
        let _ = fc.forward(&x, true);
        let gy = Tensor::full(vec![3, 2], 1.0);
        let _ = fc.backward(&gy);
        assert_eq!(fc.bias.grad.data(), &[3.0, 3.0]);
    }

    #[test]
    fn param_count() {
        let mut fc = Linear::new(512, 10, 0);
        assert_eq!(fc.param_count(), 512 * 10 + 10);
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn input_width_checked() {
        let mut fc = Linear::new(4, 2, 0);
        let _ = fc.forward(&Tensor::zeros(vec![1, 3]), false);
    }
}
