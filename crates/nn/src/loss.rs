//! Softmax cross-entropy loss for classification training.

use sia_tensor::Tensor;

/// Computes mean softmax cross-entropy over a `[N, K]` logit batch, returning
/// the loss and the logits gradient (already divided by `N`).
///
/// # Panics
///
/// Panics if `logits` is not rank-2, `labels.len() != N`, or any label is out
/// of range.
///
/// # Examples
///
/// ```
/// use sia_nn::loss::softmax_cross_entropy;
/// use sia_tensor::Tensor;
/// let logits = Tensor::from_vec(vec![1, 2], vec![10.0, -10.0]);
/// let (loss, _grad) = softmax_cross_entropy(&logits, &[0]);
/// assert!(loss < 1e-6); // confident and correct
/// ```
#[must_use]
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let n = logits.shape().dim(0);
    let (loss_sum, grad) = softmax_cross_entropy_parts(logits, labels, n);
    ((loss_sum / n as f64) as f32, grad)
}

/// Shard-friendly cross-entropy: returns the **unaveraged** `f64` row-sum
/// of losses plus the logits gradient divided by `denom` — the *total*
/// batch size, which may exceed this shard's own row count. Summing the
/// row-sums over shards and concatenating the gradients reconstructs the
/// full-batch loss; per-row gradients depend only on their own row, so
/// they are bit-identical to a full-batch call with the same `denom`.
///
/// # Panics
///
/// Panics if `logits` is not rank-2, `labels.len() != N`, or any label is
/// out of range.
#[must_use]
#[allow(clippy::needless_range_loop)]
pub fn softmax_cross_entropy_parts(
    logits: &Tensor,
    labels: &[usize],
    denom: usize,
) -> (f64, Tensor) {
    assert_eq!(logits.shape().rank(), 2, "logits must be [N, K]");
    let n = logits.shape().dim(0);
    let k = logits.shape().dim(1);
    assert_eq!(labels.len(), n, "label count mismatch");
    let mut grad = vec![0.0f32; n * k];
    let mut loss = 0.0f64;
    for b in 0..n {
        let label = labels[b];
        assert!(label < k, "label {label} out of {k} classes");
        let row = &logits.data()[b * k..(b + 1) * k];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        let log_z = z.ln() + max;
        loss += f64::from(log_z - row[label]);
        for j in 0..k {
            let p = exps[j] / z;
            grad[b * k + j] = (p - if j == label { 1.0 } else { 0.0 }) / denom as f32;
        }
    }
    (loss, Tensor::from_vec(vec![n, k], grad))
}

/// Number of rows of a `[N, K]` logit batch whose argmax (first maximum,
/// strict `>` comparisons) equals the label — the integer form of
/// [`accuracy`], used by the data-parallel trainer so shard totals sum
/// exactly.
///
/// # Panics
///
/// Panics if `logits` is not rank-2 or `labels.len() != N`.
#[must_use]
#[allow(clippy::needless_range_loop)]
pub fn count_correct(logits: &Tensor, labels: &[usize]) -> usize {
    assert_eq!(logits.shape().rank(), 2, "logits must be [N, K]");
    let n = logits.shape().dim(0);
    let k = logits.shape().dim(1);
    assert_eq!(labels.len(), n, "label count mismatch");
    let mut correct = 0;
    for b in 0..n {
        let row = &logits.data()[b * k..(b + 1) * k];
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        if best == labels[b] {
            correct += 1;
        }
    }
    correct
}

/// Top-1 accuracy of a `[N, K]` logit batch.
///
/// # Panics
///
/// Panics if `logits` is not rank-2 or `labels.len() != N`.
#[must_use]
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let correct = count_correct(logits, labels);
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros(vec![2, 4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
        // gradient sums to zero per row
        for b in 0..2 {
            let s: f32 = grad.data()[b * 4..(b + 1) * 4].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_numeric() {
        let mut logits = Tensor::from_vec(vec![2, 3], vec![0.5, -0.2, 1.0, -1.0, 0.0, 2.0]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..6 {
            let orig = logits.data()[i];
            logits.data_mut()[i] = orig + eps;
            let (hi, _) = softmax_cross_entropy(&logits, &labels);
            logits.data_mut()[i] = orig - eps;
            let (lo, _) = softmax_cross_entropy(&logits, &labels);
            logits.data_mut()[i] = orig;
            let numeric = (hi - lo) / (2.0 * eps);
            assert!(
                (grad.data()[i] - numeric).abs() < 1e-3,
                "i={i}: {} vs {numeric}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn loss_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1, 3], vec![1.0, 2.0, 3.0]);
        let b = a.map(|v| v + 100.0);
        let (la, _) = softmax_cross_entropy(&a, &[1]);
        let (lb, _) = softmax_cross_entropy(&b, &[1]);
        assert!((la - lb).abs() < 1e-4);
    }

    #[test]
    fn large_logits_are_stable() {
        let logits = Tensor::from_vec(vec![1, 2], vec![1000.0, -1000.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(grad.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Tensor::from_vec(vec![3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn label_range_checked() {
        let _ = softmax_cross_entropy(&Tensor::zeros(vec![1, 2]), &[5]);
    }
}
