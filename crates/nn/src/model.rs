//! The whole-network abstraction consumed by the trainer, quantiser and
//! converter.

use crate::activation::Activation;
use crate::batchnorm::BatchNorm2d;
use crate::param::Param;
use crate::spec::NetworkSpec;
use sia_tensor::Tensor;

/// A trainable classification network.
pub trait Model {
    /// Runs the network on a `[N, C, H, W]` batch, returning `[N, classes]`
    /// logits.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Backpropagates the logits gradient through the whole network.
    fn backward(&mut self, grad: &Tensor);

    /// Visits every trainable parameter.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Visits every activation layer, in network order — the hook used by
    /// the quantiser to swap ReLU for quantized clip and to calibrate steps.
    fn visit_activations(&mut self, f: &mut dyn FnMut(&mut Activation));

    /// Exports the flattened description used by conversion and compilation.
    fn to_spec(&self) -> NetworkSpec;

    /// Model name (also the spec name).
    fn name(&self) -> &str;

    /// Total trainable scalar count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }

    /// Zeroes all parameter gradients (start of a step).
    fn zero_grad(&mut self) {
        self.visit_params(&mut Param::zero_grad);
    }

    /// Deep-copies the model for a data-parallel worker replica, or `None`
    /// if this model cannot be replicated (the trainer then falls back to
    /// processing shards sequentially — bit-identical, just not parallel).
    fn try_clone(&self) -> Option<Box<dyn Model + Send + Sync>> {
        None
    }

    /// Visits every batch-norm layer, in network order — the hook the
    /// data-parallel trainer uses to capture worker batch statistics and
    /// replay them on the master in shard order.
    fn visit_batchnorms(&mut self, _f: &mut dyn FnMut(&mut BatchNorm2d)) {}
}
