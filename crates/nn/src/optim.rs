//! SGD with momentum, weight decay and a step learning-rate schedule.

use crate::model::Model;

/// SGD hyper-parameters.
///
/// # Examples
///
/// ```
/// use sia_nn::optim::Sgd;
/// let opt = Sgd::new(0.1).momentum(0.9).weight_decay(5e-4);
/// assert_eq!(opt.lr(), 0.1);
/// ```
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    base_lr: f32,
    momentum: f32,
    weight_decay: f32,
    grad_clip: Option<f32>,
}

impl Sgd {
    /// Plain SGD at learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    #[must_use]
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            base_lr: lr,
            momentum: 0.0,
            weight_decay: 0.0,
            grad_clip: None,
        }
    }

    /// Sets the momentum coefficient (0.9 is the usual choice).
    #[must_use]
    pub fn momentum(mut self, m: f32) -> Self {
        assert!((0.0..1.0).contains(&m), "momentum must be in [0, 1)");
        self.momentum = m;
        self
    }

    /// Sets L2 weight decay (applied only to params with `decay == true`).
    #[must_use]
    pub fn weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        self.weight_decay = wd;
        self
    }

    /// Clips each parameter's gradient tensor to the given L2 norm.
    #[must_use]
    pub fn grad_clip(mut self, max_norm: f32) -> Self {
        assert!(max_norm > 0.0, "clip norm must be positive");
        self.grad_clip = Some(max_norm);
        self
    }

    /// Current learning rate.
    #[must_use]
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Multiplies the current learning rate (step decay).
    pub fn decay_lr(&mut self, factor: f32) {
        assert!(factor > 0.0, "decay factor must be positive");
        self.lr *= factor;
    }

    /// Sets the learning rate to `base_lr · factor` (cosine or warmup
    /// schedules computed by the caller).
    pub fn set_lr_scale(&mut self, factor: f32) {
        self.lr = self.base_lr * factor;
    }

    /// Applies one update step to every parameter of `model`, consuming the
    /// accumulated gradients (and zeroing them).
    pub fn step(&self, model: &mut dyn Model) {
        let lr = self.lr;
        let mom = self.momentum;
        let wd = self.weight_decay;
        let clip = self.grad_clip;
        model.visit_params(&mut |p| {
            if let Some(max_norm) = clip {
                let norm = p.grad.norm();
                if norm > max_norm {
                    let scale = max_norm / norm;
                    p.grad.map_inplace(|g| g * scale);
                }
            }
            let decay = if p.decay { wd } else { 0.0 };
            let n = p.value.numel();
            for i in 0..n {
                let g = p.grad.data()[i] + decay * p.value.data()[i];
                let v = mom * p.momentum.data()[i] + g;
                p.momentum.data_mut()[i] = v;
                p.value.data_mut()[i] -= lr * v;
            }
            p.zero_grad();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::param::Param;
    use crate::spec::NetworkSpec;
    use sia_tensor::Tensor;

    struct OneParam {
        p: Param,
    }

    impl Model for OneParam {
        fn forward(&mut self, x: &Tensor, _t: bool) -> Tensor {
            x.clone()
        }
        fn backward(&mut self, _g: &Tensor) {}
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.p);
        }
        fn visit_activations(&mut self, _f: &mut dyn FnMut(&mut Activation)) {}
        fn to_spec(&self) -> NetworkSpec {
            NetworkSpec {
                name: "one".into(),
                input: (1, 1, 1),
                items: vec![],
            }
        }
        fn name(&self) -> &str {
            "one"
        }
    }

    fn model_with(value: f32, grad: f32) -> OneParam {
        let mut p = Param::new(Tensor::full(vec![1], value));
        p.grad = Tensor::full(vec![1], grad);
        OneParam { p }
    }

    #[test]
    fn vanilla_step_descends() {
        let mut m = model_with(1.0, 0.5);
        Sgd::new(0.1).step(&mut m);
        assert!((m.p.value.data()[0] - 0.95).abs() < 1e-6);
        assert_eq!(m.p.grad.data()[0], 0.0); // consumed
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut m = model_with(0.0, 1.0);
        let opt = Sgd::new(0.1).momentum(0.5);
        opt.step(&mut m);
        assert!((m.p.value.data()[0] + 0.1).abs() < 1e-6);
        // re-apply the same gradient: velocity = 0.5·1 + 1 = 1.5
        m.p.grad = Tensor::full(vec![1], 1.0);
        opt.step(&mut m);
        assert!((m.p.value.data()[0] + 0.25).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_pulls_towards_zero() {
        let mut m = model_with(2.0, 0.0);
        Sgd::new(0.1).weight_decay(0.5).step(&mut m);
        assert!((m.p.value.data()[0] - 1.9).abs() < 1e-6);
    }

    #[test]
    fn no_decay_param_is_exempt() {
        let mut m = model_with(2.0, 0.0);
        m.p.decay = false;
        Sgd::new(0.1).weight_decay(0.5).step(&mut m);
        assert_eq!(m.p.value.data()[0], 2.0);
    }

    #[test]
    fn grad_clip_bounds_update() {
        let mut m = model_with(0.0, 100.0);
        Sgd::new(1.0).grad_clip(1.0).step(&mut m);
        assert!((m.p.value.data()[0] + 1.0).abs() < 1e-5);
    }

    #[test]
    fn lr_decay_and_scale() {
        let mut opt = Sgd::new(0.4);
        opt.decay_lr(0.5);
        assert!((opt.lr() - 0.2).abs() < 1e-7);
        opt.set_lr_scale(0.25);
        assert!((opt.lr() - 0.1).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn lr_validated() {
        let _ = Sgd::new(0.0);
    }
}
