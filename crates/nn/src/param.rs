//! Trainable parameter storage.

use sia_tensor::Tensor;

/// A trainable tensor with its gradient accumulator and momentum buffer.
///
/// Layers own their `Param`s; the optimizer visits them through
/// [`crate::Layer::visit_params`].
///
/// # Examples
///
/// ```
/// use sia_nn::Param;
/// use sia_tensor::Tensor;
/// let mut p = Param::new(Tensor::zeros(vec![4]));
/// p.grad.data_mut()[0] = 1.0;
/// p.zero_grad();
/// assert_eq!(p.grad.sum(), 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the last backward pass.
    pub grad: Tensor,
    /// SGD momentum buffer.
    pub momentum: Tensor,
    /// Whether weight decay applies (true for weights, false for BN affine
    /// terms and biases, the usual convention).
    pub decay: bool,
}

impl Param {
    /// Wraps a value tensor with zeroed gradient/momentum and decay enabled.
    #[must_use]
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().dims().to_vec());
        let momentum = grad.clone();
        Param {
            value,
            grad,
            momentum,
            decay: true,
        }
    }

    /// Same as [`Param::new`] but exempt from weight decay.
    #[must_use]
    pub fn new_no_decay(value: Tensor) -> Self {
        let mut p = Param::new(value);
        p.decay = false;
        p
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.map_inplace(|_| 0.0);
    }

    /// Number of scalar parameters.
    #[must_use]
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_zeroes_grad_and_momentum() {
        let p = Param::new(Tensor::full(vec![3], 2.0));
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.momentum.sum(), 0.0);
        assert!(p.decay);
        assert_eq!(p.numel(), 3);
    }

    #[test]
    fn no_decay_flag() {
        let p = Param::new_no_decay(Tensor::zeros(vec![1]));
        assert!(!p.decay);
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Param::new(Tensor::zeros(vec![2]));
        p.grad.data_mut()[1] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }
}
