//! Pooling layers wrapping the tensor kernels.

use crate::layer::Layer;
use crate::param::Param;
use sia_tensor::pooling::{
    global_avgpool_backward, global_avgpool_forward, maxpool2x2_backward, maxpool2x2_forward,
};
use sia_tensor::Tensor;

/// 2×2 stride-2 max pooling (VGG-11 downsampling). In the spike domain this
/// becomes an OR gate over the window (see `sia-snn`).
///
/// # Examples
///
/// ```
/// use sia_nn::pool::MaxPool2x2;
/// use sia_nn::Layer;
/// use sia_tensor::Tensor;
/// let mut pool = MaxPool2x2::new();
/// let y = pool.forward(&Tensor::zeros(vec![1, 2, 4, 4]), false);
/// assert_eq!(y.shape().dims(), &[1, 2, 2, 2]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct MaxPool2x2 {
    cache: Option<(Vec<usize>, usize)>,
}

impl MaxPool2x2 {
    /// Creates the layer.
    #[must_use]
    pub fn new() -> Self {
        MaxPool2x2 { cache: None }
    }
}

impl Layer for MaxPool2x2 {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (y, idx) = maxpool2x2_forward(x);
        if train {
            self.cache = Some((idx, x.numel()));
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (idx, numel) = self
            .cache
            .as_ref()
            .expect("MaxPool2x2::backward without training forward");
        maxpool2x2_backward(grad, idx, *numel)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Global average pooling `[N,C,H,W] → [N,C]` (ResNet-18 head). In the
/// converted network the `1/(H·W)` factor is folded into the FC weight
/// quantisation scale so the spike path stays integer (see `sia-snn`).
#[derive(Clone, Debug, Default)]
pub struct GlobalAvgPool {
    cache: Option<(usize, usize)>,
}

impl GlobalAvgPool {
    /// Creates the layer.
    #[must_use]
    pub fn new() -> Self {
        GlobalAvgPool { cache: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cache = Some((x.shape().dim(2), x.shape().dim(3)));
        }
        global_avgpool_forward(x)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (h, w) = self
            .cache
            .expect("GlobalAvgPool::backward without training forward");
        global_avgpool_backward(grad, h, w)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_roundtrip() {
        let mut pool = MaxPool2x2::new();
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 5.0, 2.0, 3.0]);
        let y = pool.forward(&x, true);
        assert_eq!(y.data(), &[5.0]);
        let gx = pool.backward(&Tensor::from_vec(vec![1, 1, 1, 1], vec![1.0]));
        assert_eq!(gx.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn avgpool_roundtrip() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 6.0]);
        let y = pool.forward(&x, true);
        assert_eq!(y.data(), &[3.0]);
        let gx = pool.backward(&Tensor::from_vec(vec![1, 1], vec![4.0]));
        assert_eq!(gx.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn pools_have_no_params() {
        assert_eq!(MaxPool2x2::new().param_count(), 0);
        assert_eq!(GlobalAvgPool::new().param_count(), 0);
    }
}
