//! Property-based gradient checks: every layer's analytic backward must
//! match the numeric derivative of its forward, over randomized shapes,
//! weights and inputs. These are the tests that keep the training framework
//! honest as it evolves.

use crate::activation::Activation;
use crate::batchnorm::BatchNorm2d;
use crate::conv::Conv2d;
use crate::layer::Layer;
use crate::linear::Linear;
use crate::pool::{GlobalAvgPool, MaxPool2x2};
use proptest::prelude::*;
use sia_tensor::{Conv2dGeom, Tensor};

/// Loss used by every check: `L = <forward(x), gy>` with a fixed random
/// cotangent `gy`, so `∂L/∂x = backward(gy)`.
fn loss(layer: &mut dyn Layer, x: &Tensor, gy: &Tensor) -> f32 {
    layer
        .forward(x, true)
        .data()
        .iter()
        .zip(gy.data())
        .map(|(a, b)| a * b)
        .sum()
}

fn numeric_input_grad(layer: &mut dyn Layer, x: &Tensor, gy: &Tensor, idx: usize) -> f32 {
    let eps = 1e-2;
    let mut xp = x.clone();
    xp.data_mut()[idx] += eps;
    let hi = loss(layer, &xp, gy);
    xp.data_mut()[idx] -= 2.0 * eps;
    let lo = loss(layer, &xp, gy);
    (hi - lo) / (2.0 * eps)
}

fn vals(n: usize, lo: f32, hi: f32) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(lo..hi, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn conv2d_input_gradient_is_correct(
        xs in vals(2 * 2 * 5 * 5, -1.0, 1.0),
        gys in vals(2 * 3 * 5 * 5, -1.0, 1.0),
        seed: u64,
    ) {
        let geom = Conv2dGeom {
            in_channels: 2, out_channels: 3,
            in_h: 5, in_w: 5, kernel: 3, stride: 1, padding: 1,
        };
        let mut conv = Conv2d::new(geom, seed);
        let x = Tensor::from_vec(vec![2, 2, 5, 5], xs);
        let gy = Tensor::from_vec(vec![2, 3, 5, 5], gys);
        let _ = conv.forward(&x, true);
        let gx = conv.backward(&gy);
        for idx in [0usize, 17, 49, 99] {
            let numeric = numeric_input_grad(&mut conv, &x, &gy, idx);
            prop_assert!(
                (gx.data()[idx] - numeric).abs() < 3e-2,
                "idx {idx}: analytic {} vs numeric {numeric}", gx.data()[idx]
            );
        }
    }

    #[test]
    fn linear_gradients_are_correct(
        xs in vals(3 * 6, -1.0, 1.0),
        gys in vals(3 * 4, -1.0, 1.0),
        seed: u64,
    ) {
        let mut fc = Linear::new(6, 4, seed);
        let x = Tensor::from_vec(vec![3, 6], xs);
        let gy = Tensor::from_vec(vec![3, 4], gys);
        let _ = fc.forward(&x, true);
        let gx = fc.backward(&gy);
        for idx in [0usize, 7, 17] {
            let numeric = numeric_input_grad(&mut fc, &x, &gy, idx);
            prop_assert!((gx.data()[idx] - numeric).abs() < 2e-2);
        }
        // weight gradient via numeric perturbation of one weight
        let mut probe = 0usize;
        fc.visit_params(&mut |p| {
            if p.value.shape().rank() == 2 && probe == 0 {
                probe = 1;
                let idx = 5usize;
                let analytic = p.grad.data()[idx];
                let orig = p.value.data()[idx];
                p.value.data_mut()[idx] = orig + 1e-2;
                // forward with nudged weight happens outside the closure;
                // stash values via the captured environment instead
                p.value.data_mut()[idx] = orig;
                // cheap sanity: gradient is finite and bounded
                assert!(analytic.is_finite() && analytic.abs() < 1e3);
            }
        });
    }

    #[test]
    fn batchnorm_input_gradient_is_correct(
        xs in vals(2 * 2 * 3 * 3, -2.0, 2.0),
        gys in vals(2 * 2 * 3 * 3, -1.0, 1.0),
    ) {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::from_vec(vec![2, 2, 3, 3], xs);
        // degenerate (constant) channels make 1/σ explode; skip those draws
        let var_ok = {
            let mut ok = true;
            for ch in 0..2 {
                let mut v: Vec<f32> = Vec::new();
                for b in 0..2 {
                    let base = (b * 2 + ch) * 9;
                    v.extend_from_slice(&x.data()[base..base + 9]);
                }
                let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
                let var: f32 = v.iter().map(|t| (t - mean).powi(2)).sum::<f32>() / v.len() as f32;
                ok &= var > 0.05;
            }
            ok
        };
        prop_assume!(var_ok);
        let gy = Tensor::from_vec(vec![2, 2, 3, 3], gys);
        let _ = bn.forward(&x, true);
        let gx = bn.backward(&gy);
        for idx in [0usize, 13, 35] {
            let numeric = numeric_input_grad(&mut bn, &x, &gy, idx);
            prop_assert!(
                (gx.data()[idx] - numeric).abs() < 5e-2,
                "idx {idx}: analytic {} vs numeric {numeric}", gx.data()[idx]
            );
        }
    }

    #[test]
    fn relu_and_quant_clip_gradients_are_subgradients(
        xs in vals(24, -2.0, 2.0),
        gys in vals(24, -1.0, 1.0),
    ) {
        // away from the kinks, analytic == numeric
        for quant in [false, true] {
            let mut act = if quant {
                Activation::quant_clip(4, 1.0)
            } else {
                Activation::relu()
            };
            let x = Tensor::from_vec(vec![24], xs.clone());
            let gy = Tensor::from_vec(vec![24], gys.clone());
            let _ = act.forward(&x, true);
            let gx = act.backward(&gy);
            for idx in 0..24 {
                let v = x.data()[idx];
                // skip points near a kink of either function
                let near_kink = if quant {
                    let u = v * 4.0 + 0.5;
                    v.abs() < 0.05 || (v - 1.0).abs() < 0.05 || (u - u.round()).abs() < 0.1
                } else {
                    v.abs() < 0.05
                };
                if near_kink || quant {
                    // quantized forward is piecewise constant: its numeric
                    // derivative is 0 or a spike; only the STE property
                    // (gx = gy inside the range) is checkable
                    if quant && v > 0.05 && v < 0.95 {
                        prop_assert!((gx.data()[idx] - gy.data()[idx]).abs() < 1e-6);
                    }
                    continue;
                }
                let numeric = numeric_input_grad(&mut act, &x, &gy, idx);
                prop_assert!(
                    (gx.data()[idx] - numeric).abs() < 1e-3,
                    "idx {idx} v={v}: {} vs {numeric}", gx.data()[idx]
                );
            }
        }
    }

    #[test]
    fn pooling_gradients_are_correct(
        xs in vals(2 * 4 * 4, -1.0, 1.0),
        gys in vals(2 * 2 * 2, -1.0, 1.0),
    ) {
        let mut pool = MaxPool2x2::new();
        let x = Tensor::from_vec(vec![1, 2, 4, 4], xs.clone());
        let gy = Tensor::from_vec(vec![1, 2, 2, 2], gys.clone());
        let _ = pool.forward(&x, true);
        let gx = pool.backward(&gy);
        // ties make max-pool numerically ambiguous; check only clear winners
        for idx in [0usize, 9, 21, 31] {
            let window_has_tie = {
                // conservative: skip values within 0.05 of any other input
                let v = x.data()[idx];
                x.data().iter().enumerate().any(|(j, &u)| j != idx && (u - v).abs() < 0.05)
            };
            if window_has_tie {
                continue;
            }
            let numeric = numeric_input_grad(&mut pool, &x, &gy, idx);
            prop_assert!((gx.data()[idx] - numeric).abs() < 1e-3);
        }
        // global average pool: exact everywhere
        let mut gap = GlobalAvgPool::new();
        let gy2 = Tensor::from_vec(vec![1, 2], vec![1.0, -0.5]);
        let _ = gap.forward(&x, true);
        let gx2 = gap.backward(&gy2);
        for idx in [0usize, 15, 31] {
            let numeric = numeric_input_grad(&mut gap, &x, &gy2, idx);
            prop_assert!((gx2.data()[idx] - numeric).abs() < 1e-3);
        }
    }
}
