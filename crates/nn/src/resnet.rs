//! ResNet-18 (CIFAR variant), width-parameterised.
//!
//! The paper evaluates an 11M-parameter ResNet-18 on CIFAR-10. The topology
//! here is exactly that network — 3×3 stem, four stages of two basic blocks,
//! global average pool, FC head — with the base width as a parameter:
//! `base = 64` reproduces the paper-scale model (used by the data-independent
//! latency/throughput benches), `base = 8` is the slim variant trained in
//! this reproduction (see DESIGN.md §2).

use crate::activation::Activation;
use crate::batchnorm::BatchNorm2d;
use crate::block::{act_spec, bn_spec, BasicBlock};
use crate::conv::Conv2d;
use crate::layer::Layer;
use crate::linear::Linear;
use crate::model::Model;
use crate::param::Param;
use crate::pool::GlobalAvgPool;
use crate::spec::{ConvSpec, LinearSpec, NetworkSpec, SpecItem};
use sia_tensor::{Conv2dGeom, Tensor};

/// The ResNet-18 classification network.
///
/// # Examples
///
/// ```
/// use sia_nn::resnet::ResNet;
/// use sia_nn::Model;
/// let mut net = ResNet::resnet18(8, 16, 10, 1);
/// assert_eq!(net.name(), "resnet18-w8");
/// assert!(net.param_count() > 100);
/// ```
#[derive(Clone, Debug)]
pub struct ResNet {
    name: String,
    input: (usize, usize, usize),
    stem_conv: Conv2d,
    stem_bn: BatchNorm2d,
    stem_act: Activation,
    blocks: Vec<BasicBlock>,
    pool: GlobalAvgPool,
    head: Linear,
    head_in_hw: usize,
}

impl ResNet {
    /// Builds a CIFAR-style ResNet-18: widths `[b, 2b, 4b, 8b]`, two blocks
    /// per stage, stages 2–4 downsampling by 2.
    ///
    /// * `base` — stage-1 width `b` (64 for the paper-scale model).
    /// * `input_hw` — square input size (32 for CIFAR; 16 for the slim runs).
    /// * `classes` — output classes.
    ///
    /// # Panics
    ///
    /// Panics if `input_hw < 8` (three downsamplings need ≥ 8 pixels).
    #[must_use]
    pub fn resnet18(base: usize, input_hw: usize, classes: usize, seed: u64) -> Self {
        assert!(
            input_hw >= 8,
            "input {input_hw} too small for 3 downsamplings"
        );
        let stem_geom = Conv2dGeom {
            in_channels: 3,
            out_channels: base,
            in_h: input_hw,
            in_w: input_hw,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let mut blocks = Vec::new();
        let mut hw = input_hw;
        let mut ch = base;
        for (stage, &width_mul) in [1usize, 2, 4, 8].iter().enumerate() {
            let out_ch = base * width_mul;
            for block_idx in 0..2 {
                let stride = if stage > 0 && block_idx == 0 { 2 } else { 1 };
                let b = BasicBlock::new(
                    ch,
                    out_ch,
                    hw,
                    stride,
                    seed ^ ((stage as u64) << 8) ^ (block_idx as u64),
                );
                hw = b.out_hw();
                ch = out_ch;
                blocks.push(b);
            }
        }
        ResNet {
            name: format!("resnet18-w{base}"),
            input: (3, input_hw, input_hw),
            stem_conv: Conv2d::new(stem_geom, seed ^ 0xBEEF),
            stem_bn: BatchNorm2d::new(base),
            stem_act: Activation::relu(),
            blocks,
            pool: GlobalAvgPool::new(),
            head: Linear::new(ch, classes, seed ^ 0xFC),
            head_in_hw: hw,
        }
    }

    /// Spatial size entering the global average pool (4 for 32×32 input).
    #[must_use]
    pub fn head_in_hw(&self) -> usize {
        self.head_in_hw
    }
}

impl Model for ResNet {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = self.stem_conv.forward(x, train);
        h = self.stem_bn.forward(&h, train);
        h = self.stem_act.forward(&h, train);
        for b in &mut self.blocks {
            h = b.forward(&h, train);
        }
        let pooled = self.pool.forward(&h, train);
        self.head.forward(&pooled, train)
    }

    fn backward(&mut self, grad: &Tensor) {
        let g = self.head.backward(grad);
        let mut g = self.pool.backward(&g);
        for b in self.blocks.iter_mut().rev() {
            g = b.backward(&g);
        }
        let g = self.stem_act.backward(&g);
        let g = self.stem_bn.backward(&g);
        let _ = self.stem_conv.backward(&g);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem_conv.visit_params(f);
        self.stem_bn.visit_params(f);
        self.stem_act.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.head.visit_params(f);
    }

    fn visit_activations(&mut self, f: &mut dyn FnMut(&mut Activation)) {
        f(&mut self.stem_act);
        for b in &mut self.blocks {
            b.visit_activations(f);
        }
    }

    fn to_spec(&self) -> NetworkSpec {
        let mut items = vec![SpecItem::Conv(ConvSpec {
            geom: *self.stem_conv.geom(),
            weights: self.stem_conv.weights().clone(),
            bn: Some(bn_spec(&self.stem_bn)),
            act: Some(act_spec(&self.stem_act)),
        })];
        for b in &self.blocks {
            items.extend(b.to_spec_items());
        }
        items.push(SpecItem::GlobalAvgPool);
        items.push(SpecItem::Linear(LinearSpec {
            in_features: self.head.in_features(),
            out_features: self.head.out_features(),
            weights: self.head.weights().clone(),
            bias: self.head.bias().data().to_vec(),
        }));
        NetworkSpec {
            name: self.name.clone(),
            input: self.input,
            items,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn try_clone(&self) -> Option<Box<dyn Model + Send + Sync>> {
        Some(Box::new(self.clone()))
    }

    fn visit_batchnorms(&mut self, f: &mut dyn FnMut(&mut BatchNorm2d)) {
        f(&mut self.stem_bn);
        for b in &mut self.blocks {
            b.visit_batchnorms(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_stages() {
        let mut net = ResNet::resnet18(4, 16, 10, 3);
        let y = net.forward(&Tensor::zeros(vec![2, 3, 16, 16]), false);
        assert_eq!(y.shape().dims(), &[2, 10]);
        assert_eq!(net.blocks.len(), 8);
        assert_eq!(net.head_in_hw(), 2); // 16 → 8 → 4 → 2
    }

    #[test]
    fn full_width_parameter_count_is_paper_scale() {
        // The paper quotes an "11M parameter Resnet-18"; the CIFAR variant
        // with base width 64 has ≈ 11.2M trainable parameters.
        let mut net = ResNet::resnet18(64, 32, 10, 0);
        let n = net.param_count();
        assert!(
            (11_000_000..11_500_000).contains(&n),
            "got {n} params, expected ≈ 11.2M"
        );
    }

    #[test]
    fn backward_produces_finite_grads() {
        let mut net = ResNet::resnet18(4, 8, 10, 5);
        let x = Tensor::full(vec![2, 3, 8, 8], 0.3);
        let y = net.forward(&x, true);
        net.backward(&Tensor::full(vec![2, 10], 1.0));
        assert!(y.data().iter().all(|v| v.is_finite()));
        let mut total = 0.0;
        net.visit_params(&mut |p| total += p.grad.norm());
        assert!(total.is_finite() && total > 0.0);
    }

    #[test]
    fn visit_activations_counts_stem_plus_blocks() {
        let mut net = ResNet::resnet18(4, 16, 10, 0);
        let mut n = 0;
        net.visit_activations(&mut |_| n += 1);
        assert_eq!(n, 1 + 8 * 2); // stem + 2 per block
    }

    #[test]
    fn spec_structure_matches_table1_grouping() {
        // Table I groups ResNet-18 convs as 5×64@32², 4×128@16², 4×256@8²,
        // 4×512@4² (3×3 convs only). Verify against the exported spec.
        let mut net = ResNet::resnet18(64, 32, 10, 0);
        net.visit_activations(&mut |a| a.make_quantized(8));
        let spec = net.to_spec();
        let mut groups: std::collections::BTreeMap<(usize, usize), usize> =
            std::collections::BTreeMap::new();
        for it in &spec.items {
            if let SpecItem::Conv(c) = it {
                if c.geom.kernel == 3 {
                    let (oh, _) = c.geom.out_hw();
                    *groups.entry((c.geom.out_channels, oh)).or_default() += 1;
                }
            }
        }
        assert_eq!(groups.get(&(64, 32)), Some(&5));
        assert_eq!(groups.get(&(128, 16)), Some(&4));
        assert_eq!(groups.get(&(256, 8)), Some(&4));
        assert_eq!(groups.get(&(512, 4)), Some(&4));
        // plus 3 downsample 1×1 convs inside BlockAdd items
        let downs = spec
            .items
            .iter()
            .filter(|it| matches!(it, SpecItem::BlockAdd { down: Some(_), .. }))
            .count();
        assert_eq!(downs, 3);
    }

    #[test]
    fn training_reduces_loss_on_tiny_problem() {
        use crate::loss::softmax_cross_entropy;
        let mut net = ResNet::resnet18(2, 8, 2, 11);
        let x = Tensor::stack(&[
            Tensor::full(vec![3, 8, 8], 0.9),
            Tensor::full(vec![3, 8, 8], 0.1),
        ]);
        let labels = vec![0usize, 1];
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            net.zero_grad();
            let logits = net.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            net.backward(&grad);
            net.visit_params(&mut |p| {
                let lr = 0.05;
                let g = p.grad.clone();
                p.value.add_scaled(&g, -lr);
            });
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(
            last < first.unwrap() * 0.8,
            "loss did not drop: {} → {last}",
            first.unwrap()
        );
    }
}
