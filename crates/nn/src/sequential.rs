//! A generic layer container for user-defined topologies.
//!
//! [`crate::resnet::ResNet`] and [`crate::vgg::Vgg`] are the paper's two
//! networks, but downstream users composing their own stacks (the intended
//! use of a released co-design toolchain) need an untyped container:
//! `Sequential` chains any `Layer`s, backpropagates in reverse order and
//! forwards parameter visits.

use crate::layer::Layer;
use crate::param::Param;
use sia_tensor::Tensor;

/// An ordered chain of layers executed front to back.
///
/// # Examples
///
/// ```
/// use sia_nn::pool::MaxPool2x2;
/// use sia_nn::sequential::Sequential;
/// use sia_nn::{Activation, Layer};
/// use sia_tensor::Tensor;
///
/// let mut net = Sequential::new();
/// net.push(Activation::relu());
/// net.push(MaxPool2x2::new());
/// let y = net.forward(&Tensor::zeros(vec![1, 2, 4, 4]), false);
/// assert_eq!(y.shape().dims(), &[1, 2, 2, 2]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty chain.
    #[must_use]
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, train);
        }
        h
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut g = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::conv::Conv2d;
    use crate::linear::Linear;
    use crate::pool::GlobalAvgPool;
    use sia_tensor::Conv2dGeom;

    fn tiny_cnn() -> Sequential {
        let mut net = Sequential::new();
        net.push(Conv2d::new(
            Conv2dGeom {
                in_channels: 1,
                out_channels: 4,
                in_h: 6,
                in_w: 6,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            3,
        ));
        net.push(Activation::relu());
        net.push(GlobalAvgPool::new());
        net
    }

    #[test]
    fn forward_chains_shapes() {
        let mut net = tiny_cnn();
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
        let y = net.forward(&Tensor::full(vec![2, 1, 6, 6], 0.5), false);
        assert_eq!(y.shape().dims(), &[2, 4]);
    }

    #[test]
    fn backward_reaches_the_input() {
        let mut net = tiny_cnn();
        let x = Tensor::full(vec![1, 1, 6, 6], 0.3);
        let _ = net.forward(&x, true);
        let gx = net.backward(&Tensor::full(vec![1, 4], 1.0));
        assert_eq!(gx.shape().dims(), &[1, 1, 6, 6]);
        assert!(gx.norm() > 0.0);
    }

    #[test]
    fn params_are_visited_across_layers() {
        let mut net = tiny_cnn();
        net.push(Linear::new(4, 2, 1));
        assert_eq!(net.param_count(), 4 * 9 + (4 * 2 + 2));
    }

    #[test]
    fn training_a_sequential_reduces_loss() {
        use crate::loss::softmax_cross_entropy;
        let mut net = Sequential::new();
        net.push(Linear::new(4, 8, 2));
        net.push(Activation::relu());
        net.push(Linear::new(8, 2, 3));
        let x = Tensor::from_vec(vec![2, 4], vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        let labels = [0usize, 1];
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..40 {
            let logits = net.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            let _ = net.backward(&grad);
            net.visit_params(&mut |p| {
                let g = p.grad.clone();
                p.value.add_scaled(&g, -0.5);
                p.zero_grad();
            });
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(last < first.unwrap() * 0.5, "{} → {last}", first.unwrap());
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut net = Sequential::new();
        let x = Tensor::full(vec![3], 2.0);
        assert_eq!(net.forward(&x, true), x);
        assert_eq!(net.backward(&x), x);
        assert_eq!(net.param_count(), 0);
    }
}
