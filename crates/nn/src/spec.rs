//! Flat, typed export of a trained network.
//!
//! A [`NetworkSpec`] is the hand-off format between the four stages of the
//! pipeline: the trainer produces it, the quantiser rewrites it, the SNN
//! converter lowers it to integer spiking form, and the accelerator compiler
//! turns it into SIA layer programs. It deliberately flattens the residual
//! topology into `BlockStart`/`BlockAdd` markers — exactly the structure the
//! paper's hardware supports ("for residual layers, pre-computed partial
//! sums are read from the processor", §IV).

use sia_tensor::{Conv2dGeom, Tensor};

/// A quantized-clip activation: `L` levels with trained step `s^l`. After
/// conversion this becomes an IF neuron with threshold `s^l` (paper §II-A,
/// step 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActSpec {
    /// Quantization levels `L`.
    pub levels: usize,
    /// Trained step size `s^l` — the spiking threshold after conversion.
    pub step: f32,
}

/// Batch-norm parameters of one convolution, everything Eq. 2 needs.
#[derive(Clone, Debug, PartialEq)]
pub struct BnSpec {
    /// Scale γ (per channel).
    pub gamma: Vec<f32>,
    /// Shift β (per channel).
    pub beta: Vec<f32>,
    /// Running mean μ (per channel).
    pub mean: Vec<f32>,
    /// Running variance σ² (per channel).
    pub var: Vec<f32>,
    /// Numerical-stability term ε.
    pub eps: f32,
}

impl BnSpec {
    /// The affine form `y_bn = y·g + h` equivalent to this batch norm:
    /// `g = γ/√(σ²+ε)`, `h = β − μ·g`, per channel.
    #[must_use]
    pub fn affine(&self) -> (Vec<f32>, Vec<f32>) {
        let mut g = Vec::with_capacity(self.gamma.len());
        let mut h = Vec::with_capacity(self.gamma.len());
        for c in 0..self.gamma.len() {
            let gc = self.gamma[c] / (self.var[c] + self.eps).sqrt();
            g.push(gc);
            h.push(self.beta[c] - self.mean[c] * gc);
        }
        (g, h)
    }
}

/// One convolution stage: weights, optional batch norm, optional activation.
/// `act == None` means the raw (post-BN) value feeds a residual add.
#[derive(Clone, Debug)]
pub struct ConvSpec {
    /// Geometry (channels, spatial size, kernel, stride, padding).
    pub geom: Conv2dGeom,
    /// FP32 weights `[C_out, C_in, K, K]`.
    pub weights: Tensor,
    /// Batch-norm parameters, if the conv is followed by BN.
    pub bn: Option<BnSpec>,
    /// Activation, if the conv output spikes directly.
    pub act: Option<ActSpec>,
}

/// The fully-connected classification head.
#[derive(Clone, Debug)]
pub struct LinearSpec {
    /// Input feature count.
    pub in_features: usize,
    /// Output feature count (classes).
    pub out_features: usize,
    /// FP32 weights `[out, in]`.
    pub weights: Tensor,
    /// Bias `[out]`.
    pub bias: Vec<f32>,
}

/// One item of the flattened network graph.
#[derive(Clone, Debug)]
pub enum SpecItem {
    /// A convolution stage.
    Conv(ConvSpec),
    /// Push the current activation (spikes) as the skip branch.
    BlockStart,
    /// Pop the skip branch, optionally transform it with a 1×1
    /// conv(+BN), add it to the main branch's pre-activation value, then
    /// apply `act`.
    BlockAdd {
        /// The downsample path (stride-2 1×1 conv + BN), if any.
        down: Option<ConvSpec>,
        /// Activation applied to the summed value.
        act: ActSpec,
    },
    /// 2×2 stride-2 max pooling (OR gate in the spike domain).
    MaxPool2x2,
    /// Global average pooling before the head; records the spatial area so
    /// that the converter can fold `1/area` into the FC scale.
    GlobalAvgPool,
    /// The classification head. Its output is read out as accumulated
    /// membrane potential, never spiking.
    Linear(LinearSpec),
}

/// A flattened network description.
#[derive(Clone, Debug)]
pub struct NetworkSpec {
    /// Human-readable model name ("resnet18-w8", "vgg11-w64", …).
    pub name: String,
    /// Input shape `(C, H, W)`.
    pub input: (usize, usize, usize),
    /// The item sequence.
    pub items: Vec<SpecItem>,
}

impl SpecItem {
    /// Stable short label for this item, used as the span text of
    /// diagnostics that point back into the spec ("conv3x3,64", "block-add",
    /// "linear→10", …). Converter and checker stage names are derived from
    /// the same vocabulary, so a report line can be matched to its spec item
    /// by eye.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SpecItem::Conv(c) => format!(
                "conv{}x{},{}",
                c.geom.kernel, c.geom.kernel, c.geom.out_channels
            ),
            SpecItem::BlockStart => "block-start".into(),
            SpecItem::BlockAdd { down, .. } => {
                if down.is_some() {
                    "block-add(down)".into()
                } else {
                    "block-add".into()
                }
            }
            SpecItem::MaxPool2x2 => "maxpool2x2".into(),
            SpecItem::GlobalAvgPool => "global-avgpool".into(),
            SpecItem::Linear(l) => format!("linear→{}", l.out_features),
        }
    }
}

impl NetworkSpec {
    /// One-line `item → item → …` plan of the whole spec, built from
    /// [`SpecItem::label`].
    #[must_use]
    pub fn summary(&self) -> String {
        self.items
            .iter()
            .map(SpecItem::label)
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// Number of convolution stages (including downsample convs).
    #[must_use]
    pub fn conv_count(&self) -> usize {
        self.items
            .iter()
            .map(|it| match it {
                SpecItem::Conv(_) => 1,
                SpecItem::BlockAdd { down: Some(_), .. } => 1,
                _ => 0,
            })
            .sum()
    }

    /// Total multiply-accumulate count of one inference pass.
    #[must_use]
    pub fn total_macs(&self) -> usize {
        self.items
            .iter()
            .map(|it| match it {
                SpecItem::Conv(c) => c.geom.macs(),
                SpecItem::BlockAdd { down: Some(c), .. } => c.geom.macs(),
                SpecItem::Linear(l) => l.in_features * l.out_features,
                _ => 0,
            })
            .sum()
    }

    /// Total parameter count (weights + bias; BN affine terms excluded since
    /// they fold into `G`/`H`).
    #[must_use]
    pub fn weight_count(&self) -> usize {
        self.items
            .iter()
            .map(|it| match it {
                SpecItem::Conv(c) => c.geom.weight_count(),
                SpecItem::BlockAdd { down: Some(c), .. } => c.geom.weight_count(),
                SpecItem::Linear(l) => l.in_features * l.out_features + l.out_features,
                _ => 0,
            })
            .sum()
    }

    /// All activation steps (`s^l` per spiking layer), in network order —
    /// the per-layer thresholds of Fig. 7/9.
    #[must_use]
    pub fn steps(&self) -> Vec<f32> {
        let mut steps = Vec::new();
        for it in &self.items {
            match it {
                SpecItem::Conv(c) => {
                    if let Some(a) = &c.act {
                        steps.push(a.step);
                    }
                }
                SpecItem::BlockAdd { act, .. } => steps.push(act.step),
                _ => {}
            }
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_spec(cin: usize, cout: usize, hw: usize, act: bool) -> ConvSpec {
        let geom = Conv2dGeom {
            in_channels: cin,
            out_channels: cout,
            in_h: hw,
            in_w: hw,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        ConvSpec {
            geom,
            weights: Tensor::zeros(vec![cout, cin, 3, 3]),
            bn: None,
            act: act.then_some(ActSpec {
                levels: 8,
                step: 1.0,
            }),
        }
    }

    fn spec() -> NetworkSpec {
        NetworkSpec {
            name: "test".into(),
            input: (3, 8, 8),
            items: vec![
                SpecItem::Conv(conv_spec(3, 4, 8, true)),
                SpecItem::BlockStart,
                SpecItem::Conv(conv_spec(4, 4, 8, true)),
                SpecItem::Conv(conv_spec(4, 4, 8, false)),
                SpecItem::BlockAdd {
                    down: None,
                    act: ActSpec {
                        levels: 8,
                        step: 0.5,
                    },
                },
                SpecItem::GlobalAvgPool,
                SpecItem::Linear(LinearSpec {
                    in_features: 4,
                    out_features: 10,
                    weights: Tensor::zeros(vec![10, 4]),
                    bias: vec![0.0; 10],
                }),
            ],
        }
    }

    #[test]
    fn counts() {
        let s = spec();
        assert_eq!(s.conv_count(), 3);
        let conv_macs = 4 * 64 * 27 + 2 * (4 * 64 * 36);
        assert_eq!(s.total_macs(), conv_macs + 40);
        assert_eq!(s.weight_count(), 4 * 3 * 9 + 2 * (4 * 4 * 9) + 40 + 10);
    }

    #[test]
    fn steps_in_order() {
        assert_eq!(spec().steps(), vec![1.0, 1.0, 0.5]);
    }

    #[test]
    fn labels_and_summary() {
        let s = spec();
        assert_eq!(s.items[0].label(), "conv3x3,4");
        assert_eq!(s.items[1].label(), "block-start");
        assert_eq!(s.items[4].label(), "block-add");
        assert_eq!(s.items[6].label(), "linear→10");
        assert_eq!(
            s.summary(),
            "conv3x3,4 → block-start → conv3x3,4 → conv3x3,4 → block-add \
             → global-avgpool → linear→10"
        );
    }

    #[test]
    fn bn_affine_folds_correctly() {
        let bn = BnSpec {
            gamma: vec![2.0],
            beta: vec![1.0],
            mean: vec![3.0],
            var: vec![4.0],
            eps: 0.0,
        };
        let (g, h) = bn.affine();
        assert!((g[0] - 1.0).abs() < 1e-6); // 2 / sqrt(4)
        assert!((h[0] - (1.0 - 3.0)).abs() < 1e-6); // β − μ·g
    }
}
