//! The training loop (step 1 of Fig. 1 and the QAT fine-tune of step 2).

use crate::loss::{accuracy, softmax_cross_entropy};
use crate::model::Model;
use crate::optim::Sgd;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sia_dataset::augment::random_augment;
use sia_dataset::{LabelledSet, SynthDataset};
use sia_telemetry::Value;
use sia_tensor::Tensor;
use std::time::Instant;

/// Training hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Epochs after which LR is multiplied by `lr_decay`.
    pub lr_decay_epochs: Vec<usize>,
    /// LR decay factor.
    pub lr_decay: f32,
    /// Max augmentation shift in pixels (0 disables augmentation).
    pub augment_shift: isize,
    /// Shuffle/augmentation seed.
    pub seed: u64,
    /// Print a progress line per epoch.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 5e-4,
            lr_decay_epochs: vec![6, 8],
            lr_decay: 0.1,
            augment_shift: 2,
            seed: 0x7EA1,
            verbose: false,
        }
    }
}

/// Per-epoch record of the training run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochStats {
    /// 1-based epoch index.
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Training-set accuracy (on the augmented stream).
    pub train_acc: f32,
    /// Held-out test accuracy.
    pub test_acc: f32,
}

/// The result of [`train`].
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// One entry per epoch.
    pub history: Vec<EpochStats>,
}

impl TrainReport {
    /// Final test accuracy (0 if no epochs ran).
    #[must_use]
    pub fn final_test_acc(&self) -> f32 {
        self.history.last().map_or(0.0, |e| e.test_acc)
    }

    /// Best test accuracy across epochs.
    #[must_use]
    pub fn best_test_acc(&self) -> f32 {
        self.history.iter().map(|e| e.test_acc).fold(0.0, f32::max)
    }
}

/// Trains `model` on `data` with SGD.
pub fn train(model: &mut dyn Model, data: &SynthDataset, cfg: &TrainConfig) -> TrainReport {
    let mut opt = Sgd::new(cfg.lr)
        .momentum(cfg.momentum)
        .weight_decay(cfg.weight_decay)
        .grad_clip(5.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = TrainReport::default();
    let _train_span = sia_telemetry::span!("train");
    for epoch in 1..=cfg.epochs {
        let _epoch_span = sia_telemetry::span!("epoch");
        if cfg.lr_decay_epochs.contains(&epoch) {
            opt.decay_lr(cfg.lr_decay);
        }
        let mut loss_sum = 0.0f64;
        let mut acc_sum = 0.0f64;
        let mut batches = 0usize;
        let mut fwd_us = 0u64;
        let mut bwd_us = 0u64;
        for (imgs, labels) in data.train.batches(cfg.batch_size, &mut rng) {
            let imgs = if cfg.augment_shift > 0 {
                let n = imgs.shape().dim(0);
                let augmented: Vec<Tensor> = (0..n)
                    .map(|i| random_augment(&imgs.batch_item(i), cfg.augment_shift, &mut rng))
                    .collect();
                Tensor::stack(&augmented)
            } else {
                imgs
            };
            model.zero_grad();
            let t0 = Instant::now();
            let logits = {
                let _s = sia_telemetry::span!("forward");
                model.forward(&imgs, true)
            };
            fwd_us += t0.elapsed().as_micros() as u64;
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            let t1 = Instant::now();
            {
                let _s = sia_telemetry::span!("backward");
                model.backward(&grad);
            }
            bwd_us += t1.elapsed().as_micros() as u64;
            opt.step(model);
            loss_sum += f64::from(loss);
            acc_sum += f64::from(accuracy(&logits, &labels));
            batches += 1;
        }
        let test_acc = evaluate(model, &data.test, cfg.batch_size);
        let stats = EpochStats {
            epoch,
            train_loss: (loss_sum / batches.max(1) as f64) as f32,
            train_acc: (acc_sum / batches.max(1) as f64) as f32,
            test_acc,
        };
        sia_telemetry::gauge!("train.lr", f64::from(opt.lr()));
        sia_telemetry::gauge!("train.loss", f64::from(stats.train_loss));
        sia_telemetry::gauge!("train.test_acc", f64::from(test_acc));
        sia_telemetry::counter!("train.epochs", 1);
        sia_telemetry::emit(
            "train.epoch",
            &[
                ("model", Value::from(model.name())),
                ("epoch", Value::from(epoch)),
                ("loss", Value::from(stats.train_loss)),
                ("train_acc", Value::from(stats.train_acc)),
                ("test_acc", Value::from(test_acc)),
                ("lr", Value::from(opt.lr())),
                ("fwd_us", Value::from(fwd_us)),
                ("bwd_us", Value::from(bwd_us)),
            ],
        );
        if cfg.verbose {
            println!(
                "[{}] epoch {:>3}: loss {:.4}  train {:.3}  test {:.3}  lr {:.4}",
                model.name(),
                epoch,
                stats.train_loss,
                stats.train_acc,
                stats.test_acc,
                opt.lr()
            );
        }
        report.history.push(stats);
    }
    report
}

/// Evaluates top-1 accuracy of `model` on `set` (deterministic order).
#[must_use]
pub fn evaluate(model: &mut dyn Model, set: &LabelledSet, batch_size: usize) -> f32 {
    if set.is_empty() {
        return 0.0;
    }
    let mut correct = 0.0f64;
    let mut total = 0usize;
    for (imgs, labels) in set.batches_sequential(batch_size) {
        let logits = model.forward(&imgs, false);
        correct += f64::from(accuracy(&logits, &labels)) * labels.len() as f64;
        total += labels.len();
    }
    (correct / total as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::ResNet;
    use crate::vgg::Vgg;
    use sia_dataset::SynthConfig;

    fn tiny_data() -> SynthDataset {
        let cfg = SynthConfig {
            image_size: 8,
            noise_std: 0.03,
            seed: 42,
        };
        SynthDataset::generate(&cfg, 120, 40)
    }

    #[test]
    fn resnet_learns_above_chance_quickly() {
        let mut net = ResNet::resnet18(4, 8, 10, 9);
        let data = tiny_data();
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 16,
            lr: 0.05,
            augment_shift: 0,
            lr_decay_epochs: vec![],
            ..TrainConfig::default()
        };
        let report = train(&mut net, &data, &cfg);
        assert_eq!(report.history.len(), 4);
        assert!(
            report.best_test_acc() > 0.25,
            "test acc {} not above chance",
            report.best_test_acc()
        );
        // loss must decrease over training
        let first = report.history.first().unwrap().train_loss;
        let last = report.history.last().unwrap().train_loss;
        assert!(last < first, "loss {first} → {last}");
    }

    #[test]
    fn vgg_trains_without_nans() {
        let mut net = Vgg::vgg11(2, 8, 10, 4);
        let data = tiny_data();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.02,
            augment_shift: 1,
            lr_decay_epochs: vec![],
            ..TrainConfig::default()
        };
        let report = train(&mut net, &data, &cfg);
        assert!(report.history.iter().all(|e| e.train_loss.is_finite()));
    }

    #[test]
    fn evaluate_empty_set_is_zero() {
        let mut net = ResNet::resnet18(2, 8, 10, 0);
        assert_eq!(evaluate(&mut net, &LabelledSet::default(), 8), 0.0);
    }

    #[test]
    fn training_is_reproducible() {
        let data = tiny_data();
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 16,
            lr_decay_epochs: vec![],
            ..TrainConfig::default()
        };
        let run = |seed: u64| {
            let mut net = ResNet::resnet18(2, 8, 10, seed);
            train(&mut net, &data, &cfg).final_test_acc()
        };
        assert_eq!(run(5), run(5));
    }
}
