//! The training loop (step 1 of Fig. 1 and the QAT fine-tune of step 2).
//!
//! # Data-parallel mini-batch training
//!
//! With [`TrainConfig::micro_batch`] set, each batch is split into fixed
//! contiguous micro-shards (the shard structure depends only on the batch
//! and micro-batch sizes, never on the thread count). Worker replicas of
//! the model run forward/backward per shard, per-shard gradients are
//! combined by a fixed index-order binary-tree reduction, and batch-norm
//! running statistics are replayed on the master in shard order — so the
//! trained weights are **bit-identical for any `--threads N`**. With
//! `micro_batch == 0` (the default) the trainer takes the original
//! whole-batch path unchanged.

use crate::loss::{accuracy, count_correct, softmax_cross_entropy_parts};
use crate::model::Model;
use crate::optim::Sgd;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sia_dataset::augment::random_augment;
use sia_dataset::{LabelledSet, SynthDataset};
use sia_telemetry::Value;
use sia_tensor::{pool, Tensor};
use std::time::Instant;

/// Training hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Epochs after which LR is multiplied by `lr_decay`.
    pub lr_decay_epochs: Vec<usize>,
    /// LR decay factor.
    pub lr_decay: f32,
    /// Max augmentation shift in pixels (0 disables augmentation).
    pub augment_shift: isize,
    /// Shuffle/augmentation seed.
    pub seed: u64,
    /// Print a progress line per epoch.
    pub verbose: bool,
    /// Worker threads for the shared pool (GEMM, conv and trainer shards);
    /// `0` = one per core, `1` = serial.
    pub threads: usize,
    /// Micro-shard size for data-parallel gradient accumulation; `0`
    /// (default) keeps each batch whole — the exact original path.
    pub micro_batch: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 5e-4,
            lr_decay_epochs: vec![6, 8],
            lr_decay: 0.1,
            augment_shift: 2,
            seed: 0x7EA1,
            verbose: false,
            threads: 1,
            micro_batch: 0,
        }
    }
}

/// Per-epoch record of the training run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochStats {
    /// 1-based epoch index.
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Training-set accuracy (on the augmented stream).
    pub train_acc: f32,
    /// Held-out test accuracy.
    pub test_acc: f32,
}

/// The result of [`train`].
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// One entry per epoch.
    pub history: Vec<EpochStats>,
}

impl TrainReport {
    /// Final test accuracy (0 if no epochs ran).
    #[must_use]
    pub fn final_test_acc(&self) -> f32 {
        self.history.last().map_or(0.0, |e| e.test_acc)
    }

    /// Best test accuracy across epochs.
    #[must_use]
    pub fn best_test_acc(&self) -> f32 {
        self.history.iter().map(|e| e.test_acc).fold(0.0, f32::max)
    }
}

/// Everything one micro-shard produces: the pieces the master needs to
/// reconstruct the full-batch step deterministically.
struct ShardOutcome {
    /// Unaveraged `f64` row-sum of cross-entropy losses.
    loss_sum: f64,
    /// Correctly classified rows.
    correct: usize,
    /// Parameter gradients, flattened in `visit_params` order (already
    /// divided by the full batch size, so shard gradients just add).
    grads: Vec<f32>,
    /// Per-BN `(mean, var)` batch statistics, in `visit_batchnorms` order.
    bn_stats: Vec<(Vec<f32>, Vec<f32>)>,
}

/// Rows `[start, start+len)` of an NCHW batch as a new owned batch.
fn batch_rows(imgs: &Tensor, start: usize, len: usize) -> Tensor {
    let mut dims = imgs.shape().dims().to_vec();
    let item: usize = dims[1..].iter().product();
    dims[0] = len;
    Tensor::from_vec(
        dims,
        imgs.data()[start * item..(start + len) * item].to_vec(),
    )
}

/// Forward/backward over one shard on `model`, snapshotting the gradients
/// and captured batch-norm statistics.
fn run_shard(model: &mut dyn Model, imgs: &Tensor, labels: &[usize], denom: usize) -> ShardOutcome {
    model.zero_grad();
    let logits = model.forward(imgs, true);
    let (loss_sum, grad) = softmax_cross_entropy_parts(&logits, labels, denom);
    model.backward(&grad);
    let mut grads = Vec::new();
    model.visit_params(&mut |p| grads.extend_from_slice(p.grad.data()));
    let mut bn_stats = Vec::new();
    model.visit_batchnorms(&mut |bn| {
        bn_stats.push(
            bn.take_batch_stats()
                .expect("training forward captures batch-norm statistics"),
        );
    });
    let correct = count_correct(&logits, labels);
    ShardOutcome {
        loss_sum,
        correct,
        grads,
        bn_stats,
    }
}

/// Fixed index-order binary-tree reduction: at each level, shard `i`
/// absorbs shard `i + gap` (`gap` doubling). The reduction tree depends
/// only on the shard count, so the f32 sum order — and therefore the
/// result, bit for bit — is independent of the thread count.
fn tree_reduce(mut grads: Vec<Vec<f32>>) -> Vec<f32> {
    let mut gap = 1;
    while gap < grads.len() {
        let mut i = 0;
        while i + gap < grads.len() {
            let (head, tail) = grads.split_at_mut(i + gap);
            for (d, s) in head[i].iter_mut().zip(&tail[0]) {
                *d += s;
            }
            i += 2 * gap;
        }
        gap *= 2;
    }
    grads.swap_remove(0)
}

/// One optimisation step over a batch, sharded across the pool.
///
/// Returns `(loss row-sum, correct rows)`. On return the master model
/// holds the reduced gradients and updated batch-norm running stats;
/// the caller applies the optimiser.
fn data_parallel_step(
    model: &mut dyn Model,
    imgs: &Tensor,
    labels: &[usize],
    cfg: &TrainConfig,
) -> (f64, usize) {
    let _step_span = sia_telemetry::span!("train.step");
    let n = imgs.shape().dim(0);
    let micro = cfg.micro_batch;
    if micro == 0 || micro >= n {
        // Whole-batch path — the original trainer step, untouched.
        model.zero_grad();
        let logits = {
            let _s = sia_telemetry::span!("forward");
            model.forward(imgs, true)
        };
        let (loss_sum, grad) = softmax_cross_entropy_parts(&logits, labels, n);
        {
            let _s = sia_telemetry::span!("backward");
            model.backward(&grad);
        }
        model.visit_batchnorms(&mut |bn| {
            let _ = bn.take_batch_stats(); // already applied by the forward
        });
        return (loss_sum, count_correct(&logits, labels));
    }
    let shards: Vec<(usize, usize)> = (0..n)
        .step_by(micro)
        .map(|s| (s, micro.min(n - s)))
        .collect();
    let proto = model.try_clone();
    let outcomes: Vec<ShardOutcome> = match &proto {
        Some(proto) => pool::parallel_map_with(
            shards.len(),
            cfg.threads,
            || proto.try_clone().expect("replica of a cloneable model"),
            |replica, s| {
                let (start, len) = shards[s];
                let shard_imgs = batch_rows(imgs, start, len);
                run_shard(
                    replica.as_mut(),
                    &shard_imgs,
                    &labels[start..start + len],
                    n,
                )
            },
        ),
        // Non-replicable model: identical numerics, shard by shard on the
        // master (its BN running stats then update in the same shard order
        // the parallel path replays below).
        None => shards
            .iter()
            .map(|&(start, len)| {
                let shard_imgs = batch_rows(imgs, start, len);
                run_shard(model, &shard_imgs, &labels[start..start + len], n)
            })
            .collect(),
    };
    let loss_sum: f64 = outcomes.iter().map(|o| o.loss_sum).sum();
    let correct: usize = outcomes.iter().map(|o| o.correct).sum();
    let mut grads = Vec::with_capacity(outcomes.len());
    let mut bn_stats = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        grads.push(o.grads);
        bn_stats.push(o.bn_stats);
    }
    let reduced = tree_reduce(grads);
    model.zero_grad();
    let mut offset = 0;
    model.visit_params(&mut |p| {
        let numel = p.grad.numel();
        p.grad
            .data_mut()
            .copy_from_slice(&reduced[offset..offset + numel]);
        offset += numel;
    });
    assert_eq!(offset, reduced.len(), "gradient size mismatch");
    if proto.is_some() {
        // Replay worker-captured BN statistics on the master, shard by
        // shard in index order — bit-identical to sequential processing.
        for per_shard in bn_stats {
            let mut it = per_shard.into_iter();
            model.visit_batchnorms(&mut |bn| {
                let (mean, var) = it.next().expect("one stats entry per BN layer");
                bn.absorb_batch_stats(&mean, &var);
            });
        }
    }
    (loss_sum, correct)
}

/// Trains `model` on `data` with SGD.
pub fn train(model: &mut dyn Model, data: &SynthDataset, cfg: &TrainConfig) -> TrainReport {
    pool::set_threads(cfg.threads);
    let mut opt = Sgd::new(cfg.lr)
        .momentum(cfg.momentum)
        .weight_decay(cfg.weight_decay)
        .grad_clip(5.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = TrainReport::default();
    let _train_span = sia_telemetry::span!("train");
    for epoch in 1..=cfg.epochs {
        let _epoch_span = sia_telemetry::span!("epoch");
        if cfg.lr_decay_epochs.contains(&epoch) {
            opt.decay_lr(cfg.lr_decay);
        }
        let mut loss_sum = 0.0f64;
        let mut acc_sum = 0.0f64;
        let mut batches = 0usize;
        let mut step_us = 0u64;
        for (imgs, labels) in data.train.batches(cfg.batch_size, &mut rng) {
            let imgs = if cfg.augment_shift > 0 {
                let n = imgs.shape().dim(0);
                let augmented: Vec<Tensor> = (0..n)
                    .map(|i| random_augment(&imgs.batch_item(i), cfg.augment_shift, &mut rng))
                    .collect();
                Tensor::stack(&augmented)
            } else {
                imgs
            };
            let n = imgs.shape().dim(0);
            let t0 = Instant::now();
            let (batch_loss_sum, correct) = data_parallel_step(model, &imgs, &labels, cfg);
            opt.step(model);
            let elapsed = t0.elapsed().as_micros() as u64;
            step_us += elapsed;
            sia_telemetry::histogram!("train.step_us", elapsed);
            loss_sum += batch_loss_sum / n as f64;
            acc_sum += correct as f64 / n as f64;
            batches += 1;
        }
        let test_acc = evaluate(model, &data.test, cfg.batch_size);
        let stats = EpochStats {
            epoch,
            train_loss: (loss_sum / batches.max(1) as f64) as f32,
            train_acc: (acc_sum / batches.max(1) as f64) as f32,
            test_acc,
        };
        sia_telemetry::gauge!("train.lr", f64::from(opt.lr()));
        sia_telemetry::gauge!("train.loss", f64::from(stats.train_loss));
        sia_telemetry::gauge!("train.test_acc", f64::from(test_acc));
        sia_telemetry::counter!("train.epochs", 1);
        sia_telemetry::emit(
            "train.epoch",
            &[
                ("model", Value::from(model.name())),
                ("epoch", Value::from(epoch)),
                ("loss", Value::from(stats.train_loss)),
                ("train_acc", Value::from(stats.train_acc)),
                ("test_acc", Value::from(test_acc)),
                ("lr", Value::from(opt.lr())),
                ("step_us", Value::from(step_us)),
            ],
        );
        if cfg.verbose {
            println!(
                "[{}] epoch {:>3}: loss {:.4}  train {:.3}  test {:.3}  lr {:.4}",
                model.name(),
                epoch,
                stats.train_loss,
                stats.train_acc,
                stats.test_acc,
                opt.lr()
            );
        }
        report.history.push(stats);
    }
    report
}

/// Evaluates top-1 accuracy of `model` on `set` (deterministic order).
#[must_use]
pub fn evaluate(model: &mut dyn Model, set: &LabelledSet, batch_size: usize) -> f32 {
    if set.is_empty() {
        return 0.0;
    }
    let mut correct = 0.0f64;
    let mut total = 0usize;
    for (imgs, labels) in set.batches_sequential(batch_size) {
        let logits = model.forward(&imgs, false);
        correct += f64::from(accuracy(&logits, &labels)) * labels.len() as f64;
        total += labels.len();
    }
    (correct / total as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::ResNet;
    use crate::vgg::Vgg;
    use sia_dataset::SynthConfig;

    fn tiny_data() -> SynthDataset {
        let cfg = SynthConfig {
            image_size: 8,
            noise_std: 0.03,
            seed: 42,
        };
        SynthDataset::generate(&cfg, 120, 40)
    }

    #[test]
    fn resnet_learns_above_chance_quickly() {
        let mut net = ResNet::resnet18(4, 8, 10, 9);
        let data = tiny_data();
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 16,
            lr: 0.05,
            augment_shift: 0,
            lr_decay_epochs: vec![],
            ..TrainConfig::default()
        };
        let report = train(&mut net, &data, &cfg);
        assert_eq!(report.history.len(), 4);
        assert!(
            report.best_test_acc() > 0.25,
            "test acc {} not above chance",
            report.best_test_acc()
        );
        // loss must decrease over training
        let first = report.history.first().unwrap().train_loss;
        let last = report.history.last().unwrap().train_loss;
        assert!(last < first, "loss {first} → {last}");
    }

    #[test]
    fn vgg_trains_without_nans() {
        let mut net = Vgg::vgg11(2, 8, 10, 4);
        let data = tiny_data();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.02,
            augment_shift: 1,
            lr_decay_epochs: vec![],
            ..TrainConfig::default()
        };
        let report = train(&mut net, &data, &cfg);
        assert!(report.history.iter().all(|e| e.train_loss.is_finite()));
    }

    #[test]
    fn evaluate_empty_set_is_zero() {
        let mut net = ResNet::resnet18(2, 8, 10, 0);
        assert_eq!(evaluate(&mut net, &LabelledSet::default(), 8), 0.0);
    }

    #[test]
    fn sharded_training_is_thread_count_invariant() {
        let data = tiny_data();
        let run = |threads: usize| {
            let mut net = ResNet::resnet18(2, 8, 10, 7);
            let cfg = TrainConfig {
                epochs: 2,
                batch_size: 16,
                micro_batch: 8,
                threads,
                lr_decay_epochs: vec![],
                ..TrainConfig::default()
            };
            let report = train(&mut net, &data, &cfg);
            let mut bits = Vec::new();
            net.visit_params(&mut |p| {
                bits.extend(p.value.data().iter().map(|v| v.to_bits()));
            });
            net.visit_batchnorms(&mut |bn| {
                let (_, _, mean, var, _) = bn.export();
                bits.extend(mean.iter().chain(&var).map(|v| v.to_bits()));
            });
            (bits, report.final_test_acc().to_bits())
        };
        let (w1, a1) = run(1);
        let (w4, a4) = run(4);
        assert_eq!(w1, w4, "weights diverge across thread counts");
        assert_eq!(a1, a4, "accuracy diverges across thread counts");
    }

    #[test]
    fn training_is_reproducible() {
        let data = tiny_data();
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 16,
            lr_decay_epochs: vec![],
            ..TrainConfig::default()
        };
        let run = |seed: u64| {
            let mut net = ResNet::resnet18(2, 8, 10, seed);
            train(&mut net, &data, &cfg).final_test_acc()
        };
        assert_eq!(run(5), run(5));
    }
}
