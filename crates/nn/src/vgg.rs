//! VGG-11 (CIFAR variant), width-parameterised.
//!
//! Standard VGG-11 feature stack — conv widths `[b, 2b, 4b, 4b, 8b, 8b, 8b,
//! 8b]` with max-pool downsampling — followed by a single FC head, matching
//! the paper's Table I layer inventory (`conv 64@32², 128@16², 2×256@8²,
//! 3×512@4², FC 512×10` for base width 64 at 32×32 input). The number of
//! pooling stages adapts to the input size so the slim 16×16 variant ends at
//! 1×1 as well.

use crate::activation::Activation;
use crate::batchnorm::BatchNorm2d;
use crate::block::{act_spec, bn_spec};
use crate::conv::Conv2d;
use crate::layer::Layer;
use crate::linear::Linear;
use crate::model::Model;
use crate::param::Param;
use crate::pool::{GlobalAvgPool, MaxPool2x2};
use crate::spec::{ConvSpec, LinearSpec, NetworkSpec, SpecItem};
use sia_tensor::{Conv2dGeom, Tensor};

/// One VGG feature stage.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)] // a handful of instances per model
enum Stage {
    Conv {
        conv: Conv2d,
        bn: BatchNorm2d,
        act: Activation,
    },
    Pool(MaxPool2x2),
}

/// The VGG-11 classification network.
///
/// # Examples
///
/// ```
/// use sia_nn::vgg::Vgg;
/// use sia_nn::Model;
/// let mut net = Vgg::vgg11(8, 16, 10, 1);
/// assert_eq!(net.name(), "vgg11-w8");
/// ```
#[derive(Clone, Debug)]
pub struct Vgg {
    name: String,
    input: (usize, usize, usize),
    stages: Vec<Stage>,
    pool: GlobalAvgPool,
    head: Linear,
}

impl Vgg {
    /// Builds VGG-11 with base width `b`: conv plan
    /// `[b, M, 2b, M, 4b, 4b, M, 8b, 8b, M, 8b, 8b, M]`, dropping trailing
    /// pools that would shrink the map below 1×1.
    ///
    /// # Panics
    ///
    /// Panics if `input_hw < 4`.
    #[must_use]
    pub fn vgg11(base: usize, input_hw: usize, classes: usize, seed: u64) -> Self {
        assert!(input_hw >= 4, "input {input_hw} too small");
        // (width multiplier, pool after?)
        let plan: &[(usize, bool)] = &[
            (1, true),
            (2, true),
            (4, false),
            (4, true),
            (8, false),
            (8, true),
            (8, false),
            (8, true),
        ];
        let mut stages = Vec::new();
        let mut hw = input_hw;
        let mut ch = 3usize;
        for (i, &(mul, pool_after)) in plan.iter().enumerate() {
            let out_ch = base * mul;
            let geom = Conv2dGeom {
                in_channels: ch,
                out_channels: out_ch,
                in_h: hw,
                in_w: hw,
                kernel: 3,
                stride: 1,
                padding: 1,
            };
            stages.push(Stage::Conv {
                conv: Conv2d::new(geom, seed ^ ((i as u64) << 4)),
                bn: BatchNorm2d::new(out_ch),
                act: Activation::relu(),
            });
            ch = out_ch;
            if pool_after && hw >= 2 {
                stages.push(Stage::Pool(MaxPool2x2::new()));
                hw /= 2;
            }
        }
        Vgg {
            name: format!("vgg11-w{base}"),
            input: (3, input_hw, input_hw),
            stages,
            pool: GlobalAvgPool::new(),
            head: Linear::new(ch, classes, seed ^ 0xFC),
        }
    }
}

impl Model for Vgg {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = x.clone();
        for s in &mut self.stages {
            h = match s {
                Stage::Conv { conv, bn, act } => {
                    let t = conv.forward(&h, train);
                    let t = bn.forward(&t, train);
                    act.forward(&t, train)
                }
                Stage::Pool(p) => p.forward(&h, train),
            };
        }
        let pooled = self.pool.forward(&h, train);
        self.head.forward(&pooled, train)
    }

    fn backward(&mut self, grad: &Tensor) {
        let g = self.head.backward(grad);
        let mut g = self.pool.backward(&g);
        for s in self.stages.iter_mut().rev() {
            g = match s {
                Stage::Conv { conv, bn, act } => {
                    let t = act.backward(&g);
                    let t = bn.backward(&t);
                    conv.backward(&t)
                }
                Stage::Pool(p) => p.backward(&g),
            };
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for s in &mut self.stages {
            if let Stage::Conv { conv, bn, act } = s {
                conv.visit_params(f);
                bn.visit_params(f);
                act.visit_params(f);
            }
        }
        self.head.visit_params(f);
    }

    fn visit_activations(&mut self, f: &mut dyn FnMut(&mut Activation)) {
        for s in &mut self.stages {
            if let Stage::Conv { act, .. } = s {
                f(act);
            }
        }
    }

    fn to_spec(&self) -> NetworkSpec {
        let mut items = Vec::new();
        for s in &self.stages {
            match s {
                Stage::Conv { conv, bn, act } => items.push(SpecItem::Conv(ConvSpec {
                    geom: *conv.geom(),
                    weights: conv.weights().clone(),
                    bn: Some(bn_spec(bn)),
                    act: Some(act_spec(act)),
                })),
                Stage::Pool(_) => items.push(SpecItem::MaxPool2x2),
            }
        }
        items.push(SpecItem::GlobalAvgPool);
        items.push(SpecItem::Linear(LinearSpec {
            in_features: self.head.in_features(),
            out_features: self.head.out_features(),
            weights: self.head.weights().clone(),
            bias: self.head.bias().data().to_vec(),
        }));
        NetworkSpec {
            name: self.name.clone(),
            input: self.input,
            items,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn try_clone(&self) -> Option<Box<dyn Model + Send + Sync>> {
        Some(Box::new(self.clone()))
    }

    fn visit_batchnorms(&mut self, f: &mut dyn FnMut(&mut BatchNorm2d)) {
        for s in &mut self.stages {
            if let Stage::Conv { bn, .. } = s {
                f(bn);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape() {
        let mut net = Vgg::vgg11(4, 16, 10, 2);
        let y = net.forward(&Tensor::zeros(vec![2, 3, 16, 16]), false);
        assert_eq!(y.shape().dims(), &[2, 10]);
    }

    #[test]
    fn full_width_matches_paper_layer_inventory() {
        // Table I (VGG-11): conv 64@32², 128@16², 2×256@8², 3×512@4² visible
        // groups; FC 512×10.
        let mut net = Vgg::vgg11(64, 32, 10, 0);
        net.visit_activations(&mut |a| a.make_quantized(8));
        let spec = net.to_spec();
        let mut groups: Vec<(usize, usize)> = Vec::new();
        for it in &spec.items {
            if let SpecItem::Conv(c) = it {
                groups.push((c.geom.out_channels, c.geom.in_h));
            }
        }
        assert_eq!(
            groups,
            vec![
                (64, 32),
                (128, 16),
                (256, 8),
                (256, 8),
                (512, 4),
                (512, 4),
                (512, 2),
                (512, 2)
            ]
        );
        match spec.items.last() {
            Some(SpecItem::Linear(l)) => {
                assert_eq!(l.in_features, 512);
                assert_eq!(l.out_features, 10);
            }
            other => panic!("expected Linear, got {other:?}"),
        }
    }

    #[test]
    fn eight_convs_and_adaptive_pools() {
        let count = |net: &mut Vgg| {
            let mut convs = 0;
            let mut pools = 0;
            for s in &net.stages {
                match s {
                    Stage::Conv { .. } => convs += 1,
                    Stage::Pool(_) => pools += 1,
                }
            }
            (convs, pools)
        };
        let mut full = Vgg::vgg11(8, 32, 10, 0);
        assert_eq!(count(&mut full), (8, 5));
        let mut slim = Vgg::vgg11(8, 16, 10, 0);
        assert_eq!(count(&mut slim), (8, 4)); // final pool dropped at 1×1
        let y = slim.forward(&Tensor::zeros(vec![1, 3, 16, 16]), false);
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn backward_produces_finite_grads() {
        let mut net = Vgg::vgg11(2, 8, 10, 5);
        let x = Tensor::full(vec![2, 3, 8, 8], 0.4);
        let _ = net.forward(&x, true);
        net.backward(&Tensor::full(vec![2, 10], 1.0));
        let mut total = 0.0;
        net.visit_params(&mut |p| total += p.grad.norm());
        assert!(total.is_finite() && total > 0.0);
    }

    #[test]
    fn visit_activations_yields_one_per_conv() {
        let mut net = Vgg::vgg11(2, 16, 10, 0);
        let mut n = 0;
        net.visit_activations(&mut |_| n += 1);
        assert_eq!(n, 8);
    }
}
