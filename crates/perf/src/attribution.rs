//! Per-layer performance attribution from the `accel.layer` event stream.
//!
//! The cycle-level machine emits one `accel.layer` event per (layer, image)
//! with the exact `LayerCycles` numbers it also returns in its
//! `CycleReport`, plus the `LayerTraffic` AXI footprint. This module folds
//! that stream into one row per layer (summing across images) and then
//! *proves* the fold correct: [`Attribution::reconcile`] compares every
//! column sum against the live `accel.*` counters the same run recorded.
//! When a check fails the metrics file is corrupt or the instrumentation
//! has drifted — attribution never estimates.

use crate::events::EventLog;
use sia_telemetry::json::Json;
use std::collections::BTreeMap;

/// One layer's accumulated performance numbers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LayerAttribution {
    /// Layer label, as compiled ("conv3x3,64@32", "fc512x10", …).
    pub name: String,
    /// Times this layer ran (once per image in the file).
    pub occurrences: u64,
    /// Σ spiking-core + aggregation compute cycles.
    pub compute_cycles: u64,
    /// Σ PS↔PL transfer cycles (stream + MMIO).
    pub transfer_cycles: u64,
    /// Σ fixed per-layer driver/configuration overhead cycles.
    pub overhead_cycles: u64,
    /// Σ latency cycles (compute/transfer overlapped per the event).
    pub total_cycles: u64,
    /// Whether compute and transfer overlap (ping-pong double buffering).
    pub overlapped: bool,
    /// Σ spikes emitted.
    pub spikes: u64,
    /// Σ effective arithmetic operations (event-driven schedule).
    pub ops: u64,
    /// Σ operations of a dense (skip-free) schedule.
    pub nominal_ops: u64,
    /// Σ active-PE cycles.
    pub active_pe_cycles: u64,
    /// Neurons in this stage (per run, not summed).
    pub neurons: u64,
    /// Σ neuron-timestep slots (`neurons × timesteps` per occurrence) —
    /// the denominator of spike density.
    pub neuron_steps: u64,
    /// Σ AXI stream traffic in bytes.
    pub stream_bytes: u64,
    /// Σ MMIO words (config + data) on the driver path.
    pub mmio_words: u64,
}

impl LayerAttribution {
    /// Wall-time in milliseconds at `clock_hz` (0 when unclocked).
    #[must_use]
    pub fn ms(&self, clock_hz: u64) -> f64 {
        if clock_hz == 0 {
            return 0.0;
        }
        self.total_cycles as f64 / clock_hz as f64 * 1e3
    }

    /// Achieved throughput in GOPS over this layer's own latency.
    #[must_use]
    pub fn effective_gops(&self, clock_hz: u64) -> f64 {
        if clock_hz == 0 || self.total_cycles == 0 {
            return 0.0;
        }
        self.ops as f64 / (self.total_cycles as f64 / clock_hz as f64) / 1e9
    }

    /// Fraction of neuron-timestep slots that spiked, in `[0, 1]`.
    #[must_use]
    pub fn spike_density(&self) -> f64 {
        if self.neuron_steps == 0 {
            return 0.0;
        }
        self.spikes as f64 / self.neuron_steps as f64
    }

    /// Event-driven efficiency: effective over nominal ops (1.0 for
    /// stages without a PE pass, where both are zero).
    #[must_use]
    pub fn event_efficiency(&self) -> f64 {
        if self.nominal_ops == 0 {
            return 1.0;
        }
        self.ops as f64 / self.nominal_ops as f64
    }

    /// Cycles the layer's latency spent waiting on AXI: total minus
    /// compute minus fixed overhead. With ping-pong overlap this is the
    /// transfer time compute could not hide; serially it is the whole
    /// transfer — both fall out of the same subtraction because
    /// `total = max(compute, transfer) + overhead` when overlapped and
    /// `compute + transfer + overhead` otherwise.
    #[must_use]
    pub fn axi_stall_cycles(&self) -> u64 {
        self.total_cycles
            .saturating_sub(self.compute_cycles + self.overhead_cycles)
    }

    /// Operational intensity in ops per streamed byte (the roofline
    /// x-axis); 0 when the layer streams nothing.
    #[must_use]
    pub fn intensity(&self) -> f64 {
        if self.stream_bytes == 0 {
            return 0.0;
        }
        self.ops as f64 / self.stream_bytes as f64
    }
}

/// The folded per-layer table plus its grand totals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Attribution {
    /// One row per distinct layer, in first-appearance order.
    pub layers: Vec<LayerAttribution>,
    /// Total `accel.layer` events folded.
    pub events: u64,
}

/// One reconciliation check: an event-stream column sum against the
/// counter the same run recorded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReconCheck {
    /// Counter name (`accel.total_cycles`, …).
    pub counter: String,
    /// Sum over the `accel.layer` events.
    pub event_sum: u64,
    /// Counter value from the `telemetry.counters` event, if recorded.
    pub counter_value: Option<u64>,
}

impl ReconCheck {
    /// Whether the identity holds (a missing counter fails the check).
    #[must_use]
    pub fn ok(&self) -> bool {
        self.counter_value == Some(self.event_sum)
    }
}

fn u64_field(ev: &Json, key: &str) -> u64 {
    ev.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// Folds the `accel.layer` events of `log` into per-layer rows.
///
/// # Errors
///
/// Returns a diagnostic when the log holds no `accel.layer` events.
pub fn attribute(log: &EventLog) -> Result<Attribution, String> {
    let events = log.of_kind("accel.layer");
    if events.is_empty() {
        return Err(
            "no `accel.layer` events in this metrics file — record one with \
             `sia eval --backend accel --metrics <file>` (or any accelerator run)"
                .to_string(),
        );
    }
    let mut order: Vec<String> = Vec::new();
    let mut rows: BTreeMap<String, LayerAttribution> = BTreeMap::new();
    for ev in &events {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let row = rows.entry(name.clone()).or_insert_with(|| {
            order.push(name.clone());
            LayerAttribution {
                name: name.clone(),
                ..LayerAttribution::default()
            }
        });
        row.occurrences += 1;
        row.compute_cycles += u64_field(ev, "compute_cycles");
        row.transfer_cycles += u64_field(ev, "transfer_cycles");
        row.overhead_cycles += u64_field(ev, "overhead_cycles");
        row.total_cycles += u64_field(ev, "total_cycles");
        row.overlapped = ev.get("overlapped") == Some(&Json::Bool(true));
        row.spikes += u64_field(ev, "spikes");
        row.ops += u64_field(ev, "ops");
        row.nominal_ops += u64_field(ev, "nominal_ops");
        row.active_pe_cycles += u64_field(ev, "active_pe_cycles");
        row.neurons = u64_field(ev, "neurons");
        row.neuron_steps += u64_field(ev, "neurons") * u64_field(ev, "timesteps");
        row.stream_bytes += u64_field(ev, "stream_bytes");
        row.mmio_words += u64_field(ev, "mmio_words");
    }
    Ok(Attribution {
        layers: order
            .into_iter()
            .map(|n| rows.remove(&n).expect("row recorded for every name"))
            .collect(),
        events: events.len() as u64,
    })
}

impl Attribution {
    /// Σ latency cycles across all layers and images.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.total_cycles).sum()
    }

    /// Σ effective operations.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.layers.iter().map(|l| l.ops).sum()
    }

    /// Σ dense-schedule operations.
    #[must_use]
    pub fn total_nominal_ops(&self) -> u64 {
        self.layers.iter().map(|l| l.nominal_ops).sum()
    }

    /// Reconciles every column sum against the run's recorded counters:
    /// the accounting identity behind the whole report. Returns one check
    /// per `accel.*` counter; all must pass for the numbers to be trusted.
    #[must_use]
    pub fn reconcile(&self, counters: &BTreeMap<String, u64>) -> Vec<ReconCheck> {
        let sum = |f: fn(&LayerAttribution) -> u64| self.layers.iter().map(f).sum::<u64>();
        let pairs: [(&str, u64); 9] = [
            ("accel.layers", self.events),
            ("accel.compute_cycles", sum(|l| l.compute_cycles)),
            ("accel.transfer_cycles", sum(|l| l.transfer_cycles)),
            ("accel.total_cycles", sum(|l| l.total_cycles)),
            ("accel.spikes", sum(|l| l.spikes)),
            ("accel.ops", sum(|l| l.ops)),
            ("accel.nominal_ops", sum(|l| l.nominal_ops)),
            ("accel.axi.stream_bytes", sum(|l| l.stream_bytes)),
            ("accel.axi.mmio_words", sum(|l| l.mmio_words)),
        ];
        pairs
            .into_iter()
            .map(|(name, event_sum)| ReconCheck {
                counter: name.to_string(),
                event_sum,
                counter_value: counters.get(name).copied(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer_line(name: &str, ops: u64, spikes: u64) -> String {
        format!(
            "{{\"ev\":\"accel.layer\",\"ts_us\":1,\"name\":\"{name}\",\
             \"compute_cycles\":100,\"transfer_cycles\":40,\"overhead_cycles\":10,\
             \"total_cycles\":110,\"overlapped\":true,\"spikes\":{spikes},\
             \"ops\":{ops},\"nominal_ops\":{},\"active_pe_cycles\":50,\
             \"neurons\":64,\"timesteps\":4,\"stream_bytes\":256,\"mmio_words\":3}}",
            ops * 2
        )
    }

    fn log_of(lines: &[String]) -> EventLog {
        EventLog::parse_str(&lines.join("\n")).unwrap()
    }

    #[test]
    fn folds_repeated_layers_across_images() {
        let log = log_of(&[
            layer_line("conv", 600, 20),
            layer_line("fc", 0, 0),
            layer_line("conv", 600, 30),
            layer_line("fc", 0, 0),
        ]);
        let att = attribute(&log).unwrap();
        assert_eq!(att.events, 4);
        assert_eq!(att.layers.len(), 2);
        // first-appearance order, not alphabetical
        assert_eq!(att.layers[0].name, "conv");
        let conv = &att.layers[0];
        assert_eq!(conv.occurrences, 2);
        assert_eq!(conv.compute_cycles, 200);
        assert_eq!(conv.total_cycles, 220);
        assert_eq!(conv.spikes, 50);
        assert_eq!(conv.ops, 1200);
        assert_eq!(conv.nominal_ops, 2400);
        assert_eq!(conv.neuron_steps, 2 * 64 * 4);
        assert!((conv.spike_density() - 50.0 / 512.0).abs() < 1e-12);
        assert!((conv.event_efficiency() - 0.5).abs() < 1e-12);
        assert!((conv.intensity() - 1200.0 / 512.0).abs() < 1e-12);
        // total 220 − compute 200 − overhead 20 = 0: compute hid the transfer
        assert_eq!(conv.axi_stall_cycles(), 0);
        // a stage without a PE pass is "fully efficient"
        assert_eq!(att.layers[1].event_efficiency(), 1.0);
    }

    #[test]
    fn no_layer_events_is_a_diagnostic() {
        let log = EventLog::parse_str("{\"ev\":\"snn.timestep\",\"ts_us\":1}\n").unwrap();
        let err = attribute(&log).unwrap_err();
        assert!(err.contains("accel.layer"), "{err}");
    }

    #[test]
    fn reconciliation_passes_on_matching_counters() {
        let log = log_of(&[layer_line("conv", 600, 20), layer_line("conv", 600, 30)]);
        let att = attribute(&log).unwrap();
        let counters: BTreeMap<String, u64> = [
            ("accel.layers", 2u64),
            ("accel.compute_cycles", 200),
            ("accel.transfer_cycles", 80),
            ("accel.total_cycles", 220),
            ("accel.spikes", 50),
            ("accel.ops", 1200),
            ("accel.nominal_ops", 2400),
            ("accel.axi.stream_bytes", 512),
            ("accel.axi.mmio_words", 6),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        let checks = att.reconcile(&counters);
        assert_eq!(checks.len(), 9);
        assert!(checks.iter().all(ReconCheck::ok), "{checks:?}");
    }

    #[test]
    fn reconciliation_flags_a_corrupt_column() {
        let log = log_of(&[layer_line("conv", 600, 20)]);
        let att = attribute(&log).unwrap();
        let mut counters: BTreeMap<String, u64> = att
            .reconcile(&BTreeMap::new())
            .into_iter()
            .map(|c| (c.counter, c.event_sum))
            .collect();
        counters.insert("accel.ops".to_string(), 999); // tampered
        let checks = att.reconcile(&counters);
        let bad: Vec<&ReconCheck> = checks.iter().filter(|c| !c.ok()).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].counter, "accel.ops");
        // and a missing counter also fails rather than silently passing
        counters.remove("accel.spikes");
        counters.insert("accel.ops".to_string(), 600);
        let checks = att.reconcile(&counters);
        assert!(checks
            .iter()
            .any(|c| c.counter == "accel.spikes" && !c.ok()));
    }
}
