//! One bench-result schema for every `sia bench` family, plus the
//! noise-aware baseline checker behind `--check-baseline`.
//!
//! Methodology (shared by gemm/conv/eval): discard `warmup` iterations,
//! report the **min** of the measured iterations (the least-noise point
//! estimate on a time-shared host), and carry median + MAD so the checker
//! can widen its threshold on noisy cases instead of using one global
//! fudge factor. A case regresses when
//! `current_min > baseline_min × (1 + rel_slack + mad_k × MAD/median)`.

use sia_telemetry::json::{parse, write_escaped, write_f64, Json};
use std::fmt::Write as _;

/// The machine a bench ran on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostInfo {
    /// Logical CPUs (hardware threads) visible to the process.
    pub logical_cpus: usize,
    /// Physical cores (unique `(physical id, core id)` pairs from
    /// `/proc/cpuinfo`; falls back to the logical count elsewhere).
    pub physical_cpus: usize,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
}

impl HostInfo {
    /// Detects the current host. Never fails: unknown values degrade to
    /// `1` / the logical count.
    #[must_use]
    pub fn detect() -> Self {
        let logical = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let physical = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|text| physical_cores_from_cpuinfo(&text))
            .unwrap_or(logical);
        HostInfo {
            logical_cpus: logical,
            physical_cpus: physical,
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        }
    }
}

/// Counts physical cores in `/proc/cpuinfo` text: unique
/// `(physical id, core id)` pairs, or the `processor` count when the
/// topology fields are absent (common in VMs). `None` on empty input.
#[must_use]
pub fn physical_cores_from_cpuinfo(text: &str) -> Option<usize> {
    let mut pairs = std::collections::BTreeSet::new();
    let mut processors = 0usize;
    let (mut phys, mut core) = (None::<u64>, None::<u64>);
    let mut flush = |phys: &mut Option<u64>, core: &mut Option<u64>| {
        if let (Some(p), Some(c)) = (*phys, *core) {
            pairs.insert((p, c));
        }
        *phys = None;
        *core = None;
    };
    for line in text.lines() {
        let mut split = line.splitn(2, ':');
        let key = split.next().unwrap_or("").trim();
        let value = split.next().unwrap_or("").trim();
        match key {
            "processor" => {
                flush(&mut phys, &mut core);
                processors += 1;
            }
            "physical id" => phys = value.parse().ok(),
            "core id" => core = value.parse().ok(),
            _ => {}
        }
    }
    flush(&mut phys, &mut core);
    if !pairs.is_empty() {
        Some(pairs.len())
    } else if processors > 0 {
        Some(processors)
    } else {
        None
    }
}

/// Noise statistics of one bench case.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchCase {
    /// Case label, unique within the bench (`"256x256x256"`, `"d10"`, …).
    pub name: String,
    /// Timed iterations (after warmup).
    pub iters: u64,
    /// Discarded warmup iterations.
    pub warmup: u64,
    /// Fastest timed iteration, in ns — the comparison point.
    pub min_ns: u64,
    /// Median iteration, in ns.
    pub median_ns: u64,
    /// Median absolute deviation, in ns — the noise scale.
    pub mad_ns: u64,
    /// Free-form derived metrics (`gflops`, `images_per_s`, …).
    pub metrics: Vec<(String, f64)>,
}

/// A complete bench run: what `sia bench` writes and baselines store.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Bench family (`"gemm"`, `"conv"`, `"eval"`).
    pub bench: String,
    /// Host the run executed on.
    pub host: HostInfo,
    /// Worker threads the bench used.
    pub threads: usize,
    /// Per-case statistics.
    pub cases: Vec<BenchCase>,
}

/// Min/median/MAD of post-warmup samples. Empty input yields zeros.
#[must_use]
pub fn summarize_ns(samples: &[u64]) -> (u64, u64, u64) {
    if samples.is_empty() {
        return (0, 0, 0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mut dev: Vec<u64> = sorted.iter().map(|&s| s.abs_diff(median)).collect();
    dev.sort_unstable();
    (min, median, dev[dev.len() / 2])
}

impl BenchReport {
    /// Serialises to the bench JSON schema (pretty, stable field order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"bench\": ");
        write_escaped(&mut out, &self.bench);
        let _ = write!(
            out,
            ",\n  \"schema\": 1,\n  \"host\": {{\"logical_cpus\": {}, \"physical_cpus\": {}, \
             \"os\": ",
            self.host.logical_cpus, self.host.physical_cpus
        );
        write_escaped(&mut out, &self.host.os);
        out.push_str(", \"arch\": ");
        write_escaped(&mut out, &self.host.arch);
        let _ = write!(out, "}},\n  \"threads\": {},\n  \"cases\": [", self.threads);
        for (i, case) in self.cases.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": ");
            write_escaped(&mut out, &case.name);
            let _ = write!(
                out,
                ", \"iters\": {}, \"warmup\": {}, \"min_ns\": {}, \"median_ns\": {}, \
                 \"mad_ns\": {}",
                case.iters, case.warmup, case.min_ns, case.median_ns, case.mad_ns
            );
            for (key, value) in &case.metrics {
                out.push_str(", ");
                write_escaped(&mut out, key);
                out.push_str(": ");
                write_f64(&mut out, *value);
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a report from bench JSON.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic naming what is malformed or missing.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let doc = parse(text.trim()).map_err(|e| format!("bad bench JSON: {e}"))?;
        let bench = doc
            .get("bench")
            .and_then(Json::as_str)
            .ok_or("bench JSON missing `bench` name")?
            .to_string();
        let host = doc.get("host").map_or_else(
            || HostInfo {
                logical_cpus: 1,
                physical_cpus: 1,
                os: String::new(),
                arch: String::new(),
            },
            |h| HostInfo {
                logical_cpus: h.get("logical_cpus").and_then(Json::as_u64).unwrap_or(1) as usize,
                physical_cpus: h.get("physical_cpus").and_then(Json::as_u64).unwrap_or(1) as usize,
                os: h.get("os").and_then(Json::as_str).unwrap_or("").to_string(),
                arch: h
                    .get("arch")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            },
        );
        let threads = doc.get("threads").and_then(Json::as_u64).unwrap_or(1) as usize;
        let Some(Json::Arr(raw_cases)) = doc.get("cases") else {
            return Err("bench JSON missing `cases` array".to_string());
        };
        let mut cases = Vec::with_capacity(raw_cases.len());
        for (i, c) in raw_cases.iter().enumerate() {
            let name = c
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("case {i} missing `name`"))?
                .to_string();
            let u = |k: &str| c.get(k).and_then(Json::as_u64).unwrap_or(0);
            let mut metrics = Vec::new();
            if let Json::Obj(map) = c {
                for (k, v) in map {
                    let known = matches!(
                        k.as_str(),
                        "name" | "iters" | "warmup" | "min_ns" | "median_ns" | "mad_ns"
                    );
                    if !known {
                        if let Some(f) = v.as_f64() {
                            metrics.push((k.clone(), f));
                        }
                    }
                }
            }
            cases.push(BenchCase {
                name,
                iters: u("iters"),
                warmup: u("warmup"),
                min_ns: u("min_ns"),
                median_ns: u("median_ns"),
                mad_ns: u("mad_ns"),
                metrics,
            });
        }
        Ok(BenchReport {
            bench,
            host,
            threads,
            cases,
        })
    }
}

/// Regression threshold parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Threshold {
    /// Flat relative slack every case gets (0.25 = 25 %).
    pub rel_slack: f64,
    /// MAD multiplier: noisy cases (large MAD/median in the *baseline*)
    /// get proportionally more headroom.
    pub mad_k: f64,
}

impl Default for Threshold {
    fn default() -> Self {
        Threshold {
            rel_slack: 0.25,
            mad_k: 4.0,
        }
    }
}

impl Threshold {
    /// Slowest acceptable `min_ns` for a case with this baseline.
    #[must_use]
    pub fn allowed_ns(&self, baseline: &BenchCase) -> u64 {
        let noise = if baseline.median_ns == 0 {
            0.0
        } else {
            baseline.mad_ns as f64 / baseline.median_ns as f64
        };
        let factor = 1.0 + self.rel_slack + self.mad_k * noise;
        (baseline.min_ns as f64 * factor).ceil() as u64
    }
}

/// One case's comparison against its baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseDiff {
    /// Case name.
    pub name: String,
    /// Baseline `min_ns`.
    pub baseline_ns: u64,
    /// Current `min_ns`.
    pub current_ns: u64,
    /// Threshold the current value was held to.
    pub allowed_ns: u64,
    /// Whether this case regressed.
    pub regressed: bool,
}

impl CaseDiff {
    /// Current over baseline (1.0 = unchanged; >1 = slower).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.baseline_ns == 0 {
            return 1.0;
        }
        self.current_ns as f64 / self.baseline_ns as f64
    }
}

/// Result of one `--check-baseline` comparison.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckOutcome {
    /// Per-case diffs, baseline order.
    pub diffs: Vec<CaseDiff>,
    /// Baseline cases absent from the current run (a failure: coverage
    /// silently shrank).
    pub missing: Vec<String>,
    /// Current cases absent from the baseline (informational).
    pub new_cases: Vec<String>,
}

impl CheckOutcome {
    /// Whether the run is acceptable: nothing regressed, nothing missing.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.diffs.iter().all(|d| !d.regressed)
    }

    /// Human-readable comparison table, one line per case.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<18} {:>12} {:>12} {:>12} {:>7}  verdict",
            "case", "baseline(ns)", "current(ns)", "allowed(ns)", "ratio"
        );
        for d in &self.diffs {
            let _ = writeln!(
                out,
                "{:<18} {:>12} {:>12} {:>12} {:>6.2}x  {}",
                d.name,
                d.baseline_ns,
                d.current_ns,
                d.allowed_ns,
                d.ratio(),
                if d.regressed { "REGRESSED" } else { "ok" }
            );
        }
        for name in &self.missing {
            let _ = writeln!(out, "{name:<18} MISSING from current run");
        }
        for name in &self.new_cases {
            let _ = writeln!(out, "{name:<18} new case (no baseline)");
        }
        out
    }
}

/// Compares a current run against its baseline.
#[must_use]
pub fn check_against_baseline(
    current: &BenchReport,
    baseline: &BenchReport,
    threshold: Threshold,
) -> CheckOutcome {
    let mut outcome = CheckOutcome::default();
    for base in &baseline.cases {
        match current.cases.iter().find(|c| c.name == base.name) {
            Some(cur) => {
                let allowed = threshold.allowed_ns(base);
                outcome.diffs.push(CaseDiff {
                    name: base.name.clone(),
                    baseline_ns: base.min_ns,
                    current_ns: cur.min_ns,
                    allowed_ns: allowed,
                    regressed: cur.min_ns > allowed,
                });
            }
            None => outcome.missing.push(base.name.clone()),
        }
    }
    for cur in &current.cases {
        if !baseline.cases.iter().any(|b| b.name == cur.name) {
            outcome.new_cases.push(cur.name.clone());
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(name: &str, min: u64, median: u64, mad: u64) -> BenchCase {
        BenchCase {
            name: name.into(),
            iters: 10,
            warmup: 3,
            min_ns: min,
            median_ns: median,
            mad_ns: mad,
            metrics: vec![("gflops".into(), 1.5)],
        }
    }

    fn report(cases: Vec<BenchCase>) -> BenchReport {
        BenchReport {
            bench: "gemm".into(),
            host: HostInfo {
                logical_cpus: 4,
                physical_cpus: 2,
                os: "linux".into(),
                arch: "x86_64".into(),
            },
            threads: 4,
            cases,
        }
    }

    #[test]
    fn json_round_trips() {
        let r = report(vec![case("a", 100, 120, 5), case("b\"x", 9, 9, 0)]);
        let back = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.host.logical_cpus, 4);
        assert_eq!(back.host.physical_cpus, 2);
        assert_eq!(back.cases[0].metrics, vec![("gflops".to_string(), 1.5)]);
    }

    #[test]
    fn malformed_json_is_a_diagnostic() {
        assert!(BenchReport::from_json("{")
            .unwrap_err()
            .contains("bad bench JSON"));
        assert!(BenchReport::from_json("{\"bench\":\"g\"}")
            .unwrap_err()
            .contains("cases"));
        assert!(BenchReport::from_json("{\"cases\":[]}")
            .unwrap_err()
            .contains("bench"));
    }

    #[test]
    fn summarize_computes_min_median_mad() {
        let (min, median, mad) = summarize_ns(&[130, 100, 110, 200, 120]);
        assert_eq!(min, 100);
        assert_eq!(median, 120);
        // deviations from 120: 20, 10, 0, 10, 80 → sorted 0,10,10,20,80
        assert_eq!(mad, 10);
        assert_eq!(summarize_ns(&[]), (0, 0, 0));
        assert_eq!(summarize_ns(&[7]), (7, 7, 0));
    }

    #[test]
    fn unchanged_rerun_passes() {
        let base = report(vec![case("a", 1000, 1100, 30), case("b", 500, 520, 10)]);
        let outcome = check_against_baseline(&base.clone(), &base, Threshold::default());
        assert!(outcome.passed(), "{}", outcome.render());
        assert!(outcome
            .diffs
            .iter()
            .all(|d| (d.ratio() - 1.0).abs() < 1e-12));
    }

    #[test]
    fn two_x_slowdown_is_flagged() {
        let base = report(vec![case("a", 1000, 1100, 30), case("b", 500, 520, 10)]);
        let mut slow = base.clone();
        slow.cases[0].min_ns *= 2; // injected 2× regression on one case
        slow.cases[0].median_ns *= 2;
        let outcome = check_against_baseline(&slow, &base, Threshold::default());
        assert!(!outcome.passed());
        let bad: Vec<&CaseDiff> = outcome.diffs.iter().filter(|d| d.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, "a");
        assert!((bad[0].ratio() - 2.0).abs() < 1e-12);
        assert!(outcome.render().contains("REGRESSED"));
    }

    #[test]
    fn noisy_baselines_get_wider_thresholds() {
        let quiet = case("q", 1000, 1000, 0);
        let noisy = case("n", 1000, 1000, 250);
        let thr = Threshold::default();
        // quiet: 1000 × 1.25; noisy: 1000 × (1.25 + 4 × 0.25) = 2250
        assert_eq!(thr.allowed_ns(&quiet), 1250);
        assert_eq!(thr.allowed_ns(&noisy), 2250);
        // a 1.5× excursion fails the quiet case but passes the noisy one
        let base = report(vec![quiet, noisy]);
        let mut cur = base.clone();
        for c in &mut cur.cases {
            c.min_ns = 1500;
        }
        let outcome = check_against_baseline(&cur, &base, thr);
        assert!(outcome.diffs[0].regressed);
        assert!(!outcome.diffs[1].regressed);
    }

    #[test]
    fn missing_case_fails_new_case_informs() {
        let base = report(vec![case("a", 100, 100, 0), case("gone", 100, 100, 0)]);
        let cur = report(vec![case("a", 100, 100, 0), case("fresh", 100, 100, 0)]);
        let outcome = check_against_baseline(&cur, &base, Threshold::default());
        assert!(!outcome.passed());
        assert_eq!(outcome.missing, vec!["gone".to_string()]);
        assert_eq!(outcome.new_cases, vec!["fresh".to_string()]);
        assert!(outcome.render().contains("MISSING"));
    }

    #[test]
    fn cpuinfo_topology_counts_unique_cores() {
        // 1 socket, 2 cores, 2 threads each = 4 logical processors
        let text = "processor\t: 0\nphysical id\t: 0\ncore id\t: 0\n\n\
                    processor\t: 1\nphysical id\t: 0\ncore id\t: 1\n\n\
                    processor\t: 2\nphysical id\t: 0\ncore id\t: 0\n\n\
                    processor\t: 3\nphysical id\t: 0\ncore id\t: 1\n";
        assert_eq!(physical_cores_from_cpuinfo(text), Some(2));
        // VM without topology fields: fall back to processor count
        let vm = "processor\t: 0\nmodel name\t: x\n\nprocessor\t: 1\n";
        assert_eq!(physical_cores_from_cpuinfo(vm), Some(2));
        assert_eq!(physical_cores_from_cpuinfo(""), None);
    }

    #[test]
    fn detect_reports_sane_host() {
        let host = HostInfo::detect();
        assert!(host.logical_cpus >= 1);
        assert!(host.physical_cpus >= 1);
        assert!(host.physical_cpus <= host.logical_cpus * 2);
        assert!(!host.os.is_empty());
    }
}
