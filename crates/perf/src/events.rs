//! Robust loading of metrics JSONL files.
//!
//! A metrics file is whatever a crashed, interrupted or still-running
//! process left behind — so the loader treats malformed input as data, not
//! as a programming error: a missing or empty file yields a diagnostic
//! `Err`, a line truncated mid-write (no trailing newline, unterminated
//! object) is dropped and *counted*, and only a file with zero parseable
//! events is rejected outright.

use sia_telemetry::json::{parse, Json};
use std::collections::BTreeMap;

/// A parsed metrics event stream.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    /// Parsed events in file order (every entry is a JSON object with an
    /// `"ev"` kind).
    pub events: Vec<Json>,
    /// Lines that failed to parse and were skipped.
    pub malformed_lines: usize,
    /// Whether the *final* line was malformed — the signature of a file
    /// truncated mid-write.
    pub truncated_tail: bool,
}

impl EventLog {
    /// Loads and parses a metrics JSONL file.
    ///
    /// # Errors
    ///
    /// Returns a human-readable diagnostic when the file cannot be read,
    /// is empty, or contains no parseable events.
    pub fn load(path: &str) -> Result<EventLog, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read metrics file `{path}`: {e}"))?;
        EventLog::parse_str(&text).map_err(|e| format!("metrics file `{path}`: {e}"))
    }

    /// Parses JSONL text (the path-free core of [`EventLog::load`]).
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when the text holds no events at all.
    pub fn parse_str(text: &str) -> Result<EventLog, String> {
        if text.trim().is_empty() {
            return Err(
                "no telemetry events (empty file) — record one with `sia … --metrics <file>`"
                    .to_string(),
            );
        }
        let mut log = EventLog::default();
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        for (i, line) in lines.iter().enumerate() {
            match parse(line) {
                Ok(ev @ Json::Obj(_)) if ev.get("ev").is_some() => log.events.push(ev),
                _ => {
                    log.malformed_lines += 1;
                    if i + 1 == lines.len() {
                        log.truncated_tail = true;
                    }
                }
            }
        }
        if log.events.is_empty() {
            return Err(format!(
                "no parseable telemetry events ({} malformed line{})",
                log.malformed_lines,
                if log.malformed_lines == 1 { "" } else { "s" }
            ));
        }
        Ok(log)
    }

    /// Events of one kind, in file order.
    #[must_use]
    pub fn of_kind(&self, kind: &str) -> Vec<&Json> {
        self.events
            .iter()
            .filter(|e| e.get("ev").and_then(Json::as_str) == Some(kind))
            .collect()
    }

    /// The last event of one kind, if any.
    #[must_use]
    pub fn last_of_kind(&self, kind: &str) -> Option<&Json> {
        self.events
            .iter()
            .rev()
            .find(|e| e.get("ev").and_then(Json::as_str) == Some(kind))
    }

    /// The final counter values, from the last `telemetry.counters` event
    /// (the CLI emits one when it closes a metrics sink). Empty when the
    /// run predates that event or was cut short.
    #[must_use]
    pub fn counters(&self) -> BTreeMap<String, u64> {
        let Some(Json::Obj(map)) = self.last_of_kind("telemetry.counters") else {
            return BTreeMap::new();
        };
        map.iter()
            .filter(|(k, _)| k.as_str() != "ev" && k.as_str() != "ts_us")
            .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
            .collect()
    }

    /// A one-line warning describing skipped lines, if any were skipped.
    #[must_use]
    pub fn skipped_note(&self) -> Option<String> {
        if self.malformed_lines == 0 {
            return None;
        }
        Some(format!(
            "warning: skipped {} malformed line{}{}",
            self.malformed_lines,
            if self.malformed_lines == 1 { "" } else { "s" },
            if self.truncated_tail {
                " (file ends mid-line: truncated while writing?)"
            } else {
                ""
            }
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_well_formed_jsonl() {
        let text = "{\"ev\":\"a\",\"ts_us\":1,\"n\":5}\n{\"ev\":\"b\",\"ts_us\":2}\n";
        let log = EventLog::parse_str(text).unwrap();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.malformed_lines, 0);
        assert!(!log.truncated_tail);
        assert_eq!(log.of_kind("a").len(), 1);
        assert_eq!(log.of_kind("a")[0].get("n").and_then(Json::as_u64), Some(5));
    }

    #[test]
    fn empty_file_is_a_diagnostic_not_a_panic() {
        let err = EventLog::parse_str("").unwrap_err();
        assert!(err.contains("no telemetry events"), "{err}");
        let err = EventLog::parse_str("  \n \n").unwrap_err();
        assert!(err.contains("no telemetry events"), "{err}");
    }

    #[test]
    fn missing_file_is_a_diagnostic() {
        let err = EventLog::load("/nonexistent/metrics.jsonl").unwrap_err();
        assert!(err.contains("cannot read metrics file"), "{err}");
        assert!(err.contains("/nonexistent/metrics.jsonl"), "{err}");
    }

    #[test]
    fn truncated_tail_is_dropped_and_flagged() {
        // a writer killed mid-line leaves an unterminated object
        let text = "{\"ev\":\"a\",\"ts_us\":1}\n{\"ev\":\"b\",\"ts_us\":2,\"cycl";
        let log = EventLog::parse_str(text).unwrap();
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.malformed_lines, 1);
        assert!(log.truncated_tail);
        assert!(log.skipped_note().unwrap().contains("mid-line"));
    }

    #[test]
    fn garbage_mid_file_is_counted_but_not_tail() {
        let text = "{\"ev\":\"a\",\"ts_us\":1}\nnot json at all\n{\"ev\":\"c\",\"ts_us\":3}\n";
        let log = EventLog::parse_str(text).unwrap();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.malformed_lines, 1);
        assert!(!log.truncated_tail);
        assert!(log.skipped_note().unwrap().contains("1 malformed line"));
    }

    #[test]
    fn all_garbage_is_an_error() {
        let err = EventLog::parse_str("oops\nalso not json\n").unwrap_err();
        assert!(err.contains("2 malformed lines"), "{err}");
    }

    #[test]
    fn counters_read_the_last_counters_event() {
        let text = concat!(
            "{\"ev\":\"telemetry.counters\",\"ts_us\":1,\"accel.ops\":1}\n",
            "{\"ev\":\"telemetry.counters\",\"ts_us\":2,\"accel.ops\":42,\"accel.spikes\":7}\n",
        );
        let log = EventLog::parse_str(text).unwrap();
        let c = log.counters();
        assert_eq!(c.get("accel.ops"), Some(&42));
        assert_eq!(c.get("accel.spikes"), Some(&7));
        assert!(!c.contains_key("ev"));
        assert!(!c.contains_key("ts_us"));
    }
}
