//! Self-contained single-file HTML report.
//!
//! Everything is inlined — styles, the table-sorting script, the
//! flamegraph geometry — so the output opens from disk with no external
//! assets and survives being mailed around. The flamegraph is plain
//! absolutely-positioned `div`s computed here (span nesting depth per
//! thread lane), not a JS library.

use crate::attribution::{Attribution, ReconCheck};
use crate::roofline::RooflineModel;
use std::fmt::Write as _;

/// One completed span for the flamegraph (mirrors the telemetry
/// `TraceEvent`, restated here so sia-perf stays decoupled from the
/// feature-gated type).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlameSpan {
    /// Hierarchical span path (`train.epoch.forward`).
    pub name: String,
    /// Start, µs.
    pub ts_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Thread lane.
    pub tid: u64,
}

fn esc(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
}

fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    esc(&mut out, s);
    out
}

/// Deterministic pastel from a name (stable colors across reloads).
fn color_of(name: &str) -> String {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("hsl({}, 65%, 72%)", hash % 360)
}

const STYLE: &str = "\
body{font:14px/1.45 -apple-system,'Segoe UI',sans-serif;margin:2em auto;max-width:1100px;\
color:#1a1a1a;padding:0 1em}\
h1{font-size:1.4em}h2{font-size:1.1em;margin-top:2em}\
table{border-collapse:collapse;width:100%;font-variant-numeric:tabular-nums}\
th,td{padding:4px 8px;border-bottom:1px solid #ddd;text-align:right;white-space:nowrap}\
th{cursor:pointer;background:#f5f5f5;position:sticky;top:0}\
th:first-child,td:first-child{text-align:left}\
tr:hover td{background:#fafafa}\
.ok{color:#0a7d2c}.bad{color:#c0232c;font-weight:600}\
.flame{position:relative;background:#fbfbfb;border:1px solid #ddd;margin:4px 0;overflow:hidden}\
.flame .sp{position:absolute;height:18px;font-size:11px;line-height:18px;overflow:hidden;\
white-space:nowrap;border:1px solid rgba(0,0,0,.25);border-radius:2px;box-sizing:border-box;\
padding:0 3px}\
.lane{margin:0 0 2px;font-size:12px;color:#666}\
.meta{color:#666;font-size:12px}";

const SORT_JS: &str = "\
document.querySelectorAll('table.sortable th').forEach(function(th){\
th.addEventListener('click',function(){\
var tb=th.closest('table').tBodies[0];\
var i=Array.prototype.indexOf.call(th.parentNode.children,th);\
var dir=th.dataset.dir==='a'?'d':'a';th.dataset.dir=dir;\
var rows=Array.prototype.slice.call(tb.rows);\
rows.sort(function(r1,r2){\
var a=r1.cells[i].dataset.v||r1.cells[i].textContent;\
var b=r2.cells[i].dataset.v||r2.cells[i].textContent;\
var na=parseFloat(a),nb=parseFloat(b);\
var c=(isNaN(na)||isNaN(nb))?a.localeCompare(b):na-nb;\
return dir==='a'?c:-c;});\
rows.forEach(function(r){tb.appendChild(r);});});});";

fn write_layer_table(out: &mut String, att: &Attribution, roof: &RooflineModel) {
    out.push_str(
        "<h2>Per-layer attribution</h2>\n<table class=sortable><thead><tr>\
         <th>layer</th><th>runs</th><th>total cycles</th><th>ms</th>\
         <th>compute cy</th><th>stream cy</th><th>driver cy</th><th>overhead cy</th>\
         <th>eff. ops</th><th>nominal ops</th><th>eff/nom</th><th>GOPS</th>\
         <th>ops/byte</th><th>spike density</th><th>bound</th></tr></thead><tbody>\n",
    );
    for l in &att.layers {
        let (_, stream, driver, _) = roof.components(l);
        let _ = writeln!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{:.4}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{:.3}</td><td>{:.3}</td>\
             <td>{:.2}</td><td>{:.4}</td><td>{}</td></tr>",
            escaped(&l.name),
            l.occurrences,
            l.total_cycles,
            l.ms(roof.clock_hz),
            l.compute_cycles,
            stream,
            driver,
            l.overhead_cycles,
            l.ops,
            l.nominal_ops,
            l.event_efficiency(),
            l.effective_gops(roof.clock_hz),
            l.intensity(),
            l.spike_density(),
            roof.classify(l).label(),
        );
    }
    out.push_str("</tbody></table>\n");
}

fn write_recon_table(out: &mut String, checks: &[ReconCheck]) {
    if checks.is_empty() {
        out.push_str(
            "<h2>Reconciliation</h2><p class=meta>no <code>telemetry.counters</code> \
             event in this file — sums could not be cross-checked</p>\n",
        );
        return;
    }
    let all_ok = checks.iter().all(ReconCheck::ok);
    let _ = write!(
        out,
        "<h2>Reconciliation <span class={}>{}</span></h2>",
        if all_ok { "ok" } else { "bad" },
        if all_ok { "✓ exact" } else { "✗ MISMATCH" }
    );
    out.push_str(
        "<table class=sortable><thead><tr><th>counter</th><th>event sum</th>\
         <th>counter value</th><th>status</th></tr></thead><tbody>\n",
    );
    for c in checks {
        let _ = writeln!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td class={}>{}</td></tr>",
            escaped(&c.counter),
            c.event_sum,
            c.counter_value
                .map_or_else(|| "(missing)".to_string(), |v| v.to_string()),
            if c.ok() { "ok" } else { "bad" },
            if c.ok() { "ok" } else { "MISMATCH" },
        );
    }
    out.push_str("</tbody></table>\n");
}

fn write_flamegraph(out: &mut String, spans: &[FlameSpan]) {
    out.push_str("<h2>Flamegraph</h2>\n");
    if spans.is_empty() {
        out.push_str("<p class=meta>no trace spans (run with the span buffer enabled)</p>\n");
        return;
    }
    let t0 = spans.iter().map(|s| s.ts_us).min().unwrap_or(0);
    let t1 = spans
        .iter()
        .map(|s| s.ts_us + s.dur_us)
        .max()
        .unwrap_or(1)
        .max(t0 + 1);
    let total = (t1 - t0) as f64;
    let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let mut lane: Vec<&FlameSpan> = spans.iter().filter(|s| s.tid == tid).collect();
        // parents first: earlier start, then longer duration
        lane.sort_by_key(|s| (s.ts_us, std::cmp::Reverse(s.dur_us)));
        let mut stack: Vec<u64> = Vec::new(); // end times of open ancestors
        let mut rows = 0usize;
        let mut placed: Vec<(usize, &FlameSpan)> = Vec::with_capacity(lane.len());
        for s in lane {
            while stack.last().is_some_and(|&end| end <= s.ts_us) {
                stack.pop();
            }
            let depth = stack.len();
            stack.push(s.ts_us + s.dur_us);
            rows = rows.max(depth + 1);
            placed.push((depth, s));
        }
        let _ = writeln!(
            out,
            "<p class=lane>thread {tid} · {} spans · {} µs window</p>\
             <div class=flame style=\"height:{}px\">",
            placed.len(),
            t1 - t0,
            rows * 20 + 2
        );
        for (depth, s) in placed {
            let left = (s.ts_us - t0) as f64 / total * 100.0;
            let width = (s.dur_us as f64 / total * 100.0).max(0.05);
            let label = s.name.rsplit('.').next().unwrap_or(&s.name);
            let _ = writeln!(
                out,
                "<div class=sp title=\"{} ({} µs)\" \
                 style=\"left:{left:.3}%;width:{width:.3}%;top:{}px;background:{}\">{}</div>",
                escaped(&s.name),
                s.dur_us,
                depth * 20 + 1,
                color_of(&s.name),
                escaped(label),
            );
        }
        out.push_str("</div>\n");
    }
}

/// Renders the complete single-file report.
#[must_use]
pub fn render_report(
    title: &str,
    att: &Attribution,
    roof: &RooflineModel,
    checks: &[ReconCheck],
    spans: &[FlameSpan],
) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("<!doctype html>\n<html><head><meta charset=\"utf-8\">\n<title>");
    esc(&mut out, title);
    let _ = write!(out, "</title>\n<style>{STYLE}</style>\n</head><body>\n<h1>");
    esc(&mut out, title);
    out.push_str("</h1>\n");
    let total_ms = if roof.clock_hz == 0 {
        0.0
    } else {
        att.total_cycles() as f64 / roof.clock_hz as f64 * 1e3
    };
    let _ = writeln!(
        out,
        "<p class=meta>{} layer events · {} cycles · {:.4} ms @ {} MHz · \
         peak {:.1} GOPS · stream {:.0} MB/s · ridge {:.1} ops/byte</p>",
        att.events,
        att.total_cycles(),
        total_ms,
        roof.clock_hz / 1_000_000,
        roof.peak_ops_per_sec / 1e9,
        roof.stream_bytes_per_sec / 1e6,
        roof.ridge_intensity(),
    );
    write_layer_table(&mut out, att, roof);
    write_recon_table(&mut out, checks);
    write_flamegraph(&mut out, spans);
    let _ = write!(out, "<script>{SORT_JS}</script>\n</body></html>");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::attribute;
    use crate::events::EventLog;

    fn sample_attribution() -> Attribution {
        let line = "{\"ev\":\"accel.layer\",\"ts_us\":1,\"name\":\"conv<3x3>&64\",\
             \"compute_cycles\":100,\"transfer_cycles\":40,\"overhead_cycles\":10,\
             \"total_cycles\":110,\"overlapped\":true,\"spikes\":5,\"ops\":600,\
             \"nominal_ops\":1200,\"active_pe_cycles\":50,\"neurons\":64,\
             \"timesteps\":4,\"stream_bytes\":256,\"mmio_words\":3}";
        attribute(&EventLog::parse_str(line).unwrap()).unwrap()
    }

    #[test]
    fn report_is_self_contained_and_escaped() {
        let att = sample_attribution();
        let roof = RooflineModel::pynq_z2();
        let checks = att.reconcile(
            &att.reconcile(&Default::default())
                .into_iter()
                .map(|c| (c.counter, c.event_sum))
                .collect(),
        );
        let spans = vec![
            FlameSpan {
                name: "a.outer".into(),
                ts_us: 0,
                dur_us: 100,
                tid: 1,
            },
            FlameSpan {
                name: "a.inner".into(),
                ts_us: 10,
                dur_us: 30,
                tid: 1,
            },
        ];
        let html = render_report("sia report <test>", &att, &roof, &checks, &spans);
        assert!(html.starts_with("<!doctype html>"));
        // layer name and title are HTML-escaped
        assert!(html.contains("conv&lt;3x3&gt;&amp;64"));
        assert!(html.contains("sia report &lt;test&gt;"));
        assert!(!html.contains("conv<3x3>"));
        // reconciliation badge, flame divs, sort script all inline
        assert!(html.contains("✓ exact"));
        assert!(html.contains("class=sp"));
        assert!(html.contains("addEventListener"));
        // no external references
        assert!(!html.contains("src=\"http"));
        assert!(!html.contains("href=\"http"));
    }

    #[test]
    fn nested_spans_stack_by_depth() {
        let att = sample_attribution();
        let roof = RooflineModel::pynq_z2();
        let spans = vec![
            FlameSpan {
                name: "outer".into(),
                ts_us: 0,
                dur_us: 100,
                tid: 1,
            },
            FlameSpan {
                name: "inner".into(),
                ts_us: 10,
                dur_us: 30,
                tid: 1,
            },
            FlameSpan {
                name: "after".into(),
                ts_us: 50,
                dur_us: 40,
                tid: 1,
            },
        ];
        let html = render_report("t", &att, &roof, &[], &spans);
        // outer at depth 0, inner and after back at depth 1 vs 1:
        // inner nests (top 21px), after follows inside outer (also 21px)
        assert!(html.contains("top:1px"));
        assert!(html.contains("top:21px"));
    }

    #[test]
    fn empty_trace_and_missing_counters_degrade_gracefully() {
        let att = sample_attribution();
        let roof = RooflineModel::pynq_z2();
        let html = render_report("t", &att, &roof, &[], &[]);
        assert!(html.contains("no trace spans"));
        assert!(html.contains("could not be cross-checked"));
        // a mismatch renders loudly
        let mut checks = att.reconcile(&Default::default());
        checks[0].counter_value = Some(checks[0].event_sum + 1);
        let html = render_report("t", &att, &roof, &checks, &[]);
        assert!(html.contains("MISMATCH"));
    }
}
