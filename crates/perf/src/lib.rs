//! # sia-perf — performance attribution and regression tracking
//!
//! Turns the raw telemetry a run emits (JSONL events, counters, Chrome
//! trace spans) into *accountable* performance artifacts:
//!
//! * [`events`] — robust loading of metrics JSONL files: a missing, empty
//!   or truncated-mid-line file becomes a diagnostic, never a panic.
//! * [`attribution`] — joins the `accel.layer` event stream into a
//!   per-layer table (cycles, nominal vs effective ops, spike density,
//!   AXI traffic) and *reconciles* every sum against the live counters:
//!   attribution is an accounting identity, not an estimate.
//! * [`roofline`] — the Fig. 5 memory-map roofline (PE-array peak vs
//!   AXI stream bandwidth vs the MMIO driver path) and a per-layer
//!   compute-/memory-/driver-/overhead-bound classification.
//! * [`bench`] — one JSON schema for every `sia bench` family (warmup
//!   discard, min-of-iters, median + MAD) plus a noise-aware baseline
//!   checker for `--check-baseline` regression gates.
//! * [`html`] — a self-contained single-file HTML report: inline
//!   flamegraph from the Chrome-trace buffer and sortable tables, no
//!   external assets.
//!
//! The crate depends only on `sia-telemetry`'s always-compiled `json`
//! module, so it behaves identically whether probes are enabled or not.

#![forbid(unsafe_code)]

pub mod attribution;
pub mod bench;
pub mod events;
pub mod html;
pub mod roofline;

pub use attribution::{Attribution, LayerAttribution, ReconCheck};
pub use bench::{BenchCase, BenchReport, CaseDiff, CheckOutcome, HostInfo, Threshold};
pub use events::EventLog;
pub use roofline::{Bound, RooflineModel};
