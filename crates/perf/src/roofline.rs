//! The SIA roofline, derived from the paper's Fig. 5 memory map and
//! PE-array peak.
//!
//! Three ceilings bound a layer's throughput:
//!
//! * **compute** — the PE array: `rows × cols × ops/PE/cycle × clock`
//!   (38.4 GOPS for the 8×8 PYNQ-Z2 prototype, Table IV);
//! * **stream** — the AXI-HP bulk path moving weights/spikes/residuals
//!   between PS DRAM and the Fig. 5 SRAMs: `dma_bytes_per_cycle × clock`
//!   (800 MB/s at 8 B/cycle, 100 MHz);
//! * **driver** — the AXI4-Lite MMIO path the PS driver pokes word by
//!   word: `clock / mmio_cycles_per_word` (≈ 178 k words/s — the §IV-B
//!   FC-layer bottleneck).
//!
//! The model is rebuilt from the `accel.config` event a run records, so a
//! report derived from a metrics file reflects the configuration that
//! actually ran, not a guess; [`RooflineModel::pynq_z2`] supplies the
//! prototype values for files that predate that event.

use crate::attribution::LayerAttribution;
use sia_telemetry::json::Json;

/// What bounds a layer's latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// PE-array compute cycles dominate.
    Compute,
    /// AXI stream transfer cycles dominate.
    Memory,
    /// The word-by-word MMIO driver path dominates.
    Driver,
    /// Fixed per-layer configuration overhead dominates.
    Overhead,
}

impl Bound {
    /// Short label for tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Bound::Compute => "compute",
            Bound::Memory => "memory",
            Bound::Driver => "driver",
            Bound::Overhead => "overhead",
        }
    }
}

/// Machine balance derived from one accelerator configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct RooflineModel {
    /// PL clock in Hz.
    pub clock_hz: u64,
    /// PE-array peak in ops/s.
    pub peak_ops_per_sec: f64,
    /// AXI bulk-stream bandwidth in bytes/s.
    pub stream_bytes_per_sec: f64,
    /// MMIO driver rate in words/s.
    pub mmio_words_per_sec: f64,
    /// Bytes the stream path moves per PL cycle.
    pub dma_bytes_per_cycle: f64,
    /// Cycles one MMIO word costs.
    pub mmio_cycles_per_word: u64,
}

impl RooflineModel {
    /// The paper's PYNQ-Z2 prototype balance (8×8 PEs, 6 ops/PE/cycle,
    /// 100 MHz, 8 B/cycle AXI-HP, 560 cycles/MMIO word) — mirrors
    /// `SiaConfig::pynq_z2()` and is asserted against it in the
    /// workspace integration tests.
    #[must_use]
    pub fn pynq_z2() -> Self {
        RooflineModel::from_params(8, 8, 100_000_000, 6, 8.0, 560)
    }

    /// Builds the model from raw configuration parameters.
    #[must_use]
    pub fn from_params(
        pe_rows: u64,
        pe_cols: u64,
        clock_hz: u64,
        ops_per_pe_cycle: u64,
        dma_bytes_per_cycle: f64,
        mmio_cycles_per_word: u64,
    ) -> Self {
        RooflineModel {
            clock_hz,
            peak_ops_per_sec: (pe_rows * pe_cols * ops_per_pe_cycle) as f64 * clock_hz as f64,
            stream_bytes_per_sec: dma_bytes_per_cycle * clock_hz as f64,
            mmio_words_per_sec: if mmio_cycles_per_word == 0 {
                0.0
            } else {
                clock_hz as f64 / mmio_cycles_per_word as f64
            },
            dma_bytes_per_cycle,
            mmio_cycles_per_word,
        }
    }

    /// Rebuilds the model from a run's `accel.config` event; `None` when
    /// a required field is missing (older metrics files).
    #[must_use]
    pub fn from_config_event(ev: &Json) -> Option<Self> {
        let u = |k: &str| ev.get(k).and_then(Json::as_u64);
        Some(RooflineModel::from_params(
            u("pe_rows")?,
            u("pe_cols")?,
            u("clock_hz")?,
            u("ops_per_pe_cycle")?,
            ev.get("dma_bytes_per_cycle").and_then(Json::as_f64)?,
            u("mmio_cycles_per_word")?,
        ))
    }

    /// The ridge point in ops/byte: intensity above which the stream
    /// path can keep the PE array fed.
    #[must_use]
    pub fn ridge_intensity(&self) -> f64 {
        if self.stream_bytes_per_sec == 0.0 {
            return f64::INFINITY;
        }
        self.peak_ops_per_sec / self.stream_bytes_per_sec
    }

    /// Attainable ops/s at operational intensity `ops_per_byte` — the
    /// roofline itself: `min(peak, bandwidth × intensity)`.
    #[must_use]
    pub fn attainable_ops_per_sec(&self, ops_per_byte: f64) -> f64 {
        (self.stream_bytes_per_sec * ops_per_byte).min(self.peak_ops_per_sec)
    }

    /// Splits a layer's latency into its accounted components, in cycles:
    /// `(compute, stream, driver, overhead)`. Stream and driver re-derive
    /// from the layer's recorded traffic exactly as the machine's AXI
    /// model charges them, so the four parts cover `transfer_cycles`
    /// without estimation.
    #[must_use]
    pub fn components(&self, layer: &LayerAttribution) -> (u64, u64, u64, u64) {
        let driver = layer.mmio_words * self.mmio_cycles_per_word;
        let stream = layer.transfer_cycles.saturating_sub(driver);
        (layer.compute_cycles, stream, driver, layer.overhead_cycles)
    }

    /// Classifies a layer by its dominant latency component.
    #[must_use]
    pub fn classify(&self, layer: &LayerAttribution) -> Bound {
        let (compute, stream, driver, overhead) = self.components(layer);
        let mut bound = Bound::Compute;
        let mut best = compute;
        for (b, v) in [
            (Bound::Memory, stream),
            (Bound::Driver, driver),
            (Bound::Overhead, overhead),
        ] {
            if v > best {
                best = v;
                bound = b;
            }
        }
        bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_telemetry::json::parse;

    #[test]
    fn prototype_peak_matches_table_iv() {
        let r = RooflineModel::pynq_z2();
        assert!((r.peak_ops_per_sec - 38.4e9).abs() < 1e3);
        assert!((r.stream_bytes_per_sec - 800e6).abs() < 1e-3);
        assert!((r.mmio_words_per_sec - 100e6 / 560.0).abs() < 1e-6);
        // ridge: 38.4 GOPS / 800 MB/s = 48 ops/byte
        assert!((r.ridge_intensity() - 48.0).abs() < 1e-9);
    }

    #[test]
    fn roofline_is_min_of_bandwidth_and_peak() {
        let r = RooflineModel::pynq_z2();
        // below the ridge: bandwidth-limited, linear in intensity
        assert!((r.attainable_ops_per_sec(1.0) - 800e6).abs() < 1.0);
        assert!((r.attainable_ops_per_sec(24.0) - 19.2e9).abs() < 1e3);
        // above the ridge: flat at peak
        assert!((r.attainable_ops_per_sec(1000.0) - 38.4e9).abs() < 1e3);
    }

    #[test]
    fn rebuilds_from_config_event() {
        let ev = parse(
            "{\"ev\":\"accel.config\",\"ts_us\":0,\"pe_rows\":8,\"pe_cols\":8,\
             \"clock_hz\":100000000,\"ops_per_pe_cycle\":6,\
             \"dma_bytes_per_cycle\":8,\"mmio_cycles_per_word\":560}",
        )
        .unwrap();
        assert_eq!(
            RooflineModel::from_config_event(&ev),
            Some(RooflineModel::pynq_z2())
        );
        let missing = parse("{\"ev\":\"accel.config\",\"ts_us\":0}").unwrap();
        assert_eq!(RooflineModel::from_config_event(&missing), None);
    }

    fn layer(compute: u64, transfer: u64, overhead: u64, mmio_words: u64) -> LayerAttribution {
        LayerAttribution {
            name: "l".into(),
            compute_cycles: compute,
            transfer_cycles: transfer,
            overhead_cycles: overhead,
            mmio_words,
            ..LayerAttribution::default()
        }
    }

    #[test]
    fn classification_follows_the_dominant_component() {
        let r = RooflineModel::pynq_z2();
        assert_eq!(r.classify(&layer(10_000, 100, 50, 0)), Bound::Compute);
        assert_eq!(r.classify(&layer(100, 10_000, 50, 0)), Bound::Memory);
        // 20 MMIO words = 11 200 cycles of the 11 300 transfer cycles
        assert_eq!(r.classify(&layer(100, 11_300, 50, 20)), Bound::Driver);
        assert_eq!(r.classify(&layer(100, 200, 55_000, 0)), Bound::Overhead);
        // components cover transfer exactly
        let l = layer(100, 11_300, 50, 20);
        let (c, s, d, o) = r.components(&l);
        assert_eq!(c, 100);
        assert_eq!(d, 11_200);
        assert_eq!(s + d, l.transfer_cycles);
        assert_eq!(o, 50);
    }
}
