//! `any::<T>()` — whole-domain generation for primitives.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the whole domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        ((rng.unit_f64() - 0.5) * 2.0e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        (rng.unit_f64() - 0.5) * 2.0e12
    }
}
