//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec`]: a fixed size or a size range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.hi - self.size.lo;
        let len = if span == 0 {
            self.size.lo
        } else {
            self.size.lo + rng.index(span + 1)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
