//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`, `pat in strategy`
//! and `name: Type` parameters), range / `Just` / `prop_oneof!` / tuple /
//! `prop_map` / `collection::vec` strategies, `any::<T>()`, and the
//! `prop_assert*` family. Cases are generated from a deterministic seeded
//! RNG (override with `PROPTEST_SEED`); there is **no shrinking** — a
//! failure reports the case number and seed instead of a minimal input.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything a property test module needs.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn it_holds(x in 0f32..1.0, seed: u64) { prop_assert!(x < 1.0); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let outcome = runner.run_named(
                concat!(module_path!(), "::", stringify!($name)),
                |__pt_rng| {
                    $crate::__proptest_bind! { rng = __pt_rng; $($params)* }
                    let __pt_result: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    __pt_result
                },
            );
            if let ::core::result::Result::Err(message) = outcome {
                panic!("{}", message);
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    (rng = $rng:ident;) => {};
    (rng = $rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), $rng);
    };
    (rng = $rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind! { rng = $rng; $($rest)* }
    };
    (rng = $rng:ident; $name:ident: $ty:ty) => {
        let $name: $ty = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            $rng,
        );
    };
    (rng = $rng:ident; $name:ident: $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            $rng,
        );
        $crate::__proptest_bind! { rng = $rng; $($rest)* }
    };
}

/// Asserts a condition inside a property test (fails the case, not the
/// process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
}

/// Rejects the current case (retried without counting toward the case
/// budget, up to a rejection cap).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
