//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased strategies.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.index(self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
