//! Case generation and the test loop.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Deterministic xoshiro256\*\* generator used for case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty domain");
        (self.next_u64() % n as u64) as usize
    }
}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 4096,
        }
    }
}

/// Failure or rejection of a single case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The case violates a `prop_assume!` precondition.
    Reject(String),
}

impl TestCaseError {
    /// A failing case.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejected case.
    #[must_use]
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Runs the case loop for one property.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Builds a runner.
    #[must_use]
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `config.cases` accepted cases of `f`, seeding deterministically
    /// from `name` (or `PROPTEST_SEED` when set). Returns a human-readable
    /// error on the first failure.
    ///
    /// # Errors
    ///
    /// Returns a message naming the failing case and seed when the property
    /// fails or too many cases are rejected.
    pub fn run_named<F>(&mut self, name: &str, mut f: F) -> Result<(), String>
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base_seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s
                .parse::<u64>()
                .map_err(|_| format!("PROPTEST_SEED must be a u64, got '{s}'"))?,
            Err(_) => {
                let mut h = DefaultHasher::new();
                name.hash(&mut h);
                h.finish() ^ 0x5EED_CAFE_F00D_D00D
            }
        };
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let mut case = 0u64;
        while accepted < self.config.cases {
            let case_seed = base_seed.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            case += 1;
            let mut rng = TestRng::seed_from_u64(case_seed);
            match f(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        return Err(format!(
                            "{name}: too many rejected cases ({rejected}) — \
                             weaken the prop_assume! precondition"
                        ));
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    return Err(format!(
                        "{name}: property failed on case {accepted} \
                         (seed {case_seed:#x}):\n{message}"
                    ));
                }
            }
        }
        Ok(())
    }
}
