//! Batch-norm folding into the aggregation core's `(G, H)` coefficients.
//!
//! Paper Eq. 2: the hardware evaluates
//!
//! ```text
//! y_bn = y·G − H,   G = γ·q_w / √(σ²+ε),   H = μ·G/q_w − β
//! ```
//!
//! where `y` is the *integer* accumulated partial sum (in weight-code units)
//! and `q_w` the weight-quantisation scale, so that `y·q_w` recovers the real
//! convolution output. (The paper writes `y_bn ≡ yG + H`; substituting its
//! own definitions of `G` and `H` shows the shift enters with a minus sign —
//! we keep the definitions and make the sign explicit.)

use sia_fixed::QuantScale;
use sia_nn::BnSpec;

/// The folded per-channel coefficient pair.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BnFold {
    /// Multiplicative term `G` per output channel.
    pub g: Vec<f32>,
    /// Subtractive term `H` per output channel (`y_bn = y·G − H`).
    pub h: Vec<f32>,
}

impl BnFold {
    /// Applies the fold to one integer partial sum for channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn apply(&self, y_codes: f32, c: usize) -> f32 {
        y_codes * self.g[c] - self.h[c]
    }

    /// Identity fold (no batch norm): `G = q_w`, `H = 0` — the partial sum
    /// is simply rescaled from code units to real units.
    #[must_use]
    pub fn identity(channels: usize, q_w: QuantScale) -> Self {
        BnFold {
            g: vec![q_w.scale(); channels],
            h: vec![0.0; channels],
        }
    }
}

/// Folds a batch norm into `(G, H)` given the layer's weight scale `q_w`
/// (paper Eq. 2).
///
/// # Panics
///
/// Panics if any running variance is negative.
#[must_use]
pub fn fold_bn(bn: &BnSpec, q_w: QuantScale) -> BnFold {
    let qw = q_w.scale();
    let channels = bn.gamma.len();
    let mut g = Vec::with_capacity(channels);
    let mut h = Vec::with_capacity(channels);
    for c in 0..channels {
        assert!(bn.var[c] >= 0.0, "negative variance at channel {c}");
        let gc = bn.gamma[c] * qw / (bn.var[c] + bn.eps).sqrt();
        g.push(gc);
        h.push(bn.mean[c] * gc / qw - bn.beta[c]);
    }
    BnFold { g, h }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bn(gamma: f32, beta: f32, mean: f32, var: f32) -> BnSpec {
        BnSpec {
            gamma: vec![gamma],
            beta: vec![beta],
            mean: vec![mean],
            var: vec![var],
            eps: 0.0,
        }
    }

    #[test]
    fn fold_matches_reference_batchnorm() {
        // For any real conv output v = y·q_w, the folded expression must
        // equal γ·(v−μ)/σ + β.
        let spec = bn(1.5, 0.3, 2.0, 4.0);
        let q_w = QuantScale::new(7);
        let fold = fold_bn(&spec, q_w);
        for y_codes in [-100.0f32, -3.0, 0.0, 57.0, 120.0] {
            let v = y_codes * q_w.scale();
            let reference = 1.5 * (v - 2.0) / 2.0 + 0.3;
            let got = fold.apply(y_codes, 0);
            assert!(
                (got - reference).abs() < 1e-5,
                "y={y_codes}: {got} vs {reference}"
            );
        }
    }

    #[test]
    fn paper_equation_terms() {
        let spec = bn(2.0, 1.0, 3.0, 1.0);
        let q_w = QuantScale::new(4); // q_w = 1/16
        let fold = fold_bn(&spec, q_w);
        // G = γ·q_w/σ = 2·(1/16)/1 = 0.125
        assert!((fold.g[0] - 0.125).abs() < 1e-7);
        // H = μ·G/q_w − β = 3·0.125·16 − 1 = 5
        assert!((fold.h[0] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn identity_fold_rescales_only() {
        let fold = BnFold::identity(2, QuantScale::new(3));
        assert_eq!(fold.apply(8.0, 0), 1.0);
        assert_eq!(fold.apply(-16.0, 1), -2.0);
    }

    #[test]
    fn zero_variance_is_stabilised_by_eps() {
        let mut spec = bn(1.0, 0.0, 0.0, 0.0);
        spec.eps = 1e-5;
        let fold = fold_bn(&spec, QuantScale::new(0));
        assert!(fold.g[0].is_finite());
    }

    #[test]
    #[should_panic(expected = "negative variance")]
    fn negative_variance_rejected() {
        let spec = bn(1.0, 0.0, 0.0, -1.0);
        let _ = fold_bn(&spec, QuantScale::new(0));
    }
}
