//! Step 2 of the paper's conversion pipeline (Fig. 1): quantisation.
//!
//! Given a trained FP32 network, this crate
//!
//! 1. replaces every ReLU with an **L-level quantized ReLU** whose per-layer
//!    step size `s^l` is first *calibrated* from activation statistics and
//!    then *trained* (QAT fine-tuning) — [`qrelu`]/[`qat`],
//! 2. quantises all weights to **INT8** with per-layer power-of-two scales
//!    `q_w` — [`weights`],
//! 3. folds batch norm into the `(G, H)` coefficient pair evaluated by the
//!    aggregation core, `G = γ·q_w/√(σ²+ε)`, `H = μ·G/q_w − β` (paper
//!    Eq. 2) — [`bnfold`].
//!
//! The output of this stage is a quantized [`sia_nn::NetworkSpec`] ready for
//! SNN conversion (`sia-snn`), and a model whose *quantized-ANN accuracy* is
//! the red curve of the paper's Figs. 7 and 9.

#![forbid(unsafe_code)]

pub mod bnfold;
pub mod qat;
pub mod qrelu;
pub mod weights;

pub use bnfold::{fold_bn, BnFold};
pub use qat::{quantize_pipeline, QatConfig, QuantizedOutcome};
pub use qrelu::{calibrate_steps, quantize_activations};
pub use weights::{fake_quantize_weights, WeightQuantReport};
