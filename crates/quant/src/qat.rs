//! The full quantisation pipeline: swap, calibrate, QAT fine-tune, weight
//! quantisation.

use crate::qrelu::{calibrate_steps, quantize_activations, sanity_forward};
use crate::weights::{fake_quantize_weights, WeightQuantReport};
use sia_dataset::SynthDataset;
use sia_nn::trainer::{evaluate, train, TrainConfig, TrainReport};
use sia_nn::Model;
use sia_telemetry::Value;

/// Configuration of [`quantize_pipeline`].
#[derive(Clone, Debug)]
pub struct QatConfig {
    /// Quantization levels `L` (the paper uses 8).
    pub levels: usize,
    /// Fraction of the observed max used as the initial step.
    pub calib_fraction: f32,
    /// Calibration batch size.
    pub calib_batch: usize,
    /// Fine-tuning schedule (fewer epochs, lower LR than from-scratch).
    pub finetune: TrainConfig,
}

impl Default for QatConfig {
    fn default() -> Self {
        QatConfig {
            levels: 8,
            calib_fraction: 0.95,
            calib_batch: 32,
            finetune: TrainConfig {
                epochs: 4,
                lr: 0.005,
                lr_decay_epochs: vec![3],
                augment_shift: 1,
                ..TrainConfig::default()
            },
        }
    }
}

/// Everything the pipeline produced, including the accuracies that make up
/// the red curves of Figs. 7 and 9.
#[derive(Clone, Debug)]
pub struct QuantizedOutcome {
    /// Accuracy of the FP32 model before any quantisation (blue line).
    pub fp32_accuracy: f32,
    /// Accuracy right after activation swap + calibration, before QAT.
    pub post_calibration_accuracy: f32,
    /// Accuracy after QAT fine-tuning and weight quantisation (red line).
    pub quantized_accuracy: f32,
    /// Calibrated-then-trained step sizes `s^l` in network order — the
    /// spiking thresholds of step 3.
    pub steps: Vec<f32>,
    /// Weight-quantisation summary.
    pub weight_report: WeightQuantReport,
    /// QAT fine-tuning history.
    pub finetune_report: TrainReport,
}

/// Runs the complete step-2 pipeline on a trained model:
///
/// 1. measure FP32 accuracy,
/// 2. swap ReLU → L-level quantized ReLU,
/// 3. calibrate steps from activation maxima,
/// 4. QAT fine-tune (weights *and* steps), projecting the weights onto
///    their INT8 grids after every epoch so the fine-tune sees — and
///    repairs — the weight-quantisation error instead of eating it as a
///    post-hoc accuracy drop,
///
/// leaving `model` in its final quantized state (ready for
/// `Model::to_spec` → SNN conversion).
pub fn quantize_pipeline(
    model: &mut dyn Model,
    data: &SynthDataset,
    cfg: &QatConfig,
) -> QuantizedOutcome {
    let _span = sia_telemetry::span!("qat.pipeline");
    let fp32_accuracy = evaluate(model, &data.test, cfg.calib_batch);
    quantize_activations(model, cfg.levels);
    let calibrated = {
        let _span = sia_telemetry::span!("calibrate");
        calibrate_steps(model, &data.train, cfg.calib_batch, cfg.calib_fraction)
    };
    emit_steps(0, &calibrated);
    let input = model.to_spec_input_dims();
    sanity_forward(model, input);
    let post_calibration_accuracy = evaluate(model, &data.test, cfg.calib_batch);
    let mut finetune_report = TrainReport::default();
    let mut weight_report = None;
    let mut lr = cfg.finetune.lr;
    for epoch in 1..=cfg.finetune.epochs {
        let _span = sia_telemetry::span!("finetune_epoch");
        if cfg.finetune.lr_decay_epochs.contains(&epoch) {
            lr *= cfg.finetune.lr_decay;
        }
        let one_epoch = TrainConfig {
            epochs: 1,
            lr,
            lr_decay_epochs: vec![],
            ..cfg.finetune.clone()
        };
        let mut round = train(model, data, &one_epoch);
        weight_report = Some(fake_quantize_weights(model));
        if let Some(stats) = round.history.first_mut() {
            stats.epoch = epoch;
        }
        finetune_report.history.extend(round.history);
        let mut steps = Vec::new();
        model.visit_activations(&mut |a| steps.push(a.step()));
        emit_steps(epoch, &steps);
    }
    // a zero-epoch schedule still needs the weights on the INT8 grid
    let weight_report = weight_report.unwrap_or_else(|| fake_quantize_weights(model));
    let quantized_accuracy = evaluate(model, &data.test, cfg.calib_batch);
    sia_telemetry::gauge!("qat.fp32_accuracy", f64::from(fp32_accuracy));
    sia_telemetry::gauge!("qat.quantized_accuracy", f64::from(quantized_accuracy));
    let mut steps = Vec::new();
    model.visit_activations(&mut |a| steps.push(a.step()));
    QuantizedOutcome {
        fp32_accuracy,
        post_calibration_accuracy,
        quantized_accuracy,
        steps,
        weight_report,
        finetune_report,
    }
}

/// Streams the per-layer step-size trajectory `s^l` (epoch 0 = right after
/// calibration) so QAT convergence can be inspected offline.
fn emit_steps(epoch: usize, steps: &[f32]) {
    for (layer, &s) in steps.iter().enumerate() {
        sia_telemetry::emit(
            "qat.step",
            &[
                ("epoch", Value::from(epoch)),
                ("layer", Value::from(layer)),
                ("s", Value::from(s)),
            ],
        );
        sia_telemetry::gauge!(&format!("qat.step.{layer}"), f64::from(s));
    }
}

/// Small extension to read the input dims off a model without exporting a
/// full (and possibly panicking) spec.
trait InputDims {
    fn to_spec_input_dims(&self) -> (usize, usize, usize);
}

impl InputDims for dyn Model + '_ {
    fn to_spec_input_dims(&self) -> (usize, usize, usize) {
        // Specs require quantized activations, which hold at this call site
        // (quantize_activations already ran).
        self.to_spec().input
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_dataset::SynthConfig;
    use sia_nn::resnet::ResNet;
    use sia_nn::trainer::TrainConfig;

    fn quick_data() -> SynthDataset {
        let cfg = SynthConfig {
            image_size: 8,
            noise_std: 0.04,
            seed: 21,
        };
        SynthDataset::generate(&cfg, 80, 40)
    }

    fn quick_cfg() -> QatConfig {
        QatConfig {
            levels: 8,
            calib_fraction: 0.95,
            calib_batch: 16,
            finetune: TrainConfig {
                epochs: 2,
                batch_size: 16,
                lr: 0.01,
                augment_shift: 0,
                lr_decay_epochs: vec![],
                ..TrainConfig::default()
            },
        }
    }

    #[test]
    fn pipeline_produces_spec_ready_model() {
        let data = quick_data();
        let mut net = ResNet::resnet18(2, 8, 10, 8);
        // brief pre-training
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.05,
            augment_shift: 0,
            lr_decay_epochs: vec![],
            ..TrainConfig::default()
        };
        let _ = train(&mut net, &data, &cfg);
        let outcome = quantize_pipeline(&mut net, &data, &quick_cfg());
        assert_eq!(outcome.steps.len(), 17);
        assert!(outcome.steps.iter().all(|&s| s > 0.0));
        assert!(outcome.weight_report.quantized_count > 0);
        // spec now exports without panicking
        let spec = net.to_spec();
        assert_eq!(spec.steps().len(), 17);
        // the headline shape property: quantized accuracy within a modest
        // band of FP32 accuracy (paper: within ~1.5%; slim nets get slack)
        assert!(
            outcome.quantized_accuracy >= outcome.fp32_accuracy - 0.3,
            "fp32 {} vs quantized {}",
            outcome.fp32_accuracy,
            outcome.quantized_accuracy
        );
    }

    #[test]
    fn qat_recovers_calibration_loss() {
        // After QAT the accuracy should be at least what calibration alone
        // achieved (fine-tuning never ends worse on this tiny setup).
        let data = quick_data();
        let mut net = ResNet::resnet18(2, 8, 10, 9);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.05,
            augment_shift: 0,
            lr_decay_epochs: vec![],
            ..TrainConfig::default()
        };
        let _ = train(&mut net, &data, &cfg);
        let outcome = quantize_pipeline(&mut net, &data, &quick_cfg());
        assert!(
            outcome.quantized_accuracy + 1e-6 >= outcome.post_calibration_accuracy - 0.15,
            "QAT regressed: {} → {}",
            outcome.post_calibration_accuracy,
            outcome.quantized_accuracy
        );
    }
}
