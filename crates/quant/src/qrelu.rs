//! ReLU → L-level quantized ReLU swap and step-size calibration.

use sia_dataset::LabelledSet;
use sia_nn::Model;
use sia_tensor::Tensor;

/// Replaces every ReLU in `model` with an L-level quantized clip, keeping
/// whatever step sizes the activations currently hold.
///
/// # Panics
///
/// Panics if `levels == 0`.
pub fn quantize_activations(model: &mut dyn Model, levels: usize) {
    assert!(levels > 0, "need at least one quantization level");
    model.visit_activations(&mut |a| a.make_quantized(levels));
}

/// Calibrates each activation's step `s^l` to `fraction` of the maximum
/// pre-activation value observed over `calib` (run in eval mode). Returns
/// the calibrated steps in network order.
///
/// The clip fraction trades off clipping error (too small) against
/// quantization-resolution error (too large); 0.85–1.0 works well for the
/// L=8 regime the paper targets.
///
/// # Panics
///
/// Panics if `calib` is empty or `fraction <= 0`.
pub fn calibrate_steps(
    model: &mut dyn Model,
    calib: &LabelledSet,
    batch_size: usize,
    fraction: f32,
) -> Vec<f32> {
    assert!(!calib.is_empty(), "calibration set is empty");
    assert!(fraction > 0.0, "clip fraction must be positive");
    model.visit_activations(&mut |a| a.begin_observation());
    for (imgs, _) in calib.batches_sequential(batch_size) {
        let _ = model.forward(&imgs, false);
    }
    let mut steps = Vec::new();
    model.visit_activations(&mut |a| {
        let max = a.end_observation();
        let step = (max * fraction).max(1e-3);
        a.set_step(step);
        steps.push(step);
    });
    steps
}

/// Evaluates accuracy of `model` on a stacked image set (helper shared by
/// the QAT pipeline and the figure benches).
#[must_use]
pub fn eval_set(model: &mut dyn Model, set: &LabelledSet, batch_size: usize) -> f32 {
    sia_nn::trainer::evaluate(model, set, batch_size)
}

/// Runs `model` once on a single zero image to make sure the swapped
/// activations still produce finite outputs (cheap smoke check used by the
/// pipeline before spending time on QAT).
pub(crate) fn sanity_forward(model: &mut dyn Model, input: (usize, usize, usize)) {
    let (c, h, w) = input;
    let x = Tensor::zeros(vec![1, c, h, w]);
    let y = model.forward(&x, false);
    assert!(
        y.data().iter().all(|v| v.is_finite()),
        "model produced non-finite logits after activation quantisation"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_dataset::{SynthConfig, SynthDataset};
    use sia_nn::resnet::ResNet;
    use sia_nn::ActKind;

    fn data() -> SynthDataset {
        let cfg = SynthConfig {
            image_size: 8,
            noise_std: 0.05,
            seed: 5,
        };
        SynthDataset::generate(&cfg, 40, 20)
    }

    #[test]
    fn quantize_swaps_every_activation() {
        let mut net = ResNet::resnet18(2, 8, 10, 1);
        quantize_activations(&mut net, 8);
        let mut all_quant = true;
        net.visit_activations(&mut |a| {
            all_quant &= matches!(a.kind(), ActKind::QuantClip { levels: 8 });
        });
        assert!(all_quant);
    }

    #[test]
    fn calibration_sets_positive_steps() {
        let mut net = ResNet::resnet18(2, 8, 10, 2);
        quantize_activations(&mut net, 8);
        let steps = calibrate_steps(&mut net, &data().train, 8, 0.9);
        assert_eq!(steps.len(), 17); // stem + 16 block activations
        assert!(steps.iter().all(|&s| s > 0.0));
        // model-held steps match the returned ones
        let mut held = Vec::new();
        net.visit_activations(&mut |a| held.push(a.step()));
        assert_eq!(steps, held);
    }

    #[test]
    fn calibration_scales_with_fraction() {
        let d = data();
        let run = |fraction: f32| {
            let mut net = ResNet::resnet18(2, 8, 10, 2);
            quantize_activations(&mut net, 8);
            calibrate_steps(&mut net, &d.train, 8, fraction)
        };
        let s1 = run(1.0);
        let s2 = run(0.5);
        // same observations ⇒ exactly half the steps (where above the floor)
        for (a, b) in s1.iter().zip(&s2) {
            if *a > 2.1e-3 {
                assert!((b / a - 0.5).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn quantized_model_accuracy_stays_close() {
        // Train a tiny model briefly, then quantize+calibrate: accuracy must
        // not collapse (shape property of Figs. 7/9: red close to blue).
        let d = data();
        let mut net = ResNet::resnet18(3, 8, 10, 7);
        let cfg = sia_nn::trainer::TrainConfig {
            epochs: 3,
            batch_size: 8,
            lr: 0.05,
            augment_shift: 0,
            lr_decay_epochs: vec![],
            ..Default::default()
        };
        let report = sia_nn::trainer::train(&mut net, &d, &cfg);
        let fp_acc = report.final_test_acc();
        quantize_activations(&mut net, 8);
        let _ = calibrate_steps(&mut net, &d.train, 8, 0.95);
        let q_acc = eval_set(&mut net, &d.test, 8);
        assert!(
            q_acc >= fp_acc - 0.25,
            "quantisation destroyed accuracy: {fp_acc} → {q_acc}"
        );
    }

    #[test]
    #[should_panic(expected = "calibration set is empty")]
    fn empty_calibration_rejected() {
        let mut net = ResNet::resnet18(2, 8, 10, 0);
        let _ = calibrate_steps(&mut net, &LabelledSet::default(), 8, 0.9);
    }
}
