//! INT8 weight quantisation (fake-quantized in the float model, real codes
//! emitted at conversion time).

use sia_fixed::{dequantize_i8, quantize_i8, QuantScale};
use sia_nn::Model;
use std::fmt;

/// Summary of one weight-quantisation pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WeightQuantReport {
    /// Per-tensor chosen scales (network order).
    pub scales: Vec<QuantScale>,
    /// Per-tensor mean absolute rounding error.
    pub mean_abs_error: Vec<f32>,
    /// Total quantized scalar count.
    pub quantized_count: usize,
}

impl fmt::Display for WeightQuantReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "quantized {} weights over {} tensors",
            self.quantized_count,
            self.scales.len()
        )
    }
}

/// Rounds every *weight* tensor of `model` to its INT8 grid in place
/// ("fake quantisation": values stay f32 but sit exactly on `q_w`-grid
/// points, so the float model now computes what the INT8 hardware will).
///
/// Weight tensors are identified as the parameters subject to weight decay —
/// conv and FC weights — leaving BN affine terms, biases and activation
/// steps untouched (those travel to hardware via the 16-bit `G`/`H`
/// coefficients instead, paper Eq. 2).
pub fn fake_quantize_weights(model: &mut dyn Model) -> WeightQuantReport {
    let mut report = WeightQuantReport::default();
    model.visit_params(&mut |p| {
        if !p.decay {
            return;
        }
        let scale = QuantScale::for_max_abs(p.value.max_abs());
        let mut err_sum = 0.0f64;
        let n = p.value.numel();
        for v in p.value.data_mut() {
            let q = quantize_i8(*v, scale);
            let back = dequantize_i8(q, scale);
            err_sum += f64::from((back - *v).abs());
            *v = back;
        }
        report.scales.push(scale);
        report.mean_abs_error.push((err_sum / n as f64) as f32);
        report.quantized_count += n;
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_nn::resnet::ResNet;
    use sia_nn::Model;
    use sia_tensor::Tensor;

    #[test]
    fn weights_land_on_grid_and_bn_untouched() {
        let mut net = ResNet::resnet18(2, 8, 10, 3);
        // capture a BN gamma before quantisation
        let mut gammas_before = Vec::new();
        net.visit_params(&mut |p| {
            if !p.decay {
                gammas_before.push(p.value.data().to_vec());
            }
        });
        let report = fake_quantize_weights(&mut net);
        assert!(report.quantized_count > 0);
        // every decayed param sits on its scale grid
        let mut idx = 0;
        net.visit_params(&mut |p| {
            if p.decay {
                let scale = report.scales[idx].scale();
                for &v in p.value.data() {
                    let ratio = v / scale;
                    assert!(
                        (ratio - ratio.round()).abs() < 1e-4,
                        "value {v} not on grid {scale}"
                    );
                }
                idx += 1;
            }
        });
        // non-decayed params unchanged
        let mut gammas_after = Vec::new();
        net.visit_params(&mut |p| {
            if !p.decay {
                gammas_after.push(p.value.data().to_vec());
            }
        });
        assert_eq!(gammas_before, gammas_after);
    }

    #[test]
    fn quantisation_is_idempotent() {
        let mut net = ResNet::resnet18(2, 8, 10, 4);
        let r1 = fake_quantize_weights(&mut net);
        let mut w1 = Vec::new();
        net.visit_params(&mut |p| w1.extend_from_slice(p.value.data()));
        let r2 = fake_quantize_weights(&mut net);
        let mut w2 = Vec::new();
        net.visit_params(&mut |p| w2.extend_from_slice(p.value.data()));
        assert_eq!(w1, w2);
        assert_eq!(r1.scales, r2.scales);
        assert!(r2.mean_abs_error.iter().all(|&e| e < 1e-6));
    }

    #[test]
    fn rounding_error_is_below_one_lsb() {
        let mut net = ResNet::resnet18(2, 8, 10, 5);
        let report = fake_quantize_weights(&mut net);
        for (err, scale) in report.mean_abs_error.iter().zip(&report.scales) {
            assert!(err <= &scale.scale(), "error {err} above LSB {scale}");
        }
    }

    #[test]
    fn quantized_forward_stays_close_to_float() {
        let mut net = ResNet::resnet18(3, 8, 10, 6);
        let x = Tensor::full(vec![1, 3, 8, 8], 0.5);
        let before = net.forward(&x, false);
        let _ = fake_quantize_weights(&mut net);
        let after = net.forward(&x, false);
        let diff = before.sub(&after).norm() / before.norm().max(1e-6);
        assert!(diff < 0.35, "relative logits drift {diff}");
    }

    #[test]
    fn report_display_is_nonempty() {
        let mut net = ResNet::resnet18(2, 8, 10, 0);
        let report = fake_quantize_weights(&mut net);
        assert!(report.to_string().contains("tensors"));
    }
}
