//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no network access and no
//! vendored registry, so the real `rand` cannot be downloaded. This crate
//! re-implements exactly the API subset the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `seq::SliceRandom::shuffle` — on top of a xoshiro256\*\* generator
//! seeded through SplitMix64. Sequences are deterministic per seed but do
//! **not** match upstream `rand`'s ChaCha-based `StdRng` streams.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

mod uniform;

pub use uniform::{SampleRange, SampleUniform};

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole domain.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Uniform draw in `[0, 1)` with 53 bits of precision.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&v));
            let i = rng.gen_range(-3isize..=3);
            assert!((-3..=3).contains(&i));
            let u = rng.gen_range(0usize..10);
            assert!(u < 10);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn full_domain_gen_covers_signs() {
        let mut rng = StdRng::seed_from_u64(3);
        let vals: Vec<i8> = (0..64).map(|_| rng.gen()).collect();
        assert!(vals.iter().any(|&v| v < 0) && vals.iter().any(|&v| v > 0));
    }
}
