//! Sequence helpers.

use crate::RngCore;

/// Random slice operations.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements left in order");
    }
}
