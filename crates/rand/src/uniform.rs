//! Uniform sampling from ranges.

use crate::{unit_f64, RngCore};
use std::ops::{Range, RangeInclusive};

/// Types with a uniform-over-range sampler.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Range types accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                (lo as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add((rng.next_u64() % (span + 1)) as $wide) as $t
            }
        }
    )*};
}

impl_uniform_int!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let v = lo + (unit_f64(rng) as $t) * (hi - lo);
                // floating rounding can land exactly on `hi`; fold it back
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);
