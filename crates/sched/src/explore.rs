//! The deterministic cooperative scheduler and the schedule explorer.
//!
//! One *virtual thread* runs at a time. Real OS threads execute the
//! explored body, but every [`crate::ModelSync`] primitive funnels into
//! [`RunCore::reach`], which parks the calling thread and hands control to
//! the controller (the thread that called [`Explorer::explore`]). The
//! controller sees the complete set of parked threads, computes which are
//! *enabled* (a `lock` on a held mutex or a `recv` on an empty open
//! channel is not), applies the chosen operation's effect on the virtual
//! object state, and resumes exactly one thread — so the interleaving is
//! a pure function of the controller's decision sequence.
//!
//! Schedules are enumerated two ways:
//!
//! * **DFS with CHESS-style bounded preemptions** ([`Explorer`]): the
//!   decision stack is replayed as a prefix and extended; switching away
//!   from a still-enabled thread costs one preemption, and the bound is
//!   iterated from zero upward, so the first failure found uses a minimal
//!   number of context switches — the schedule-explorer notion of a
//!   minimized counterexample.
//! * **Seeded random walk** ([`RandomWalk`]): uniformly random decisions
//!   from a deterministic xorshift stream, for depth beyond the exhaustive
//!   frontier. The same seed replays the same schedules.
//!
//! Virtual time is frozen: `now()` is always zero and deadlines are
//! strictly in the future, so a `wait_timeout` can only fire at
//! *quiescence* — when no thread is enabled. A lost wakeup therefore
//! cannot hide behind a timeout that happens to rescue it: if the only
//! way forward is a timer, the trace shows the timer firing; if not even
//! a timer is armed, the run reports [`Failure::Deadlock`].

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe, Location};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Default per-schedule step bound (a schedule running longer is reported
/// as [`Failure::Livelock`]).
pub const DEFAULT_MAX_STEPS: usize = 20_000;

/// Default bound on explored schedules before [`Exploration::truncated`]
/// is set.
pub const DEFAULT_MAX_SCHEDULES: usize = 20_000;

/// Panic payload used to unwind virtual threads once a schedule is
/// cancelled (failure found); swallowed by the thread wrappers.
pub(crate) struct CancelToken;

/// One scheduled operation in a failure trace: which virtual thread ran
/// which primitive from which production source line.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// Virtual thread id (0 is the explored body itself).
    pub thread: usize,
    /// Thread name (`main`, `engine-worker-1`, `worker-2`, …).
    pub name: String,
    /// Operation, e.g. `mutex#1.lock` or `cv#0.notify_all`.
    pub op: String,
    /// Production call site, `file:line`.
    pub location: String,
}

impl std::fmt::Display for TraceStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[t{} {}] {:24} at {}",
            self.thread, self.name, self.op, self.location
        )
    }
}

/// What went wrong on a schedule.
#[derive(Clone, Debug)]
pub enum Failure {
    /// Every live virtual thread is blocked and no timeout is armed.
    /// A lost wakeup manifests exactly like this: a consumer asleep
    /// forever while its work sits queued.
    Deadlock {
        /// The blocked threads: `(tid, name, operation blocked on)`.
        blocked: Vec<(usize, String, String)>,
    },
    /// The schedule exceeded the step bound without finishing.
    Livelock {
        /// The bound that was hit.
        steps: usize,
    },
    /// A virtual thread panicked — a failed protocol invariant
    /// (`assert!`) inside the explored body.
    Panic {
        /// The panicking virtual thread.
        thread: usize,
        /// The panic payload, rendered.
        message: String,
    },
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Deadlock { blocked } => {
                write!(f, "deadlock: all {} live threads blocked (", blocked.len())?;
                for (i, (tid, name, op)) in blocked.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    write!(f, "t{tid} {name} on {op}")?;
                }
                f.write_str(")")
            }
            Failure::Livelock { steps } => {
                write!(f, "livelock: no completion within {steps} scheduler steps")
            }
            Failure::Panic { thread, message } => {
                write!(
                    f,
                    "invariant violation: thread t{thread} panicked: {message}"
                )
            }
        }
    }
}

impl Failure {
    /// Short machine-matchable kind tag (`deadlock`/`livelock`/`panic`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Failure::Deadlock { .. } => "deadlock",
            Failure::Livelock { .. } => "livelock",
            Failure::Panic { .. } => "panic",
        }
    }
}

/// A failing schedule: what failed, the full interleaving that got there,
/// and the decision list that reproduces it via [`Explorer::replay`].
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// The failure itself.
    pub failure: Failure,
    /// Every scheduled operation, in order.
    pub trace: Vec<TraceStep>,
    /// Free scheduling choices made, in order — replay input.
    pub decisions: Vec<usize>,
    /// The preemption bound the failing schedule was found under
    /// (`usize::MAX` for random walks); replay must use the same bound.
    pub preemption_bound: usize,
    /// The random-walk seed, when found by [`RandomWalk`].
    pub seed: Option<u64>,
    /// 1-based index of the failing schedule within its exploration.
    pub schedule: usize,
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.failure)?;
        write!(
            f,
            "schedule #{} (preemption bound {}",
            self.schedule,
            if self.preemption_bound == usize::MAX {
                "unbounded".to_string()
            } else {
                self.preemption_bound.to_string()
            }
        )?;
        if let Some(seed) = self.seed {
            write!(f, ", seed {seed:#x}")?;
        }
        writeln!(f, "), decisions {:?}", self.decisions)?;
        writeln!(f, "interleaving ({} steps):", self.trace.len())?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:4}  {step}")?;
        }
        Ok(())
    }
}

/// Summary of one exploration.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Schedules executed.
    pub schedules: usize,
    /// True when the schedule budget ran out before the space was covered.
    pub truncated: bool,
    /// The first failure found, if any (exploration stops at the first).
    pub failure: Option<FailureReport>,
}

impl Exploration {
    /// True when no failure was found (the space may still be truncated —
    /// check [`Exploration::truncated`] for full coverage claims).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }

    /// Panics with the full schedule trace if a failure was found, or if
    /// the exploration was truncated (a pass over a partial space is not
    /// the exhaustive guarantee callers of this helper want).
    ///
    /// # Panics
    ///
    /// See above.
    pub fn assert_pass(&self, what: &str) {
        if let Some(report) = &self.failure {
            panic!("{what}: schedule exploration failed\n{report}");
        }
        assert!(
            !self.truncated,
            "{what}: exploration truncated at {} schedules — raise max_schedules \
             or shrink the scenario",
            self.schedules
        );
    }

    /// Returns the failure report, panicking (with context) on a pass —
    /// the mutant self-tests' accessor.
    ///
    /// # Panics
    ///
    /// Panics when the exploration found no failure.
    #[must_use]
    pub fn expect_failure(&self, what: &str) -> &FailureReport {
        self.failure.as_ref().unwrap_or_else(|| {
            panic!(
                "{what}: expected the checker to catch a failure, \
                 but {} schedules passed",
                self.schedules
            )
        })
    }
}

/// A virtual operation a thread can park on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    /// First scheduling point of a thread, before its body runs.
    Start,
    MutexLock(usize),
    MutexUnlock(usize),
    CvWait {
        cv: usize,
        mutex: usize,
        /// Virtual deadline in µs since the frozen epoch (None = untimed).
        deadline: Option<u64>,
    },
    CvNotifyOne(usize),
    CvNotifyAll(usize),
    AtomicLoad(usize),
    AtomicStore(usize),
    AtomicFetchAdd(usize),
    ChanSend(usize),
    ChanRecv(usize),
    ChanCloseTx(usize),
    Join(usize),
}

impl Op {
    fn describe(self) -> String {
        match self {
            Op::Start => "start".to_string(),
            Op::MutexLock(m) => format!("mutex#{m}.lock"),
            Op::MutexUnlock(m) => format!("mutex#{m}.unlock"),
            Op::CvWait {
                cv, deadline: None, ..
            } => format!("cv#{cv}.wait"),
            Op::CvWait {
                cv,
                deadline: Some(d),
                ..
            } => format!("cv#{cv}.wait_timeout({d}us)"),
            Op::CvNotifyOne(c) => format!("cv#{c}.notify_one"),
            Op::CvNotifyAll(c) => format!("cv#{c}.notify_all"),
            Op::AtomicLoad(a) => format!("atomic#{a}.load"),
            Op::AtomicStore(a) => format!("atomic#{a}.store"),
            Op::AtomicFetchAdd(a) => format!("atomic#{a}.fetch_add"),
            Op::ChanSend(c) => format!("chan#{c}.send"),
            Op::ChanRecv(c) => format!("chan#{c}.recv"),
            Op::ChanCloseTx(c) => format!("chan#{c}.close_tx"),
            Op::Join(t) => format!("join(t{t})"),
        }
    }
}

/// Scheduling state of one virtual thread.
#[derive(Debug)]
enum Status {
    /// Holds the baton: executing body code between scheduling points.
    Running,
    /// Parked at `op`, waiting for a grant.
    Parked {
        op: Op,
        loc: &'static Location<'static>,
    },
    /// Asleep inside a condvar wait (released the mutex, not runnable
    /// until notified or timed out).
    Sleeping {
        cv: usize,
        mutex: usize,
        deadline: Option<u64>,
        loc: &'static Location<'static>,
    },
    /// Body returned (or unwound); a `Join` on this thread is enabled.
    Finished,
}

#[derive(Debug)]
struct Thr {
    status: Status,
    /// Set by the controller to resume the thread out of `reach`.
    resume: bool,
    /// Whether the last `wait_timeout` ended by timeout (set at grant).
    timed_out: bool,
    /// Whether the last channel op observed a closed/receiver-less end.
    chan_closed: bool,
    name: String,
}

#[derive(Debug, Default)]
struct MutexObj {
    owner: Option<usize>,
}

#[derive(Debug, Default)]
struct CvObj {
    /// FIFO wait queue of sleeping tids.
    waiters: VecDeque<usize>,
}

#[derive(Debug)]
struct ChanObj {
    /// Queue length mirror (the values live in the model-side real queue).
    len: usize,
    senders: usize,
    rx_alive: bool,
}

/// Everything a single schedule run shares between its threads and the
/// controller, behind one real mutex.
struct Core {
    threads: Vec<Thr>,
    mutexes: Vec<MutexObj>,
    cvs: Vec<CvObj>,
    chans: Vec<ChanObj>,
    atomics: usize,
    trace: Vec<TraceStep>,
    steps: usize,
    cancelled: bool,
    /// First non-cancel panic on any virtual thread.
    panic_failure: Option<(usize, String)>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Shared schedule-run state: the virtual object arena, thread table and
/// the one real condvar every park/grant handshake goes through.
pub(crate) struct RunCore {
    m: Mutex<Core>,
    cv: Condvar,
}

/// Outcome flags `reach` hands back to the model primitive that parked.
pub(crate) struct Reached {
    pub timed_out: bool,
    pub chan_closed: bool,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<RunCore>, usize)>> = const { RefCell::new(None) };
}

/// The current virtual-thread context, if any (Drop impls must tolerate
/// running outside an exploration, e.g. after a cancelled unwind).
pub(crate) fn try_cur() -> Option<(Arc<RunCore>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// The current virtual-thread context; panics outside an exploration.
pub(crate) fn cur() -> (Arc<RunCore>, usize) {
    CTX.with(|c| c.borrow().clone()).unwrap_or_else(|| {
        panic!(
            "sia-sched: a ModelSync primitive was used outside \
             Explorer::explore / RandomWalk::explore"
        )
    })
}

struct CtxGuard(Option<(Arc<RunCore>, usize)>);

fn set_ctx(core: Arc<RunCore>, tid: usize) -> CtxGuard {
    CtxGuard(CTX.with(|c| c.borrow_mut().replace((core, tid))))
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        let prev = self.0.take();
        CTX.with(|c| *c.borrow_mut() = prev);
    }
}

/// Installs (once, globally) a panic hook that silences [`CancelToken`]
/// unwinds — they are control flow, not failures — and delegates
/// everything else to the previously installed hook.
fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CancelToken>().is_none() {
                prev(info);
            }
        }));
    });
}

fn lock_core(core: &RunCore) -> MutexGuard<'_, Core> {
    core.m
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| {
            payload
                .downcast_ref::<&str>()
                .map_or_else(|| "opaque panic payload".to_string(), ToString::to_string)
        })
}

impl RunCore {
    fn new() -> Arc<RunCore> {
        Arc::new(RunCore {
            m: Mutex::new(Core {
                threads: Vec::new(),
                mutexes: Vec::new(),
                cvs: Vec::new(),
                chans: Vec::new(),
                atomics: 0,
                trace: Vec::new(),
                steps: 0,
                cancelled: false,
                panic_failure: None,
                handles: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn alloc_mutex(&self) -> usize {
        let mut g = lock_core(self);
        g.mutexes.push(MutexObj::default());
        g.mutexes.len() - 1
    }

    pub(crate) fn alloc_cv(&self) -> usize {
        let mut g = lock_core(self);
        g.cvs.push(CvObj::default());
        g.cvs.len() - 1
    }

    pub(crate) fn alloc_atomic(&self) -> usize {
        let mut g = lock_core(self);
        g.atomics += 1;
        g.atomics - 1
    }

    pub(crate) fn alloc_chan(&self) -> usize {
        let mut g = lock_core(self);
        g.chans.push(ChanObj {
            len: 0,
            senders: 1,
            rx_alive: true,
        });
        g.chans.len() - 1
    }

    /// Registers a new virtual thread, parked at [`Op::Start`]. Called by
    /// the spawner while it holds the baton, so the controller's candidate
    /// set grows deterministically.
    pub(crate) fn register_thread(&self, name: &str, loc: &'static Location<'static>) -> usize {
        let mut g = lock_core(self);
        g.threads.push(Thr {
            status: Status::Parked { op: Op::Start, loc },
            resume: false,
            timed_out: false,
            chan_closed: false,
            name: name.to_string(),
        });
        g.threads.len() - 1
    }

    /// Spawns the real thread backing virtual thread `tid`.
    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        tid: usize,
        body: Box<dyn FnOnce() + Send>,
    ) -> std::thread::JoinHandle<()> {
        let core = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("sia-sched-t{tid}"))
            .spawn(move || thread_main(&core, tid, body))
            .unwrap_or_else(|e| panic!("sia-sched: spawning virtual thread: {e}"));
        // a second handle cannot be cloned; keep it for the end-of-run join
        handle
    }

    pub(crate) fn store_handle(&self, handle: std::thread::JoinHandle<()>) {
        lock_core(self).handles.push(handle);
    }

    /// Marks a receiver dropped (silent effect: enabledness of pending
    /// sends changes, but receiver drop itself is not a scheduling point).
    pub(crate) fn chan_rx_drop(&self, chan: usize) {
        lock_core(self).chans[chan].rx_alive = false;
    }

    /// Parks the calling virtual thread at `op` and blocks until the
    /// controller grants it. The heart of the cooperative scheduler.
    pub(crate) fn reach(&self, tid: usize, op: Op, loc: &'static Location<'static>) -> Reached {
        let mut g = lock_core(self);
        if g.cancelled {
            return cancelled_reach(g, op);
        }
        g.threads[tid].status = Status::Parked { op, loc };
        self.cv.notify_all();
        loop {
            if g.cancelled {
                return cancelled_reach(g, op);
            }
            if g.threads[tid].resume {
                break;
            }
            g = self
                .cv
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let t = &mut g.threads[tid];
        t.resume = false;
        Reached {
            timed_out: std::mem::take(&mut t.timed_out),
            chan_closed: std::mem::take(&mut t.chan_closed),
        }
    }

    /// Marks the virtual thread finished and wakes the controller.
    fn finish(&self, tid: usize) {
        let mut g = lock_core(self);
        g.threads[tid].status = Status::Finished;
        self.cv.notify_all();
    }

    /// Records a production panic as the run's failure and cancels every
    /// other thread.
    pub(crate) fn record_panic(&self, tid: usize, payload: &(dyn std::any::Any + Send)) {
        let mut g = lock_core(self);
        if g.panic_failure.is_none() && !g.cancelled {
            g.panic_failure = Some((tid, panic_message(payload)));
        }
        cancel_locked(&mut g);
        self.cv.notify_all();
    }
}

/// Cancels a run in progress: wakes every parked thread so it can unwind.
fn cancel_locked(g: &mut Core) {
    g.cancelled = true;
    for t in &mut g.threads {
        t.resume = true;
    }
}

/// `reach` semantics once the run is cancelled: never block, keep Drop
/// paths consistent, and unwind threads that would otherwise wait forever.
fn cancelled_reach(mut g: MutexGuard<'_, Core>, op: Op) -> Reached {
    match op {
        // Drop-path effects still apply so other cancelled threads'
        // channel reads terminate
        Op::ChanCloseTx(c) => {
            g.chans[c].senders = g.chans[c].senders.saturating_sub(1);
        }
        Op::ChanRecv(_) => {
            // report "closed" so `while let` worker loops exit cleanly
            return Reached {
                timed_out: true,
                chan_closed: true,
            };
        }
        _ => {}
    }
    // Blocking ops would wait forever; atomics would let a spin loop
    // (`while flag.load() != 1 {}`) run hot forever. Both must unwind.
    // Unlock/notify/close stay silent: they run on Drop paths that must
    // complete for the unwind itself to make progress.
    let must_unwind = matches!(
        op,
        Op::MutexLock(_)
            | Op::CvWait { .. }
            | Op::Join(_)
            | Op::AtomicLoad(_)
            | Op::AtomicStore(_)
            | Op::AtomicFetchAdd(_)
    );
    if must_unwind && !std::thread::panicking() {
        drop(g);
        std::panic::panic_any(CancelToken);
    }
    Reached {
        timed_out: true,
        chan_closed: true,
    }
}

/// Real-thread entry point for a virtual thread: wait for the start
/// grant, run the body, report panics, mark finished.
fn thread_main(core: &Arc<RunCore>, tid: usize, body: Box<dyn FnOnce() + Send>) {
    let _ctx = set_ctx(Arc::clone(core), tid);
    if wait_for_start(core, tid) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
            if payload.downcast_ref::<CancelToken>().is_none() {
                core.record_panic(tid, payload.as_ref());
            }
        }
    }
    core.finish(tid);
}

/// Scoped variant of [`thread_main`] for `run_threads` children (the body
/// borrows from the caller's stack, so it cannot be boxed `'static`).
pub(crate) fn scoped_thread_main<F: FnOnce()>(core: &Arc<RunCore>, tid: usize, body: F) {
    let _ctx = set_ctx(Arc::clone(core), tid);
    if wait_for_start(core, tid) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
            if payload.downcast_ref::<CancelToken>().is_none() {
                core.record_panic(tid, payload.as_ref());
            }
        }
    }
    core.finish(tid);
}

/// Blocks until the controller grants [`Op::Start`]; false = cancelled
/// before ever starting (skip the body).
fn wait_for_start(core: &RunCore, tid: usize) -> bool {
    let mut g = lock_core(core);
    loop {
        if g.cancelled {
            return false;
        }
        if g.threads[tid].resume {
            g.threads[tid].resume = false;
            return true;
        }
        g = core
            .cv
            .wait(g)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

/// One free scheduling choice in a DFS prefix.
#[derive(Clone, Copy, Debug)]
struct Decision {
    chosen: usize,
    n: usize,
}

enum Mode<'a> {
    /// Replay `prefix`, then extend with first-choice decisions.
    Dfs { prefix: &'a mut Vec<Decision> },
    /// Follow a recorded decision list exactly.
    Replay { decisions: &'a [usize] },
    /// Uniform choices from a xorshift stream.
    Random { state: &'a mut u64 },
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

struct ScheduleOutcome {
    failure: Option<Failure>,
    trace: Vec<TraceStep>,
    decisions: Vec<usize>,
}

/// True when `op` can be granted in the current virtual state.
fn op_enabled(g: &Core, op: Op) -> bool {
    match op {
        Op::MutexLock(m) => g.mutexes[m].owner.is_none(),
        Op::ChanRecv(c) => g.chans[c].len > 0 || g.chans[c].senders == 0,
        Op::Join(t) => matches!(g.threads[t].status, Status::Finished),
        _ => true,
    }
}

/// Applies `op`'s effect on the virtual state at grant time. Returns
/// whether the granted thread is resumed (everything except `CvWait`,
/// which puts it to sleep instead).
fn apply_effect(g: &mut Core, tid: usize, op: Op) -> bool {
    match op {
        Op::MutexLock(m) => {
            g.mutexes[m].owner = Some(tid);
        }
        Op::MutexUnlock(m) => {
            g.mutexes[m].owner = None;
        }
        Op::CvWait {
            cv,
            mutex,
            deadline,
        } => {
            g.mutexes[mutex].owner = None;
            g.cvs[cv].waiters.push_back(tid);
            let loc = match g.threads[tid].status {
                Status::Parked { loc, .. } => loc,
                _ => Location::caller(),
            };
            g.threads[tid].status = Status::Sleeping {
                cv,
                mutex,
                deadline,
                loc,
            };
            return false;
        }
        Op::CvNotifyOne(c) => {
            if let Some(w) = g.cvs[c].waiters.pop_front() {
                wake_sleeper(g, w, false);
            }
        }
        Op::CvNotifyAll(c) => {
            while let Some(w) = g.cvs[c].waiters.pop_front() {
                wake_sleeper(g, w, false);
            }
        }
        Op::ChanSend(c) => {
            if g.chans[c].rx_alive {
                g.chans[c].len += 1;
                g.threads[tid].chan_closed = false;
            } else {
                g.threads[tid].chan_closed = true;
            }
        }
        Op::ChanRecv(c) => {
            if g.chans[c].len > 0 {
                g.chans[c].len -= 1;
                g.threads[tid].chan_closed = false;
            } else {
                // enabled with an empty queue only when every sender is gone
                g.threads[tid].chan_closed = true;
            }
        }
        Op::ChanCloseTx(c) => {
            g.chans[c].senders = g.chans[c].senders.saturating_sub(1);
        }
        Op::Start
        | Op::AtomicLoad(_)
        | Op::AtomicStore(_)
        | Op::AtomicFetchAdd(_)
        | Op::Join(_) => {}
    }
    true
}

/// Converts a sleeping cv waiter into a parked mutex-reacquire.
fn wake_sleeper(g: &mut Core, tid: usize, timed_out: bool) {
    let (mutex, loc) = match g.threads[tid].status {
        Status::Sleeping { mutex, loc, .. } => (mutex, loc),
        ref other => panic!("sia-sched: waking t{tid} in state {other:?}"),
    };
    g.threads[tid].timed_out = timed_out;
    g.threads[tid].status = Status::Parked {
        op: Op::MutexLock(mutex),
        loc,
    };
}

/// Runs one complete schedule of `body` under `mode`, returning the
/// outcome plus the free decisions actually taken.
fn run_schedule<F>(
    body: &Arc<F>,
    mut mode: Mode<'_>,
    bound: usize,
    max_steps: usize,
) -> ScheduleOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let core = RunCore::new();
    let main_loc = Location::caller();
    let tid0 = core.register_thread("main", main_loc);
    let b = Arc::clone(body);
    let handle = core.spawn_thread(tid0, Box::new(move || b()));
    core.store_handle(handle);

    let mut decisions: Vec<usize> = Vec::new();
    let mut depth = 0usize;
    let mut last_ran: Option<usize> = None;
    let mut preemptions = 0usize;
    let mut failure: Option<Failure> = None;

    let mut g = lock_core(&core);
    'schedule: loop {
        // wait until the baton is back: no thread running
        while g
            .threads
            .iter()
            .any(|t| matches!(t.status, Status::Running))
            && g.panic_failure.is_none()
        {
            g = core
                .cv
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if let Some((tid, message)) = g.panic_failure.take() {
            failure = Some(Failure::Panic {
                thread: tid,
                message,
            });
            break 'schedule;
        }
        if g.threads
            .iter()
            .all(|t| matches!(t.status, Status::Finished))
        {
            break 'schedule;
        }
        if g.steps >= max_steps {
            failure = Some(Failure::Livelock { steps: max_steps });
            break 'schedule;
        }

        // candidates: parked AND enabled, in tid order (determinism)
        let candidates: Vec<usize> = (0..g.threads.len())
            .filter(|&t| match g.threads[t].status {
                Status::Parked { op, .. } => op_enabled(&g, op),
                _ => false,
            })
            .collect();

        if candidates.is_empty() {
            // quiescence: fire the earliest armed timeout, else deadlock
            let earliest = (0..g.threads.len())
                .filter_map(|t| match g.threads[t].status {
                    Status::Sleeping {
                        deadline: Some(d), ..
                    } => Some((d, t)),
                    _ => None,
                })
                .min();
            if let Some((_, t)) = earliest {
                let (cv, loc) = match g.threads[t].status {
                    Status::Sleeping { cv, loc, .. } => (cv, loc),
                    _ => unreachable!(),
                };
                g.cvs[cv].waiters.retain(|&w| w != t);
                wake_sleeper(&mut g, t, true);
                let name = g.threads[t].name.clone();
                g.trace.push(TraceStep {
                    thread: t,
                    name,
                    op: format!("cv#{cv}.timeout-fires"),
                    location: format!("{}:{}", loc.file(), loc.line()),
                });
                g.steps += 1;
                last_ran = None; // a timer fired; the next switch is free
                continue 'schedule;
            }
            let blocked: Vec<(usize, String, String)> = (0..g.threads.len())
                .filter_map(|t| match g.threads[t].status {
                    Status::Parked { op, .. } => {
                        Some((t, g.threads[t].name.clone(), op.describe()))
                    }
                    Status::Sleeping { cv, .. } => {
                        Some((t, g.threads[t].name.clone(), format!("cv#{cv}.wait")))
                    }
                    _ => None,
                })
                .collect();
            failure = Some(Failure::Deadlock { blocked });
            break 'schedule;
        }

        // CHESS preemption bound: once spent, stick with the last thread
        // while it remains enabled
        let forced = if preemptions >= bound {
            last_ran.filter(|lr| candidates.contains(lr))
        } else {
            None
        };
        let tid = if let Some(lr) = forced {
            lr
        } else if candidates.len() == 1 {
            candidates[0]
        } else {
            let n = candidates.len();
            let idx = match &mut mode {
                Mode::Dfs { prefix } => {
                    let idx = if depth < prefix.len() {
                        let d = prefix[depth];
                        assert!(
                            d.n == n,
                            "sia-sched: non-deterministic candidate count during DFS replay \
                             ({} then {n}) — the explored body must be deterministic",
                            d.n
                        );
                        d.chosen
                    } else {
                        prefix.push(Decision { chosen: 0, n });
                        0
                    };
                    depth += 1;
                    idx
                }
                Mode::Replay { decisions } => {
                    let idx = decisions.get(depth).copied().unwrap_or(0).min(n - 1);
                    depth += 1;
                    idx
                }
                Mode::Random { state } => (xorshift(state) % n as u64) as usize,
            };
            decisions.push(idx);
            candidates[idx]
        };
        if let Some(lr) = last_ran {
            if tid != lr && candidates.contains(&lr) {
                preemptions += 1;
            }
        }
        last_ran = Some(tid);

        let (op, loc) = match g.threads[tid].status {
            Status::Parked { op, loc } => (op, loc),
            ref other => panic!("sia-sched: granting t{tid} in state {other:?}"),
        };
        let name = g.threads[tid].name.clone();
        g.trace.push(TraceStep {
            thread: tid,
            name,
            op: op.describe(),
            location: format!("{}:{}", loc.file(), loc.line()),
        });
        g.steps += 1;
        if apply_effect(&mut g, tid, op) {
            g.threads[tid].status = Status::Running;
            g.threads[tid].resume = true;
            core.cv.notify_all();
        }
        // a CvWait grant leaves the baton here: loop for the next decision
    }

    let trace = std::mem::take(&mut g.trace);
    if failure.is_some() {
        cancel_locked(&mut g);
        core.cv.notify_all();
    }
    let handles = std::mem::take(&mut g.handles);
    drop(g);
    for handle in handles {
        let _ = handle.join();
    }
    // threads spawned after the failure snapshot still land in handles
    let late = std::mem::take(&mut lock_core(&core).handles);
    for handle in late {
        let _ = handle.join();
    }
    ScheduleOutcome {
        failure,
        trace,
        decisions,
    }
}

/// Exhaustive DFS schedule explorer with an iterated preemption bound.
///
/// `explore` enumerates every interleaving reachable with 0 preemptions,
/// then 1, … up to the configured bound, stopping at the first failure —
/// which therefore carries a minimal number of context switches.
#[derive(Clone, Copy, Debug)]
pub struct Explorer {
    max_preemptions: usize,
    max_steps: usize,
    max_schedules: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer::new()
    }
}

impl Explorer {
    /// An explorer with preemption bound 2, [`DEFAULT_MAX_STEPS`] and
    /// [`DEFAULT_MAX_SCHEDULES`].
    #[must_use]
    pub fn new() -> Self {
        Explorer {
            max_preemptions: 2,
            max_steps: DEFAULT_MAX_STEPS,
            max_schedules: DEFAULT_MAX_SCHEDULES,
        }
    }

    /// Sets the preemption bound (iterated 0..=n).
    #[must_use]
    pub fn preemptions(mut self, n: usize) -> Self {
        self.max_preemptions = n;
        self
    }

    /// Sets the per-schedule step bound.
    #[must_use]
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Sets the schedule budget.
    #[must_use]
    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n;
        self
    }

    /// Explores `body`'s interleavings. The body runs once per schedule
    /// on fresh virtual state; it must be deterministic apart from the
    /// scheduling the explorer controls.
    pub fn explore<F>(&self, body: F) -> Exploration
    where
        F: Fn() + Send + Sync + 'static,
    {
        let body = Arc::new(body);
        let mut schedules = 0usize;
        for bound in 0..=self.max_preemptions {
            let mut prefix: Vec<Decision> = Vec::new();
            loop {
                if schedules >= self.max_schedules {
                    return Exploration {
                        schedules,
                        truncated: true,
                        failure: None,
                    };
                }
                let run = run_schedule(
                    &body,
                    Mode::Dfs {
                        prefix: &mut prefix,
                    },
                    bound,
                    self.max_steps,
                );
                schedules += 1;
                if let Some(failure) = run.failure {
                    return Exploration {
                        schedules,
                        truncated: false,
                        failure: Some(FailureReport {
                            failure,
                            trace: run.trace,
                            decisions: run.decisions,
                            preemption_bound: bound,
                            seed: None,
                            schedule: schedules,
                        }),
                    };
                }
                // backtrack: drop exhausted tail decisions, advance the last
                while prefix.last().is_some_and(|d| d.chosen + 1 >= d.n) {
                    prefix.pop();
                }
                match prefix.last_mut() {
                    Some(last) => last.chosen += 1,
                    None => break,
                }
            }
        }
        Exploration {
            schedules,
            truncated: false,
            failure: None,
        }
    }

    /// Re-runs the exact interleaving a [`FailureReport`] describes and
    /// returns what that single schedule produced — the reproducibility
    /// check behind every failure this crate reports.
    pub fn replay<F>(&self, body: F, report: &FailureReport) -> Exploration
    where
        F: Fn() + Send + Sync + 'static,
    {
        let body = Arc::new(body);
        let run = run_schedule(
            &body,
            Mode::Replay {
                decisions: &report.decisions,
            },
            report.preemption_bound,
            self.max_steps,
        );
        Exploration {
            schedules: 1,
            truncated: false,
            failure: run.failure.map(|failure| FailureReport {
                failure,
                trace: run.trace,
                decisions: run.decisions,
                preemption_bound: report.preemption_bound,
                seed: report.seed,
                schedule: 1,
            }),
        }
    }
}

/// Seeded random-walk scheduler: probes deep interleavings the bounded
/// DFS frontier cannot reach, deterministically per seed.
#[derive(Clone, Copy, Debug)]
pub struct RandomWalk {
    seed: u64,
    schedules: usize,
    max_steps: usize,
}

impl RandomWalk {
    /// A walk of 256 schedules from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomWalk {
            seed: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
            schedules: 256,
            max_steps: DEFAULT_MAX_STEPS,
        }
    }

    /// Sets how many random schedules to run.
    #[must_use]
    pub fn schedules(mut self, n: usize) -> Self {
        self.schedules = n;
        self
    }

    /// Sets the per-schedule step bound.
    #[must_use]
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Runs the walk; decisions are drawn uniformly from the enabled set.
    /// Failures report both the seed and the decision list, so they replay
    /// through [`Explorer::replay`] like any DFS finding.
    pub fn explore<F>(&self, body: F) -> Exploration
    where
        F: Fn() + Send + Sync + 'static,
    {
        let body = Arc::new(body);
        let mut state = self.seed;
        for i in 0..self.schedules {
            let run = run_schedule(
                &body,
                Mode::Random { state: &mut state },
                usize::MAX,
                self.max_steps,
            );
            if let Some(failure) = run.failure {
                return Exploration {
                    schedules: i + 1,
                    truncated: false,
                    failure: Some(FailureReport {
                        failure,
                        trace: run.trace,
                        decisions: run.decisions,
                        preemption_bound: usize::MAX,
                        seed: Some(self.seed),
                        schedule: i + 1,
                    }),
                };
            }
        }
        Exploration {
            schedules: self.schedules,
            truncated: false,
            failure: None,
        }
    }
}
