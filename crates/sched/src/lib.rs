//! Deterministic schedule-exploring concurrency checker for the pool/serve
//! stack — the `sia check` idea (static verification gating the runtime)
//! extended from the datapath to the scheduler.
//!
//! The repo's headline guarantee — bit-exact, thread-count-independent
//! inference — rests on four hand-rolled concurrency protocols: the
//! `sia_tensor::pool` work-stealing cursor, the `EnginePool` submission
//! queue, the `DynamicBatcher` deadline/size coalescing loop, and the
//! `ModelRegistry` hot-swap path. "Threads 1 vs 4 agree on the schedule
//! the OS happened to pick" is not verification; this crate makes the
//! *space of schedules* the thing under test.
//!
//! Two halves:
//!
//! * [`sync`] — a small sync-primitive abstraction, [`SyncOps`]: `Mutex`,
//!   `Condvar`, atomics, channels, spawn/join and a monotonic clock. The
//!   [`StdSync`] implementation is a zero-cost passthrough to `std` (plus
//!   poison-stripping, which the protocols all did by hand anyway) — it is
//!   what production binaries run. The protocols above are generic over
//!   `S: SyncOps` with `StdSync` as the default type parameter, so no call
//!   site changed.
//! * [`explore`] + [`model`] — [`ModelSync`], an implementation whose
//!   every operation yields to a deterministic cooperative scheduler, and
//!   [`Explorer`], which enumerates thread interleavings by DFS with a
//!   CHESS-style bounded number of preemptions (plus a seeded random-walk
//!   mode for depth beyond the exhaustive frontier). Because the protocols
//!   are generic over the shim, the **production code itself** — not a
//!   hand-maintained model of it — runs under the checker.
//!
//! The checker detects:
//!
//! * **deadlock** — every live virtual thread blocked (this is also how a
//!   *lost wakeup* manifests: a consumer asleep forever while work sits
//!   queued),
//! * **livelock / runaway loops** — via a per-schedule step bound,
//! * **protocol-invariant violations** — any panic (a failed `assert!`)
//!   inside the explored body is caught and attributed to its schedule.
//!
//! On failure the [`FailureReport`] carries the full schedule trace —
//! thread × operation × source location (via `#[track_caller]` on the
//! shim) — and the decision list that reproduces it: replaying the same
//! decisions through [`Explorer::replay`] re-runs the exact interleaving.
//! Exhaustive exploration iterates the preemption bound from zero upward,
//! so the first failure found is one with a *minimal* number of context
//! switches — the closest thing to a minimized counterexample a schedule
//! explorer can offer.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod explore;
pub mod model;
pub mod sync;

pub use explore::{
    Exploration, Explorer, Failure, FailureReport, RandomWalk, TraceStep, DEFAULT_MAX_SCHEDULES,
    DEFAULT_MAX_STEPS,
};
pub use model::ModelSync;
pub use sync::{
    AtomicUsizeApi, CondvarApi, InstantApi, JoinHandleApi, MutexApi, ReceiverApi, SenderApi,
    StdSync, SyncOps,
};
