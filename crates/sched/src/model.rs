//! [`ModelSync`]: the [`SyncOps`] implementation whose every operation
//! yields to the deterministic scheduler in [`crate::explore`].
//!
//! Each virtual primitive pairs a tiny id into the controller's object
//! arena with a *real* `std` primitive holding the actual data. The
//! virtual side is what the controller reasons about (ownership, wait
//! queues, channel lengths, enabledness); the real side is touched only
//! *after* a grant, while the granted thread is the only one running, so
//! it is always uncontended and always consistent with the virtual
//! bookkeeping. That split keeps the checker `unsafe`-free: data flows
//! through ordinary `std` containers, and only scheduling is simulated.

use std::panic::Location;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use crate::explore::{self, Op};
use crate::sync::{
    AtomicUsizeApi, CondvarApi, InstantApi, JoinHandleApi, MutexApi, ReceiverApi, SenderApi,
    SyncOps,
};

/// The checker's [`SyncOps`]: every operation is a scheduling point.
/// Usable only inside [`crate::Explorer::explore`] /
/// [`crate::RandomWalk::explore`] bodies.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModelSync;

fn real_lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A checked mutex: virtual ownership plus a real `std` mutex for data.
#[derive(Debug)]
pub struct VMutex<T> {
    id: usize,
    data: Mutex<T>,
}

/// Guard for [`VMutex`]; unlocking (drop) is itself a scheduling point,
/// attributed to the acquisition site.
pub struct VMutexGuard<'a, T: Send> {
    vm: &'a VMutex<T>,
    inner: Option<MutexGuard<'a, T>>,
    loc: &'static Location<'static>,
}

impl<T: Send> VMutexGuard<'_, T> {
    fn inner(&self) -> &MutexGuard<'_, T> {
        self.inner
            .as_ref()
            .unwrap_or_else(|| panic!("sia-sched internal: guard used after release"))
    }
}

impl<T: Send> std::ops::Deref for VMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner()
    }
}

impl<T: Send> std::ops::DerefMut for VMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .unwrap_or_else(|| panic!("sia-sched internal: guard used after release"))
    }
}

impl<T: Send> Drop for VMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None; // release the real mutex first
        if let Some((core, tid)) = explore::try_cur() {
            core.reach(tid, Op::MutexUnlock(self.vm.id), self.loc);
        }
    }
}

impl<T: Send> MutexApi<T> for VMutex<T> {
    type Guard<'a>
        = VMutexGuard<'a, T>
    where
        T: 'a;

    fn lock(&self) -> VMutexGuard<'_, T> {
        let loc = Location::caller();
        let (core, tid) = explore::cur();
        core.reach(tid, Op::MutexLock(self.id), loc);
        // the grant made this thread the virtual owner, so the real lock
        // below is uncontended (every other would-be holder is parked)
        VMutexGuard {
            vm: self,
            inner: Some(real_lock(&self.data)),
            loc,
        }
    }

    fn into_inner(self) -> T {
        self.data
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A checked condvar: a FIFO wait queue in the controller arena.
#[derive(Debug)]
pub struct VCondvar {
    id: usize,
}

impl VCondvar {
    #[track_caller]
    fn wait_inner<'a, T: Send + 'a>(
        &self,
        mut guard: VMutexGuard<'a, T>,
        timeout: Option<Duration>,
    ) -> (VMutexGuard<'a, T>, bool) {
        let loc = Location::caller();
        let (core, tid) = explore::cur();
        let vm = guard.vm;
        let lock_loc = guard.loc;
        // hand the real mutex back before parking: the controller releases
        // the *virtual* mutex at the grant, and the next virtual owner must
        // find the real one free. The guard itself is forgotten so its
        // Drop does not report a second (spurious) unlock.
        guard.inner = None;
        std::mem::forget(guard);
        // virtual time is frozen at 0, so any timeout is strictly future;
        // it can fire only at quiescence (see crate::explore module docs)
        let deadline = timeout.map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX).max(1));
        let reached = core.reach(
            tid,
            Op::CvWait {
                cv: self.id,
                mutex: vm.id,
                deadline,
            },
            loc,
        );
        // reach returned ⇒ this thread was woken (notify or timeout) and
        // then granted the mutex re-acquire; take the real lock to match
        let inner = real_lock(&vm.data);
        (
            VMutexGuard {
                vm,
                inner: Some(inner),
                loc: lock_loc,
            },
            reached.timed_out,
        )
    }
}

impl CondvarApi<ModelSync> for VCondvar {
    fn wait<'a, T: Send + 'a>(&self, guard: VMutexGuard<'a, T>) -> VMutexGuard<'a, T> {
        self.wait_inner(guard, None).0
    }

    fn wait_timeout<'a, T: Send + 'a>(
        &self,
        guard: VMutexGuard<'a, T>,
        timeout: Duration,
    ) -> (VMutexGuard<'a, T>, bool) {
        self.wait_inner(guard, Some(timeout))
    }

    fn notify_one(&self) {
        let loc = Location::caller();
        let (core, tid) = explore::cur();
        core.reach(tid, Op::CvNotifyOne(self.id), loc);
    }

    fn notify_all(&self) {
        let loc = Location::caller();
        let (core, tid) = explore::cur();
        core.reach(tid, Op::CvNotifyAll(self.id), loc);
    }
}

/// A checked atomic: each access is a scheduling point, so orderings the
/// real hardware could exhibit between *separate* accesses are explored
/// (a single `fetch_add` stays atomic — splitting it into `load`+`store`
/// is exactly the mutant the checker is proven to catch).
#[derive(Debug)]
pub struct VAtomicUsize {
    id: usize,
    v: std::sync::atomic::AtomicUsize,
}

impl AtomicUsizeApi for VAtomicUsize {
    fn load(&self, ord: Ordering) -> usize {
        let loc = Location::caller();
        let (core, tid) = explore::cur();
        core.reach(tid, Op::AtomicLoad(self.id), loc);
        self.v.load(ord)
    }

    fn store(&self, value: usize, ord: Ordering) {
        let loc = Location::caller();
        let (core, tid) = explore::cur();
        core.reach(tid, Op::AtomicStore(self.id), loc);
        self.v.store(value, ord);
    }

    fn fetch_add(&self, value: usize, ord: Ordering) -> usize {
        let loc = Location::caller();
        let (core, tid) = explore::cur();
        core.reach(tid, Op::AtomicFetchAdd(self.id), loc);
        self.v.fetch_add(value, ord)
    }
}

/// The frozen virtual clock: `now()` is always instant 0; `add` always
/// lands strictly in the future (µs resolution, minimum 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct VInstant(u64);

impl InstantApi for VInstant {
    fn add(self, d: Duration) -> Self {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX).max(1);
        VInstant(self.0.saturating_add(us))
    }

    fn duration_since(self, earlier: Self) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }
}

#[derive(Debug)]
struct VChan<T> {
    id: usize,
    q: Mutex<std::collections::VecDeque<T>>,
}

/// Sending half of a checked channel. Dropping it is a scheduling point
/// (`close_tx`): receivers parked on an empty queue become enabled and
/// observe disconnection, exactly like `std::sync::mpsc`.
#[derive(Debug)]
pub struct VSender<T: Send> {
    chan: Arc<VChan<T>>,
}

impl<T: Send> SenderApi<T> for VSender<T> {
    fn send(&self, value: T) -> bool {
        let loc = Location::caller();
        let (core, tid) = explore::cur();
        let reached = core.reach(tid, Op::ChanSend(self.chan.id), loc);
        if reached.chan_closed {
            return false;
        }
        real_lock(&self.chan.q).push_back(value);
        true
    }
}

impl<T: Send> Drop for VSender<T> {
    fn drop(&mut self) {
        if let Some((core, tid)) = explore::try_cur() {
            core.reach(tid, Op::ChanCloseTx(self.chan.id), Location::caller());
        }
    }
}

/// Receiving half of a checked channel.
#[derive(Debug)]
pub struct VReceiver<T: Send> {
    chan: Arc<VChan<T>>,
}

impl<T: Send> ReceiverApi<T> for VReceiver<T> {
    fn recv(&self) -> Option<T> {
        let loc = Location::caller();
        let (core, tid) = explore::cur();
        let reached = core.reach(tid, Op::ChanRecv(self.chan.id), loc);
        if reached.chan_closed {
            return None;
        }
        Some(
            real_lock(&self.chan.q)
                .pop_front()
                .unwrap_or_else(|| panic!("sia-sched internal: recv granted on an empty channel")),
        )
    }
}

impl<T: Send> Drop for VReceiver<T> {
    fn drop(&mut self) {
        // not a scheduling point: pending sends simply start reporting
        // disconnection from here on
        if let Some((core, _)) = explore::try_cur() {
            core.chan_rx_drop(self.chan.id);
        }
    }
}

/// Join handle for a checked detached thread; `join` parks until the
/// target virtual thread finishes.
#[derive(Debug)]
pub struct VJoinHandle {
    tid: usize,
}

impl JoinHandleApi for VJoinHandle {
    fn join(self) {
        let loc = Location::caller();
        let (core, tid) = explore::cur();
        core.reach(tid, Op::Join(self.tid), loc);
    }
}

impl SyncOps for ModelSync {
    type Mutex<T: Send> = VMutex<T>;
    type Condvar = VCondvar;
    type AtomicUsize = VAtomicUsize;
    type Instant = VInstant;
    type Sender<T: Send> = VSender<T>;
    type Receiver<T: Send> = VReceiver<T>;
    type JoinHandle = VJoinHandle;

    fn mutex<T: Send>(value: T) -> VMutex<T> {
        let (core, _) = explore::cur();
        VMutex {
            id: core.alloc_mutex(),
            data: Mutex::new(value),
        }
    }

    fn condvar() -> VCondvar {
        let (core, _) = explore::cur();
        VCondvar {
            id: core.alloc_cv(),
        }
    }

    fn atomic_usize(value: usize) -> VAtomicUsize {
        let (core, _) = explore::cur();
        VAtomicUsize {
            id: core.alloc_atomic(),
            v: std::sync::atomic::AtomicUsize::new(value),
        }
    }

    fn now() -> VInstant {
        VInstant(0)
    }

    fn channel<T: Send>() -> (VSender<T>, VReceiver<T>) {
        let (core, _) = explore::cur();
        let chan = Arc::new(VChan {
            id: core.alloc_chan(),
            q: Mutex::new(std::collections::VecDeque::new()),
        });
        (
            VSender {
                chan: Arc::clone(&chan),
            },
            VReceiver { chan },
        )
    }

    fn spawn<F: FnOnce() + Send + 'static>(name: &str, f: F) -> VJoinHandle {
        let loc = Location::caller();
        let (core, _) = explore::cur();
        // registration happens while the spawner holds the baton, so the
        // controller's candidate set grows at a deterministic point; the
        // real thread parks at Op::Start until first granted
        let tid = core.register_thread(name, loc);
        let handle = core.spawn_thread(tid, Box::new(f));
        core.store_handle(handle);
        VJoinHandle { tid }
    }

    fn run_threads<F: Fn(usize) + Sync>(n: usize, f: F) {
        let loc = Location::caller();
        let (core, self_tid) = explore::cur();
        if n <= 1 {
            f(0);
            return;
        }
        let child_tids: Vec<usize> = (1..n)
            .map(|w| core.register_thread(&format!("worker-{w}"), loc))
            .collect();
        let mut body_panic: Option<Box<dyn std::any::Any + Send>> = None;
        std::thread::scope(|scope| {
            for (w, &tid) in (1..n).zip(&child_tids) {
                let core = Arc::clone(&core);
                let f = &f;
                std::thread::Builder::new()
                    .name(format!("sia-sched-t{tid}"))
                    .spawn_scoped(scope, move || {
                        explore::scoped_thread_main(&core, tid, || f(w));
                    })
                    .unwrap_or_else(|e| panic!("sia-sched: spawning scoped thread: {e}"));
            }
            // the caller is logical thread 0, mirroring StdSync::run_threads
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(0))) {
                Ok(()) => {
                    // virtual joins park the caller so children get scheduled;
                    // the scope's real join below is then instantaneous
                    for &tid in &child_tids {
                        core.reach(self_tid, Op::Join(tid), loc);
                    }
                }
                Err(payload) => {
                    if payload.downcast_ref::<explore::CancelToken>().is_none() {
                        core.record_panic(self_tid, payload.as_ref());
                    }
                    body_panic = Some(payload);
                }
            }
        });
        if let Some(payload) = body_panic {
            // the failure (if any) is recorded; unwind quietly so the
            // cancelled schedule tears down like every other thread
            drop(payload);
            std::panic::panic_any(explore::CancelToken);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{Explorer, Failure, RandomWalk};

    /// Two threads each lock A then B — no deadlock, schedules > 1.
    #[test]
    fn consistent_lock_order_passes() {
        let result = Explorer::new().explore(|| {
            let a = Arc::new(ModelSync::mutex(0u32));
            let b = Arc::new(ModelSync::mutex(0u32));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = ModelSync::spawn("t1", move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            h.join();
        });
        result.assert_pass("consistent lock order");
        assert!(result.schedules > 1, "expected multiple schedules");
    }

    /// Classic ABBA inversion — the checker must find the deadlock and
    /// the report must replay to the same failure.
    #[test]
    fn lock_order_inversion_caught_and_replayable() {
        let body = || {
            let a = Arc::new(ModelSync::mutex(0u32));
            let b = Arc::new(ModelSync::mutex(0u32));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = ModelSync::spawn("t1", move || {
                let _gb = b2.lock();
                let _ga = a2.lock();
            });
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            h.join();
        };
        let result = Explorer::new().explore(body);
        let report = result.expect_failure("ABBA");
        assert!(matches!(report.failure, Failure::Deadlock { .. }));
        assert!(!report.trace.is_empty(), "trace must show the interleaving");
        let replay = Explorer::new().replay(body, report);
        let replayed = replay.expect_failure("ABBA replay");
        assert!(matches!(replayed.failure, Failure::Deadlock { .. }));
    }

    /// An invariant violation (assert) is attributed to its schedule.
    #[test]
    fn racy_read_modify_write_caught() {
        let body = || {
            let n = Arc::new(ModelSync::atomic_usize(0));
            let n2 = Arc::clone(&n);
            let h = ModelSync::spawn("t1", move || {
                let v = n2.load(Ordering::SeqCst);
                n2.store(v + 1, Ordering::SeqCst);
            });
            let v = n.load(Ordering::SeqCst);
            n.store(v + 1, Ordering::SeqCst);
            h.join();
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        };
        let report_kind = {
            let result = Explorer::new().explore(body);
            result.expect_failure("lost update").failure.kind()
        };
        assert_eq!(report_kind, "panic");
        // fetch_add has no such window
        Explorer::new()
            .explore(|| {
                let n = Arc::new(ModelSync::atomic_usize(0));
                let n2 = Arc::clone(&n);
                let h = ModelSync::spawn("t1", move || {
                    n2.fetch_add(1, Ordering::SeqCst);
                });
                n.fetch_add(1, Ordering::SeqCst);
                h.join();
                assert_eq!(n.load(Ordering::SeqCst), 2);
            })
            .assert_pass("fetch_add");
    }

    /// Producer/consumer over the checked channel, including disconnect.
    #[test]
    fn channel_send_recv_close() {
        Explorer::new()
            .explore(|| {
                let (tx, rx) = ModelSync::channel::<u32>();
                let h = ModelSync::spawn("producer", move || {
                    assert!(tx.send(1));
                    assert!(tx.send(2));
                });
                assert_eq!(rx.recv(), Some(1));
                assert_eq!(rx.recv(), Some(2));
                assert_eq!(rx.recv(), None, "disconnect must surface as None");
                h.join();
            })
            .assert_pass("channel");
    }

    /// Timed wait with no notifier: the frozen clock fires the timeout at
    /// quiescence instead of deadlocking.
    #[test]
    fn wait_timeout_fires_at_quiescence() {
        Explorer::new()
            .explore(|| {
                let m = ModelSync::mutex(false);
                let cv = ModelSync::condvar();
                let g = m.lock();
                let (_g, timed_out) = cv.wait_timeout(g, Duration::from_millis(1));
                assert!(timed_out, "no notifier exists, so only the timer fires");
            })
            .assert_pass("wait_timeout");
    }

    /// Untimed wait with no notifier is a deadlock (lost-wakeup shape).
    #[test]
    fn lost_wakeup_is_deadlock() {
        let result = Explorer::new().explore(|| {
            let m = ModelSync::mutex(false);
            let cv = ModelSync::condvar();
            let g = m.lock();
            let _g = cv.wait(g);
        });
        let report = result.expect_failure("un-notified wait");
        assert!(matches!(report.failure, Failure::Deadlock { .. }));
    }

    /// run_threads explores all interleavings and propagates failures.
    #[test]
    fn run_threads_schedules_workers() {
        Explorer::new()
            .explore(|| {
                let hits = Arc::new(ModelSync::mutex([false; 3]));
                let h2 = Arc::clone(&hits);
                ModelSync::run_threads(3, move |w| {
                    h2.lock()[w] = true;
                });
                assert_eq!(*hits.lock(), [true; 3], "every worker index must run");
            })
            .assert_pass("run_threads");
    }

    /// The same seed explores the same schedules.
    #[test]
    fn random_walk_is_seed_deterministic() {
        let run = |seed: u64| {
            RandomWalk::new(seed).schedules(16).explore(|| {
                let a = Arc::new(ModelSync::mutex(0u32));
                let b = Arc::new(ModelSync::mutex(0u32));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let h = ModelSync::spawn("t1", move || {
                    let _gb = b2.lock();
                    let _ga = a2.lock();
                });
                {
                    let _ga = a.lock();
                    let _gb = b.lock();
                }
                h.join();
            })
        };
        let (r1, r2) = (run(42), run(42));
        assert_eq!(r1.schedules, r2.schedules);
        match (&r1.failure, &r2.failure) {
            (Some(f1), Some(f2)) => assert_eq!(f1.decisions, f2.decisions),
            (None, None) => {}
            _ => panic!("same seed diverged"),
        }
    }
}
