//! The [`SyncOps`] sync-primitive abstraction and its production
//! implementation, [`StdSync`].
//!
//! Every concurrency protocol in the workspace (`sia_tensor::pool`,
//! `sia_snn::EnginePool`, `sia_serve::DynamicBatcher`,
//! `sia_serve::ModelRegistry`) is generic over `S: SyncOps` with
//! [`StdSync`] as the default type parameter. [`StdSync`] is a
//! passthrough: its mutex *is* `std::sync::Mutex`, its condvar *is*
//! `std::sync::Condvar`, its atomics are `std`'s — monomorphisation
//! compiles the shim away entirely. The one semantic it adds is uniform
//! **poison-stripping** on lock acquisition (`PoisonError::into_inner`),
//! which every protocol previously spelled out by hand at each call site:
//! a panicking thread must never take the whole serving layer down with a
//! poisoned-lock panic cascade.
//!
//! The checker implementation, [`crate::ModelSync`], routes every one of
//! these operations through a deterministic cooperative scheduler instead
//! — see [`crate::explore`].

use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// A mutex that yields plain guards (poison is stripped, never surfaced).
pub trait MutexApi<T: Send>: Send + Sync {
    /// The guard type; dereferences to the protected value.
    type Guard<'a>: std::ops::DerefMut<Target = T>
    where
        Self: 'a,
        T: 'a;

    /// Acquires the lock, blocking the calling thread until available.
    #[track_caller]
    fn lock(&self) -> Self::Guard<'_>;

    /// Consumes the mutex and returns the protected value.
    fn into_inner(self) -> T;
}

/// A condition variable over the matching [`SyncOps::Mutex`] guards.
pub trait CondvarApi<S: SyncOps>: Send + Sync {
    /// Atomically releases the guard and blocks until notified, then
    /// re-acquires and returns the guard. Callers must re-check their
    /// predicate in a loop (spurious wakeups are permitted).
    #[track_caller]
    fn wait<'a, T: Send + 'a>(
        &self,
        guard: <S::Mutex<T> as MutexApi<T>>::Guard<'a>,
    ) -> <S::Mutex<T> as MutexApi<T>>::Guard<'a>
    where
        S::Mutex<T>: 'a;

    /// [`CondvarApi::wait`] with a timeout; the `bool` is true when the
    /// wait timed out rather than being notified.
    #[track_caller]
    fn wait_timeout<'a, T: Send + 'a>(
        &self,
        guard: <S::Mutex<T> as MutexApi<T>>::Guard<'a>,
        timeout: Duration,
    ) -> (<S::Mutex<T> as MutexApi<T>>::Guard<'a>, bool)
    where
        S::Mutex<T>: 'a;

    /// Wakes one waiter.
    #[track_caller]
    fn notify_one(&self);

    /// Wakes every waiter.
    #[track_caller]
    fn notify_all(&self);
}

/// A shared `usize` atomic (the work-stealing cursor's whole vocabulary).
///
/// The `Ordering` argument is passed through to `std` in production; the
/// checker records it in the trace and executes under its sequentialised
/// schedule (which is at least as strong as any ordering requested).
pub trait AtomicUsizeApi: Send + Sync {
    /// Loads the value.
    #[track_caller]
    fn load(&self, ord: Ordering) -> usize;

    /// Stores a value.
    #[track_caller]
    fn store(&self, value: usize, ord: Ordering);

    /// Adds to the value, returning the previous value.
    #[track_caller]
    fn fetch_add(&self, value: usize, ord: Ordering) -> usize;
}

/// A monotonic instant: the subset of `std::time::Instant` the batching
/// deadline logic needs. The checker freezes the clock so deadlines only
/// fire through [`CondvarApi::wait_timeout`] at quiescence.
pub trait InstantApi:
    Copy + Send + Sync + PartialEq + PartialOrd + std::fmt::Debug + 'static
{
    /// This instant shifted `d` into the future.
    #[must_use]
    fn add(self, d: Duration) -> Self;

    /// Time elapsed from `earlier` to `self` (zero if `earlier` is later).
    fn duration_since(self, earlier: Self) -> Duration;
}

/// The sending half of an unbounded channel.
pub trait SenderApi<T: Send>: Send + Sync {
    /// Sends a value; `false` if the receiver is gone (value dropped).
    #[track_caller]
    fn send(&self, value: T) -> bool;
}

/// The receiving half of an unbounded channel.
pub trait ReceiverApi<T: Send>: Send {
    /// Blocks for the next value; `None` once every sender is dropped and
    /// the queue is drained.
    #[track_caller]
    fn recv(&self) -> Option<T>;
}

/// A join handle for a detached (non-scoped) thread.
pub trait JoinHandleApi: Send {
    /// Waits for the thread to finish. A panic on the joined thread has
    /// already been reported through its own channel of effects; `join`
    /// itself never re-raises it.
    #[track_caller]
    fn join(self);
}

/// The sync-primitive vocabulary the workspace's concurrency protocols
/// are written against. See the [module docs](self) for the two
/// implementations and why production code is generic over this.
pub trait SyncOps: Sized + Send + Sync + 'static {
    /// Mutex type.
    type Mutex<T: Send>: MutexApi<T>;
    /// Condvar type, paired with [`SyncOps::Mutex`] guards.
    type Condvar: CondvarApi<Self>;
    /// Shared `usize` atomic.
    type AtomicUsize: AtomicUsizeApi;
    /// Monotonic clock instant.
    type Instant: InstantApi;
    /// Unbounded channel sender.
    type Sender<T: Send>: SenderApi<T>;
    /// Unbounded channel receiver.
    type Receiver<T: Send>: ReceiverApi<T>;
    /// Detached-thread join handle.
    type JoinHandle: JoinHandleApi;

    /// Creates a mutex.
    fn mutex<T: Send>(value: T) -> Self::Mutex<T>;

    /// Creates a condvar.
    fn condvar() -> Self::Condvar;

    /// Creates an atomic.
    fn atomic_usize(value: usize) -> Self::AtomicUsize;

    /// The current instant.
    fn now() -> Self::Instant;

    /// Creates an unbounded channel.
    fn channel<T: Send>() -> (Self::Sender<T>, Self::Receiver<T>);

    /// Spawns a detached named thread.
    #[track_caller]
    fn spawn<F: FnOnce() + Send + 'static>(name: &str, f: F) -> Self::JoinHandle;

    /// Runs `f(0)..f(n-1)` on `n` concurrent logical threads and returns
    /// once all complete. `f(0)` may run on the calling thread; `n <= 1`
    /// runs inline with zero spawn overhead. Panics in any `f` propagate.
    #[track_caller]
    fn run_threads<F: Fn(usize) + Sync>(n: usize, f: F);
}

/// The production [`SyncOps`]: `std` primitives, passed through.
///
/// Zero-cost by construction — the associated types *are* the `std`
/// types, so after monomorphisation a protocol instantiated at `StdSync`
/// compiles to exactly the code it would have been written as directly.
/// Lock acquisition strips poison ([`std::sync::PoisonError::into_inner`])
/// so a panicked worker degrades into an error response, not a panic
/// cascade through every thread that shares the lock.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdSync;

impl<T: Send> MutexApi<T> for std::sync::Mutex<T> {
    type Guard<'a>
        = std::sync::MutexGuard<'a, T>
    where
        T: 'a;

    fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        std::sync::Mutex::lock(self).unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn into_inner(self) -> T {
        std::sync::Mutex::into_inner(self).unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl CondvarApi<StdSync> for std::sync::Condvar {
    fn wait<'a, T: Send + 'a>(
        &self,
        guard: std::sync::MutexGuard<'a, T>,
    ) -> std::sync::MutexGuard<'a, T> {
        std::sync::Condvar::wait(self, guard).unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn wait_timeout<'a, T: Send + 'a>(
        &self,
        guard: std::sync::MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (std::sync::MutexGuard<'a, T>, bool) {
        let (guard, result) = std::sync::Condvar::wait_timeout(self, guard, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (guard, result.timed_out())
    }

    fn notify_one(&self) {
        std::sync::Condvar::notify_one(self);
    }

    fn notify_all(&self) {
        std::sync::Condvar::notify_all(self);
    }
}

impl AtomicUsizeApi for std::sync::atomic::AtomicUsize {
    fn load(&self, ord: Ordering) -> usize {
        std::sync::atomic::AtomicUsize::load(self, ord)
    }

    fn store(&self, value: usize, ord: Ordering) {
        std::sync::atomic::AtomicUsize::store(self, value, ord);
    }

    fn fetch_add(&self, value: usize, ord: Ordering) -> usize {
        std::sync::atomic::AtomicUsize::fetch_add(self, value, ord)
    }
}

impl InstantApi for Instant {
    fn add(self, d: Duration) -> Self {
        self + d
    }

    fn duration_since(self, earlier: Self) -> Duration {
        self.saturating_duration_since(earlier)
    }
}

impl<T: Send> SenderApi<T> for mpsc::Sender<T> {
    fn send(&self, value: T) -> bool {
        mpsc::Sender::send(self, value).is_ok()
    }
}

impl<T: Send> ReceiverApi<T> for mpsc::Receiver<T> {
    fn recv(&self) -> Option<T> {
        mpsc::Receiver::recv(self).ok()
    }
}

impl JoinHandleApi for std::thread::JoinHandle<()> {
    fn join(self) {
        let _ = std::thread::JoinHandle::join(self);
    }
}

impl SyncOps for StdSync {
    type Mutex<T: Send> = std::sync::Mutex<T>;
    type Condvar = std::sync::Condvar;
    type AtomicUsize = std::sync::atomic::AtomicUsize;
    type Instant = Instant;
    type Sender<T: Send> = mpsc::Sender<T>;
    type Receiver<T: Send> = mpsc::Receiver<T>;
    type JoinHandle = std::thread::JoinHandle<()>;

    fn mutex<T: Send>(value: T) -> std::sync::Mutex<T> {
        std::sync::Mutex::new(value)
    }

    fn condvar() -> std::sync::Condvar {
        std::sync::Condvar::new()
    }

    fn atomic_usize(value: usize) -> std::sync::atomic::AtomicUsize {
        std::sync::atomic::AtomicUsize::new(value)
    }

    fn now() -> Instant {
        Instant::now()
    }

    fn channel<T: Send>() -> (mpsc::Sender<T>, mpsc::Receiver<T>) {
        mpsc::channel()
    }

    fn spawn<F: FnOnce() + Send + 'static>(name: &str, f: F) -> std::thread::JoinHandle<()> {
        std::thread::Builder::new()
            .name(name.to_string())
            .spawn(f)
            .unwrap_or_else(|e| panic!("spawning thread '{name}': {e}"))
    }

    fn run_threads<F: Fn(usize) + Sync>(n: usize, f: F) {
        if n <= 1 {
            f(0);
            return;
        }
        std::thread::scope(|scope| {
            for w in 1..n {
                let f = &f;
                scope.spawn(move || f(w));
            }
            // the calling thread is logical thread 0 (one spawn fewer)
            f(0);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn std_mutex_and_condvar_round_trip() {
        let m = StdSync::mutex(0u32);
        // inherent std methods shadow the trait's; call through the trait
        *MutexApi::lock(&m) += 41;
        *MutexApi::lock(&m) += 1;
        assert_eq!(MutexApi::into_inner(m), 42);
    }

    #[test]
    fn std_channel_and_spawn() {
        let (tx, rx) = StdSync::channel::<u32>();
        let handle = StdSync::spawn("sched-test", move || {
            assert!(SenderApi::send(&tx, 7));
        });
        assert_eq!(ReceiverApi::recv(&rx), Some(7));
        assert_eq!(ReceiverApi::recv(&rx), None);
        JoinHandleApi::join(handle);
    }

    #[test]
    fn std_run_threads_runs_every_index() {
        let hits: Vec<std::sync::atomic::AtomicUsize> =
            (0..4).map(|_| StdSync::atomic_usize(0)).collect();
        StdSync::run_threads(4, |w| {
            hits[w].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn std_instant_math() {
        let t0 = StdSync::now();
        let t1 = t0.add(Duration::from_millis(5));
        assert!(t1 > t0);
        assert_eq!(t1.duration_since(t0), Duration::from_millis(5));
        assert_eq!(t0.duration_since(t1), Duration::ZERO);
    }

    #[test]
    fn poison_is_stripped() {
        let m = Arc::new(StdSync::mutex(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // a poisoned std mutex still yields its guard through the shim
        assert_eq!(*MutexApi::lock(&*m), 1);
    }
}
