//! Dynamic request batching with bounded queues and explicit backpressure.
//!
//! [`DynamicBatcher`] sits between the HTTP connection threads and the
//! engine-pool dispatcher: producers [`DynamicBatcher::submit`] one item
//! each, the single consumer calls [`DynamicBatcher::next_batch`], which
//! coalesces whatever arrives within a **batching window** — it returns as
//! soon as `max_batch` items are queued, or `max_delay` after the *first*
//! queued item arrived, whichever comes first. An empty queue blocks the
//! consumer (no spinning).
//!
//! The queue is **bounded**: a `submit` against a full queue fails
//! immediately with [`Overloaded`] instead of growing without limit, so an
//! overloaded server degrades into fast, explicit 503s rather than
//! unbounded memory growth and collapsing tail latency.

use sia_sched::{CondvarApi, InstantApi, MutexApi, StdSync, SyncOps};
use std::collections::VecDeque;
use std::time::Duration;

/// Batching-window and queue-bound parameters.
#[derive(Clone, Copy, Debug)]
pub struct BatcherConfig {
    /// Flush as soon as this many items are queued.
    pub max_batch: usize,
    /// Flush this long after the first queued item arrived, even if the
    /// batch is short.
    pub max_delay: Duration,
    /// Queue bound; a `submit` beyond it is rejected with [`Overloaded`].
    pub capacity: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            max_batch: 16,
            max_delay: Duration::from_micros(2000),
            capacity: 256,
        }
    }
}

/// Backpressure rejection: the bounded queue was full at `submit` time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overloaded {
    /// The queue bound that was hit.
    pub capacity: usize,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request queue full ({} pending)", self.capacity)
    }
}

impl std::error::Error for Overloaded {}

struct State<T, S: SyncOps> {
    queue: VecDeque<(T, S::Instant)>,
    closed: bool,
}

/// A bounded coalescing queue between request producers and one batch
/// consumer. See the module docs for the flush policy.
///
/// Generic over the sync backend ([`StdSync`] in production) so the
/// `sia-sched` model checker can explore this exact lock/condvar protocol
/// rather than a simplified stand-in.
pub struct DynamicBatcher<T: Send, S: SyncOps = StdSync> {
    state: S::Mutex<State<T, S>>,
    cv: S::Condvar,
    cfg: BatcherConfig,
}

impl<T: Send> DynamicBatcher<T> {
    /// Creates a batcher.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `capacity` is zero.
    #[must_use]
    pub fn new(cfg: BatcherConfig) -> Self {
        DynamicBatcher::<T, StdSync>::new_in(cfg)
    }
}

impl<T: Send, S: SyncOps> DynamicBatcher<T, S> {
    /// [`DynamicBatcher::new`] generic over the sync backend.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `capacity` is zero.
    #[must_use]
    pub fn new_in(cfg: BatcherConfig) -> Self {
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        assert!(cfg.capacity > 0, "capacity must be positive");
        DynamicBatcher {
            state: S::mutex(State {
                queue: VecDeque::new(),
                closed: false,
            }),
            cv: S::condvar(),
            cfg,
        }
    }

    /// The configured parameters.
    #[must_use]
    pub fn config(&self) -> BatcherConfig {
        self.cfg
    }

    /// Enqueues one item. Never blocks.
    ///
    /// # Errors
    ///
    /// [`Overloaded`] when the queue is at capacity (or the batcher is
    /// closed — a draining server rejects rather than accepts-and-drops).
    pub fn submit(&self, item: T) -> Result<(), Overloaded> {
        let mut state = self.state.lock();
        if state.closed || state.queue.len() >= self.cfg.capacity {
            sia_telemetry::counter!("serve.batcher.rejected", 1);
            return Err(Overloaded {
                capacity: self.cfg.capacity,
            });
        }
        state.queue.push_back((item, S::now()));
        self.cv.notify_all();
        Ok(())
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until a batch is ready and returns it (oldest first), or
    /// `None` once the batcher is closed and drained — the consumer's
    /// loop-exit signal.
    ///
    /// A batch flushes when it reaches `max_batch` items, when `max_delay`
    /// has elapsed since its oldest item arrived, or immediately on close.
    pub fn next_batch(&self) -> Option<Vec<T>> {
        let mut state = self.state.lock();
        loop {
            // phase 1: wait for the window to open (first item or close)
            while state.queue.is_empty() {
                if state.closed {
                    return None;
                }
                state = self.cv.wait(state);
            }
            // phase 2: the window runs until size, deadline, or close
            let deadline = match state.queue.front() {
                Some((_, at)) => at.add(self.cfg.max_delay),
                // unreachable: phase 1 only exits on a non-empty queue and
                // the lock was never released — but a typed re-loop beats
                // an expect() in the request path
                None => continue,
            };
            loop {
                if state.closed || state.queue.len() >= self.cfg.max_batch {
                    break;
                }
                let now = S::now();
                if now >= deadline {
                    break;
                }
                let (next, timed_out) = self.cv.wait_timeout(state, deadline.duration_since(now));
                state = next;
                if timed_out {
                    break;
                }
            }
            if state.queue.is_empty() {
                // close raced the window with nothing left to flush
                continue;
            }
            let take = state.queue.len().min(self.cfg.max_batch);
            let batch: Vec<T> = state.queue.drain(..take).map(|(item, _)| item).collect();
            sia_telemetry::histogram!("serve.batch.size", batch.len() as u64);
            return Some(batch);
        }
    }

    /// Closes the batcher: pending items still flush (in `max_batch`
    /// chunks), new `submit`s are rejected, and `next_batch` returns
    /// `None` once drained.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    fn batcher(max_batch: usize, delay_us: u64, capacity: usize) -> Arc<DynamicBatcher<u32>> {
        Arc::new(DynamicBatcher::new(BatcherConfig {
            max_batch,
            max_delay: Duration::from_micros(delay_us),
            capacity,
        }))
    }

    #[test]
    fn size_trigger_flushes_a_full_batch_immediately() {
        // a long delay that would dominate the test if the size trigger
        // failed to fire first
        let b = batcher(4, 5_000_000, 64);
        for i in 0..6 {
            b.submit(i).unwrap();
        }
        let t0 = Instant::now();
        let first = b.next_batch().unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "size-triggered flush must not wait for the deadline"
        );
        assert_eq!(
            first,
            vec![0, 1, 2, 3],
            "oldest items first, max_batch of them"
        );
        // the two stragglers flush on the deadline as a short batch
        assert_eq!(b.next_batch().unwrap(), vec![4, 5]);
    }

    #[test]
    fn deadline_trigger_flushes_a_short_batch() {
        let b = batcher(1000, 20_000, 64);
        let t0 = Instant::now();
        b.submit(7).unwrap();
        let batch = b.next_batch().unwrap();
        let waited = t0.elapsed();
        assert_eq!(batch, vec![7]);
        assert!(
            waited >= Duration::from_micros(20_000),
            "flushed {waited:?} before the window closed"
        );
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let b = batcher(8, 1_000_000, 3);
        for i in 0..3 {
            b.submit(i).unwrap();
        }
        assert_eq!(b.submit(99), Err(Overloaded { capacity: 3 }));
        assert_eq!(b.len(), 3, "the rejected item must not be queued");
        // draining reopens capacity
        assert_eq!(b.next_batch().unwrap(), vec![0, 1, 2]);
        b.submit(99).unwrap();
    }

    #[test]
    fn close_drains_pending_then_signals_shutdown() {
        let b = batcher(2, 5_000_000, 64);
        for i in 0..3 {
            b.submit(i).unwrap();
        }
        b.close();
        assert_eq!(b.submit(9), Err(Overloaded { capacity: 64 }));
        assert_eq!(b.next_batch().unwrap(), vec![0, 1]);
        assert_eq!(b.next_batch().unwrap(), vec![2]);
        assert_eq!(b.next_batch(), None);
    }

    #[test]
    fn close_wakes_a_blocked_consumer() {
        let b = batcher(4, 1_000_000, 64);
        let consumer = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || b.next_batch()) // concurrency-allow: test drives real threads
        };
        std::thread::sleep(Duration::from_millis(20));
        b.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_lose_no_items() {
        let b = batcher(8, 500, 10_000);
        std::thread::scope(|scope| {
            for p in 0..4u32 {
                let b = Arc::clone(&b);
                scope.spawn(move || {
                    for i in 0..50 {
                        b.submit(p * 1000 + i).unwrap();
                    }
                });
            }
        });
        b.close();
        let mut seen = Vec::new();
        while let Some(batch) = b.next_batch() {
            assert!(batch.len() <= 8);
            seen.extend(batch);
        }
        seen.sort_unstable();
        let mut expected: Vec<u32> = (0..4u32)
            .flat_map(|p| (0..50).map(move |i| p * 1000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }
}
