//! Minimal zero-dependency HTTP/1.1 framing over blocking streams.
//!
//! Exactly what the serving front end and its load generator need:
//! request parsing with `Content-Length` bodies, keep-alive response
//! writing, and a tiny blocking client. Not a general HTTP stack — no
//! chunked transfer, no TLS, no pipelining beyond serial keep-alive.

use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (prevents a client from ballooning
/// server memory with one `Content-Length`).
pub const MAX_BODY_BYTES: usize = 64 << 20;

/// Largest accepted header block.
const MAX_HEADER_BYTES: usize = 64 << 10;

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Method verb (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request target (path + optional query), as sent.
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (name matched case-insensitively).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`).
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Outcome of one [`read_request`] attempt on a keep-alive connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request arrived.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The read timed out with **no bytes consumed** — the caller may poll
    /// its shutdown flag and retry. A timeout mid-request is an error.
    Idle,
}

/// Reads one HTTP/1.1 request from a buffered stream.
///
/// # Errors
///
/// Malformed request lines, over-long headers/bodies, truncated bodies
/// and mid-request timeouts are I/O errors (the connection should drop).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<ReadOutcome> {
    let mut line = String::new();
    match read_crlf_line(reader, &mut line) {
        Ok(0) => return Ok(ReadOutcome::Closed),
        Ok(_) => {}
        Err(e) if is_timeout(&e) && line.is_empty() => return Ok(ReadOutcome::Idle),
        Err(e) => return Err(e),
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return Err(bad_request(format!("malformed request line {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad_request(format!("unsupported version {version:?}")));
    }
    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        line.clear();
        if read_crlf_line(reader, &mut line)? == 0 {
            return Err(bad_request("connection closed inside headers".to_string()));
        }
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(bad_request("header block too large".to_string()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad_request(format!("malformed header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| bad_request(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(bad_request(format!(
            "body of {content_length} bytes refused"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(ReadOutcome::Request(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Reads one CRLF- (or bare-LF-) terminated line, returning bytes
/// consumed (0 on clean EOF). The terminator is stripped.
fn read_crlf_line(reader: &mut BufReader<TcpStream>, line: &mut String) -> io::Result<usize> {
    let mut raw = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if raw.is_empty() {
                    return Ok(0);
                }
                return Err(bad_request("truncated line".to_string()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                raw.push(byte[0]);
                if raw.len() > MAX_HEADER_BYTES {
                    return Err(bad_request("line too long".to_string()));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                // surface partial progress so the caller can tell idle
                // timeouts from mid-request ones
                *line = String::from_utf8_lossy(&raw).into_owned();
                return Err(e);
            }
        }
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    let consumed = raw.len() + 1;
    *line = String::from_utf8(raw).map_err(|_| bad_request("non-UTF-8 line".to_string()))?;
    Ok(consumed.max(1))
}

fn bad_request(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Writes one response with a `Content-Length` body.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn write_response(
    stream: &mut (impl Write + ?Sized),
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// A blocking keep-alive HTTP client over one connection — the load
/// generator's side of the protocol.
#[derive(Debug)]
pub struct Client {
    stream: BufReader<TcpStream>,
    host: String,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:8080`).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream: BufReader::new(stream),
            host: addr.to_string(),
        })
    }

    /// Sends a `GET` and returns `(status, body)`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and framing failures.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, Vec<u8>)> {
        let head = format!(
            "GET {path} HTTP/1.1\r\nHost: {}\r\nConnection: keep-alive\r\n\r\n",
            self.host
        );
        self.stream.get_mut().write_all(head.as_bytes())?;
        self.read_response()
    }

    /// Sends a `POST` with a JSON body and returns `(status, body)`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and framing failures.
    pub fn post(&mut self, path: &str, body: &[u8]) -> io::Result<(u16, Vec<u8>)> {
        let head = format!(
            "POST {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            self.host,
            body.len()
        );
        self.stream.get_mut().write_all(head.as_bytes())?;
        self.stream.get_mut().write_all(body)?;
        self.stream.get_mut().flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<(u16, Vec<u8>)> {
        let mut line = String::new();
        if read_crlf_line(&mut self.stream, &mut line)? == 0 {
            return Err(bad_request("server closed the connection".to_string()));
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_request(format!("malformed status line {line:?}")))?;
        let mut content_length = 0usize;
        loop {
            line.clear();
            if read_crlf_line(&mut self.stream, &mut line)? == 0 {
                return Err(bad_request("connection closed inside headers".to_string()));
            }
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad_request(format!("bad content-length {value:?}")))?;
                }
            }
        }
        if content_length > MAX_BODY_BYTES {
            return Err(bad_request(format!(
                "body of {content_length} bytes refused"
            )));
        }
        let mut body = vec![0u8; content_length];
        self.stream.read_exact(&mut body)?;
        Ok((status, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// One server exchange over real sockets: accept, parse, respond.
    fn serve_once(
        listener: TcpListener,
        handler: impl FnOnce(Request) -> (u16, Vec<u8>) + Send + 'static,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            // concurrency-allow: test drives real sockets
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream);
            let ReadOutcome::Request(req) = read_request(&mut reader).unwrap() else {
                panic!("expected a request");
            };
            let (status, body) = handler(req);
            write_response(reader.get_mut(), status, "application/json", &body, true).unwrap();
        })
    }

    #[test]
    fn request_round_trips_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = serve_once(listener, |req| {
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/predict");
            assert_eq!(req.header("content-type"), Some("application/json"));
            assert_eq!(req.body, b"{\"images\":[[1,2]]}");
            (200, b"{\"ok\":true}".to_vec())
        });
        let mut client = Client::connect(&addr).unwrap();
        let (status, body) = client.post("/predict", b"{\"images\":[[1,2]]}").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn get_and_error_statuses_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = serve_once(listener, |req| {
            assert_eq!(req.method, "GET");
            assert_eq!(req.path, "/nope");
            assert!(req.body.is_empty());
            (404, b"{\"error\":\"not found\"}".to_vec())
        });
        let mut client = Client::connect(&addr).unwrap();
        let (status, body) = client.get("/nope").unwrap();
        assert_eq!(status, 404);
        assert_eq!(body, b"{\"error\":\"not found\"}");
        server.join().unwrap();
    }

    #[test]
    fn idle_timeout_reports_idle_not_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let client = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_millis(30)))
            .unwrap();
        let mut reader = BufReader::new(stream);
        assert!(matches!(
            read_request(&mut reader).unwrap(),
            ReadOutcome::Idle
        ));
        drop(client);
        assert!(matches!(
            read_request(&mut reader).unwrap(),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn oversized_content_length_is_refused() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let mut client = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        write!(
            client,
            "POST /predict HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .unwrap();
        let mut reader = BufReader::new(stream);
        assert!(read_request(&mut reader).is_err());
    }
}
