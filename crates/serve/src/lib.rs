//! Persistent serving layer over the SIA engine stack.
//!
//! Turns the one-shot evaluation pipeline into a long-lived service, in
//! three pieces layered on `sia_snn::EnginePool`:
//!
//! * [`registry`] — the one loader every `model.sia` consumer shares:
//!   parse, content-hash, and gate on [`sia_check`] static verification;
//!   [`ModelRegistry`] keys loaded images by hash and tracks which one is
//!   serving (hot-swap can only commit a verified model).
//! * [`batcher`] — [`DynamicBatcher`]: bounded request coalescing (≤ B
//!   items or ≤ N µs), rejecting with a typed [`Overloaded`] error under
//!   backpressure instead of growing without limit.
//! * [`server`] — a zero-dependency blocking HTTP/1.1 front end
//!   (`/predict`, `/healthz`, `/metrics`, `/models`, `/shutdown`) whose
//!   predictions are **bit-identical** to `sia eval` on the same model,
//!   backend and timesteps: requests flow through the same engine pool,
//!   per-image independent runs, and index-order reduction.
//!
//! The CLI front door is `sia serve`; `sia bench serve` drives it with a
//! concurrency-sweeping load generator.

#![forbid(unsafe_code)]
// Request paths must degrade into typed errors (HTTP 500/503), never a
// worker-thread panic that strands the connection; tests may unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod batcher;
pub mod http;
pub mod registry;
pub mod server;

pub use batcher::{BatcherConfig, DynamicBatcher, Overloaded};
pub use http::{Client, Request};
pub use registry::{
    check_encoding, content_hash, enforce_static_checks, expects_events, load_bytes, load_file,
    load_for_run, parse_file, Backend, LoadedModel, ModelRegistry,
};
pub use server::{
    images_json, metrics_json, parse_images, parse_predictions, predictions_json, PredictError,
    Prediction, ServeConfig, Server, ServingUnit,
};
