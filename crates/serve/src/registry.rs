//! Deployment-image loading, verification and hot-swap bookkeeping.
//!
//! One loader for every consumer of a `model.sia` image — `sia run`,
//! `sia eval`, `sia check`, `sia bench eval` and the serving front end all
//! route through here instead of each re-implementing read → parse →
//! verify. A [`ModelRegistry`] keys loaded images by **content hash**
//! (FNV-1a 64 over the raw bytes), so re-loading identical bytes is a
//! no-op and `/models` can state exactly which artifact is serving.
//!
//! Hot-swap safety: [`load_bytes`] refuses images whose static
//! verification ([`sia_check::check_network`]) reports error-severity
//! findings — a registry can never swap a known-broken model into the
//! serving path, with the same message `sia run`/`sia eval` print.

use sia_accel::{read_image, SiaConfig};
use sia_sched::{MutexApi, StdSync, SyncOps};
use sia_snn::{SnnItem, SnnNetwork};
use std::sync::Arc;

/// Engine backend selection, shared by `sia eval`, `sia serve` and the
/// serve bench.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Float reference dynamics ([`sia_snn::FloatRunner`]).
    Float,
    /// Integer datapath ([`sia_snn::IntRunner`]).
    Int,
    /// Cycle-level accelerator ([`sia_accel::SiaMachine`]).
    Accel,
}

impl Backend {
    /// The CLI spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Float => "float",
            Backend::Int => "int",
            Backend::Accel => "accel",
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "float" => Ok(Backend::Float),
            "int" => Ok(Backend::Int),
            "accel" => Ok(Backend::Accel),
            other => Err(format!("unknown backend '{other}' (float|int|accel)")),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// FNV-1a 64 over an image's raw bytes — the registry key and the model
/// identity `/healthz` reports.
#[must_use]
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Whether a converted network wants event-stream input (no dense
/// [`SnnItem::InputConv`] front end).
#[must_use]
pub fn expects_events(net: &SnnNetwork) -> bool {
    !matches!(net.items.first(), Some(SnnItem::InputConv(_)))
}

/// The shared encoding guard: rejects feeding dense frames to an
/// event-input model or vice versa, with the one canonical message
/// (`cmd_run`, `cmd_eval` and the serving path all print this).
///
/// # Errors
///
/// Returns the mismatch message when `use_events` disagrees with the
/// network's input stage.
pub fn check_encoding(net: &SnnNetwork, use_events: bool) -> Result<(), String> {
    let event_net = expects_events(net);
    if use_events == event_net {
        return Ok(());
    }
    Err(format!(
        "model expects {} input (retrain with{} --events)",
        if event_net { "event-stream" } else { "dense" },
        if event_net { "" } else { "out" }
    ))
}

/// The gate `run`/`eval`/`serve` enforce: refuse models whose static
/// verification reports error-severity findings.
///
/// # Errors
///
/// Returns the canonical refusal message naming the first error.
pub fn enforce_static_checks(
    net: &SnnNetwork,
    cfg: &SiaConfig,
    timesteps: usize,
) -> Result<(), String> {
    let report = sia_check::check_network(net, cfg, timesteps);
    if report.passed() {
        return Ok(());
    }
    let first = report
        .diagnostics
        .iter()
        .find(|d| d.severity == sia_check::Severity::Error)
        .map_or_else(
            // a non-passing report without an error diagnostic cannot
            // happen today, but the serve path must not panic on it
            || "report failed without an error diagnostic".to_string(),
            ToString::to_string,
        );
    Err(format!(
        "model fails static verification ({} error(s)); first: {first}\n\
         (run `sia check` on this model for the full report)",
        report.error_count()
    ))
}

/// A parsed, verified deployment image, ready to build engines from.
#[derive(Clone, Debug)]
pub struct LoadedModel {
    /// Content hash of the raw image bytes ([`content_hash`]).
    pub hash: u64,
    /// Where the image came from (path, or a caller-supplied label).
    pub source: String,
    /// The converted network, shared with every engine factory.
    pub network: Arc<SnnNetwork>,
    /// The target accelerator configuration baked into the image.
    pub config: SiaConfig,
    /// Whether the network wants event-stream input.
    pub event_input: bool,
    /// The timestep count the image was verified against.
    pub checked_timesteps: usize,
}

impl LoadedModel {
    /// The hash as the 16-hex-digit identity string used in HTTP responses.
    #[must_use]
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.hash)
    }
}

/// Parses an image file without verifying it — the `sia check`/`sia info`
/// half of the shared loader (check must not gate on itself).
///
/// # Errors
///
/// Propagates read and parse failures with the canonical CLI messages.
pub fn parse_file(path: &str) -> Result<(SnnNetwork, SiaConfig), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    read_image(&bytes).map_err(|e| e.to_string())
}

/// Gates parsed parts and assembles the [`LoadedModel`].
fn verified_model(
    bytes: &[u8],
    source: &str,
    network: SnnNetwork,
    config: SiaConfig,
    timesteps: usize,
) -> Result<LoadedModel, String> {
    enforce_static_checks(&network, &config, timesteps)?;
    let event_input = expects_events(&network);
    Ok(LoadedModel {
        hash: content_hash(bytes),
        source: source.to_string(),
        network: Arc::new(network),
        config,
        event_input,
        checked_timesteps: timesteps,
    })
}

/// Parses and verifies one image from raw bytes.
///
/// # Errors
///
/// Returns the parse error, or the [`enforce_static_checks`] refusal when
/// the image fails static verification — an unverifiable image never
/// becomes a [`LoadedModel`].
pub fn load_bytes(bytes: &[u8], source: &str, timesteps: usize) -> Result<LoadedModel, String> {
    let (network, config) = read_image(bytes).map_err(|e| e.to_string())?;
    verified_model(bytes, source, network, config, timesteps)
}

/// Reads, parses and verifies an image file.
///
/// # Errors
///
/// Propagates I/O, parse and verification failures ([`load_bytes`]).
pub fn load_file(path: &str, timesteps: usize) -> Result<LoadedModel, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    load_bytes(&bytes, path, timesteps)
}

/// The `sia run`/`sia eval` loader: read → parse → encoding guard →
/// static-verification gate, in exactly that order, with the canonical
/// error message at each step.
///
/// # Errors
///
/// Propagates I/O, parse, [`check_encoding`] and
/// [`enforce_static_checks`] failures.
pub fn load_for_run(path: &str, use_events: bool, timesteps: usize) -> Result<LoadedModel, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let (network, config) = read_image(&bytes).map_err(|e| e.to_string())?;
    check_encoding(&network, use_events)?;
    verified_model(&bytes, path, network, config, timesteps)
}

/// Loaded models keyed by content hash, with one marked as *serving*.
///
/// [`ModelRegistry::load`] is idempotent per content hash; a hot-swap
/// ([`ModelRegistry::set_serving`]) can only name a hash that passed
/// verification at load time.
/// Generic over the sync backend ([`StdSync`] in production) so the
/// `sia-sched` checker can explore the load/dedup/hot-swap locking.
pub struct ModelRegistry<S: SyncOps = StdSync> {
    inner: S::Mutex<RegistryState>,
    timesteps: usize,
}

struct RegistryState {
    models: Vec<Arc<LoadedModel>>,
    serving: Option<u64>,
}

impl ModelRegistry {
    /// Creates an empty registry; every load verifies against `timesteps`.
    #[must_use]
    pub fn new(timesteps: usize) -> Self {
        ModelRegistry::<StdSync>::new_in(timesteps)
    }
}

impl<S: SyncOps> ModelRegistry<S> {
    /// [`ModelRegistry::new`] generic over the sync backend.
    #[must_use]
    pub fn new_in(timesteps: usize) -> Self {
        ModelRegistry {
            inner: S::mutex(RegistryState {
                models: Vec::new(),
                serving: None,
            }),
            timesteps,
        }
    }

    /// The timestep count loads are verified against.
    #[must_use]
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    /// Loads an image file, dedup-keyed by content hash. The first load
    /// becomes the serving model.
    ///
    /// # Errors
    ///
    /// Propagates [`load_file`] failures; a failed load changes nothing.
    pub fn load(&self, path: &str) -> Result<Arc<LoadedModel>, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
        let hash = content_hash(&bytes);
        {
            let state = self.lock();
            if let Some(existing) = state.models.iter().find(|m| m.hash == hash) {
                return Ok(Arc::clone(existing));
            }
        }
        // parse + verify outside the lock (it can be slow), insert under it
        let model = Arc::new(load_bytes(&bytes, path, self.timesteps)?);
        Ok(self.insert(model))
    }

    /// Inserts an already-verified model under the registry lock,
    /// dedup-keyed by content hash; the first insert becomes the serving
    /// model. Returns the registry's entry (the existing one on a dedup
    /// hit). This is the whole locked section of [`ModelRegistry::load`],
    /// split out so the schedule checker can drive it without touching
    /// the filesystem.
    pub fn insert(&self, model: Arc<LoadedModel>) -> Arc<LoadedModel> {
        let mut state = self.lock();
        if let Some(existing) = state.models.iter().find(|m| m.hash == model.hash) {
            return Arc::clone(existing);
        }
        state.models.push(Arc::clone(&model));
        if state.serving.is_none() {
            state.serving = Some(model.hash);
        }
        sia_telemetry::counter!("serve.models.loaded", 1);
        model
    }

    /// All loaded models, load order.
    #[must_use]
    pub fn list(&self) -> Vec<Arc<LoadedModel>> {
        self.lock().models.clone()
    }

    /// The model currently marked as serving.
    #[must_use]
    pub fn serving(&self) -> Option<Arc<LoadedModel>> {
        let state = self.lock();
        let hash = state.serving?;
        state.models.iter().find(|m| m.hash == hash).cloned()
    }

    /// Marks a loaded model as serving (the hot-swap commit point — the
    /// caller rebuilds its engines from the returned model).
    ///
    /// # Errors
    ///
    /// Returns an error naming the hash when it is not in the registry.
    pub fn set_serving(&self, hash: u64) -> Result<Arc<LoadedModel>, String> {
        let mut state = self.lock();
        let model = state
            .models
            .iter()
            .find(|m| m.hash == hash)
            .cloned()
            .ok_or_else(|| format!("no loaded model with hash {hash:016x}"))?;
        state.serving = Some(hash);
        Ok(model)
    }

    fn lock(&self) -> <S::Mutex<RegistryState> as MutexApi<RegistryState>>::Guard<'_> {
        self.inner.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_accel::write_image;
    use sia_nn::{ActSpec, ConvSpec, LinearSpec, NetworkSpec, SpecItem};
    use sia_snn::{convert, ConvertOptions};
    use sia_tensor::{Conv2dGeom, Tensor};

    fn tiny_image() -> Vec<u8> {
        let geom = Conv2dGeom {
            in_channels: 3,
            out_channels: 4,
            in_h: 8,
            in_w: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let spec = NetworkSpec {
            name: "registry-test".into(),
            input: (3, 8, 8),
            items: vec![
                SpecItem::Conv(ConvSpec {
                    geom,
                    weights: Tensor::from_vec(
                        vec![4, 3, 3, 3],
                        (0..108).map(|i| ((i % 7) as f32 - 3.0) * 0.05).collect(),
                    ),
                    bn: None,
                    act: Some(ActSpec {
                        levels: 8,
                        step: 1.0,
                    }),
                }),
                SpecItem::GlobalAvgPool,
                SpecItem::Linear(LinearSpec {
                    in_features: 4,
                    out_features: 10,
                    weights: Tensor::from_vec(
                        vec![10, 4],
                        (0..40).map(|i| ((i % 5) as f32 - 2.0) * 0.2).collect(),
                    ),
                    bias: vec![0.0; 10],
                }),
            ],
        };
        let net = convert(&spec, &ConvertOptions::default());
        write_image(&net, &sia_accel::SiaConfig::pynq_z2())
    }

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        let image = tiny_image();
        assert_eq!(content_hash(&image), content_hash(&image));
        let mut tweaked = image.clone();
        *tweaked.last_mut().unwrap() ^= 1;
        assert_ne!(content_hash(&image), content_hash(&tweaked));
        // FNV-1a of the empty input is the offset basis
        assert_eq!(content_hash(&[]), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn load_bytes_verifies_and_describes() {
        let image = tiny_image();
        let model = load_bytes(&image, "mem", 8).unwrap();
        assert_eq!(model.hash, content_hash(&image));
        assert_eq!(model.hash_hex().len(), 16);
        assert!(!model.event_input);
        assert_eq!(model.checked_timesteps, 8);
        check_encoding(&model.network, false).unwrap();
        let msg = check_encoding(&model.network, true).unwrap_err();
        assert_eq!(msg, "model expects dense input (retrain without --events)");
    }

    #[test]
    fn garbage_bytes_are_rejected() {
        assert!(load_bytes(b"not an image", "mem", 8).is_err());
    }

    #[test]
    fn registry_dedups_by_content_hash() {
        let dir = std::env::temp_dir().join("sia_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.sia");
        let b = dir.join("b.sia");
        let image = tiny_image();
        std::fs::write(&a, &image).unwrap();
        std::fs::write(&b, &image).unwrap();
        let registry = ModelRegistry::new(8);
        let first = registry.load(a.to_str().unwrap()).unwrap();
        let second = registry.load(b.to_str().unwrap()).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "same bytes, same entry");
        assert_eq!(registry.list().len(), 1);
        assert_eq!(registry.serving().unwrap().hash, first.hash);
        // hot-swap to an unknown hash is refused
        assert!(registry.set_serving(first.hash ^ 1).is_err());
        assert_eq!(registry.set_serving(first.hash).unwrap().hash, first.hash);
    }
}
