//! The serving front end: persistent engines behind an HTTP/1.1 listener.
//!
//! A [`Server`] owns a [`ModelRegistry`] and one *serving unit* — the
//! currently-served model plus its long-lived [`EnginePool`] and
//! [`DynamicBatcher`]. Connection threads parse `/predict` bodies, submit
//! them to the batcher and block for their replies; a single dispatcher
//! thread drains the batcher and feeds coalesced batches to the pool, so
//! engines stay resident across requests and the per-request cost is the
//! inference itself, not setup.
//!
//! Determinism: a predict batch flows through the exact pipeline
//! `sia eval` uses — [`EnginePool::submit`] with the same per-image
//! independent runs and index-order reduction — so served predictions are
//! bit-identical to offline evaluation on the same model, backend and
//! timestep count, for any thread count and any request interleaving.
//!
//! Endpoints (all JSON):
//!
//! * `POST /predict` — `{"images": [[f32; C·H·W], …]}` →
//!   `{"predictions": [class, …], "logits": [[f32; classes], …]}`;
//!   `503` with `{"error": "overloaded", …}` under backpressure.
//! * `GET /healthz` — serving model hash, backend, shapes.
//! * `GET /metrics` — telemetry snapshot: counters, gauges, histogram
//!   summaries (count/mean/p50/p95/p99) including `snn.eval.image_us`.
//! * `GET /models` — registry contents; `POST /models`
//!   (`{"path": "other.sia"}`) loads, verifies and hot-swaps — a model
//!   failing `sia_check` is refused and the old unit keeps serving.
//! * `POST /shutdown` — clean drain-and-exit (the CI gate's stop signal).

use crate::batcher::{BatcherConfig, DynamicBatcher, Overloaded};
use crate::http::{read_request, write_response, ReadOutcome, Request};
use crate::registry::{Backend, LoadedModel, ModelRegistry};
use sia_accel::{compile_for, SiaEngineFactory};
use sia_snn::{
    EnginePool, EvalBatch, EvalEncoding, ExitPolicy, FloatEngineFactory, IntEngineFactory,
    SnnOutput,
};
use sia_telemetry::json::{self, Json};
use sia_tensor::Tensor;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// How long a connection thread blocks in `read` before polling the
/// shutdown flag (keep-alive connections notice shutdown within this).
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Serving parameters (`sia serve`'s knobs).
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Engine backend.
    pub backend: Backend,
    /// Pool worker threads; `0` = one per core.
    pub threads: usize,
    /// Timesteps per image.
    pub timesteps: usize,
    /// Readout burn-in.
    pub burn_in: usize,
    /// Batching window: flush at this many queued requests.
    pub max_batch: usize,
    /// Batching window: flush this many µs after the first queued request.
    pub max_delay_us: u64,
    /// Bounded queue depth; beyond it `/predict` returns 503.
    pub queue_capacity: usize,
    /// Psum kernel policy every pooled engine starts with (measured
    /// calibration or a forced kernel; `Auto` = built-in heuristic).
    pub kernel_policy: sia_snn::KernelPolicy,
    /// Confidence-gated early-exit policy applied per served image
    /// ([`ExitPolicy::Fixed`] = run every timestep, the classic behaviour).
    pub exit: ExitPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            backend: Backend::Int,
            threads: 0,
            timesteps: 8,
            burn_in: 0,
            max_batch: 16,
            max_delay_us: 2000,
            queue_capacity: 256,
            kernel_policy: sia_snn::KernelPolicy::Auto,
            exit: ExitPolicy::Fixed,
        }
    }
}

/// One served prediction.
#[derive(Clone, Debug, PartialEq)]
pub struct Prediction {
    /// Predicted class at the final timestep.
    pub class: usize,
    /// Final-timestep logits.
    pub logits: Vec<f32>,
}

/// Why a predict call failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PredictError {
    /// Backpressure: the bounded request queue was full.
    Overloaded(Overloaded),
    /// The dispatcher or an engine failed.
    Internal(String),
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::Overloaded(o) => o.fmt(f),
            PredictError::Internal(msg) => write!(f, "inference failed: {msg}"),
        }
    }
}

impl std::error::Error for PredictError {}

/// One queued request: its images and the channel its reply goes back on.
struct Pending {
    images: Vec<Tensor>,
    reply: mpsc::Sender<Result<Vec<Prediction>, String>>,
    enqueued: Instant,
}

/// A model bound to live engines: the hot-swappable half of a [`Server`].
///
/// Owns the request batcher; the dispatcher thread owns the engine pool
/// and exits when the batcher closes. Dropping the unit drains and joins.
pub struct ServingUnit {
    /// The model this unit serves.
    pub model: Arc<LoadedModel>,
    batcher: Arc<DynamicBatcher<Pending>>,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
    workers: usize,
    config: ServeConfig,
}

impl ServingUnit {
    /// Builds the engine pool for `model` and starts the dispatcher.
    ///
    /// # Errors
    ///
    /// Fails when the accel backend cannot compile the model.
    pub fn start(model: Arc<LoadedModel>, config: ServeConfig) -> Result<Arc<ServingUnit>, String> {
        let pool = match config.backend {
            Backend::Float => EnginePool::new(
                FloatEngineFactory::new(Arc::clone(&model.network))
                    .with_kernel_policy(config.kernel_policy),
                config.threads,
            ),
            Backend::Int => EnginePool::new(
                IntEngineFactory::new(Arc::clone(&model.network))
                    .with_kernel_policy(config.kernel_policy),
                config.threads,
            ),
            Backend::Accel => {
                let program = compile_for(&model.network, &model.config, config.timesteps)
                    .map_err(|e| e.to_string())?;
                EnginePool::new(
                    SiaEngineFactory::new(program, model.config.clone())
                        .with_kernel_policy(config.kernel_policy),
                    config.threads,
                )
            }
        };
        let params = EvalBatch {
            timesteps: config.timesteps,
            burn_in: config.burn_in,
            encoding: if model.event_input {
                EvalEncoding::Events {
                    value_per_event: 1.0,
                }
            } else {
                EvalEncoding::Dense
            },
            exit: config.exit,
        };
        let batcher = Arc::new(DynamicBatcher::new(BatcherConfig {
            max_batch: config.max_batch,
            max_delay: Duration::from_micros(config.max_delay_us),
            capacity: config.queue_capacity,
        }));
        let workers = pool.workers();
        let dispatcher = {
            let batcher = Arc::clone(&batcher);
            std::thread::spawn(move || dispatch_loop(&pool, &batcher, params)) // concurrency-allow: server lifecycle thread (accept-loop tier)
        };
        Ok(Arc::new(ServingUnit {
            model,
            batcher,
            dispatcher: Mutex::new(Some(dispatcher)), // concurrency-allow: join-handle holder, never contended
            workers,
            config,
        }))
    }

    /// Engine-pool workers behind this unit.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The serving parameters.
    #[must_use]
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Runs `images` through the batched serving path and returns one
    /// [`Prediction`] per image, in request order. Blocks until the batch
    /// window containing this request completes.
    ///
    /// # Errors
    ///
    /// [`PredictError::Overloaded`] under backpressure,
    /// [`PredictError::Internal`] when an engine fails.
    pub fn predict(&self, images: Vec<Tensor>) -> Result<Vec<Prediction>, PredictError> {
        let n = images.len() as u64;
        let (reply, rx) = mpsc::channel();
        let enqueued = Instant::now();
        self.batcher
            .submit(Pending {
                images,
                reply,
                enqueued,
            })
            .map_err(PredictError::Overloaded)?;
        let result = match rx.recv() {
            Ok(Ok(predictions)) => Ok(predictions),
            Ok(Err(msg)) => Err(PredictError::Internal(msg)),
            Err(_) => Err(PredictError::Internal(
                "serving unit shut down mid-request".to_string(),
            )),
        };
        if result.is_ok() {
            sia_telemetry::counter!("serve.requests", 1);
            sia_telemetry::counter!("serve.images", n);
            sia_telemetry::histogram!("serve.request_us", enqueued.elapsed().as_micros() as u64);
        } else {
            sia_telemetry::counter!("serve.errors", 1);
        }
        result
    }

    /// Drains the batcher and joins the dispatcher (idempotent).
    pub fn shutdown(&self) {
        self.batcher.close();
        if let Some(handle) = self
            .dispatcher
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
        {
            let _ = handle.join();
        }
    }
}

impl Drop for ServingUnit {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The dispatcher: drains the batcher, coalesces request images into one
/// pool batch, splits pool results back per request. Exits when the
/// batcher closes.
fn dispatch_loop(pool: &EnginePool, batcher: &DynamicBatcher<Pending>, params: EvalBatch) {
    while let Some(mut batch) = batcher.next_batch() {
        for pending in &batch {
            sia_telemetry::histogram!(
                "serve.queue_wait_us",
                pending.enqueued.elapsed().as_micros() as u64
            );
        }
        let counts: Vec<usize> = batch.iter().map(|p| p.images.len()).collect();
        let images: Vec<Tensor> = batch.iter_mut().flat_map(|p| p.images.drain(..)).collect();
        match pool.submit(images, params) {
            Ok(results) => {
                let mut cursor = 0;
                for (pending, count) in batch.iter().zip(&counts) {
                    let predictions = results[cursor..cursor + count]
                        .iter()
                        .map(|(out, _us): &(SnnOutput, u64)| Prediction {
                            class: out.predicted(),
                            logits: out.logits().to_vec(),
                        })
                        .collect();
                    cursor += count;
                    let _ = pending.reply.send(Ok(predictions));
                }
            }
            Err(e) => {
                // the whole batch shared the failing submit; report to all
                for pending in &batch {
                    let _ = pending.reply.send(Err(e.to_string()));
                }
            }
        }
    }
}

/// The HTTP front end: a bound listener plus the hot-swappable serving
/// unit and the registry behind `/models`.
pub struct Server {
    registry: Arc<ModelRegistry>,
    serving: RwLock<Arc<ServingUnit>>,
    listener: TcpListener,
    port: u16,
    shutdown: AtomicBool,
}

impl Server {
    /// Binds `host:port` (port 0 picks an ephemeral port) and starts the
    /// serving unit for `model`, which must already be in `registry`.
    ///
    /// # Errors
    ///
    /// Fails on bind errors or unit start failures.
    pub fn bind(
        host: &str,
        port: u16,
        registry: Arc<ModelRegistry>,
        model: Arc<LoadedModel>,
        config: ServeConfig,
    ) -> Result<Arc<Server>, String> {
        let listener =
            TcpListener::bind((host, port)).map_err(|e| format!("binding {host}:{port}: {e}"))?;
        let port = listener.local_addr().map_err(|e| e.to_string())?.port();
        let unit = ServingUnit::start(model, config)?;
        Ok(Arc::new(Server {
            registry,
            serving: RwLock::new(unit), // concurrency-allow: reader-heavy hot-swap lock, no condvar protocol
            listener,
            port,
            shutdown: AtomicBool::new(false),
        }))
    }

    /// The bound port (useful with ephemeral binds).
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The currently serving unit.
    #[must_use]
    pub fn serving(&self) -> Arc<ServingUnit> {
        Arc::clone(
            &self
                .serving
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Requests shutdown: the accept loop and every keep-alive connection
    /// exit within one idle-poll interval.
    pub fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // wake the blocking accept with a throwaway connection
        let _ = TcpStream::connect(("127.0.0.1", self.port));
    }

    /// Serves until [`Server::request_shutdown`] (or `POST /shutdown`),
    /// then drains: joins connection threads and the serving unit.
    ///
    /// # Errors
    ///
    /// Returns accept-loop failures other than shutdown.
    pub fn run(self: &Arc<Self>) -> Result<(), String> {
        let mut connections = Vec::new();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    return Err(format!("accept failed: {e}"));
                }
            };
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let server = Arc::clone(self);
            connections.push(std::thread::spawn(move || {
                // concurrency-allow: the accept loop's per-connection threads
                server.handle_connection(stream);
            }));
            // reap finished connection threads so the list stays bounded
            connections.retain(|c| !c.is_finished());
        }
        for c in connections {
            let _ = c.join();
        }
        self.serving().shutdown();
        Ok(())
    }

    /// One keep-alive connection: parse → route → respond, until close,
    /// error, or shutdown.
    fn handle_connection(&self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(IDLE_POLL));
        let mut reader = BufReader::new(stream);
        loop {
            match read_request(&mut reader) {
                Ok(ReadOutcome::Idle) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Ok(ReadOutcome::Closed) => return,
                Ok(ReadOutcome::Request(req)) => {
                    let (status, body) = self.route(&req);
                    let close = req.wants_close() || self.shutdown.load(Ordering::SeqCst);
                    if write_response(
                        reader.get_mut(),
                        status,
                        "application/json",
                        body.as_bytes(),
                        !close,
                    )
                    .is_err()
                        || close
                    {
                        return;
                    }
                }
                Err(e) => {
                    let _ = write_response(
                        reader.get_mut(),
                        400,
                        "application/json",
                        error_json(&format!("bad request: {e}")).as_bytes(),
                        false,
                    );
                    return;
                }
            }
        }
    }

    /// Routes one request to `(status, json_body)`.
    fn route(&self, req: &Request) -> (u16, String) {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/predict") => self.handle_predict(&req.body),
            ("GET", "/healthz") => (200, self.healthz_json()),
            ("GET", "/metrics") => (200, metrics_json(&sia_telemetry::global_snapshot())),
            ("GET", "/models") => (200, self.models_json()),
            ("POST", "/models") => self.handle_swap(&req.body),
            ("POST", "/shutdown") => {
                self.request_shutdown();
                (200, "{\"status\":\"shutting-down\"}".to_string())
            }
            ("GET" | "POST", _) => (404, error_json(&format!("no route {}", req.path))),
            _ => (
                405,
                error_json(&format!("method {} not allowed", req.method)),
            ),
        }
    }

    fn handle_predict(&self, body: &[u8]) -> (u16, String) {
        let unit = self.serving();
        let dims = unit.model.network.input;
        let images = match parse_images(body, dims) {
            Ok(images) => images,
            Err(e) => return (400, error_json(&e)),
        };
        match unit.predict(images) {
            Ok(predictions) => (200, predictions_json(&predictions)),
            Err(PredictError::Overloaded(o)) => (
                503,
                format!(
                    "{{\"error\":\"overloaded\",\"queue_capacity\":{}}}",
                    o.capacity
                ),
            ),
            Err(PredictError::Internal(msg)) => (500, error_json(&msg)),
        }
    }

    fn handle_swap(&self, body: &[u8]) -> (u16, String) {
        let parsed = match std::str::from_utf8(body)
            .map_err(|e| e.to_string())
            .and_then(json::parse)
        {
            Ok(v) => v,
            Err(e) => return (400, error_json(&format!("bad /models body: {e}"))),
        };
        let Some(path) = parsed.get("path").and_then(Json::as_str) else {
            return (400, error_json("expected {\"path\": \"model.sia\"}"));
        };
        // load refuses images that fail static verification, so a broken
        // model can never displace the serving unit
        let model = match self.registry.load(path) {
            Ok(model) => model,
            Err(e) => return (400, error_json(&e)),
        };
        let config = self.serving().config();
        let unit = match ServingUnit::start(Arc::clone(&model), config) {
            Ok(unit) => unit,
            Err(e) => return (400, error_json(&e)),
        };
        if let Err(e) = self.registry.set_serving(model.hash) {
            return (400, error_json(&e));
        }
        let old = {
            let mut serving = self
                .serving
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::replace(&mut *serving, unit)
        };
        // drain the displaced unit after the swap so in-flight requests
        // on it still complete
        old.shutdown();
        sia_telemetry::counter!("serve.models.swapped", 1);
        (
            200,
            format!(
                "{{\"status\":\"swapped\",\"model\":\"{}\"}}",
                model.hash_hex()
            ),
        )
    }

    fn healthz_json(&self) -> String {
        let unit = self.serving();
        let model = &unit.model;
        let (c, h, w) = model.network.input;
        let cfg = unit.config();
        let mut out = String::from("{\"status\":\"ok\",\"model\":");
        json::write_escaped(&mut out, &model.hash_hex());
        out.push_str(",\"source\":");
        json::write_escaped(&mut out, &model.source);
        out.push_str(",\"backend\":");
        json::write_escaped(&mut out, cfg.backend.as_str());
        out.push_str(",\"exit_policy\":");
        json::write_escaped(&mut out, cfg.exit.kind());
        if let Some(threshold) = cfg.exit.threshold() {
            out.push_str(",\"exit_threshold\":");
            json::write_f64(&mut out, f64::from(threshold));
        }
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                ",\"timesteps\":{},\"burn_in\":{},\"input\":[{c},{h},{w}],\
                 \"events\":{},\"classes\":{},\"workers\":{},\"max_batch\":{},\
                 \"max_delay_us\":{},\"queue_capacity\":{}}}",
                cfg.timesteps,
                cfg.burn_in,
                model.event_input,
                model.network.num_classes,
                unit.workers(),
                cfg.max_batch,
                cfg.max_delay_us,
                cfg.queue_capacity
            ),
        );
        out
    }

    fn models_json(&self) -> String {
        let serving_hash = self.serving().model.hash;
        let mut out = String::from("{\"serving\":");
        json::write_escaped(&mut out, &format!("{serving_hash:016x}"));
        out.push_str(",\"models\":[");
        for (i, model) in self.registry.list().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (c, h, w) = model.network.input;
            out.push_str("{\"hash\":");
            json::write_escaped(&mut out, &model.hash_hex());
            out.push_str(",\"source\":");
            json::write_escaped(&mut out, &model.source);
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    ",\"input\":[{c},{h},{w}],\"events\":{},\"serving\":{}}}",
                    model.event_input,
                    model.hash == serving_hash
                ),
            );
        }
        out.push_str("]}");
        out
    }
}

/// Parses a `/predict` body — `{"images": [[…], …]}` or `{"image": […]}` —
/// into `C×H×W` tensors.
///
/// # Errors
///
/// Rejects malformed JSON, missing keys, and images whose length is not
/// `C·H·W`.
pub fn parse_images(body: &[u8], dims: (usize, usize, usize)) -> Result<Vec<Tensor>, String> {
    let text = std::str::from_utf8(body).map_err(|e| format!("body is not UTF-8: {e}"))?;
    let parsed = json::parse(text).map_err(|e| format!("bad JSON body: {e}"))?;
    let arrays: Vec<&Json> = if let Some(Json::Arr(images)) = parsed.get("images") {
        images.iter().collect()
    } else if let Some(image) = parsed.get("image") {
        vec![image]
    } else {
        return Err("expected {\"images\": [[…]]} or {\"image\": […]}".to_string());
    };
    if arrays.is_empty() {
        return Err("empty image list".to_string());
    }
    let (c, h, w) = dims;
    let expected = c * h * w;
    let mut out = Vec::with_capacity(arrays.len());
    for (i, image) in arrays.iter().enumerate() {
        let Json::Arr(values) = image else {
            return Err(format!("image {i} is not an array"));
        };
        if values.len() != expected {
            return Err(format!(
                "image {i} has {} values, model expects {expected} ({c}x{h}x{w})",
                values.len()
            ));
        }
        let mut data = Vec::with_capacity(expected);
        for (j, v) in values.iter().enumerate() {
            let Some(x) = v.as_f64() else {
                return Err(format!("image {i} value {j} is not a number"));
            };
            data.push(x as f32);
        }
        out.push(Tensor::from_vec(vec![c, h, w], data));
    }
    Ok(out)
}

/// Renders predictions as the `/predict` response body. Logits are f32
/// written via the shortest-round-trip f64 form, so a client parsing them
/// back to f32 recovers the exact bits.
#[must_use]
pub fn predictions_json(predictions: &[Prediction]) -> String {
    let mut out = String::from("{\"predictions\":[");
    for (i, p) in predictions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", p.class));
    }
    out.push_str("],\"logits\":[");
    for (i, p) in predictions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, &l) in p.logits.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::write_f64(&mut out, f64::from(l));
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

/// Renders tensors as a `/predict` request body — the client half used by
/// `sia bench serve` and the determinism tests. Values round-trip
/// bit-exactly through [`parse_images`] (same shortest-round-trip f64
/// form as [`predictions_json`]).
#[must_use]
pub fn images_json(images: &[Tensor]) -> String {
    let mut out = String::from("{\"images\":[");
    for (i, image) in images.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, &v) in image.data().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::write_f64(&mut out, f64::from(v));
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

/// Parses a `/predict` response body back into [`Prediction`]s — the
/// client half used by `sia bench serve` and the determinism tests.
///
/// # Errors
///
/// Rejects malformed bodies.
pub fn parse_predictions(body: &[u8]) -> Result<Vec<Prediction>, String> {
    let text = std::str::from_utf8(body).map_err(|e| format!("body is not UTF-8: {e}"))?;
    let parsed = json::parse(text).map_err(|e| format!("bad JSON body: {e}"))?;
    let Some(Json::Arr(classes)) = parsed.get("predictions") else {
        return Err("missing predictions array".to_string());
    };
    let Some(Json::Arr(logit_rows)) = parsed.get("logits") else {
        return Err("missing logits array".to_string());
    };
    if classes.len() != logit_rows.len() {
        return Err("predictions/logits length mismatch".to_string());
    }
    classes
        .iter()
        .zip(logit_rows)
        .enumerate()
        .map(|(i, (class, row))| {
            let class = class
                .as_u64()
                .ok_or_else(|| format!("prediction {i} is not a number"))?
                as usize;
            let Json::Arr(values) = row else {
                return Err(format!("logits {i} is not an array"));
            };
            let logits = values
                .iter()
                .map(|v| v.as_f64().map(|x| x as f32))
                .collect::<Option<Vec<f32>>>()
                .ok_or_else(|| format!("logits {i} holds a non-number"))?;
            Ok(Prediction { class, logits })
        })
        .collect()
}

/// Renders a telemetry snapshot as the `/metrics` body.
#[must_use]
pub fn metrics_json(snapshot: &sia_telemetry::Snapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_escaped(&mut out, name);
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!(":{value}"));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_escaped(&mut out, name);
        out.push(':');
        json::write_f64(&mut out, *value);
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_escaped(&mut out, name);
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(":{{\"count\":{},\"mean\":", h.count),
        );
        json::write_f64(&mut out, h.mean());
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                ",\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.min,
                h.max,
                h.p50(),
                h.p95(),
                h.p99()
            ),
        );
    }
    out.push_str("}}");
    out
}

fn error_json(msg: &str) -> String {
    let mut out = String::from("{\"error\":");
    json::write_escaped(&mut out, msg);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictions_round_trip_bit_exactly() {
        let predictions = vec![
            Prediction {
                class: 3,
                logits: vec![0.1_f32, -2.5, 1.0e-7, f32::MIN_POSITIVE, 1234.5678],
            },
            Prediction {
                class: 0,
                logits: vec![0.0, -0.0, 7.25],
            },
        ];
        let body = predictions_json(&predictions);
        let back = parse_predictions(body.as_bytes()).unwrap();
        assert_eq!(back.len(), predictions.len());
        for (a, b) in predictions.iter().zip(&back) {
            assert_eq!(a.class, b.class);
            // bit-for-bit, not approximate: the shortest-round-trip f64
            // form must reproduce the exact f32
            let a_bits: Vec<u32> = a.logits.iter().map(|l| l.to_bits()).collect();
            let b_bits: Vec<u32> = b.logits.iter().map(|l| l.to_bits()).collect();
            assert_eq!(a_bits, b_bits);
        }
    }

    #[test]
    fn images_round_trip_bit_exactly() {
        let dims = (1, 1, 3);
        let images = vec![
            Tensor::from_vec(vec![1, 1, 3], vec![0.1_f32, -2.5, f32::MIN_POSITIVE]),
            Tensor::from_vec(vec![1, 1, 3], vec![0.0, -0.0, 1234.5678]),
        ];
        let body = images_json(&images);
        let back = parse_images(body.as_bytes(), dims).unwrap();
        assert_eq!(back.len(), images.len());
        for (a, b) in images.iter().zip(&back) {
            let a_bits: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(a_bits, b_bits);
        }
    }

    #[test]
    fn parse_images_validates_shape() {
        let dims = (1, 2, 2);
        let images = parse_images(b"{\"images\":[[1,2,3,4],[5,6,7,8]]}", dims).unwrap();
        assert_eq!(images.len(), 2);
        assert_eq!(images[0].data(), &[1.0, 2.0, 3.0, 4.0]);
        let single = parse_images(b"{\"image\":[1,2,3,4]}", dims).unwrap();
        assert_eq!(single.len(), 1);
        assert!(parse_images(b"{\"images\":[[1,2,3]]}", dims).is_err());
        assert!(parse_images(b"{\"images\":[]}", dims).is_err());
        assert!(parse_images(b"{}", dims).is_err());
        assert!(parse_images(b"not json", dims).is_err());
    }

    #[test]
    fn metrics_json_is_parseable_and_complete() {
        sia_telemetry::counter!("serve.test.counter", 2);
        sia_telemetry::histogram!("serve.test.hist", 100);
        sia_telemetry::histogram!("serve.test.hist", 200);
        let body = metrics_json(&sia_telemetry::global_snapshot());
        let parsed = json::parse(&body).unwrap();
        // structural keys always present, even on an empty snapshot
        assert!(parsed.get("counters").is_some());
        assert!(parsed.get("gauges").is_some());
        assert!(parsed.get("histograms").is_some());
        if let Some(h) = parsed
            .get("histograms")
            .and_then(|h| h.get("serve.test.hist"))
        {
            assert!(h.get("count").and_then(Json::as_u64).unwrap() >= 2);
            assert!(h.get("p50").is_some() && h.get("p95").is_some() && h.get("p99").is_some());
        }
    }
}
