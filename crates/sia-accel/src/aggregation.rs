//! The aggregation core: fixed-point batch norm + IF/LIF activation
//! (paper §III-B) operating on the partial sums handed over by the spiking
//! core, with membrane potentials living in the ping-pong memory.

use crate::config::SiaConfig;
use sia_fixed::sat::add16;
use sia_fixed::Q8_8;
use sia_snn::network::NeuronMode;
use sia_snn::neuron::step_int;

/// Per-channel batch-norm coefficients as held in the configuration
/// registers (streamed from the PS "layerwise as part of the
/// configuration").
#[derive(Clone, Debug, PartialEq)]
pub struct BnCoefficients {
    /// Multiplier `G` per channel (Q8.8).
    pub g: Vec<Q8_8>,
    /// Offset `H` per channel (membrane LSBs, sign folded).
    pub h: Vec<i16>,
}

impl BnCoefficients {
    /// Applies `y·G + H` for channel `ch` — one pass through the
    /// fixed-point multiplier and adder.
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    #[inline]
    #[must_use]
    pub fn apply(&self, psum: i16, ch: usize) -> i16 {
        add16(self.g[ch].mul_int(psum), self.h[ch])
    }
}

/// Outcome of running the aggregation core over one tile of partial sums.
#[derive(Clone, Debug, PartialEq)]
pub struct AggregationOutput {
    /// Output spikes, one per input psum.
    pub spikes: Vec<u8>,
    /// Cycles spent (pipeline fill + one psum per cycle; overlapped with
    /// the spiking core except for the fill).
    pub cycles: u64,
    /// Number of spikes emitted.
    pub spike_count: u64,
}

/// Runs batch norm + activation over a tile of partial sums, updating the
/// membrane slice in place (the U-state bank currently in write mode).
///
/// `channel_of` maps a psum index to its output channel (for coefficient
/// lookup).
///
/// # Panics
///
/// Panics if slice lengths disagree.
#[must_use]
pub fn run_tile(
    psums: &[i16],
    membranes: &mut [i16],
    bn: &BnCoefficients,
    channel_of: impl Fn(usize) -> usize,
    theta: i16,
    mode: NeuronMode,
    config: &SiaConfig,
) -> AggregationOutput {
    assert_eq!(
        psums.len(),
        membranes.len(),
        "psum/membrane length mismatch"
    );
    let mut spikes = vec![0u8; psums.len()];
    let mut count = 0u64;
    for (i, (&p, u)) in psums.iter().zip(membranes.iter_mut()).enumerate() {
        let current = bn.apply(p, channel_of(i));
        if step_int(u, current, theta, mode) {
            spikes[i] = 1;
            count += 1;
        }
    }
    AggregationOutput {
        spikes,
        cycles: config.aggregation_pipeline_depth + psums.len() as u64,
        spike_count: count,
    }
}

/// Residual accumulation before batch norm (§IV: "pre-computed partial sums
/// are read from the processor which is accumulated with the partial sums
/// present in the PL"). Saturating, elementwise.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn accumulate_residual(main: &[i16], residual: &[i16]) -> Vec<i16> {
    assert_eq!(main.len(), residual.len(), "residual length mismatch");
    main.iter()
        .zip(residual)
        .map(|(&a, &b)| add16(a, b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bn_identity(channels: usize) -> BnCoefficients {
        BnCoefficients {
            g: vec![Q8_8::ONE; channels],
            h: vec![0; channels],
        }
    }

    #[test]
    fn bn_apply_scales_and_offsets() {
        let bn = BnCoefficients {
            g: vec![Q8_8::from_f32(0.5), Q8_8::from_f32(2.0)],
            h: vec![10, -5],
        };
        assert_eq!(bn.apply(100, 0), 60);
        assert_eq!(bn.apply(100, 1), 195);
    }

    #[test]
    fn tile_spikes_and_resets_by_subtraction() {
        let cfg = SiaConfig::pynq_z2();
        let bn = bn_identity(1);
        let mut mem = vec![64i16, 64, 64];
        let out = run_tile(
            &[100, 10, -200],
            &mut mem,
            &bn,
            |_| 0,
            128,
            NeuronMode::If,
            &cfg,
        );
        assert_eq!(out.spikes, vec![1, 0, 0]);
        assert_eq!(out.spike_count, 1);
        assert_eq!(mem, vec![36, 74, -136]); // 164−128, 74, −136
    }

    #[test]
    fn tile_cycles_include_pipeline_fill() {
        let cfg = SiaConfig::pynq_z2();
        let bn = bn_identity(1);
        let mut mem = vec![0i16; 10];
        let out = run_tile(&[0; 10], &mut mem, &bn, |_| 0, 128, NeuronMode::If, &cfg);
        assert_eq!(out.cycles, cfg.aggregation_pipeline_depth + 10);
    }

    #[test]
    fn lif_mode_leaks() {
        let cfg = SiaConfig::pynq_z2();
        let bn = bn_identity(1);
        let mut mem = vec![64i16];
        let out = run_tile(
            &[0],
            &mut mem,
            &bn,
            |_| 0,
            128,
            NeuronMode::Lif { leak_shift: 2 },
            &cfg,
        );
        assert_eq!(out.spike_count, 0);
        assert_eq!(mem, vec![48]); // 64 − (64 >> 2)
    }

    #[test]
    fn residual_accumulation_saturates() {
        let acc = accumulate_residual(&[i16::MAX, 5], &[10, -3]);
        assert_eq!(acc, vec![i16::MAX, 2]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn residual_length_checked() {
        let _ = accumulate_residual(&[1], &[1, 2]);
    }
}
