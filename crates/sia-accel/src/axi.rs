//! PS↔PL transfer model (paper §IV: AXI4-Lite between PS and PL, DDR as
//! the central repository).
//!
//! Two paths with very different costs:
//!
//! * the **stream path** — bulk transfers (spike bitmaps, weight chunks,
//!   residual currents) moved at `dma_bytes_per_cycle`; overlapping with
//!   compute is the ping-pong protocol's whole purpose, so the machine
//!   takes `max(compute, transfer)` per layer;
//! * the **MMIO path** — software-driven single-word AXI4-Lite accesses
//!   from the PYNQ runtime. At ≈ 5.6 µs per word this is what makes the
//!   512×10 FC layer cost ≈ 59 ms in Table I while the conv layers cost
//!   ≈ 0.9 ms: the FC path is driver-paced, not compute-paced.

use crate::config::SiaConfig;

/// Cycles to stream `bytes` over the bulk path.
#[must_use]
pub fn stream_cycles(bytes: usize, config: &SiaConfig) -> u64 {
    (bytes as f64 / config.dma_bytes_per_cycle).ceil() as u64
}

/// Cycles for `words` single-word software MMIO accesses.
#[must_use]
pub fn mmio_cycles(words: usize, config: &SiaConfig) -> u64 {
    words as u64 * config.mmio_cycles_per_word
}

/// Breakdown of one layer's PS↔PL traffic (per inference, T timesteps).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LayerTraffic {
    /// Weight bytes streamed (chunks × timesteps if re-streamed).
    pub weight_bytes: usize,
    /// Input spike bytes streamed over all timesteps.
    pub spike_in_bytes: usize,
    /// Output spike bytes streamed over all timesteps.
    pub spike_out_bytes: usize,
    /// Residual current bytes streamed over all timesteps.
    pub residual_bytes: usize,
    /// Configuration words written over MMIO (thresholds, G/H, geometry).
    pub config_words: usize,
    /// Data words moved over the slow MMIO path (FC mode).
    pub mmio_data_words: usize,
}

impl LayerTraffic {
    /// Total streamed bytes.
    #[must_use]
    pub fn stream_bytes(&self) -> usize {
        self.weight_bytes + self.spike_in_bytes + self.spike_out_bytes + self.residual_bytes
    }

    /// Total transfer cycles under `config`.
    #[must_use]
    pub fn cycles(&self, config: &SiaConfig) -> u64 {
        stream_cycles(self.stream_bytes(), config)
            + mmio_cycles(self.config_words + self.mmio_data_words, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_cycles_round_up() {
        let cfg = SiaConfig::pynq_z2(); // 8 bytes/cycle (AXI-HP 64-bit)
        assert_eq!(stream_cycles(0, &cfg), 0);
        assert_eq!(stream_cycles(1, &cfg), 1);
        assert_eq!(stream_cycles(16, &cfg), 2);
        assert_eq!(stream_cycles(17, &cfg), 3);
    }

    #[test]
    fn mmio_is_hundreds_of_cycles_per_word() {
        let cfg = SiaConfig::pynq_z2();
        assert_eq!(mmio_cycles(10, &cfg), 5600);
    }

    #[test]
    fn fc_layer_mmio_cost_reproduces_table1_scale() {
        // 512×10 INT8 weights (1280 words) re-streamed per timestep plus
        // per-timestep spike/readback words, 8 timesteps, driver-paced:
        // Table I reports ≈ 58.7–58.9 ms at 100 MHz.
        let cfg = SiaConfig::pynq_z2();
        let words_per_t = 1280 + 16 + 10;
        let cycles = mmio_cycles(words_per_t * 8, &cfg);
        let ms = cycles as f64 / cfg.clock_hz as f64 * 1e3;
        assert!((50.0..70.0).contains(&ms), "FC model gives {ms} ms");
    }

    #[test]
    fn traffic_totals() {
        let t = LayerTraffic {
            weight_bytes: 100,
            spike_in_bytes: 50,
            spike_out_bytes: 30,
            residual_bytes: 20,
            config_words: 4,
            mmio_data_words: 0,
        };
        assert_eq!(t.stream_bytes(), 200);
        let cfg = SiaConfig::pynq_z2();
        assert_eq!(t.cycles(&cfg), 25 + 4 * 560);
    }
}
