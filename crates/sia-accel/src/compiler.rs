//! Maps a converted spiking network onto the SIA (Fig. 5's "implementation
//! flow"): kernel-group tiling, weight-chunk streaming, footprint checking
//! and PS↔PL traffic planning.

use crate::axi::LayerTraffic;
use crate::config::SiaConfig;
use crate::memory::LayerFootprint;
use sia_snn::{SnnItem, SnnNetwork};
use std::fmt;

/// Why a network cannot be compiled for a given configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The configuration itself is invalid.
    BadConfig(String),
    /// A layer exceeds a memory even after chunking; carries the layer
    /// index and the memory-check message.
    LayerTooLarge {
        /// Index into the network's item list.
        layer: usize,
        /// The failing footprint check.
        reason: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::BadConfig(m) => write!(f, "invalid configuration: {m}"),
            CompileError::LayerTooLarge { layer, reason } => {
                write!(f, "layer {layer} cannot be scheduled: {reason}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Scheduling decisions for one network item.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerProgram {
    /// Index into `SnnNetwork::items`.
    pub item_index: usize,
    /// Human-readable label.
    pub name: String,
    /// Kernel groups `(start, size)` — one PE-array pass each.
    pub kernel_groups: Vec<(usize, usize)>,
    /// Memory footprint (absent for markers like `BlockStart`).
    pub footprint: Option<LayerFootprint>,
    /// Planned PS↔PL traffic for a `T`-timestep inference.
    pub traffic: LayerTraffic,
    /// Whether this item runs on the PL (false = PS-side: input layer,
    /// head).
    pub on_pl: bool,
}

/// A compiled accelerator program.
#[derive(Clone, Debug)]
pub struct Program {
    /// The source network (owned; the machine executes against it).
    pub network: SnnNetwork,
    /// One entry per network item.
    pub layers: Vec<LayerProgram>,
    /// Timestep count the traffic plan was computed for.
    pub timesteps: usize,
}

impl Program {
    /// Total planned PS↔PL stream traffic in bytes.
    #[must_use]
    pub fn total_stream_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.traffic.stream_bytes()).sum()
    }

    /// Number of PL conv passes (kernel groups × conv layers).
    #[must_use]
    pub fn total_passes(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| l.on_pl)
            .map(|l| l.kernel_groups.len())
            .sum()
    }
}

fn kernel_groups(out_channels: usize, pe_count: usize) -> Vec<(usize, usize)> {
    let mut groups = Vec::new();
    let mut start = 0;
    while start < out_channels {
        let size = (out_channels - start).min(pe_count);
        groups.push((start, size));
        start += size;
    }
    groups
}

/// Plans one convolution geometry: kernel groups, memory footprint and
/// PS↔PL traffic for a `timesteps`-step inference. Public so that latency
/// studies (Tables I and II) can cost arbitrary geometries without building
/// a full network.
#[must_use]
pub fn plan_conv(
    geom: &sia_tensor::Conv2dGeom,
    config: &SiaConfig,
    timesteps: usize,
    residual_neurons: usize,
) -> (Vec<(usize, usize)>, LayerFootprint, LayerTraffic) {
    let groups = kernel_groups(geom.out_channels, config.pe_count());
    let kernel_bytes = geom.in_channels * geom.kernel * geom.kernel;
    let group_weight_bytes = config.pe_count().min(geom.out_channels) * kernel_bytes;
    let weight_total = geom.weight_count();
    // If a group's weights exceed the weight memory, the layer streams them
    // in input-channel chunks; each chunk still holds all group kernels for
    // the covered channels.
    let weight_chunks = group_weight_bytes.div_ceil(config.weight_mem_bytes);
    let weight_chunk_bytes = group_weight_bytes.min(config.weight_mem_bytes);
    let (oh, ow) = geom.out_hw();
    let neurons = geom.out_channels * oh * ow;
    let spike_in_bytes = (geom.in_channels * geom.in_h * geom.in_w).div_ceil(8);
    let spike_out_bytes = neurons.div_ceil(8);
    let footprint = LayerFootprint {
        weight_chunk_bytes,
        weight_total_bytes: weight_total,
        weight_chunks,
        neurons,
        spike_in_bytes,
        spike_out_bytes,
        residual_bytes: residual_neurons * 2,
    };
    // Weights stream once per inference: when a layer exceeds the weight
    // memory it is processed chunk-by-chunk with all T timesteps per chunk
    // (partial sums parked in the residual memory), so chunking never
    // re-streams weights. The per-channel G/H coefficients (4 bytes per
    // output channel) ride the same stream path.
    let traffic = LayerTraffic {
        weight_bytes: weight_total + 4 * geom.out_channels,
        // membrane spill (neurons beyond the U-state banks) rides the same
        // stream path, once per timestep
        spike_in_bytes: spike_in_bytes * timesteps
            + footprint.membrane_spill_bytes(config) * timesteps,
        spike_out_bytes: spike_out_bytes * timesteps,
        residual_bytes: residual_neurons * 2 * timesteps,
        config_words: 8, // geometry/threshold/mode registers
        mmio_data_words: 0,
    };
    (groups, footprint, traffic)
}

/// Compiles `network` for `config`, planning a `timesteps`-step inference.
///
/// # Errors
///
/// Returns [`CompileError`] when the configuration is invalid or a layer
/// exceeds the memory map even after chunking.
pub fn compile(network: &SnnNetwork, config: &SiaConfig) -> Result<Program, CompileError> {
    compile_for(network, config, 8)
}

/// [`compile`] with an explicit timestep count for the traffic plan.
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_for(
    network: &SnnNetwork,
    config: &SiaConfig,
    timesteps: usize,
) -> Result<Program, CompileError> {
    config.validate().map_err(CompileError::BadConfig)?;
    let mut layers = Vec::new();
    for (idx, item) in network.items.iter().enumerate() {
        let lp = match item {
            SnnItem::InputConv(c) => {
                // PS-side frame conversion: traffic is the output spikes
                // handed to the PL plus configuration.
                let (groups, footprint, mut traffic) = plan_conv(&c.geom, config, timesteps, 0);
                traffic.weight_bytes = 0; // weights stay in DDR (PS compute)
                traffic.spike_in_bytes = 0;
                LayerProgram {
                    item_index: idx,
                    name: format!(
                        "input-conv{}x{},{}",
                        c.geom.kernel, c.geom.kernel, c.geom.out_channels
                    ),
                    kernel_groups: groups,
                    footprint: Some(footprint),
                    traffic,
                    on_pl: false,
                }
            }
            SnnItem::Conv(c) | SnnItem::ConvPsum(c) => {
                let (groups, footprint, traffic) = plan_conv(&c.geom, config, timesteps, 0);
                footprint
                    .check(config)
                    .map_err(|reason| CompileError::LayerTooLarge { layer: idx, reason })?;
                LayerProgram {
                    item_index: idx,
                    name: format!(
                        "conv{}x{},{}@{}",
                        c.geom.kernel,
                        c.geom.kernel,
                        c.geom.out_channels,
                        c.geom.out_hw().0
                    ),
                    kernel_groups: groups,
                    footprint: Some(footprint),
                    traffic,
                    on_pl: true,
                }
            }
            SnnItem::BlockStart => LayerProgram {
                item_index: idx,
                name: "block-start".into(),
                kernel_groups: Vec::new(),
                footprint: None,
                traffic: LayerTraffic::default(),
                on_pl: true,
            },
            SnnItem::BlockAdd(a) => {
                // The skip currents are "pre-computed partial sums read from
                // the processor" (§IV): residual stream traffic, one i16 per
                // neuron per timestep, buffered in the 128 kB residual
                // memory.
                let neurons = a.neurons();
                let footprint = LayerFootprint {
                    weight_chunk_bytes: 0,
                    weight_total_bytes: a.down.as_ref().map_or(0, |d| d.geom.weight_count()),
                    weight_chunks: 0,
                    neurons,
                    spike_in_bytes: 0,
                    spike_out_bytes: neurons.div_ceil(8),
                    residual_bytes: neurons * 2,
                };
                footprint
                    .check(config)
                    .map_err(|reason| CompileError::LayerTooLarge { layer: idx, reason })?;
                LayerProgram {
                    item_index: idx,
                    name: format!("block-add@{}", a.h),
                    kernel_groups: Vec::new(),
                    footprint: Some(footprint),
                    traffic: LayerTraffic {
                        weight_bytes: 0,
                        spike_in_bytes: 0,
                        spike_out_bytes: neurons.div_ceil(8) * timesteps,
                        residual_bytes: neurons * 2 * timesteps,
                        config_words: 4,
                        mmio_data_words: 0,
                    },
                    on_pl: true,
                }
            }
            SnnItem::MaxPoolOr { channels, h, w } => LayerProgram {
                item_index: idx,
                name: format!("or-pool@{h}"),
                kernel_groups: Vec::new(),
                footprint: None,
                traffic: LayerTraffic {
                    spike_out_bytes: (channels * h * w / 4).div_ceil(8) * timesteps,
                    ..LayerTraffic::default()
                },
                on_pl: true,
            },
            SnnItem::Head(l) => {
                // Driver-paced FC (Table I's ≈ 59 ms row): weights re-sent
                // per timestep over MMIO plus spike upload and readback.
                let weight_words = (l.out * l.channels).div_ceil(4);
                let spike_words = (l.channels * l.in_h * l.in_w).div_ceil(32);
                LayerProgram {
                    item_index: idx,
                    name: format!("fc{}x{}", l.channels * l.in_h * l.in_w, l.out),
                    kernel_groups: Vec::new(),
                    footprint: None,
                    traffic: LayerTraffic {
                        mmio_data_words: (weight_words + spike_words + l.out) * timesteps,
                        config_words: 4,
                        ..LayerTraffic::default()
                    },
                    on_pl: false,
                }
            }
        };
        layers.push(lp);
    }
    Ok(Program {
        network: network.clone(),
        layers,
        timesteps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_nn::{ActSpec, ConvSpec, LinearSpec, NetworkSpec, SpecItem};
    use sia_snn::{convert, ConvertOptions};
    use sia_tensor::{Conv2dGeom, Tensor};

    fn spec(cout: usize, hw: usize) -> NetworkSpec {
        let geom = Conv2dGeom {
            in_channels: 3,
            out_channels: cout,
            in_h: hw,
            in_w: hw,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        NetworkSpec {
            name: "t".into(),
            input: (3, hw, hw),
            items: vec![
                SpecItem::Conv(ConvSpec {
                    geom,
                    weights: Tensor::full(vec![cout, 3, 3, 3], 0.1),
                    bn: None,
                    act: Some(ActSpec {
                        levels: 8,
                        step: 1.0,
                    }),
                }),
                SpecItem::Conv(ConvSpec {
                    geom: Conv2dGeom {
                        in_channels: cout,
                        out_channels: cout,
                        ..geom
                    },
                    weights: Tensor::full(vec![cout, cout, 3, 3], 0.1),
                    bn: None,
                    act: Some(ActSpec {
                        levels: 8,
                        step: 1.0,
                    }),
                }),
                SpecItem::GlobalAvgPool,
                SpecItem::Linear(LinearSpec {
                    in_features: cout,
                    out_features: 10,
                    weights: Tensor::full(vec![10, cout], 0.1),
                    bias: vec![0.0; 10],
                }),
            ],
        }
    }

    #[test]
    fn kernel_groups_split_at_pe_count() {
        assert_eq!(kernel_groups(64, 64), vec![(0, 64)]);
        assert_eq!(kernel_groups(100, 64), vec![(0, 64), (64, 36)]);
        assert_eq!(kernel_groups(10, 64), vec![(0, 10)]);
    }

    #[test]
    fn compile_small_network() {
        let net = convert(&spec(16, 8), &ConvertOptions::default());
        let p = compile(&net, &SiaConfig::pynq_z2()).unwrap();
        assert_eq!(p.layers.len(), net.items.len());
        // input conv runs PS-side, second conv on PL, head PS-side
        assert!(!p.layers[0].on_pl);
        assert!(p.layers[1].on_pl);
        assert!(!p.layers.last().unwrap().on_pl);
        assert!(p.total_passes() >= 1);
        assert!(p.total_stream_bytes() > 0);
    }

    #[test]
    fn wide_layers_get_multiple_groups() {
        let net = convert(&spec(100, 8), &ConvertOptions::default());
        let p = compile(&net, &SiaConfig::pynq_z2()).unwrap();
        assert_eq!(p.layers[1].kernel_groups.len(), 2);
    }

    #[test]
    fn oversized_weight_chunks_are_streamed_not_rejected() {
        // conv 64→64 at 3×3: one group's weights are 36 kB > 8 kB weight
        // memory ⇒ chunked streaming, still compilable.
        let net = convert(&spec(64, 16), &ConvertOptions::default());
        let p = compile(&net, &SiaConfig::pynq_z2()).unwrap();
        let fp = p.layers[1].footprint.as_ref().unwrap();
        assert!(fp.weight_chunks > 1);
        // chunked, but still streamed only once per inference (+ G/H)
        assert_eq!(p.layers[1].traffic.weight_bytes, 64 * 64 * 9 + 4 * 64);
    }

    #[test]
    fn membrane_overflow_spills_to_ddr() {
        // 64 channels at 64×64 = 262144 neurons > 16384-neuron bank:
        // compiles, with spill traffic planned on the stream path.
        let net = convert(&spec(64, 64), &ConvertOptions::default());
        let p = compile(&net, &SiaConfig::pynq_z2()).unwrap();
        let fp = p.layers[1].footprint.as_ref().unwrap();
        assert!(fp.membrane_spill_bytes(&SiaConfig::pynq_z2()) > 0);
        assert!(p.layers[1].traffic.spike_in_bytes > 64 * 64 * 64 / 8 * 8);
    }

    #[test]
    fn bad_config_is_rejected() {
        let net = convert(&spec(8, 8), &ConvertOptions::default());
        let mut cfg = SiaConfig::pynq_z2();
        cfg.pe_rows = 0;
        assert!(matches!(
            compile(&net, &cfg),
            Err(CompileError::BadConfig(_))
        ));
    }

    #[test]
    fn head_traffic_is_mmio_paced() {
        let net = convert(&spec(16, 8), &ConvertOptions::default());
        let p = compile(&net, &SiaConfig::pynq_z2()).unwrap();
        let head = p.layers.last().unwrap();
        assert!(head.traffic.mmio_data_words > 0);
        assert_eq!(head.traffic.stream_bytes(), 0);
    }
}
