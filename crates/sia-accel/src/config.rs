//! Accelerator configuration (the reconfigurable part of "reconfigurable").

/// Static configuration of one SIA instance.
///
/// The defaults ([`SiaConfig::pynq_z2`]) reproduce the paper's prototype:
/// an 8×8 PE array at 100 MHz on a PYNQ-Z2 with the §III-D memory map.
/// Every field may be changed to explore the design space (the PE-array
/// ablation bench sweeps `pe_rows`/`pe_cols`).
///
/// # Examples
///
/// ```
/// use sia_accel::SiaConfig;
/// let cfg = SiaConfig::pynq_z2();
/// assert_eq!(cfg.pe_count(), 64);
/// assert_eq!(cfg.clock_hz, 100_000_000);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SiaConfig {
    /// PE array rows (8 in the prototype).
    pub pe_rows: usize,
    /// PE array columns (8 in the prototype).
    pub pe_cols: usize,
    /// PL clock frequency in Hz (100 MHz in the prototype).
    pub clock_hz: u64,
    /// Taps accumulated per PE per cycle (3 multiplexers).
    pub taps_per_cycle: usize,
    /// Weight memory capacity in bytes (8 kB; up to 64 kernels).
    pub weight_mem_bytes: usize,
    /// Incoming spike buffer in bytes (128 B).
    pub spike_in_mem_bytes: usize,
    /// Residual-parameter memory in bytes (128 kB).
    pub residual_mem_bytes: usize,
    /// Membrane-potential memory in bytes (64 kB, split into U1/U2).
    pub membrane_mem_bytes: usize,
    /// Output spike memory in bytes (56 kB).
    pub output_mem_bytes: usize,
    /// Bulk-stream (DMA-style) throughput: bytes moved per PL cycle
    /// (the Zynq AXI-HP ports move a 64-bit beat per cycle).
    pub dma_bytes_per_cycle: f64,
    /// Cycles per word for the software-driven AXI4-Lite MMIO path (the
    /// PYNQ Python driver costs ≈ 5.6 µs/word ⇒ ≈ 560 cycles at 100 MHz).
    pub mmio_cycles_per_word: u64,
    /// Fixed per-layer driver/configuration overhead in cycles
    /// (interrupt handling, register setup by the PS).
    pub layer_overhead_cycles: u64,
    /// Aggregation-core pipeline depth (fill cost per tile, cycles).
    pub aggregation_pipeline_depth: u64,
    /// Arithmetic operations counted per active PE per cycle
    /// (3 mux selects + 3 adds = 6, the paper's GOPS accounting).
    pub ops_per_pe_cycle: u64,
    /// PS-side software cost per MAC in PL-clock cycles (frame conversion
    /// of the dense input layer and the final readout run on the ZYNQ PS).
    pub ps_cycles_per_mac: f64,
}

impl SiaConfig {
    /// The paper's PYNQ-Z2 prototype configuration.
    #[must_use]
    pub fn pynq_z2() -> Self {
        SiaConfig {
            pe_rows: 8,
            pe_cols: 8,
            clock_hz: 100_000_000,
            taps_per_cycle: 3,
            weight_mem_bytes: 8 * 1024,
            spike_in_mem_bytes: 128,
            residual_mem_bytes: 128 * 1024,
            membrane_mem_bytes: 64 * 1024,
            output_mem_bytes: 56 * 1024,
            dma_bytes_per_cycle: 8.0,
            mmio_cycles_per_word: 560,
            layer_overhead_cycles: 55_000,
            aggregation_pipeline_depth: 4,
            ops_per_pe_cycle: 6,
            ps_cycles_per_mac: 0.5,
        }
    }

    /// The §V ASIC projection point: same architecture at 500 MHz
    /// (TSMC 40 nm).
    #[must_use]
    pub fn asic_40nm() -> Self {
        SiaConfig {
            clock_hz: 500_000_000,
            // on-die interconnect removes the PS driver bottlenecks
            mmio_cycles_per_word: 8,
            layer_overhead_cycles: 2_000,
            dma_bytes_per_cycle: 16.0,
            ..SiaConfig::pynq_z2()
        }
    }

    /// Number of processing elements.
    #[must_use]
    pub fn pe_count(&self) -> usize {
        self.pe_rows * self.pe_cols
    }

    /// Peak throughput in operations per second
    /// (`PEs × ops/PE/cycle × clock`), the Table IV headline
    /// (38.4 GOPS for the prototype).
    #[must_use]
    pub fn peak_ops_per_second(&self) -> f64 {
        self.pe_count() as f64 * self.ops_per_pe_cycle as f64 * self.clock_hz as f64
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field when a parameter is
    /// zero or the memory map cannot hold even one kernel.
    pub fn validate(&self) -> Result<(), String> {
        if self.pe_count() == 0 {
            return Err("PE array must be non-empty".into());
        }
        if self.clock_hz == 0 {
            return Err("clock must be positive".into());
        }
        if self.taps_per_cycle == 0 {
            return Err("taps_per_cycle must be positive".into());
        }
        if self.weight_mem_bytes < 9 {
            return Err("weight memory cannot hold a 3x3 kernel".into());
        }
        if self.membrane_mem_bytes < 4 {
            return Err("membrane memory cannot hold one ping-pong pair".into());
        }
        if self.dma_bytes_per_cycle <= 0.0 {
            return Err("dma_bytes_per_cycle must be positive".into());
        }
        Ok(())
    }
}

impl Default for SiaConfig {
    fn default() -> Self {
        SiaConfig::pynq_z2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pynq_defaults_match_paper() {
        let c = SiaConfig::pynq_z2();
        assert_eq!(c.pe_count(), 64);
        assert_eq!(c.weight_mem_bytes, 8192);
        assert_eq!(c.membrane_mem_bytes, 65536);
        assert_eq!(c.output_mem_bytes, 57344);
        assert_eq!(c.residual_mem_bytes, 131072);
        assert_eq!(c.spike_in_mem_bytes, 128);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn peak_throughput_is_38_4_gops() {
        let c = SiaConfig::pynq_z2();
        assert!((c.peak_ops_per_second() - 38.4e9).abs() < 1e3);
    }

    #[test]
    fn asic_projection_is_five_x_clock() {
        let c = SiaConfig::asic_40nm();
        assert_eq!(c.clock_hz, 500_000_000);
        assert!((c.peak_ops_per_second() - 192.0e9).abs() < 1e3);
    }

    #[test]
    fn validation_catches_degenerate_configs() {
        let mut c = SiaConfig::pynq_z2();
        c.pe_rows = 0;
        assert!(c.validate().is_err());
        let mut c = SiaConfig::pynq_z2();
        c.weight_mem_bytes = 4;
        assert!(c.validate().is_err());
        let mut c = SiaConfig::pynq_z2();
        c.dma_bytes_per_cycle = 0.0;
        assert!(c.validate().is_err());
    }
}
