//! Control and configuration logic (paper §III-C): the register file the
//! PS programs over AXI4-Lite before starting each layer, and the layer
//! sequencer that validates a register image before the cores run.
//!
//! "A dedicated controller unit is designed to manage memory access and
//! core computation operations." The observable contract modelled here is
//! the register map: every per-layer quantity the machine consumes
//! (geometry, threshold, neuron mode, kernel-group index, timestep count)
//! has an address, and a layer may only start once a *valid* image has been
//! written — catching the class of driver bugs (wrong order, missing
//! field, out-of-range value) that silently corrupt real FPGA runs.

use sia_snn::network::NeuronMode;
use sia_tensor::Conv2dGeom;
use std::fmt;

/// Word addresses of the configuration registers (AXI4-Lite, 32-bit words).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Reg {
    /// Input channels.
    InChannels = 0x00,
    /// Output channels (kernels) of the current group.
    OutChannels = 0x01,
    /// Input height.
    InH = 0x02,
    /// Input width.
    InW = 0x03,
    /// Kernel side K.
    Kernel = 0x04,
    /// Stride.
    Stride = 0x05,
    /// Zero padding.
    Padding = 0x06,
    /// Spiking threshold θ (16-bit, sign-extended).
    Theta = 0x07,
    /// Neuron mode: 0 = IF, 1 = LIF.
    Mode = 0x08,
    /// LIF leak shift λ.
    LeakShift = 0x09,
    /// Timesteps T.
    Timesteps = 0x0A,
    /// Kernel-group start channel.
    GroupStart = 0x0B,
    /// Control/status: write 1 to START; reads 1 while BUSY.
    Control = 0x0F,
}

/// Why a register image is not runnable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A required register was never written.
    Unwritten(Reg),
    /// A register holds an out-of-range value.
    OutOfRange {
        /// The offending register.
        reg: Reg,
        /// The written value.
        value: u32,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// START was written while the controller was busy.
    Busy,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Unwritten(r) => write!(f, "register {r:?} never written"),
            ConfigError::OutOfRange {
                reg,
                value,
                constraint,
            } => {
                write!(f, "register {reg:?} = {value} violates: {constraint}")
            }
            ConfigError::Busy => write!(f, "START written while busy"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The controller's register file.
#[derive(Clone, Debug, Default)]
pub struct Controller {
    regs: [Option<u32>; 16],
    busy: bool,
    /// Layers started since reset (status counter).
    pub layers_started: u64,
}

impl Controller {
    /// A freshly reset controller.
    #[must_use]
    pub fn new() -> Self {
        Controller::default()
    }

    /// Writes one register (the PS MMIO path).
    pub fn write(&mut self, reg: Reg, value: u32) {
        self.regs[reg as usize] = Some(value);
    }

    /// Reads one register (0 if never written; Control reads busy state).
    #[must_use]
    pub fn read(&self, reg: Reg) -> u32 {
        if reg == Reg::Control {
            return u32::from(self.busy);
        }
        self.regs[reg as usize].unwrap_or(0)
    }

    /// Programs the full register image for one conv layer pass — the
    /// sequence the compiler emits per kernel group.
    pub fn program_layer(
        &mut self,
        geom: &Conv2dGeom,
        theta: i16,
        mode: NeuronMode,
        timesteps: usize,
        group_start: usize,
        group_size: usize,
    ) {
        self.write(Reg::InChannels, geom.in_channels as u32);
        self.write(Reg::OutChannels, group_size as u32);
        self.write(Reg::InH, geom.in_h as u32);
        self.write(Reg::InW, geom.in_w as u32);
        self.write(Reg::Kernel, geom.kernel as u32);
        self.write(Reg::Stride, geom.stride as u32);
        self.write(Reg::Padding, geom.padding as u32);
        self.write(Reg::Theta, theta as u16 as u32);
        match mode {
            NeuronMode::If => {
                self.write(Reg::Mode, 0);
                self.write(Reg::LeakShift, 0);
            }
            NeuronMode::Lif { leak_shift } => {
                self.write(Reg::Mode, 1);
                self.write(Reg::LeakShift, leak_shift);
            }
        }
        self.write(Reg::Timesteps, timesteps as u32);
        self.write(Reg::GroupStart, group_start as u32);
    }

    /// Validates the image and starts the layer (write 1 to Control).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the first violated constraint.
    pub fn start(&mut self, pe_count: usize) -> Result<(), ConfigError> {
        if self.busy {
            return Err(ConfigError::Busy);
        }
        use Reg::{InChannels, InH, InW, Kernel, OutChannels, Padding, Stride, Timesteps};
        for reg in [
            InChannels,
            OutChannels,
            InH,
            InW,
            Kernel,
            Stride,
            Padding,
            Timesteps,
        ] {
            if self.regs[reg as usize].is_none() {
                return Err(ConfigError::Unwritten(reg));
            }
        }
        let check = |reg: Reg, ok: bool, constraint: &'static str| -> Result<(), ConfigError> {
            if ok {
                Ok(())
            } else {
                Err(ConfigError::OutOfRange {
                    reg,
                    value: self.read(reg),
                    constraint,
                })
            }
        };
        check(InChannels, self.read(InChannels) > 0, "must be positive")?;
        check(
            OutChannels,
            self.read(OutChannels) > 0 && self.read(OutChannels) as usize <= pe_count,
            "must be 1..=PE count",
        )?;
        check(Kernel, matches!(self.read(Kernel), 1..=15), "1..=15")?;
        check(Stride, self.read(Stride) > 0, "must be positive")?;
        check(
            Padding,
            self.read(Padding) < self.read(Kernel),
            "padding below kernel size",
        )?;
        check(
            Reg::Kernel,
            self.read(Kernel) <= self.read(InH) + 2 * self.read(Padding)
                && self.read(Kernel) <= self.read(InW) + 2 * self.read(Padding),
            "kernel fits the padded input",
        )?;
        check(Timesteps, self.read(Timesteps) > 0, "must be positive")?;
        self.busy = true;
        self.layers_started += 1;
        Ok(())
    }

    /// Marks the layer complete (the cores' done interrupt).
    pub fn finish(&mut self) {
        self.busy = false;
    }

    /// Whether a layer is in flight.
    #[must_use]
    pub fn busy(&self) -> bool {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Conv2dGeom {
        Conv2dGeom {
            in_channels: 16,
            out_channels: 32,
            in_h: 8,
            in_w: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
        }
    }

    #[test]
    fn programmed_layer_starts_and_finishes() {
        let mut c = Controller::new();
        c.program_layer(&geom(), 128, NeuronMode::If, 8, 0, 32);
        assert!(c.start(64).is_ok());
        assert!(c.busy());
        assert_eq!(c.read(Reg::Control), 1);
        assert_eq!(c.layers_started, 1);
        c.finish();
        assert!(!c.busy());
    }

    #[test]
    fn unwritten_registers_are_caught() {
        let mut c = Controller::new();
        let err = c.start(64).unwrap_err();
        assert!(matches!(err, ConfigError::Unwritten(Reg::InChannels)));
    }

    #[test]
    fn group_larger_than_pe_array_is_rejected() {
        let mut c = Controller::new();
        c.program_layer(&geom(), 128, NeuronMode::If, 8, 0, 32);
        let err = c.start(16).unwrap_err();
        assert!(matches!(
            err,
            ConfigError::OutOfRange {
                reg: Reg::OutChannels,
                ..
            }
        ));
    }

    #[test]
    fn oversized_kernel_is_rejected() {
        let mut c = Controller::new();
        let bad = Conv2dGeom {
            kernel: 11,
            padding: 0,
            ..geom()
        };
        c.program_layer(&bad, 128, NeuronMode::If, 8, 0, 32);
        let err = c.start(64).unwrap_err();
        assert!(err.to_string().contains("kernel"), "{err}");
    }

    #[test]
    fn double_start_is_busy() {
        let mut c = Controller::new();
        c.program_layer(&geom(), 128, NeuronMode::If, 8, 0, 32);
        assert!(c.start(64).is_ok());
        assert_eq!(c.start(64).unwrap_err(), ConfigError::Busy);
    }

    #[test]
    fn lif_mode_bit_and_leak_are_programmed() {
        let mut c = Controller::new();
        c.program_layer(&geom(), 64, NeuronMode::Lif { leak_shift: 3 }, 4, 0, 8);
        assert_eq!(c.read(Reg::Mode), 1);
        assert_eq!(c.read(Reg::LeakShift), 3);
        c.program_layer(&geom(), 64, NeuronMode::If, 4, 0, 8);
        assert_eq!(c.read(Reg::Mode), 0);
    }

    #[test]
    fn negative_theta_round_trips_through_the_16_bit_register() {
        let mut c = Controller::new();
        c.program_layer(&geom(), -5, NeuronMode::If, 4, 0, 8);
        assert_eq!(c.read(Reg::Theta) as u16 as i16, -5);
    }

    #[test]
    fn zero_timesteps_rejected() {
        let mut c = Controller::new();
        c.program_layer(&geom(), 128, NeuronMode::If, 0, 0, 32);
        let err = c.start(64).unwrap_err();
        assert!(matches!(
            err,
            ConfigError::OutOfRange {
                reg: Reg::Timesteps,
                ..
            }
        ));
    }
}
