//! Deployment images: the byte blob the PS stages in DDR memory.
//!
//! Paper §IV: "The DDR memory stores both the parameters of the SNN model
//! and the input data, offering a centralized repository. Data is
//! transferred from an external host to the DDR memory through the ethernet
//! interface." This module defines that artifact: a self-contained,
//! versioned, little-endian binary image holding the converted network
//! (INT8 weights, Q8.8 coefficients, thresholds, topology) and the
//! accelerator configuration it was compiled for. A host tool writes it
//! once; the deployment loads it and runs — no retraining or reconversion
//! on the edge device.
//!
//! The format is deliberately simple: magic, version, config block, item
//! list with one tag byte per item. Every read is bounds-checked; truncated
//! or corrupted images produce a typed [`ImageError`], never a panic.

use crate::config::SiaConfig;
use sia_fixed::{QuantScale, Q8_8};
use sia_snn::network::{ConvInput, NeuronMode, SnnAdd, SnnConv, SnnItem, SnnLinear, SnnNetwork};
use sia_tensor::Conv2dGeom;
use std::fmt;

/// Magic bytes at the start of every image.
pub const MAGIC: [u8; 4] = *b"SIA1";
/// Format version written by this build.
pub const VERSION: u16 = 1;

/// Why an image failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImageError {
    /// The magic bytes are wrong (not an SIA image).
    BadMagic,
    /// The version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// The image ended before a field could be read.
    UnexpectedEof {
        /// Byte offset at which the read was attempted.
        offset: usize,
    },
    /// An item or enum tag had an unknown value.
    BadTag {
        /// Offending tag byte.
        tag: u8,
        /// Byte offset of the tag.
        offset: usize,
    },
    /// Trailing bytes after the last item.
    TrailingBytes {
        /// Number of unread bytes.
        count: usize,
    },
    /// A declared length is implausible (corrupted size field).
    BadLength {
        /// The declared length.
        len: u64,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::BadMagic => write!(f, "not an SIA deployment image"),
            ImageError::UnsupportedVersion(v) => write!(f, "unsupported image version {v}"),
            ImageError::UnexpectedEof { offset } => {
                write!(f, "image truncated at byte {offset}")
            }
            ImageError::BadTag { tag, offset } => {
                write!(f, "unknown tag {tag:#04x} at byte {offset}")
            }
            ImageError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after the network")
            }
            ImageError::BadLength { len } => write!(f, "implausible length field {len}"),
        }
    }
}

impl std::error::Error for ImageError {}

/// Upper bound on any single array in an image (64M entries) — rejects
/// corrupted length fields before they trigger huge allocations.
const MAX_LEN: u64 = 1 << 26;

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize_(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn bytes_i8(&mut self, v: &[i8]) {
        self.usize_(v.len());
        self.buf.extend(v.iter().map(|&b| b as u8));
    }
    fn vec_i16(&mut self, v: &[i16]) {
        self.usize_(v.len());
        for &x in v {
            self.i16(x);
        }
    }
    fn vec_f32(&mut self, v: &[f32]) {
        self.usize_(v.len());
        for &x in v {
            self.f32(x);
        }
    }
    fn str_(&mut self, s: &str) {
        self.usize_(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageError> {
        if self.pos + n > self.buf.len() {
            return Err(ImageError::UnexpectedEof { offset: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ImageError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ImageError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn i16(&mut self) -> Result<i16, ImageError> {
        Ok(i16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, ImageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ImageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, ImageError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, ImageError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn len(&mut self) -> Result<usize, ImageError> {
        let v = self.u64()?;
        if v > MAX_LEN {
            return Err(ImageError::BadLength { len: v });
        }
        Ok(v as usize)
    }
    fn bytes_i8(&mut self) -> Result<Vec<i8>, ImageError> {
        let n = self.len()?;
        Ok(self.take(n)?.iter().map(|&b| b as i8).collect())
    }
    fn vec_i16(&mut self) -> Result<Vec<i16>, ImageError> {
        let n = self.len()?;
        (0..n).map(|_| self.i16()).collect()
    }
    fn vec_f32(&mut self) -> Result<Vec<f32>, ImageError> {
        let n = self.len()?;
        (0..n).map(|_| self.f32()).collect()
    }
    fn str_(&mut self) -> Result<String, ImageError> {
        let n = self.len()?;
        Ok(String::from_utf8_lossy(self.take(n)?).into_owned())
    }
}

fn write_mode(w: &mut Writer, mode: NeuronMode) {
    match mode {
        NeuronMode::If => {
            w.u8(0);
            w.u32(0);
        }
        NeuronMode::Lif { leak_shift } => {
            w.u8(1);
            w.u32(leak_shift);
        }
    }
}

fn read_mode(r: &mut Reader) -> Result<NeuronMode, ImageError> {
    let offset = r.pos;
    let tag = r.u8()?;
    let leak = r.u32()?;
    match tag {
        0 => Ok(NeuronMode::If),
        1 => Ok(NeuronMode::Lif { leak_shift: leak }),
        tag => Err(ImageError::BadTag { tag, offset }),
    }
}

fn write_geom(w: &mut Writer, g: &Conv2dGeom) {
    w.u32(g.in_channels as u32);
    w.u32(g.out_channels as u32);
    w.u32(g.in_h as u32);
    w.u32(g.in_w as u32);
    w.u32(g.kernel as u32);
    w.u32(g.stride as u32);
    w.u32(g.padding as u32);
}

fn read_geom(r: &mut Reader) -> Result<Conv2dGeom, ImageError> {
    Ok(Conv2dGeom {
        in_channels: r.u32()? as usize,
        out_channels: r.u32()? as usize,
        in_h: r.u32()? as usize,
        in_w: r.u32()? as usize,
        kernel: r.u32()? as usize,
        stride: r.u32()? as usize,
        padding: r.u32()? as usize,
    })
}

fn write_conv(w: &mut Writer, c: &SnnConv) {
    write_geom(w, &c.geom);
    w.bytes_i8(&c.weights);
    w.u8(c.q_w.shift());
    match c.input {
        ConvInput::Dense { scale } => {
            w.u8(0);
            w.f32(scale);
        }
        ConvInput::Spikes { value } => {
            w.u8(1);
            w.f32(value);
        }
    }
    w.vec_i16(&c.g.iter().map(|q| q.to_raw()).collect::<Vec<_>>());
    w.vec_i16(&c.h);
    w.i16(c.theta);
    w.f32(c.nu);
    w.vec_f32(&c.gf);
    w.vec_f32(&c.hf);
    w.f32(c.step);
    w.u32(c.levels as u32);
    write_mode(w, c.mode);
}

fn read_conv(r: &mut Reader) -> Result<SnnConv, ImageError> {
    let geom = read_geom(r)?;
    let weights = r.bytes_i8()?;
    let q_w = QuantScale::new(r.u8()?.min(15));
    let input_offset = r.pos;
    let input_tag = r.u8()?;
    let input_val = r.f32()?;
    let input = match input_tag {
        0 => ConvInput::Dense { scale: input_val },
        1 => ConvInput::Spikes { value: input_val },
        tag => {
            return Err(ImageError::BadTag {
                tag,
                offset: input_offset,
            })
        }
    };
    let g = r.vec_i16()?.into_iter().map(Q8_8::from_raw).collect();
    let h = r.vec_i16()?;
    let theta = r.i16()?;
    let nu = r.f32()?;
    let gf = r.vec_f32()?;
    let hf = r.vec_f32()?;
    let step = r.f32()?;
    let levels = r.u32()? as usize;
    let mode = read_mode(r)?;
    Ok(SnnConv {
        geom,
        weights,
        q_w,
        input,
        g,
        h,
        theta,
        nu,
        gf,
        hf,
        step,
        levels,
        mode,
    })
}

fn write_config(w: &mut Writer, cfg: &SiaConfig) {
    w.u32(cfg.pe_rows as u32);
    w.u32(cfg.pe_cols as u32);
    w.u64(cfg.clock_hz);
    w.u32(cfg.taps_per_cycle as u32);
    w.usize_(cfg.weight_mem_bytes);
    w.usize_(cfg.spike_in_mem_bytes);
    w.usize_(cfg.residual_mem_bytes);
    w.usize_(cfg.membrane_mem_bytes);
    w.usize_(cfg.output_mem_bytes);
    w.f64(cfg.dma_bytes_per_cycle);
    w.u64(cfg.mmio_cycles_per_word);
    w.u64(cfg.layer_overhead_cycles);
    w.u64(cfg.aggregation_pipeline_depth);
    w.u64(cfg.ops_per_pe_cycle);
    w.f64(cfg.ps_cycles_per_mac);
}

fn read_config(r: &mut Reader) -> Result<SiaConfig, ImageError> {
    Ok(SiaConfig {
        pe_rows: r.u32()? as usize,
        pe_cols: r.u32()? as usize,
        clock_hz: r.u64()?,
        taps_per_cycle: r.u32()? as usize,
        weight_mem_bytes: r.len()?,
        spike_in_mem_bytes: r.len()?,
        residual_mem_bytes: r.len()?,
        membrane_mem_bytes: r.len()?,
        output_mem_bytes: r.len()?,
        dma_bytes_per_cycle: r.f64()?,
        mmio_cycles_per_word: r.u64()?,
        layer_overhead_cycles: r.u64()?,
        aggregation_pipeline_depth: r.u64()?,
        ops_per_pe_cycle: r.u64()?,
        ps_cycles_per_mac: r.f64()?,
    })
}

/// Serialises a converted network plus the configuration it targets into a
/// deployment image.
#[must_use]
pub fn write_image(net: &SnnNetwork, cfg: &SiaConfig) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(&MAGIC);
    w.u16(VERSION);
    write_config(&mut w, cfg);
    w.str_(&net.name);
    w.u32(net.input.0 as u32);
    w.u32(net.input.1 as u32);
    w.u32(net.input.2 as u32);
    w.u32(net.num_classes as u32);
    w.usize_(net.items.len());
    for item in &net.items {
        match item {
            SnnItem::InputConv(c) => {
                w.u8(0);
                write_conv(&mut w, c);
            }
            SnnItem::Conv(c) => {
                w.u8(1);
                write_conv(&mut w, c);
            }
            SnnItem::ConvPsum(c) => {
                w.u8(2);
                write_conv(&mut w, c);
            }
            SnnItem::BlockStart => w.u8(3),
            SnnItem::BlockAdd(a) => {
                w.u8(4);
                match &a.down {
                    Some(d) => {
                        w.u8(1);
                        write_conv(&mut w, d);
                    }
                    None => w.u8(0),
                }
                w.i16(a.skip_add);
                w.f32(a.skip_value);
                w.i16(a.theta);
                w.f32(a.nu);
                w.f32(a.step);
                w.u32(a.levels as u32);
                write_mode(&mut w, a.mode);
                w.u32(a.channels as u32);
                w.u32(a.h as u32);
                w.u32(a.w as u32);
            }
            SnnItem::MaxPoolOr { channels, h, w: ww } => {
                w.u8(5);
                w.u32(*channels as u32);
                w.u32(*h as u32);
                w.u32(*ww as u32);
            }
            SnnItem::Head(l) => {
                w.u8(6);
                w.bytes_i8(&l.weights);
                w.u8(l.q.shift());
                w.vec_f32(&l.bias);
                w.vec_f32(&l.weights_f);
                w.u32(l.channels as u32);
                w.u32(l.in_h as u32);
                w.u32(l.in_w as u32);
                w.u32(l.out as u32);
            }
        }
    }
    w.buf
}

/// Parses a deployment image back into the network and configuration.
///
/// # Errors
///
/// Returns [`ImageError`] for anything that is not a well-formed image
/// written by [`write_image`] — wrong magic, truncation, unknown tags,
/// corrupted length fields or trailing garbage.
pub fn read_image(bytes: &[u8]) -> Result<(SnnNetwork, SiaConfig), ImageError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(ImageError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(ImageError::UnsupportedVersion(version));
    }
    let cfg = read_config(&mut r)?;
    let name = r.str_()?;
    let input = (r.u32()? as usize, r.u32()? as usize, r.u32()? as usize);
    let num_classes = r.u32()? as usize;
    let n_items = r.len()?;
    let mut items = Vec::with_capacity(n_items);
    for _ in 0..n_items {
        let offset = r.pos;
        let tag = r.u8()?;
        let item = match tag {
            0 => SnnItem::InputConv(read_conv(&mut r)?),
            1 => SnnItem::Conv(read_conv(&mut r)?),
            2 => SnnItem::ConvPsum(read_conv(&mut r)?),
            3 => SnnItem::BlockStart,
            4 => {
                let has_down = r.u8()? != 0;
                let down = if has_down {
                    Some(read_conv(&mut r)?)
                } else {
                    None
                };
                SnnItem::BlockAdd(SnnAdd {
                    down,
                    skip_add: r.i16()?,
                    skip_value: r.f32()?,
                    theta: r.i16()?,
                    nu: r.f32()?,
                    step: r.f32()?,
                    levels: r.u32()? as usize,
                    mode: read_mode(&mut r)?,
                    channels: r.u32()? as usize,
                    h: r.u32()? as usize,
                    w: r.u32()? as usize,
                })
            }
            5 => SnnItem::MaxPoolOr {
                channels: r.u32()? as usize,
                h: r.u32()? as usize,
                w: r.u32()? as usize,
            },
            6 => SnnItem::Head(SnnLinear {
                weights: r.bytes_i8()?,
                q: QuantScale::new(r.u8()?.min(15)),
                bias: r.vec_f32()?,
                weights_f: r.vec_f32()?,
                channels: r.u32()? as usize,
                in_h: r.u32()? as usize,
                in_w: r.u32()? as usize,
                out: r.u32()? as usize,
            }),
            tag => return Err(ImageError::BadTag { tag, offset }),
        };
        items.push(item);
    }
    if r.pos != bytes.len() {
        return Err(ImageError::TrailingBytes {
            count: bytes.len() - r.pos,
        });
    }
    Ok((
        SnnNetwork {
            name,
            input,
            items,
            num_classes,
        },
        cfg,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sia_nn::{ActSpec, BnSpec, ConvSpec, LinearSpec, NetworkSpec, SpecItem};
    use sia_snn::{convert, ConvertOptions};
    use sia_tensor::Tensor;

    fn network() -> SnnNetwork {
        let g1 = Conv2dGeom {
            in_channels: 3,
            out_channels: 4,
            in_h: 8,
            in_w: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let spec = NetworkSpec {
            name: "image-test".into(),
            input: (3, 8, 8),
            items: vec![
                SpecItem::Conv(ConvSpec {
                    geom: g1,
                    weights: Tensor::from_vec(
                        vec![4, 3, 3, 3],
                        (0..108).map(|i| ((i % 9) as f32 - 4.0) * 0.05).collect(),
                    ),
                    bn: Some(BnSpec {
                        gamma: vec![1.1; 4],
                        beta: vec![-0.05; 4],
                        mean: vec![0.2; 4],
                        var: vec![0.9; 4],
                        eps: 1e-5,
                    }),
                    act: Some(ActSpec {
                        levels: 8,
                        step: 0.9,
                    }),
                }),
                SpecItem::BlockStart,
                SpecItem::Conv(ConvSpec {
                    geom: Conv2dGeom {
                        in_channels: 4,
                        out_channels: 4,
                        ..g1
                    },
                    weights: Tensor::full(vec![4, 4, 3, 3], 0.07),
                    bn: None,
                    act: Some(ActSpec {
                        levels: 8,
                        step: 0.6,
                    }),
                }),
                SpecItem::Conv(ConvSpec {
                    geom: Conv2dGeom {
                        in_channels: 4,
                        out_channels: 4,
                        ..g1
                    },
                    weights: Tensor::full(vec![4, 4, 3, 3], -0.03),
                    bn: None,
                    act: None,
                }),
                SpecItem::BlockAdd {
                    down: None,
                    act: ActSpec {
                        levels: 8,
                        step: 0.5,
                    },
                },
                SpecItem::MaxPool2x2,
                SpecItem::GlobalAvgPool,
                SpecItem::Linear(LinearSpec {
                    in_features: 4,
                    out_features: 10,
                    weights: Tensor::from_vec(
                        vec![10, 4],
                        (0..40).map(|i| (i as f32 - 20.0) * 0.02).collect(),
                    ),
                    bias: vec![0.125; 10],
                }),
            ],
        };
        convert(&spec, &ConvertOptions::default())
    }

    #[test]
    fn roundtrip_preserves_behaviour_bit_exactly() {
        use sia_snn::IntRunner;
        let net = network();
        let cfg = SiaConfig::pynq_z2();
        let bytes = write_image(&net, &cfg);
        let (net2, cfg2) = read_image(&bytes).expect("roundtrip parses");
        assert_eq!(cfg2, cfg);
        assert_eq!(net2.name, net.name);
        assert_eq!(net2.num_classes, net.num_classes);
        // the loaded network must behave identically
        let img = Tensor::from_vec(
            vec![3, 8, 8],
            (0..192).map(|i| ((i * 7 % 23) as f32) / 23.0).collect(),
        );
        let a = IntRunner::new(&net).run(&img, 8);
        let b = IntRunner::new(&net2).run(&img, 8);
        assert_eq!(a.logits_per_t, b.logits_per_t);
        assert_eq!(a.stats.spikes, b.stats.spikes);
    }

    #[test]
    fn loaded_image_compiles_and_runs_on_the_machine() {
        use crate::compiler::compile_for;
        use crate::machine::SiaMachine;
        let net = network();
        let cfg = SiaConfig::pynq_z2();
        let bytes = write_image(&net, &cfg);
        let (net2, cfg2) = read_image(&bytes).unwrap();
        let program = compile_for(&net2, &cfg2, 8).expect("compiles");
        let mut m = SiaMachine::new(program, cfg2);
        let img = Tensor::full(vec![3, 8, 8], 0.4);
        let run = m.run(&img, 8);
        assert_eq!(run.logits_per_t.len(), 8);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = write_image(&network(), &SiaConfig::pynq_z2());
        bytes[0] = b'X';
        assert_eq!(read_image(&bytes).err(), Some(ImageError::BadMagic));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = write_image(&network(), &SiaConfig::pynq_z2());
        bytes[4] = 0xFF;
        assert!(matches!(
            read_image(&bytes),
            Err(ImageError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn every_truncation_is_detected_without_panicking() {
        let bytes = write_image(&network(), &SiaConfig::pynq_z2());
        // chop at a sample of prefixes across the whole image
        for cut in (0..bytes.len()).step_by(97) {
            let r = read_image(&bytes[..cut]);
            assert!(r.is_err(), "truncation at {cut} parsed successfully");
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = write_image(&network(), &SiaConfig::pynq_z2());
        bytes.extend_from_slice(&[0u8; 7]);
        assert_eq!(
            read_image(&bytes).err(),
            Some(ImageError::TrailingBytes { count: 7 })
        );
    }

    #[test]
    fn corrupted_length_fields_do_not_allocate() {
        let bytes = write_image(&network(), &SiaConfig::pynq_z2());
        // find the first length field of the item list region and blow it up:
        // simpler robust approach — flip high bytes throughout and require
        // errors, not panics or huge allocations
        for pos in (100..bytes.len()).step_by(211) {
            let mut corrupted = bytes.clone();
            corrupted[pos] = 0xFF;
            if pos + 1 < corrupted.len() {
                corrupted[pos + 1] = 0xFF;
            }
            let _ = read_image(&corrupted); // must not panic
        }
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ImageError::BadMagic.to_string().contains("SIA"));
        assert!(ImageError::UnexpectedEof { offset: 5 }
            .to_string()
            .contains('5'));
        assert!(ImageError::BadTag { tag: 9, offset: 3 }
            .to_string()
            .contains("0x09"));
    }
}
