//! Cycle-level simulator of the reconfigurable Spiking Inference
//! Accelerator (SIA) — the paper's primary hardware contribution (§III–IV).
//!
//! The model follows the block diagram of Fig. 2 component by component:
//!
//! * [`pe`] — one processing element: **3 multiplexers + one 8-bit adder**,
//!   accumulating a kernel row (up to 3 taps) per clock cycle into a 16-bit
//!   partial-sum register;
//! * [`spiking_core`] — the **8×8 PE array**. Each PE holds one of up to 64
//!   kernels (the 8 kB weight memory stores "up to 64 kernels"); the array
//!   walks output pixels, broadcasting the input spike window to all PEs.
//!   Rows whose spike taps are all zero are **skipped in zero cycles** —
//!   the event-driven behaviour that gives spiking inference its speed;
//! * [`aggregation`] — the aggregation core: fixed-point batch norm
//!   (`y·G + H` in Q8.8, paper Eq. 2) and the IF/LIF activation unit with
//!   reset-by-subtraction, selected by the mode bit;
//! * [`memory`] — the exact on-chip memory map of §III-D (128 B spike
//!   input, 8 kB weights, 64 kB membrane potentials in **U1/U2 ping-pong**,
//!   128 kB residual parameters, 56 kB outputs) with capacity checking;
//! * [`axi`] — the PS↔PL transfer model: a DMA-style streaming path for
//!   bulk data and the software-driven AXI4-Lite MMIO path whose per-word
//!   cost dominates the fully-connected layer (Table I's ≈ 59 ms FC row);
//! * [`compiler`] — maps a converted [`sia_snn::SnnNetwork`] onto the
//!   accelerator: kernel-group tiling (> 64 output channels ⇒ multiple
//!   passes), weight-chunk streaming when a layer exceeds the weight
//!   memory, and the residual partial-sum path of §IV;
//! * [`machine`] — the top-level executor producing **bit-exact** spike
//!   trains (proven against `sia-snn`'s integer runner) together with
//!   per-layer cycle and transfer counts, the basis of Tables I, II and IV.
//!
//! # Examples
//!
//! ```no_run
//! use sia_accel::{compile, SiaConfig, SiaMachine};
//! # let snn: sia_snn::SnnNetwork = unimplemented!();
//! let program = compile(&snn, &SiaConfig::pynq_z2()).unwrap();
//! let mut machine = SiaMachine::new(program, SiaConfig::pynq_z2());
//! # let image: sia_tensor::Tensor = unimplemented!();
//! let run = machine.run(&image, 8);
//! println!("latency: {:.3} ms", run.report.total_ms());
//! ```

#![forbid(unsafe_code)]

pub mod aggregation;
pub mod axi;
pub mod compiler;
pub mod config;
pub mod controller;
pub mod image;
pub mod machine;
pub mod memory;
pub mod pe;
pub mod report;
pub mod spiking_core;

pub use compiler::{compile, compile_for, plan_conv, CompileError, LayerProgram, Program};
pub use config::SiaConfig;
pub use controller::{ConfigError, Controller, Reg};
pub use image::{read_image, write_image, ImageError};
pub use machine::{MachineRun, SiaEngineFactory, SiaMachine};
pub use report::{CycleReport, LayerCycles};
