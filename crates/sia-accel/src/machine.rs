//! The top-level SIA machine: executes a compiled [`Program`] layer by
//! layer (the sequential flow of Fig. 5), producing **bit-exact** spike
//! trains against `sia-snn`'s integer runner together with the cycle
//! accounting behind Tables I, II and IV.
//!
//! The machine is a backend of the shared [`sia_snn::Engine`] layer: the
//! timestep × layer traversal, input encoding, validation and spike
//! statistics all live in [`sia_snn::drive`], so agreement with the
//! functional runners is structural — the machine adds only the hardware
//! arithmetic (PE-array passes, ping-pong membrane memory, the
//! controller's MMIO protocol) and the cycle/traffic accounting.

use crate::aggregation::BnCoefficients;
use crate::compiler::Program;
use crate::config::SiaConfig;
use crate::controller::Controller;
use crate::memory::PingPongMembranes;
use crate::report::{CycleReport, LayerCycles};
use crate::spiking_core::{run_conv_pass_packed, PassRequest, PassScratch};
use sia_fixed::sat::add16;
use sia_fixed::Q8_8;
use sia_snn::encode::EventStream;
use sia_snn::neuron::step_int;
use sia_snn::scratch::scratch_resize;
use sia_snn::spikeplane::SpikePlane;
use sia_snn::{
    conv_psums_dense_into, conv_psums_int_plane, drive, drive_policy, ConvScratch, DriveScratch,
    Engine, EngineInput, ExitPolicy, KernelPolicy, SnnConv, SnnItem, SnnNetwork, SnnOutput,
    SpikeStats,
};
use sia_telemetry::Value;
use sia_tensor::Tensor;

/// Result of one machine inference.
#[derive(Clone, Debug)]
pub struct MachineRun {
    /// PS-side readout after every timestep (same convention as
    /// [`sia_snn::SnnOutput`]).
    pub logits_per_t: Vec<Vec<f32>>,
    /// Spike statistics, structured identically to the functional runner's.
    pub stats: SpikeStats,
    /// Cycle/traffic accounting.
    pub report: CycleReport,
}

impl From<(SnnOutput, CycleReport)> for MachineRun {
    fn from((out, report): (SnnOutput, CycleReport)) -> Self {
        MachineRun {
            logits_per_t: out.logits_per_t,
            stats: out.stats,
            report,
        }
    }
}

impl MachineRun {
    /// Predicted class at the final timestep.
    ///
    /// # Panics
    ///
    /// Panics on a zero-timestep run.
    #[must_use]
    pub fn predicted(&self) -> usize {
        let logits = self.logits_per_t.last().expect("zero-timestep run");
        let mut best = 0;
        for (i, &v) in logits.iter().enumerate() {
            if v > logits[best] {
                best = i;
            }
        }
        best
    }
}

/// Per-layer execution state while the driver sweeps the layer's timesteps:
/// the accounting row plus the hardware blocks the layer occupies.
#[derive(Clone, Debug)]
struct ActiveLayer {
    cycles: LayerCycles,
    mem: Option<PingPongMembranes>,
    bn: Option<BnCoefficients>,
    /// Kernel groups `(start_channel, size)` — §III-B: output channels are
    /// processed in groups of at most `pe_count`.
    groups: Vec<(usize, usize)>,
}

/// The accelerator executor.
#[derive(Debug)]
pub struct SiaMachine {
    program: Program,
    config: SiaConfig,
    controller: Controller,
    // per-run state, reset by `begin_run`
    report: CycleReport,
    /// One slot per program item, filled by `begin_item` at the run's
    /// first chunk and drained by `end_item` after the traversal — layers
    /// stay live across timestep chunks (their ping-pong membrane banks
    /// carry state from chunk to chunk).
    active: Vec<Option<ActiveLayer>>,
    /// Flat per-timestep psum currents awaiting the closing `BlockAdd`
    /// (`run_timesteps` frames of `pending_len` each).
    pending: Vec<i16>,
    pending_len: usize,
    /// Dense first-layer currents, constant across timesteps.
    input_currents: Vec<i16>,
    head_acc: Vec<i64>,
    run_timesteps: usize,
    // reusable scratch, retained across runs (zero-allocation hot loop)
    conv: ConvScratch,
    pass: PassScratch,
    psums: Vec<i16>,
    mems: Vec<i16>,
    residual: Vec<i16>,
    arenas: DriveScratch,
    /// PE kernel-row segments `(processed, skipped)` since the last
    /// `stage_taps` — psum-stage segments are reported by the closing
    /// `BlockAdd`, matching the functional runners' tap attribution.
    seg_taps: (u64, u64),
    /// Psum kernel policy for the PS-side residual convolutions.
    policy: KernelPolicy,
}

impl SiaMachine {
    /// Builds a machine for a compiled program.
    #[must_use]
    pub fn new(program: Program, config: SiaConfig) -> Self {
        // One self-describing configuration event per machine so a metrics
        // JSONL file carries everything `sia report` needs to derive the
        // roofline (PE-array peak + Fig. 5 memory/AXI budget).
        sia_telemetry::emit(
            "accel.config",
            &[
                ("pe_rows", Value::from(config.pe_rows)),
                ("pe_cols", Value::from(config.pe_cols)),
                ("clock_hz", Value::from(config.clock_hz)),
                ("taps_per_cycle", Value::from(config.taps_per_cycle)),
                ("ops_per_pe_cycle", Value::from(config.ops_per_pe_cycle)),
                (
                    "dma_bytes_per_cycle",
                    Value::from(config.dma_bytes_per_cycle),
                ),
                (
                    "mmio_cycles_per_word",
                    Value::from(config.mmio_cycles_per_word),
                ),
                ("weight_mem_bytes", Value::from(config.weight_mem_bytes)),
                ("membrane_mem_bytes", Value::from(config.membrane_mem_bytes)),
                ("output_mem_bytes", Value::from(config.output_mem_bytes)),
                ("residual_mem_bytes", Value::from(config.residual_mem_bytes)),
                ("spike_in_mem_bytes", Value::from(config.spike_in_mem_bytes)),
                (
                    "layer_overhead_cycles",
                    Value::from(config.layer_overhead_cycles),
                ),
            ],
        );
        SiaMachine {
            program,
            config,
            controller: Controller::new(),
            report: CycleReport::default(),
            active: Vec::new(),
            pending: Vec::new(),
            pending_len: 0,
            input_currents: Vec::new(),
            head_acc: Vec::new(),
            run_timesteps: 0,
            conv: ConvScratch::new(),
            pass: PassScratch::default(),
            psums: Vec::new(),
            mems: Vec::new(),
            residual: Vec::new(),
            arenas: DriveScratch::default(),
            seg_taps: (0, 0),
            policy: KernelPolicy::Auto,
        }
    }

    /// Selects the psum kernel policy for PS-side residual convolutions
    /// (the same calibrated sparse/dense decision the functional runners
    /// make — see [`sia_snn::KernelPolicy`]).
    pub fn set_kernel_policy(&mut self, policy: KernelPolicy) {
        self.policy = policy;
    }

    /// Layer passes started since construction (controller status).
    #[must_use]
    pub fn layers_started(&self) -> u64 {
        self.controller.layers_started
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Runs a `timesteps`-step inference on one `C×H×W` image.
    ///
    /// # Panics
    ///
    /// Panics if `timesteps == 0` or the network does not start with an
    /// input conv.
    #[must_use]
    pub fn run(&mut self, image: &Tensor, timesteps: usize) -> MachineRun {
        self.run_with(image, timesteps, 0)
    }

    /// [`SiaMachine::run`] with readout burn-in (see
    /// [`sia_snn::IntRunner::run_with`]).
    ///
    /// # Panics
    ///
    /// Panics if `timesteps == 0` or `burn_in >= timesteps`.
    #[must_use]
    pub fn run_with(&mut self, image: &Tensor, timesteps: usize, burn_in: usize) -> MachineRun {
        drive(self, EngineInput::Image(image), timesteps, burn_in).into()
    }

    /// Runs on a DVS-style event stream (paper §IV: event-driven data
    /// transferred directly to the SIA; the first layer executes on the PE
    /// array like any other spiking convolution).
    ///
    /// # Panics
    ///
    /// Panics if the network was converted for dense input, the stream is
    /// shorter than `timesteps`, or `burn_in >= timesteps`.
    #[must_use]
    pub fn run_events(
        &mut self,
        events: &EventStream,
        timesteps: usize,
        burn_in: usize,
    ) -> MachineRun {
        drive(self, EngineInput::Events(events), timesteps, burn_in).into()
    }

    /// [`SiaMachine::run_with`] under a confidence-gated exit policy (see
    /// [`sia_snn::drive_policy`]): exited images cost proportionally fewer
    /// modelled cycles, so the report prices the *real* hardware saving.
    ///
    /// # Panics
    ///
    /// Panics if `timesteps == 0` or `burn_in >= timesteps`.
    #[must_use]
    pub fn run_policy(
        &mut self,
        image: &Tensor,
        timesteps: usize,
        burn_in: usize,
        policy: ExitPolicy,
    ) -> MachineRun {
        drive_policy(self, EngineInput::Image(image), timesteps, burn_in, policy).into()
    }
}

/// Where a PL conv timestep delivers its result: spikes into a packed
/// plane (spiking stage) or batch-normed currents into a pending-psum
/// frame (psum stage).
enum PlOut<'a> {
    Spikes(&'a mut SpikePlane),
    Currents(&'a mut [i16]),
}

/// The machine state one PL conv timestep works with: configuration, the
/// controller, the layer's hardware blocks, and the reusable scratch
/// buffers (bundled so the pass sequence stays a free function without an
/// unwieldy parameter list).
struct PlConvCtx<'a> {
    cfg: &'a SiaConfig,
    controller: &'a mut Controller,
    state: &'a mut ActiveLayer,
    pass: &'a mut PassScratch,
    psums: &'a mut Vec<i16>,
    mems: &'a mut Vec<i16>,
    taps: &'a mut (u64, u64),
}

/// One PE-array pass sequence for one timestep of a PL conv layer: the PS
/// programs the register file per kernel group, the controller validates
/// and starts the pass, the cores run, aggregation spikes (or exports
/// currents for a psum stage). Works entirely on the bit-packed input
/// plane and the context's scratch buffers — the warm timestep loop
/// allocates nothing.
fn pl_conv_timestep(
    c: &SnnConv,
    ctx: &mut PlConvCtx<'_>,
    plane: &SpikePlane,
    timesteps: usize,
    mut out: PlOut<'_>,
) {
    let (oh, ow) = c.geom.out_hw();
    let per_ch = oh * ow;
    let cfg = ctx.cfg;
    let ActiveLayer {
        cycles,
        mem,
        bn,
        groups,
    } = ctx.state;
    let bn = bn.as_ref().expect("conv layers carry BN coefficients");
    if let PlOut::Spikes(o) = &mut out {
        o.reset(c.geom.out_channels, oh, ow);
    }
    for &(start, size) in groups.iter() {
        // §III-C: the PS programs the register file and starts the pass; the
        // controller validates the image before the cores run. A compiled
        // program can never produce a bad image.
        ctx.controller
            .program_layer(&c.geom, c.theta, c.mode, timesteps, start, size);
        ctx.controller
            .start(cfg.pe_count())
            .expect("compiled programs produce valid register images");
        let pass = run_conv_pass_packed(
            &PassRequest {
                geom: &c.geom,
                weights: &c.weights,
                group_start: start,
                group_size: size,
            },
            plane,
            cfg,
            ctx.pass,
            ctx.psums,
        );
        ctx.controller.finish(); // per-pass done interrupt
        cycles.compute_cycles += pass.cycles + cfg.aggregation_pipeline_depth;
        cycles.active_pe_cycles += pass.active_pe_cycles;
        cycles.ops += pass.active_pe_cycles * cfg.ops_per_pe_cycle;
        // what a dense schedule would have cost: every segment, processed
        // or skipped, at the full group width
        cycles.nominal_ops +=
            (pass.processed_segments + pass.skipped_segments) * size as u64 * cfg.ops_per_pe_cycle;
        ctx.taps.0 += pass.processed_segments;
        ctx.taps.1 += pass.skipped_segments;
        sia_telemetry::counter!("accel.pe.active_cycles", pass.active_pe_cycles);
        sia_telemetry::counter!("accel.pe.segments_processed", pass.processed_segments);
        sia_telemetry::counter!("accel.pe.segments_skipped", pass.skipped_segments);
        match &mut out {
            PlOut::Spikes(o) => {
                let mem = mem.as_mut().expect("spiking conv has membranes");
                scratch_resize(ctx.mems, size * per_ch, 0);
                for (j, m) in ctx.mems.iter_mut().enumerate() {
                    *m = mem.read(start * per_ch + j);
                }
                // aggregation tile (BN + IF/LIF), overlapped with the
                // spiking core except the pipeline fill counted above
                for (j, (&p, u)) in ctx.psums.iter().zip(ctx.mems.iter_mut()).enumerate() {
                    let current = bn.apply(p, start + j / per_ch);
                    if step_int(u, current, c.theta, c.mode) {
                        o.set_linear(start * per_ch + j);
                        cycles.spikes += 1;
                    }
                }
                for (j, &u) in ctx.mems.iter().enumerate() {
                    mem.write(start * per_ch + j, u);
                }
            }
            PlOut::Currents(o) => {
                for (j, &p) in ctx.psums.iter().enumerate() {
                    o[start * per_ch + j] = bn.apply(p, start + j / per_ch);
                }
            }
        }
    }
    if matches!(out, PlOut::Spikes(_)) {
        let mem = mem.as_mut().expect("spiking conv has membranes");
        mem.toggle();
        sia_telemetry::counter!("accel.pingpong.switches", 1);
    }
}

impl Engine for SiaMachine {
    type Extra = CycleReport;

    fn network(&self) -> &SnnNetwork {
        &self.program.network
    }

    fn span_name(&self) -> &'static str {
        "accel.run"
    }

    fn take_drive_scratch(&mut self) -> DriveScratch {
        std::mem::take(&mut self.arenas)
    }

    fn put_drive_scratch(&mut self, scratch: DriveScratch) {
        self.arenas = scratch;
    }

    fn begin_run(&mut self, timesteps: usize) {
        self.report = CycleReport::for_config(&self.config);
        self.active.clear();
        self.active
            .resize_with(self.program.network.items.len(), || None);
        self.pending.clear();
        self.pending_len = 0;
        self.input_currents.clear();
        self.head_acc.clear();
        self.run_timesteps = timesteps;
        self.seg_taps = (0, 0);
    }

    fn begin_item(&mut self, idx: usize, _timesteps: usize) {
        let lp = &self.program.layers[idx];
        let cfg = &self.config;
        let mut cycles = LayerCycles {
            name: lp.name.clone(),
            transfer_cycles: lp.traffic.cycles(cfg),
            overlapped: lp.on_pl,
            ..LayerCycles::default()
        };
        let (mem, bn, groups) = match &self.program.network.items[idx] {
            SnnItem::InputConv(c) => {
                // dense frame conversion runs on the PS once per image
                cycles.compute_cycles += (c.geom.macs() as f64 * cfg.ps_cycles_per_mac) as u64;
                cycles.overhead_cycles = cfg.layer_overhead_cycles;
                let neurons = c.out_neurons();
                let mut mem = PingPongMembranes::new(cfg.membrane_mem_bytes.max(neurons * 4));
                mem.precharge(c.theta / 2, neurons);
                (Some(mem), None, Vec::new())
            }
            SnnItem::Conv(c) | SnnItem::ConvPsum(c) => {
                cycles.overhead_cycles = cfg.layer_overhead_cycles;
                let mut groups = Vec::new();
                let mut start = 0;
                while start < c.geom.out_channels {
                    let size = (c.geom.out_channels - start).min(cfg.pe_count());
                    groups.push((start, size));
                    start += size;
                }
                let bn = BnCoefficients {
                    g: c.g.clone(),
                    h: c.h.clone(),
                };
                let mem = if matches!(&self.program.network.items[idx], SnnItem::Conv(_)) {
                    let neurons = c.out_neurons();
                    let mut mem = PingPongMembranes::new(cfg.membrane_mem_bytes.max(neurons * 4));
                    mem.precharge(c.theta / 2, neurons);
                    Some(mem)
                } else {
                    None // psum stage: currents bypass the membrane banks
                };
                (mem, Some(bn), groups)
            }
            SnnItem::BlockAdd(a) => {
                cycles.overhead_cycles = cfg.layer_overhead_cycles;
                let mut mem = PingPongMembranes::new(cfg.membrane_mem_bytes.max(a.neurons() * 4));
                mem.precharge(a.theta / 2, a.neurons());
                let identity_bn = BnCoefficients {
                    g: vec![Q8_8::ONE],
                    h: vec![0],
                };
                (Some(mem), Some(identity_bn), Vec::new())
            }
            SnnItem::MaxPoolOr { channels, h, w } => {
                // one OR gate per output per timestep, fully parallel in
                // the PL: a handful of cycles, dominated by streaming
                cycles.compute_cycles += (channels * h * w / 4) as u64 / 16;
                (None, None, Vec::new())
            }
            SnnItem::Head(l) => {
                cycles.overhead_cycles = cfg.layer_overhead_cycles;
                cycles.overlapped = false; // driver-paced
                                           // per-timestep PS compute is priced in `end_item`, once the
                                           // executed timestep count (early exit!) is known
                scratch_resize(&mut self.head_acc, l.out, 0);
                (None, None, Vec::new())
            }
            SnnItem::BlockStart => (None, None, Vec::new()),
        };
        self.active[idx] = Some(ActiveLayer {
            cycles,
            mem,
            bn,
            groups,
        });
    }

    fn end_item(&mut self, idx: usize, executed: usize) {
        let lp = &self.program.layers[idx];
        let state = self.active[idx].take().expect("begin_item ran");
        let mut cycles = state.cycles;
        if let SnnItem::Head(l) = &self.program.network.items[idx] {
            // one INT8 GEMV over the spike accumulators per executed
            // timestep — an early exit skips the remaining readouts
            cycles.compute_cycles += ((l.out * l.channels * l.in_h * l.in_w) as f64
                * self.config.ps_cycles_per_mac
                * executed as f64) as u64;
        }
        // spiking-unit count of the stage, for spike-density attribution
        let neurons = match &self.program.network.items[idx] {
            SnnItem::InputConv(c) | SnnItem::Conv(c) | SnnItem::ConvPsum(c) => c.out_neurons(),
            SnnItem::BlockAdd(a) => a.neurons(),
            SnnItem::MaxPoolOr { channels, h, w } => channels * h * w / 4,
            SnnItem::Head(l) => l.out,
            SnnItem::BlockStart => 0,
        };
        // live counters, reconciled against the CycleReport totals by the
        // telemetry integration tests
        sia_telemetry::counter!("accel.layers", 1);
        sia_telemetry::counter!("accel.compute_cycles", cycles.compute_cycles);
        sia_telemetry::counter!("accel.transfer_cycles", cycles.transfer_cycles);
        sia_telemetry::counter!("accel.total_cycles", cycles.total_cycles());
        sia_telemetry::counter!("accel.spikes", cycles.spikes);
        sia_telemetry::counter!("accel.ops", cycles.ops);
        sia_telemetry::counter!("accel.nominal_ops", cycles.nominal_ops);
        sia_telemetry::counter!("accel.axi.stream_bytes", lp.traffic.stream_bytes() as u64);
        sia_telemetry::counter!(
            "accel.axi.mmio_words",
            (lp.traffic.config_words + lp.traffic.mmio_data_words) as u64
        );
        sia_telemetry::emit(
            "accel.layer",
            &[
                ("name", Value::from(cycles.name.as_str())),
                ("compute_cycles", Value::from(cycles.compute_cycles)),
                ("transfer_cycles", Value::from(cycles.transfer_cycles)),
                ("overhead_cycles", Value::from(cycles.overhead_cycles)),
                ("total_cycles", Value::from(cycles.total_cycles())),
                ("overlapped", Value::from(cycles.overlapped)),
                ("spikes", Value::from(cycles.spikes)),
                ("ops", Value::from(cycles.ops)),
                ("nominal_ops", Value::from(cycles.nominal_ops)),
                ("active_pe_cycles", Value::from(cycles.active_pe_cycles)),
                ("neurons", Value::from(neurons)),
                ("timesteps", Value::from(executed)),
                ("stream_bytes", Value::from(lp.traffic.stream_bytes())),
                (
                    "mmio_words",
                    Value::from(lp.traffic.config_words + lp.traffic.mmio_data_words),
                ),
            ],
        );
        self.report.layers.push(cycles);
    }

    fn step_input_conv(&mut self, idx: usize, codes: &[i8], t: usize, out: &mut SpikePlane) {
        if t == 0 {
            let SnnItem::InputConv(c) = &self.program.network.items[idx] else {
                unreachable!("step_input_conv on a non-input item")
            };
            let psums = conv_psums_dense_into(c, codes, &mut self.conv);
            let per_ch = psums.len() / c.geom.out_channels;
            scratch_resize(&mut self.input_currents, psums.len(), 0);
            for (i, &p) in psums.iter().enumerate() {
                self.input_currents[i] = add16(c.g[i / per_ch].mul_int_wide(p), c.h[i / per_ch]);
            }
        }
        let SiaMachine {
            program,
            active,
            input_currents,
            ..
        } = self;
        let SnnItem::InputConv(c) = &program.network.items[idx] else {
            unreachable!("step_input_conv on a non-input item")
        };
        let ActiveLayer { cycles, mem, .. } = active[idx].as_mut().expect("begin_item ran");
        let mem = mem.as_mut().expect("input conv has membranes");
        let (oh, ow) = c.geom.out_hw();
        out.reset(c.geom.out_channels, oh, ow);
        for (i, &cur) in input_currents.iter().enumerate() {
            let mut u = mem.read(i);
            if step_int(&mut u, cur, c.theta, c.mode) {
                out.set_linear(i);
                cycles.spikes += 1;
            }
            mem.write(i, u);
        }
        mem.toggle();
        sia_telemetry::counter!("accel.pingpong.switches", 1);
        cycles.compute_cycles += input_currents.len() as u64;
    }

    fn step_conv(&mut self, idx: usize, spikes: &SpikePlane, _t: usize, out: &mut SpikePlane) {
        let SiaMachine {
            program,
            config,
            controller,
            active,
            run_timesteps,
            pass,
            psums,
            mems,
            seg_taps,
            ..
        } = self;
        let SnnItem::Conv(c) = &program.network.items[idx] else {
            unreachable!("step_conv on a non-conv item")
        };
        let mut ctx = PlConvCtx {
            cfg: config,
            controller,
            state: active[idx].as_mut().expect("begin_item ran"),
            pass,
            psums,
            mems,
            taps: seg_taps,
        };
        pl_conv_timestep(c, &mut ctx, spikes, *run_timesteps, PlOut::Spikes(out));
    }

    fn step_conv_psum(&mut self, idx: usize, spikes: &SpikePlane, t: usize) {
        let SiaMachine {
            program,
            config,
            controller,
            active,
            pending,
            pending_len,
            run_timesteps,
            pass,
            psums,
            mems,
            seg_taps,
            ..
        } = self;
        let SnnItem::ConvPsum(c) = &program.network.items[idx] else {
            unreachable!("step_conv_psum on a non-psum item")
        };
        // Differently-sized psum stages share this buffer; under the
        // chunked driver each stage revisits it every chunk (not only at
        // t == 0), so re-shape whenever the frame geometry changes.
        let needed = *run_timesteps * c.out_neurons();
        if c.out_neurons() != *pending_len || pending.len() != needed {
            *pending_len = c.out_neurons();
            scratch_resize(pending, needed, 0);
        }
        let frame = &mut pending[t * *pending_len..(t + 1) * *pending_len];
        let mut ctx = PlConvCtx {
            cfg: config,
            controller,
            state: active[idx].as_mut().expect("begin_item ran"),
            pass,
            psums,
            mems,
            taps: seg_taps,
        };
        pl_conv_timestep(c, &mut ctx, spikes, *run_timesteps, PlOut::Currents(frame));
    }

    fn step_block_add(&mut self, idx: usize, skip: &SpikePlane, t: usize, out: &mut SpikePlane) {
        let SiaMachine {
            program,
            config,
            active,
            pending,
            pending_len,
            conv,
            mems,
            residual,
            policy,
            ..
        } = self;
        let SnnItem::BlockAdd(a) = &program.network.items[idx] else {
            unreachable!("step_block_add on a non-add item")
        };
        let n = a.neurons();
        // PS-side residual currents (§IV), saturating accumulation with the
        // pending psum frame of this timestep
        scratch_resize(residual, n, 0);
        match &a.down {
            Some(d) => {
                let psums = conv_psums_int_plane(d, skip, *policy, conv, idx * 2 + 1);
                assert_eq!(
                    *pending_len,
                    psums.len(),
                    "residual shape mismatch (pending {}, skip {})",
                    pending_len,
                    psums.len()
                );
                let per_ch = psums.len() / d.geom.out_channels;
                let pend = &pending[t * *pending_len..(t + 1) * *pending_len];
                for (i, (r, &p)) in residual.iter_mut().zip(psums).enumerate() {
                    let skip_cur = add16(d.g[i / per_ch].mul_int(p), d.h[i / per_ch]);
                    *r = add16(pend[i], skip_cur);
                }
            }
            None => {
                assert_eq!(
                    *pending_len,
                    skip.len(),
                    "residual shape mismatch (pending {}, skip {})",
                    pending_len,
                    skip.len()
                );
                let pend = &pending[t * *pending_len..(t + 1) * *pending_len];
                for (i, (r, &p)) in residual.iter_mut().zip(pend).enumerate() {
                    let skip_cur = if skip.bit_linear(i) { a.skip_add } else { 0 };
                    *r = add16(p, skip_cur);
                }
            }
        }
        let ActiveLayer {
            cycles, mem, bn, ..
        } = active[idx].as_mut().expect("begin_item ran");
        let mem = mem.as_mut().expect("block add has membranes");
        let bn = bn.as_ref().expect("block add carries identity BN");
        scratch_resize(mems, n, 0);
        for (i, m) in mems.iter_mut().enumerate() {
            *m = mem.read(i);
        }
        out.reset(a.channels, a.h, a.w);
        // aggregation tile over the accumulated currents (identity BN)
        for (i, (&total, u)) in residual.iter().zip(mems.iter_mut()).enumerate() {
            let current = bn.apply(total, 0);
            if step_int(u, current, a.theta, a.mode) {
                out.set_linear(i);
                cycles.spikes += 1;
            }
        }
        for (i, &u) in mems.iter().enumerate() {
            mem.write(i, u);
        }
        mem.toggle();
        sia_telemetry::counter!("accel.pingpong.switches", 1);
        cycles.compute_cycles += config.aggregation_pipeline_depth + n as u64;
        if let Some(d) = &a.down {
            cycles.compute_cycles += (d.geom.macs() as f64 * config.ps_cycles_per_mac) as u64;
        }
    }

    fn head_accumulate(&mut self, idx: usize, spikes: &SpikePlane) {
        let SnnItem::Head(l) = &self.program.network.items[idx] else {
            unreachable!("head_accumulate on a non-head item")
        };
        let per_ch = l.in_h * l.in_w;
        for (o, acc) in self.head_acc.iter_mut().enumerate() {
            let mut a = 0i64;
            spikes.for_each_set_linear(|i| {
                a += i64::from(l.weights[o * l.channels + i / per_ch]);
            });
            *acc += a;
        }
    }

    fn head_readout_into(&self, idx: usize, t_eff: usize, out: &mut [f32]) {
        let SnnItem::Head(l) = &self.program.network.items[idx] else {
            unreachable!("head_readout on a non-head item")
        };
        for ((o, &a), &b) in out.iter_mut().zip(&self.head_acc).zip(&l.bias) {
            *o = a as f32 * l.q.scale() / t_eff as f32 + b;
        }
    }

    fn stage_taps(&mut self, _idx: usize) -> Option<(u64, u64)> {
        // PE kernel-row segments plus the PS-side (down/input) conv taps —
        // the machine's event-driven accounting in the same two buckets as
        // the functional runners
        let (cp, cs) = self.conv.take_taps();
        let (sp, ss) = std::mem::take(&mut self.seg_taps);
        Some((cp + sp, cs + ss))
    }

    fn finish_run(&mut self) -> CycleReport {
        std::mem::take(&mut self.report)
    }
}

/// [`sia_snn::EngineFactory`] building one [`SiaMachine`] per pool worker
/// from a compiled program — the accelerator backend of the persistent
/// engine pool. Each worker's machine keeps its scratch arenas resident
/// across every batch the pool serves.
#[derive(Clone, Debug)]
pub struct SiaEngineFactory {
    program: Program,
    config: SiaConfig,
    policy: KernelPolicy,
}

impl SiaEngineFactory {
    /// Creates a factory over a compiled program and its configuration.
    #[must_use]
    pub fn new(program: Program, config: SiaConfig) -> Self {
        SiaEngineFactory {
            program,
            config,
            policy: KernelPolicy::Auto,
        }
    }

    /// Sets the psum kernel policy every built machine starts with.
    #[must_use]
    pub fn with_kernel_policy(mut self, policy: KernelPolicy) -> Self {
        self.policy = policy;
        self
    }
}

impl sia_snn::EngineFactory for SiaEngineFactory {
    type Engine<'a> = SiaMachine;

    fn build(&self) -> SiaMachine {
        let mut machine = SiaMachine::new(self.program.clone(), self.config.clone());
        machine.set_kernel_policy(self.policy);
        machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile_for;
    use sia_nn::{ActSpec, BnSpec, ConvSpec, LinearSpec, NetworkSpec, SpecItem};
    use sia_snn::{convert, ConvertOptions, IntRunner};
    use sia_tensor::Conv2dGeom;

    /// A small but structurally complete network: input conv, residual
    /// block with downsample, OR-pool, head.
    fn full_spec() -> NetworkSpec {
        let g1 = Conv2dGeom {
            in_channels: 3,
            out_channels: 4,
            in_h: 8,
            in_w: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let g2 = Conv2dGeom {
            in_channels: 4,
            out_channels: 8,
            in_h: 8,
            in_w: 8,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let g3 = Conv2dGeom {
            in_channels: 8,
            out_channels: 8,
            in_h: 4,
            in_w: 4,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let gd = Conv2dGeom {
            in_channels: 4,
            out_channels: 8,
            in_h: 8,
            in_w: 8,
            kernel: 1,
            stride: 2,
            padding: 0,
        };
        let bn = |ch: usize| BnSpec {
            gamma: vec![1.0; ch],
            beta: vec![0.05; ch],
            mean: vec![0.1; ch],
            var: vec![1.0; ch],
            eps: 1e-5,
        };
        let w = |n: usize, seed: usize| {
            Tensor::from_vec(
                vec![n],
                (0..n)
                    .map(|i| (((i * 31 + seed * 7) % 17) as f32 - 8.0) * 0.05)
                    .collect(),
            )
        };
        NetworkSpec {
            name: "full".into(),
            input: (3, 8, 8),
            items: vec![
                SpecItem::Conv(ConvSpec {
                    geom: g1,
                    weights: w(4 * 3 * 9, 1).reshape(vec![4, 3, 3, 3]),
                    bn: Some(bn(4)),
                    act: Some(ActSpec {
                        levels: 8,
                        step: 0.7,
                    }),
                }),
                SpecItem::BlockStart,
                SpecItem::Conv(ConvSpec {
                    geom: g2,
                    weights: w(8 * 4 * 9, 2).reshape(vec![8, 4, 3, 3]),
                    bn: Some(bn(8)),
                    act: Some(ActSpec {
                        levels: 8,
                        step: 0.5,
                    }),
                }),
                SpecItem::Conv(ConvSpec {
                    geom: g3,
                    weights: w(8 * 8 * 9, 3).reshape(vec![8, 8, 3, 3]),
                    bn: Some(bn(8)),
                    act: None,
                }),
                SpecItem::BlockAdd {
                    down: Some(ConvSpec {
                        geom: gd,
                        weights: w(8 * 4, 4).reshape(vec![8, 4, 1, 1]),
                        bn: Some(bn(8)),
                        act: None,
                    }),
                    act: ActSpec {
                        levels: 8,
                        step: 0.6,
                    },
                },
                SpecItem::MaxPool2x2,
                SpecItem::GlobalAvgPool,
                SpecItem::Linear(LinearSpec {
                    in_features: 8,
                    out_features: 10,
                    weights: w(80, 5).reshape(vec![10, 8]),
                    bias: vec![0.01; 10],
                }),
            ],
        }
    }

    fn image() -> Tensor {
        Tensor::from_vec(
            vec![3, 8, 8],
            (0..192).map(|i| ((i * 13 % 29) as f32) / 29.0).collect(),
        )
    }

    #[test]
    fn machine_is_bit_exact_with_int_runner() {
        let net = convert(&full_spec(), &ConvertOptions::default());
        let cfg = SiaConfig::pynq_z2();
        let program = compile_for(&net, &cfg, 8).unwrap();
        let mut machine = SiaMachine::new(program, cfg);
        let img = image();
        let hw = machine.run(&img, 8);
        let sw = IntRunner::new(&net).run(&img, 8);
        assert_eq!(hw.logits_per_t, sw.logits_per_t, "logits diverged");
        assert_eq!(hw.stats.spikes, sw.stats.spikes, "spike counts diverged");
        assert_eq!(hw.predicted(), sw.predicted());
    }

    #[test]
    fn machine_burn_in_matches_runner_burn_in() {
        let net = convert(&full_spec(), &ConvertOptions::default());
        let cfg = SiaConfig::pynq_z2();
        let program = compile_for(&net, &cfg, 8).unwrap();
        let mut machine = SiaMachine::new(program, cfg);
        let img = image();
        let hw = machine.run_with(&img, 8, 3);
        let sw = IntRunner::new(&net).run_with(&img, 8, 3);
        assert_eq!(hw.logits_per_t, sw.logits_per_t);
    }

    #[test]
    fn report_has_meaningful_cycles() {
        let net = convert(&full_spec(), &ConvertOptions::default());
        let cfg = SiaConfig::pynq_z2();
        let program = compile_for(&net, &cfg, 8).unwrap();
        let mut machine = SiaMachine::new(program, cfg.clone());
        let run = machine.run(&image(), 8);
        assert!(run.report.total_cycles() > 0);
        assert!(run.report.total_ms() > 0.0);
        assert!(run.report.total_ops() > 0);
        let util = run.report.pe_utilization();
        assert!(util > 0.0 && util <= 1.0, "utilisation {util}");
        // every PL conv layer spent compute cycles
        for l in &run.report.layers {
            if l.name.starts_with("conv") {
                assert!(l.compute_cycles > 0, "{} has no compute", l.name);
            }
        }
    }

    #[test]
    fn sparser_input_is_faster() {
        let net = convert(&full_spec(), &ConvertOptions::default());
        let cfg = SiaConfig::pynq_z2();
        let program = compile_for(&net, &cfg, 8).unwrap();
        let mut machine = SiaMachine::new(program, cfg);
        let bright = machine.run(&image(), 8);
        let dark = machine.run(&Tensor::zeros(vec![3, 8, 8]), 8);
        let conv_cycles = |r: &MachineRun| -> u64 {
            r.report
                .layers
                .iter()
                .filter(|l| l.name.starts_with("conv"))
                .map(|l| l.compute_cycles)
                .sum()
        };
        assert!(conv_cycles(&dark) < conv_cycles(&bright));
    }

    #[test]
    fn unreachable_exit_threshold_is_bit_exact_with_fixed_run() {
        let net = convert(&full_spec(), &ConvertOptions::default());
        let cfg = SiaConfig::pynq_z2();
        let program = compile_for(&net, &cfg, 8).unwrap();
        let mut machine = SiaMachine::new(program, cfg);
        let img = image();
        let fixed = machine.run(&img, 8);
        for window in [1, 2, 3, 8] {
            let never = machine.run_policy(
                &img,
                8,
                0,
                ExitPolicy::Margin {
                    threshold: f32::INFINITY,
                    window,
                },
            );
            assert_eq!(never.logits_per_t, fixed.logits_per_t, "window {window}");
            assert_eq!(never.stats, fixed.stats, "window {window}");
            assert_eq!(
                never.report.total_cycles(),
                fixed.report.total_cycles(),
                "window {window}"
            );
        }
    }

    #[test]
    fn early_exit_is_a_prefix_and_saves_cycles() {
        let net = convert(&full_spec(), &ConvertOptions::default());
        let cfg = SiaConfig::pynq_z2();
        let program = compile_for(&net, &cfg, 8).unwrap();
        let mut machine = SiaMachine::new(program, cfg);
        let img = image();
        let fixed = machine.run(&img, 8);
        let policy = ExitPolicy::Margin {
            threshold: 0.0,
            window: 1,
        };
        let early = machine.run_policy(&img, 8, 0, policy);
        let t = early.logits_per_t.len();
        assert!(t < 8, "threshold 0 must exit at the first boundary");
        assert_eq!(early.logits_per_t[..], fixed.logits_per_t[..t]);
        assert_eq!(early.stats.timesteps, t as u64);
        // the modelled hardware prices the skipped timesteps: fewer PL conv
        // passes and head readouts → strictly fewer cycles
        assert!(
            early.report.total_cycles() < fixed.report.total_cycles(),
            "exit at t={t} saved no cycles ({} vs {})",
            early.report.total_cycles(),
            fixed.report.total_cycles()
        );
    }

    #[test]
    fn more_timesteps_cost_more_cycles() {
        let net = convert(&full_spec(), &ConvertOptions::default());
        let cfg = SiaConfig::pynq_z2();
        let mut m4 = SiaMachine::new(compile_for(&net, &cfg, 4).unwrap(), cfg.clone());
        let mut m8 = SiaMachine::new(compile_for(&net, &cfg, 8).unwrap(), cfg);
        let img = image();
        let a = m4.run(&img, 4);
        let b = m8.run(&img, 8);
        assert!(a.report.total_cycles() < b.report.total_cycles());
    }
}

#[cfg(test)]
mod controller_integration {
    use super::*;
    use crate::compiler::compile_for;
    use sia_nn::{ActSpec, ConvSpec, LinearSpec, NetworkSpec, SpecItem};
    use sia_snn::{convert, ConvertOptions};
    use sia_tensor::Conv2dGeom;

    #[test]
    fn controller_counts_one_start_per_group_pass_per_timestep() {
        let geom = Conv2dGeom {
            in_channels: 3,
            out_channels: 100, // two kernel groups on a 64-PE array
            in_h: 4,
            in_w: 4,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let spec = NetworkSpec {
            name: "ctl".into(),
            input: (3, 4, 4),
            items: vec![
                SpecItem::Conv(ConvSpec {
                    geom,
                    weights: Tensor::full(vec![100, 3, 3, 3], 0.05),
                    bn: None,
                    act: Some(ActSpec {
                        levels: 4,
                        step: 1.0,
                    }),
                }),
                SpecItem::Conv(ConvSpec {
                    geom: Conv2dGeom {
                        in_channels: 100,
                        out_channels: 10,
                        ..geom
                    },
                    weights: Tensor::full(vec![10, 100, 3, 3], 0.01),
                    bn: None,
                    act: Some(ActSpec {
                        levels: 4,
                        step: 1.0,
                    }),
                }),
                SpecItem::GlobalAvgPool,
                SpecItem::Linear(LinearSpec {
                    in_features: 10,
                    out_features: 4,
                    weights: Tensor::full(vec![4, 10], 0.1),
                    bias: vec![0.0; 4],
                }),
            ],
        };
        let net = convert(&spec, &ConvertOptions::default());
        let cfg = SiaConfig::pynq_z2();
        let mut m = SiaMachine::new(compile_for(&net, &cfg, 4).unwrap(), cfg);
        assert_eq!(m.layers_started(), 0);
        let _ = m.run(&Tensor::full(vec![3, 4, 4], 0.5), 4);
        // first conv is dense-input (PS-side, no controller); the second PL
        // conv has one group, but the first *spiking* conv in this net is
        // the 100-channel one? No: the 100-channel conv is dense-input.
        // PL convs: the 10-channel conv → 1 group × 4 timesteps = 4 starts.
        assert_eq!(m.layers_started(), 4);
    }
}
