//! The top-level SIA machine: executes a compiled [`Program`] layer by
//! layer (the sequential flow of Fig. 5), producing **bit-exact** spike
//! trains against `sia-snn`'s integer runner together with the cycle
//! accounting behind Tables I, II and IV.
//!
//! Execution order differs from the functional runner — the hardware
//! finishes all `T` timesteps of a layer before moving on (its membrane
//! memory is per-layer, operated ping-pong) — but each `(layer, t)` value
//! is a pure function of the previous layer's timestep-`t` spikes, so the
//! results are identical.

use crate::aggregation::{accumulate_residual, run_tile, BnCoefficients};
use crate::compiler::Program;
use crate::config::SiaConfig;
use crate::controller::Controller;
use crate::memory::PingPongMembranes;
use crate::report::{CycleReport, LayerCycles};
use crate::spiking_core::run_conv_pass;
use sia_fixed::sat::add16;
use sia_fixed::{QuantScale, Q8_8};
use sia_snn::network::ConvInput;
use sia_snn::encode::EventStream;
use sia_snn::{
    conv_psums_dense, conv_psums_int, encode, or_pool, spiking_stage_sizes, SnnConv, SnnItem,
    SpikeStats,
};
use sia_telemetry::Value;
use sia_tensor::Tensor;

/// Result of one machine inference.
#[derive(Clone, Debug)]
pub struct MachineRun {
    /// PS-side readout after every timestep (same convention as
    /// [`sia_snn::SnnOutput`]).
    pub logits_per_t: Vec<Vec<f32>>,
    /// Spike statistics, structured identically to the functional runner's.
    pub stats: SpikeStats,
    /// Cycle/traffic accounting.
    pub report: CycleReport,
}

impl MachineRun {
    /// Predicted class at the final timestep.
    ///
    /// # Panics
    ///
    /// Panics on a zero-timestep run.
    #[must_use]
    pub fn predicted(&self) -> usize {
        let logits = self.logits_per_t.last().expect("zero-timestep run");
        let mut best = 0;
        for (i, &v) in logits.iter().enumerate() {
            if v > logits[best] {
                best = i;
            }
        }
        best
    }
}

/// The accelerator executor.
#[derive(Clone, Debug)]
pub struct SiaMachine {
    program: Program,
    config: SiaConfig,
    controller: Controller,
}

impl SiaMachine {
    /// Builds a machine for a compiled program.
    #[must_use]
    pub fn new(program: Program, config: SiaConfig) -> Self {
        SiaMachine {
            program,
            config,
            controller: Controller::new(),
        }
    }

    /// Layer passes started since construction (controller status).
    #[must_use]
    pub fn layers_started(&self) -> u64 {
        self.controller.layers_started
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Runs a `timesteps`-step inference on one `C×H×W` image.
    ///
    /// # Panics
    ///
    /// Panics if `timesteps == 0` or the network does not start with an
    /// input conv.
    #[must_use]
    pub fn run(&mut self, image: &Tensor, timesteps: usize) -> MachineRun {
        self.run_with(image, timesteps, 0)
    }

    /// [`SiaMachine::run`] with readout burn-in (see
    /// [`sia_snn::IntRunner::run_with`]).
    ///
    /// # Panics
    ///
    /// Panics if `timesteps == 0` or `burn_in >= timesteps`.
    #[must_use]
    pub fn run_with(&mut self, image: &Tensor, timesteps: usize, burn_in: usize) -> MachineRun {
        self.run_impl(Some(image), None, timesteps, burn_in)
    }

    /// Runs on a DVS-style event stream (paper §IV: event-driven data
    /// transferred directly to the SIA; the first layer executes on the PE
    /// array like any other spiking convolution).
    ///
    /// # Panics
    ///
    /// Panics if the network was converted for dense input, the stream is
    /// shorter than `timesteps`, or `burn_in >= timesteps`.
    #[must_use]
    pub fn run_events(
        &mut self,
        events: &EventStream,
        timesteps: usize,
        burn_in: usize,
    ) -> MachineRun {
        assert!(
            !matches!(self.program.network.items.first(), Some(SnnItem::InputConv(_))),
            "network was converted for dense input; use run/run_with"
        );
        assert!(events.timesteps() >= timesteps, "event stream too short");
        events.validate();
        self.run_impl(None, Some(events), timesteps, burn_in)
    }

    fn run_impl(
        &mut self,
        image: Option<&Tensor>,
        events: Option<&EventStream>,
        timesteps: usize,
        burn_in: usize,
    ) -> MachineRun {
        assert!(timesteps > 0, "need at least one timestep");
        assert!(burn_in < timesteps, "burn-in must be below T");
        let _span = sia_telemetry::span!("accel.run");
        // the controller is taken out for the duration of the run so the
        // borrow of the program's network stays shared
        let mut controller = std::mem::take(&mut self.controller);
        let net = &self.program.network;
        let cfg = &self.config;
        let (names, sizes) = spiking_stage_sizes(net);
        let mut stats = SpikeStats::new(names, sizes);
        stats.timesteps = timesteps as u64;
        stats.images = 1;
        let mut report = CycleReport::for_config(cfg);
        // spike trains per item per timestep; event streams feed the first
        // PL conv directly
        let mut prev_train: Vec<Vec<u8>> = match events {
            Some(es) => es.frames[..timesteps].to_vec(),
            None => Vec::new(),
        };
        let mut skip_train: Vec<Vec<u8>> = Vec::new();
        let mut pending_currents: Vec<Vec<i16>> = Vec::new();
        let mut logits_per_t: Vec<Vec<f32>> = vec![Vec::new(); timesteps];
        let mut stage = 0usize;
        for (idx, item) in net.items.iter().enumerate() {
            let lp = &self.program.layers[idx];
            let mut cycles = LayerCycles {
                name: lp.name.clone(),
                transfer_cycles: lp.traffic.cycles(cfg),
                overlapped: lp.on_pl,
                ..LayerCycles::default()
            };
            match item {
                SnnItem::InputConv(c) => {
                    let scale = match c.input {
                        ConvInput::Dense { scale } => QuantScale::for_max_abs(scale * 127.0),
                        ConvInput::Spikes { .. } => panic!("first layer must be dense-input"),
                    };
                    let img = image.expect("dense-input network needs an image");
                    let codes = encode::encode_image(img, scale);
                    let psums = conv_psums_dense(c, &codes);
                    let per_ch = psums.len() / c.geom.out_channels;
                    let currents: Vec<i16> = psums
                        .iter()
                        .enumerate()
                        .map(|(i, &p)| add16(c.g[i / per_ch].mul_int_wide(p), c.h[i / per_ch]))
                        .collect();
                    cycles.compute_cycles +=
                        (c.geom.macs() as f64 * cfg.ps_cycles_per_mac) as u64;
                    cycles.overhead_cycles = cfg.layer_overhead_cycles;
                    let mut mem = PingPongMembranes::new(
                        cfg.membrane_mem_bytes.max(currents.len() * 4),
                    );
                    mem.precharge(c.theta / 2, currents.len());
                    let mut train = Vec::with_capacity(timesteps);
                    for _t in 0..timesteps {
                        let mut spikes = vec![0u8; currents.len()];
                        for (i, (&cur, o)) in currents.iter().zip(&mut spikes).enumerate() {
                            let mut u = mem.read(i);
                            if sia_snn::neuron::step_int(&mut u, cur, c.theta, c.mode) {
                                *o = 1;
                                cycles.spikes += 1;
                            }
                            mem.write(i, u);
                        }
                        mem.toggle();
                        sia_telemetry::counter!("accel.pingpong.switches", 1);
                        cycles.compute_cycles += currents.len() as u64;
                        train.push(spikes);
                    }
                    stats.spikes[stage] = cycles.spikes;
                    stage += 1;
                    prev_train = train;
                }
                SnnItem::Conv(c) => {
                    let (train, spikes) = self.run_pl_conv(
                        c,
                        idx,
                        &prev_train,
                        timesteps,
                        &mut cycles,
                        true,
                        &mut pending_currents,
                        &mut controller,
                    );
                    stats.spikes[stage] = spikes;
                    stage += 1;
                    prev_train = train;
                }
                SnnItem::ConvPsum(c) => {
                    let (_, _) = self.run_pl_conv(
                        c,
                        idx,
                        &prev_train,
                        timesteps,
                        &mut cycles,
                        false,
                        &mut pending_currents,
                        &mut controller,
                    );
                    // prev_train unchanged: the psums wait for the BlockAdd
                }
                SnnItem::BlockStart => {
                    skip_train = prev_train.clone();
                }
                SnnItem::BlockAdd(a) => {
                    cycles.overhead_cycles = self.config.layer_overhead_cycles;
                    let mut mem = PingPongMembranes::new(
                        self.config.membrane_mem_bytes.max(a.neurons() * 4),
                    );
                    mem.precharge(a.theta / 2, a.neurons());
                    let identity_bn = BnCoefficients {
                        g: vec![Q8_8::ONE],
                        h: vec![0],
                    };
                    let mut train = Vec::with_capacity(timesteps);
                    for t in 0..timesteps {
                        // PS-side residual currents (§IV)
                        let skip_cur: Vec<i16> = match &a.down {
                            Some(d) => {
                                let psums = conv_psums_int(d, &skip_train[t]);
                                let per_ch = psums.len() / d.geom.out_channels;
                                psums
                                    .iter()
                                    .enumerate()
                                    .map(|(i, &p)| {
                                        add16(d.g[i / per_ch].mul_int(p), d.h[i / per_ch])
                                    })
                                    .collect()
                            }
                            None => skip_train[t]
                                .iter()
                                .map(|&s| if s != 0 { a.skip_add } else { 0 })
                                .collect(),
                        };
                        let total = accumulate_residual(&pending_currents[t], &skip_cur);
                        let mut mems: Vec<i16> =
                            (0..total.len()).map(|i| mem.read(i)).collect();
                        let out = run_tile(
                            &total,
                            &mut mems,
                            &identity_bn,
                            |_| 0,
                            a.theta,
                            a.mode,
                            &self.config,
                        );
                        for (i, &u) in mems.iter().enumerate() {
                            mem.write(i, u);
                        }
                        mem.toggle();
                        sia_telemetry::counter!("accel.pingpong.switches", 1);
                        cycles.compute_cycles += out.cycles;
                        cycles.spikes += out.spike_count;
                        if let Some(d) = &a.down {
                            cycles.compute_cycles +=
                                (d.geom.macs() as f64 * self.config.ps_cycles_per_mac) as u64;
                        }
                        train.push(out.spikes);
                    }
                    pending_currents = Vec::new();
                    stats.spikes[stage] = cycles.spikes;
                    stage += 1;
                    prev_train = train;
                }
                SnnItem::MaxPoolOr { channels, h, w } => {
                    let train: Vec<Vec<u8>> = prev_train
                        .iter()
                        .map(|s| or_pool(s, *channels, *h, *w))
                        .collect();
                    // one OR gate per output per timestep, fully parallel in
                    // the PL: a handful of cycles, dominated by streaming
                    cycles.compute_cycles += (channels * h * w / 4) as u64 / 16;
                    prev_train = train;
                }
                SnnItem::Head(l) => {
                    cycles.overhead_cycles = self.config.layer_overhead_cycles;
                    cycles.overlapped = false; // driver-paced
                    let mut acc = vec![0i64; l.out];
                    for (t, spikes) in prev_train.iter().enumerate() {
                        if t >= burn_in {
                            for (o, a) in acc.iter_mut().enumerate() {
                                for (i, &s) in spikes.iter().enumerate() {
                                    if s != 0 {
                                        let ch = i / (l.in_h * l.in_w);
                                        *a += i64::from(l.weights[o * l.channels + ch]);
                                    }
                                }
                            }
                        }
                        let t_eff = (t + 1).saturating_sub(burn_in).max(1);
                        logits_per_t[t] = acc
                            .iter()
                            .zip(&l.bias)
                            .map(|(&a, &b)| a as f32 * l.q.scale() / t_eff as f32 + b)
                            .collect();
                    }
                    cycles.compute_cycles += ((l.out * l.channels * l.in_h * l.in_w) as f64
                        * self.config.ps_cycles_per_mac
                        * timesteps as f64) as u64;
                }
            }
            // live counters, reconciled against the CycleReport totals by
            // the telemetry integration tests
            sia_telemetry::counter!("accel.layers", 1);
            sia_telemetry::counter!("accel.compute_cycles", cycles.compute_cycles);
            sia_telemetry::counter!("accel.transfer_cycles", cycles.transfer_cycles);
            sia_telemetry::counter!("accel.total_cycles", cycles.total_cycles());
            sia_telemetry::counter!("accel.spikes", cycles.spikes);
            sia_telemetry::counter!("accel.ops", cycles.ops);
            sia_telemetry::counter!(
                "accel.axi.stream_bytes",
                lp.traffic.stream_bytes() as u64
            );
            sia_telemetry::counter!(
                "accel.axi.mmio_words",
                (lp.traffic.config_words + lp.traffic.mmio_data_words) as u64
            );
            sia_telemetry::emit(
                "accel.layer",
                &[
                    ("name", Value::from(cycles.name.as_str())),
                    ("compute_cycles", Value::from(cycles.compute_cycles)),
                    ("transfer_cycles", Value::from(cycles.transfer_cycles)),
                    ("overhead_cycles", Value::from(cycles.overhead_cycles)),
                    ("total_cycles", Value::from(cycles.total_cycles())),
                    ("overlapped", Value::from(cycles.overlapped)),
                    ("spikes", Value::from(cycles.spikes)),
                    ("ops", Value::from(cycles.ops)),
                    ("stream_bytes", Value::from(lp.traffic.stream_bytes())),
                    (
                        "mmio_words",
                        Value::from(lp.traffic.config_words + lp.traffic.mmio_data_words),
                    ),
                ],
            );
            report.layers.push(cycles);
        }
        self.controller = controller;
        assert!(
            !logits_per_t[0].is_empty(),
            "network has no classification head"
        );
        MachineRun {
            logits_per_t,
            stats,
            report,
        }
    }

    /// Runs one PL conv layer for all timesteps. When `spiking` is false
    /// (psum stage) the per-timestep currents are written to
    /// `pending_currents` instead of spiking.
    #[allow(clippy::too_many_arguments)]
    fn run_pl_conv(
        &self,
        c: &SnnConv,
        _idx: usize,
        prev_train: &[Vec<u8>],
        timesteps: usize,
        cycles: &mut LayerCycles,
        spiking: bool,
        pending_currents: &mut Vec<Vec<i16>>,
        controller: &mut Controller,
    ) -> (Vec<Vec<u8>>, u64) {
        let cfg = &self.config;
        cycles.overhead_cycles = cfg.layer_overhead_cycles;
        let groups = {
            let mut gs = Vec::new();
            let mut start = 0;
            while start < c.geom.out_channels {
                let size = (c.geom.out_channels - start).min(cfg.pe_count());
                gs.push((start, size));
                start += size;
            }
            gs
        };
        let (oh, ow) = c.geom.out_hw();
        let per_ch = oh * ow;
        let neurons = c.geom.out_channels * per_ch;
        let bn = BnCoefficients {
            g: c.g.clone(),
            h: c.h.clone(),
        };
        let mut mem = PingPongMembranes::new(cfg.membrane_mem_bytes.max(neurons * 4));
        if spiking {
            mem.precharge(c.theta / 2, neurons);
        }
        let mut train = Vec::with_capacity(timesteps);
        let mut spike_total = 0u64;
        let mut currents_out = Vec::with_capacity(timesteps);
        for spikes_in in prev_train.iter().take(timesteps) {
            let mut out_spikes = vec![0u8; neurons];
            let mut out_currents = vec![0i16; neurons];
            for &(start, size) in &groups {
                // §III-C: the PS programs the register file and starts the
                // pass; the controller validates the image before the cores
                // run. A compiled program can never produce a bad image.
                controller.program_layer(&c.geom, c.theta, c.mode, timesteps, start, size);
                controller
                    .start(cfg.pe_count())
                    .expect("compiled programs produce valid register images");
                let pass = run_conv_pass(&c.geom, &c.weights, start, size, spikes_in, cfg);
                controller.finish(); // per-pass done interrupt
                cycles.compute_cycles += pass.cycles + cfg.aggregation_pipeline_depth;
                cycles.active_pe_cycles += pass.active_pe_cycles;
                cycles.ops += pass.active_pe_cycles * cfg.ops_per_pe_cycle;
                sia_telemetry::counter!("accel.pe.active_cycles", pass.active_pe_cycles);
                sia_telemetry::counter!(
                    "accel.pe.segments_processed",
                    pass.processed_segments
                );
                sia_telemetry::counter!("accel.pe.segments_skipped", pass.skipped_segments);
                if spiking {
                    let mut mems: Vec<i16> = (start * per_ch..(start + size) * per_ch)
                        .map(|i| mem.read(i))
                        .collect();
                    let out = run_tile(
                        &pass.psums,
                        &mut mems,
                        &bn,
                        |i| start + i / per_ch,
                        c.theta,
                        c.mode,
                        cfg,
                    );
                    for (j, &u) in mems.iter().enumerate() {
                        mem.write(start * per_ch + j, u);
                    }
                    out_spikes[start * per_ch..(start + size) * per_ch]
                        .copy_from_slice(&out.spikes);
                    spike_total += out.spike_count;
                } else {
                    for (j, &p) in pass.psums.iter().enumerate() {
                        let ch = start + j / per_ch;
                        out_currents[start * per_ch + j] = bn.apply(p, ch);
                    }
                }
            }
            if spiking {
                mem.toggle();
                sia_telemetry::counter!("accel.pingpong.switches", 1);
                train.push(out_spikes);
            } else {
                currents_out.push(out_currents);
            }
        }
        if !spiking {
            *pending_currents = currents_out;
        }
        cycles.spikes = spike_total;
        (train, spike_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile_for;
    use sia_nn::{ActSpec, BnSpec, ConvSpec, LinearSpec, NetworkSpec, SpecItem};
    use sia_snn::{convert, ConvertOptions, IntRunner};
    use sia_tensor::Conv2dGeom;

    /// A small but structurally complete network: input conv, residual
    /// block with downsample, OR-pool, head.
    fn full_spec() -> NetworkSpec {
        let g1 = Conv2dGeom {
            in_channels: 3,
            out_channels: 4,
            in_h: 8,
            in_w: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let g2 = Conv2dGeom {
            in_channels: 4,
            out_channels: 8,
            in_h: 8,
            in_w: 8,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let g3 = Conv2dGeom {
            in_channels: 8,
            out_channels: 8,
            in_h: 4,
            in_w: 4,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let gd = Conv2dGeom {
            in_channels: 4,
            out_channels: 8,
            in_h: 8,
            in_w: 8,
            kernel: 1,
            stride: 2,
            padding: 0,
        };
        let bn = |ch: usize| BnSpec {
            gamma: vec![1.0; ch],
            beta: vec![0.05; ch],
            mean: vec![0.1; ch],
            var: vec![1.0; ch],
            eps: 1e-5,
        };
        let w = |n: usize, seed: usize| {
            Tensor::from_vec(
                vec![n],
                (0..n)
                    .map(|i| (((i * 31 + seed * 7) % 17) as f32 - 8.0) * 0.05)
                    .collect(),
            )
        };
        NetworkSpec {
            name: "full".into(),
            input: (3, 8, 8),
            items: vec![
                SpecItem::Conv(ConvSpec {
                    geom: g1,
                    weights: w(4 * 3 * 9, 1).reshape(vec![4, 3, 3, 3]),
                    bn: Some(bn(4)),
                    act: Some(ActSpec { levels: 8, step: 0.7 }),
                }),
                SpecItem::BlockStart,
                SpecItem::Conv(ConvSpec {
                    geom: g2,
                    weights: w(8 * 4 * 9, 2).reshape(vec![8, 4, 3, 3]),
                    bn: Some(bn(8)),
                    act: Some(ActSpec { levels: 8, step: 0.5 }),
                }),
                SpecItem::Conv(ConvSpec {
                    geom: g3,
                    weights: w(8 * 8 * 9, 3).reshape(vec![8, 8, 3, 3]),
                    bn: Some(bn(8)),
                    act: None,
                }),
                SpecItem::BlockAdd {
                    down: Some(ConvSpec {
                        geom: gd,
                        weights: w(8 * 4, 4).reshape(vec![8, 4, 1, 1]),
                        bn: Some(bn(8)),
                        act: None,
                    }),
                    act: ActSpec { levels: 8, step: 0.6 },
                },
                SpecItem::MaxPool2x2,
                SpecItem::GlobalAvgPool,
                SpecItem::Linear(LinearSpec {
                    in_features: 8,
                    out_features: 10,
                    weights: w(80, 5).reshape(vec![10, 8]),
                    bias: vec![0.01; 10],
                }),
            ],
        }
    }

    fn image() -> Tensor {
        Tensor::from_vec(
            vec![3, 8, 8],
            (0..192).map(|i| ((i * 13 % 29) as f32) / 29.0).collect(),
        )
    }

    #[test]
    fn machine_is_bit_exact_with_int_runner() {
        let net = convert(&full_spec(), &ConvertOptions::default());
        let cfg = SiaConfig::pynq_z2();
        let program = compile_for(&net, &cfg, 8).unwrap();
        let mut machine = SiaMachine::new(program, cfg);
        let img = image();
        let hw = machine.run(&img, 8);
        let sw = IntRunner::new(&net).run(&img, 8);
        assert_eq!(hw.logits_per_t, sw.logits_per_t, "logits diverged");
        assert_eq!(hw.stats.spikes, sw.stats.spikes, "spike counts diverged");
        assert_eq!(hw.predicted(), sw.predicted());
    }

    #[test]
    fn machine_burn_in_matches_runner_burn_in() {
        let net = convert(&full_spec(), &ConvertOptions::default());
        let cfg = SiaConfig::pynq_z2();
        let program = compile_for(&net, &cfg, 8).unwrap();
        let mut machine = SiaMachine::new(program, cfg);
        let img = image();
        let hw = machine.run_with(&img, 8, 3);
        let sw = IntRunner::new(&net).run_with(&img, 8, 3);
        assert_eq!(hw.logits_per_t, sw.logits_per_t);
    }

    #[test]
    fn report_has_meaningful_cycles() {
        let net = convert(&full_spec(), &ConvertOptions::default());
        let cfg = SiaConfig::pynq_z2();
        let program = compile_for(&net, &cfg, 8).unwrap();
        let mut machine = SiaMachine::new(program, cfg.clone());
        let run = machine.run(&image(), 8);
        assert!(run.report.total_cycles() > 0);
        assert!(run.report.total_ms() > 0.0);
        assert!(run.report.total_ops() > 0);
        let util = run.report.pe_utilization();
        assert!(util > 0.0 && util <= 1.0, "utilisation {util}");
        // every PL conv layer spent compute cycles
        for l in &run.report.layers {
            if l.name.starts_with("conv") {
                assert!(l.compute_cycles > 0, "{} has no compute", l.name);
            }
        }
    }

    #[test]
    fn sparser_input_is_faster() {
        let net = convert(&full_spec(), &ConvertOptions::default());
        let cfg = SiaConfig::pynq_z2();
        let program = compile_for(&net, &cfg, 8).unwrap();
        let mut machine = SiaMachine::new(program, cfg);
        let bright = machine.run(&image(), 8);
        let dark = machine.run(&Tensor::zeros(vec![3, 8, 8]), 8);
        let conv_cycles = |r: &MachineRun| -> u64 {
            r.report
                .layers
                .iter()
                .filter(|l| l.name.starts_with("conv"))
                .map(|l| l.compute_cycles)
                .sum()
        };
        assert!(conv_cycles(&dark) < conv_cycles(&bright));
    }

    #[test]
    fn more_timesteps_cost_more_cycles() {
        let net = convert(&full_spec(), &ConvertOptions::default());
        let cfg = SiaConfig::pynq_z2();
        let mut m4 = SiaMachine::new(compile_for(&net, &cfg, 4).unwrap(), cfg.clone());
        let mut m8 = SiaMachine::new(compile_for(&net, &cfg, 8).unwrap(), cfg);
        let img = image();
        let a = m4.run(&img, 4);
        let b = m8.run(&img, 8);
        assert!(a.report.total_cycles() < b.report.total_cycles());
    }
}

#[cfg(test)]
mod controller_integration {
    use super::*;
    use crate::compiler::compile_for;
    use sia_nn::{ActSpec, ConvSpec, LinearSpec, NetworkSpec, SpecItem};
    use sia_snn::{convert, ConvertOptions};
    use sia_tensor::Conv2dGeom;

    #[test]
    fn controller_counts_one_start_per_group_pass_per_timestep() {
        let geom = Conv2dGeom {
            in_channels: 3,
            out_channels: 100, // two kernel groups on a 64-PE array
            in_h: 4,
            in_w: 4,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let spec = NetworkSpec {
            name: "ctl".into(),
            input: (3, 4, 4),
            items: vec![
                SpecItem::Conv(ConvSpec {
                    geom,
                    weights: Tensor::full(vec![100, 3, 3, 3], 0.05),
                    bn: None,
                    act: Some(ActSpec { levels: 4, step: 1.0 }),
                }),
                SpecItem::Conv(ConvSpec {
                    geom: Conv2dGeom {
                        in_channels: 100,
                        out_channels: 10,
                        ..geom
                    },
                    weights: Tensor::full(vec![10, 100, 3, 3], 0.01),
                    bn: None,
                    act: Some(ActSpec { levels: 4, step: 1.0 }),
                }),
                SpecItem::GlobalAvgPool,
                SpecItem::Linear(LinearSpec {
                    in_features: 10,
                    out_features: 4,
                    weights: Tensor::full(vec![4, 10], 0.1),
                    bias: vec![0.0; 4],
                }),
            ],
        };
        let net = convert(&spec, &ConvertOptions::default());
        let cfg = SiaConfig::pynq_z2();
        let mut m = SiaMachine::new(compile_for(&net, &cfg, 4).unwrap(), cfg);
        assert_eq!(m.layers_started(), 0);
        let _ = m.run(&Tensor::full(vec![3, 4, 4], 0.5), 4);
        // first conv is dense-input (PS-side, no controller); the second PL
        // conv has one group, but the first *spiking* conv in this net is
        // the 100-channel one? No: the 100-channel conv is dense-input.
        // PL convs: the 10-channel conv → 1 group × 4 timesteps = 4 starts.
        assert_eq!(m.layers_started(), 4);
    }
}
