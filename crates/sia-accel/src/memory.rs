//! The on-chip memory unit (paper §III-D) with the U1/U2 ping-pong
//! membrane banks (Fig. 3).

use crate::config::SiaConfig;
use std::fmt;

/// Which ping-pong bank is in which role this timestep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BankRole {
    /// Bank is being read (previous-timestep membranes).
    Read,
    /// Bank is being written (updated membranes).
    Write,
}

/// The U1/U2 ping-pong membrane store: "at any time step, one part of the
/// memory is used to store the membrane potentials from the PE to the
/// memory, and the other part is used to read the stored membrane
/// potentials" (Fig. 3). Toggling swaps the roles.
#[derive(Clone, Debug)]
pub struct PingPongMembranes {
    banks: [Vec<i16>; 2],
    /// Index of the bank currently in **read** mode.
    read_bank: usize,
    capacity_words: usize,
    reads: u64,
    writes: u64,
}

impl PingPongMembranes {
    /// Allocates the two banks. Total capacity (both banks) is
    /// `total_bytes`; each 16-bit membrane occupies 2 bytes, so each bank
    /// holds `total_bytes / 4` neurons.
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes < 4`.
    #[must_use]
    pub fn new(total_bytes: usize) -> Self {
        assert!(total_bytes >= 4, "membrane memory too small");
        let per_bank = total_bytes / 4;
        PingPongMembranes {
            banks: [vec![0; per_bank], vec![0; per_bank]],
            read_bank: 0,
            capacity_words: per_bank,
            reads: 0,
            writes: 0,
        }
    }

    /// Neurons one bank can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity_words
    }

    /// Fills both banks with the pre-charge value (start of an inference).
    pub fn precharge(&mut self, value: i16, neurons: usize) {
        assert!(neurons <= self.capacity_words, "layer exceeds U-state bank");
        for bank in &mut self.banks {
            for u in bank.iter_mut().take(neurons) {
                *u = value;
            }
        }
    }

    /// Reads membrane `i` from the bank in read mode.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the bank capacity.
    #[must_use]
    pub fn read(&mut self, i: usize) -> i16 {
        self.reads += 1;
        self.banks[self.read_bank][i]
    }

    /// Writes membrane `i` into the bank in write mode.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the bank capacity.
    pub fn write(&mut self, i: usize, v: i16) {
        self.writes += 1;
        let w = 1 - self.read_bank;
        self.banks[w][i] = v;
    }

    /// Swaps the bank roles (end of a timestep, Fig. 3a → 3b).
    pub fn toggle(&mut self) {
        self.read_bank = 1 - self.read_bank;
    }

    /// Role of bank `b` (0 = U1, 1 = U2).
    ///
    /// # Panics
    ///
    /// Panics if `b > 1`.
    #[must_use]
    pub fn role(&self, b: usize) -> BankRole {
        assert!(b < 2, "only two banks");
        if b == self.read_bank {
            BankRole::Read
        } else {
            BankRole::Write
        }
    }

    /// `(reads, writes)` access counters (for the power model).
    #[must_use]
    pub fn access_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }
}

/// Static footprint check of one layer against the memory map. Returned by
/// the compiler for every layer so callers can see *why* a network fits (or
/// how it is chunked).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerFootprint {
    /// Weight bytes needed by one kernel-group pass (one chunk).
    pub weight_chunk_bytes: usize,
    /// Total weight bytes of the layer.
    pub weight_total_bytes: usize,
    /// Weight chunks streamed per pass (1 = fits the 8 kB weight memory).
    pub weight_chunks: usize,
    /// Neurons whose membranes live in a U-state bank (or spill to DDR).
    pub neurons: usize,
    /// Input spike bitmap bytes per timestep.
    pub spike_in_bytes: usize,
    /// Output spike bitmap bytes per timestep.
    pub spike_out_bytes: usize,
    /// Residual (skip) current bytes per timestep, if any.
    pub residual_bytes: usize,
}

impl fmt::Display for LayerFootprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "weights {}B ({} chunks), {} neurons, in {}B out {}B res {}B",
            self.weight_total_bytes,
            self.weight_chunks,
            self.neurons,
            self.spike_in_bytes,
            self.spike_out_bytes,
            self.residual_bytes
        )
    }
}

impl LayerFootprint {
    /// Membrane bytes per timestep that do not fit the on-chip U-state
    /// banks and must round-trip to DDR (read + write, 4 bytes per spilled
    /// neuron). Zero when the layer fits — the common case the ping-pong
    /// protocol is designed for.
    #[must_use]
    pub fn membrane_spill_bytes(&self, config: &SiaConfig) -> usize {
        let bank_neurons = config.membrane_mem_bytes / 4;
        self.neurons.saturating_sub(bank_neurons) * 4
    }

    /// Validates the footprint against a configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the overflowing memory when the layer
    /// cannot be scheduled even with chunking.
    pub fn check(&self, config: &SiaConfig) -> Result<(), String> {
        if self.weight_chunk_bytes > config.weight_mem_bytes {
            return Err(format!(
                "weight chunk of {}B exceeds the {}B weight memory",
                self.weight_chunk_bytes, config.weight_mem_bytes
            ));
        }
        if self.spike_out_bytes > config.output_mem_bytes {
            return Err(format!(
                "{}B of output spikes exceed the {}B output memory",
                self.spike_out_bytes, config.output_mem_bytes
            ));
        }
        if self.residual_bytes > config.residual_mem_bytes {
            return Err(format!(
                "{}B of residual currents exceed the {}B residual memory",
                self.residual_bytes, config.residual_mem_bytes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_roles_alternate() {
        let mut m = PingPongMembranes::new(64 * 1024);
        assert_eq!(m.role(0), BankRole::Read);
        assert_eq!(m.role(1), BankRole::Write);
        m.toggle();
        assert_eq!(m.role(0), BankRole::Write);
        assert_eq!(m.role(1), BankRole::Read);
    }

    #[test]
    fn capacity_is_quarter_of_bytes() {
        // 64 kB total → two 32 kB banks → 16k 16-bit membranes each
        let m = PingPongMembranes::new(64 * 1024);
        assert_eq!(m.capacity(), 16 * 1024);
    }

    #[test]
    fn write_lands_in_write_bank_only() {
        let mut m = PingPongMembranes::new(16);
        m.write(0, 42);
        // read bank still sees the old value
        assert_eq!(m.read(0), 0);
        m.toggle();
        // after toggling, the written value becomes readable
        assert_eq!(m.read(0), 42);
    }

    #[test]
    fn precharge_fills_both_banks() {
        let mut m = PingPongMembranes::new(32);
        m.precharge(7, 4);
        assert_eq!(m.read(3), 7);
        m.toggle();
        assert_eq!(m.read(3), 7);
    }

    #[test]
    fn access_counters_track() {
        let mut m = PingPongMembranes::new(32);
        let _ = m.read(0);
        m.write(0, 1);
        m.write(1, 2);
        assert_eq!(m.access_counts(), (1, 2));
    }

    #[test]
    fn footprint_check_flags_each_overflow() {
        let cfg = SiaConfig::pynq_z2();
        let ok = LayerFootprint {
            weight_chunk_bytes: 4096,
            weight_total_bytes: 36864,
            weight_chunks: 9,
            neurons: 8192,
            spike_in_bytes: 8192,
            spike_out_bytes: 8192,
            residual_bytes: 0,
        };
        assert!(ok.check(&cfg).is_ok());
        let mut bad = ok;
        bad.weight_chunk_bytes = 9000;
        assert!(bad.check(&cfg).unwrap_err().contains("weight chunk"));
        let mut big = ok;
        big.neurons = 17_000;
        assert!(big.check(&cfg).is_ok()); // spills, not an error
        assert_eq!(big.membrane_spill_bytes(&cfg), (17_000 - 16_384) * 4);
        assert_eq!(ok.membrane_spill_bytes(&cfg), 0);
        let mut bad = ok;
        bad.spike_out_bytes = 60_000;
        assert!(bad.check(&cfg).unwrap_err().contains("output memory"));
        let mut bad = ok;
        bad.residual_bytes = 200_000;
        assert!(bad.check(&cfg).unwrap_err().contains("residual memory"));
    }
}
