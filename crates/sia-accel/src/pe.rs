//! One processing element: 3 multiplexers + an 8-bit adder (paper §III-A).
//!
//! "Each processing element has three 8-bit multiplexers and an 8-bit adder.
//! One of the inputs to the multiplexer is set to zero and the other input
//! is kernel weight data (W1, W2, W3). The incoming input spike data is used
//! to select between weights/zero in the multiplexer. An 8-bit adder
//! accumulates the three inputs from the multiplexers with the partial sum
//! till all the rows of the kernel are computed."

use sia_fixed::sat::acc_weight;

/// One PE: the three weight muxes feeding a saturating accumulator whose
/// partial-sum register is 16 bits wide ("accumulated partial sum
/// (16 bits)").
///
/// # Examples
///
/// ```
/// use sia_accel::pe::ProcessingElement;
/// let mut pe = ProcessingElement::new();
/// pe.accumulate_row(&[5, -3, 7], &[true, false, true]);
/// assert_eq!(pe.take_psum(), 12); // -3 was muxed to zero
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProcessingElement {
    psum: i16,
}

impl ProcessingElement {
    /// A fresh PE with a cleared partial sum.
    #[must_use]
    pub fn new() -> Self {
        ProcessingElement { psum: 0 }
    }

    /// One clock cycle: mux-selects each weight against its spike bit and
    /// accumulates into the partial sum. At most 3 taps (the hardware has
    /// 3 muxes); fewer model the edge segments of kernels whose width is
    /// not a multiple of 3.
    ///
    /// Taps are folded left-to-right with saturating adds — the exact order
    /// the functional simulator uses, keeping the two bit-exact.
    ///
    /// # Panics
    ///
    /// Panics if more than 3 taps are supplied or the slices differ in
    /// length.
    pub fn accumulate_row(&mut self, weights: &[i8], spikes: &[bool]) {
        assert!(weights.len() <= 3, "a PE has 3 multiplexers");
        assert_eq!(weights.len(), spikes.len(), "weights/spikes mismatch");
        for (&w, &s) in weights.iter().zip(spikes) {
            if s {
                self.psum = acc_weight(self.psum, w);
            }
        }
    }

    /// Current partial sum (the value handed to the aggregation core).
    #[must_use]
    pub fn psum(&self) -> i16 {
        self.psum
    }

    /// Reads and clears the partial sum — the "1 final cycle to generate
    /// the membrane potential" handoff.
    #[must_use]
    pub fn take_psum(&mut self) -> i16 {
        std::mem::take(&mut self.psum)
    }

    /// Clears the partial sum without reading it.
    pub fn clear(&mut self) {
        self.psum = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_spikes_accumulate_all_weights() {
        let mut pe = ProcessingElement::new();
        pe.accumulate_row(&[1, 2, 3], &[true, true, true]);
        assert_eq!(pe.psum(), 6);
    }

    #[test]
    fn no_spikes_accumulate_nothing() {
        let mut pe = ProcessingElement::new();
        pe.accumulate_row(&[100, 100, 100], &[false, false, false]);
        assert_eq!(pe.psum(), 0);
    }

    #[test]
    fn partial_sum_persists_across_rows() {
        let mut pe = ProcessingElement::new();
        pe.accumulate_row(&[10, 0, 0], &[true, false, false]);
        pe.accumulate_row(&[-4, 0, 0], &[true, false, false]);
        assert_eq!(pe.take_psum(), 6);
        assert_eq!(pe.psum(), 0); // take clears
    }

    #[test]
    fn short_rows_are_allowed() {
        let mut pe = ProcessingElement::new();
        pe.accumulate_row(&[7], &[true]);
        pe.accumulate_row(&[1, 2], &[true, true]);
        assert_eq!(pe.psum(), 10);
    }

    #[test]
    #[should_panic(expected = "3 multiplexers")]
    fn four_taps_rejected() {
        let mut pe = ProcessingElement::new();
        pe.accumulate_row(&[1, 2, 3, 4], &[true; 4]);
    }

    #[test]
    fn accumulation_saturates_like_the_datapath() {
        let mut pe = ProcessingElement::new();
        for _ in 0..300 {
            pe.accumulate_row(&[127, 127, 127], &[true, true, true]);
        }
        assert_eq!(pe.psum(), i16::MAX);
    }

    #[test]
    fn negative_weights_inhibit() {
        let mut pe = ProcessingElement::new();
        pe.accumulate_row(&[-128, 0, 0], &[true, false, false]);
        assert_eq!(pe.psum(), -128);
    }

    #[test]
    fn clear_resets() {
        let mut pe = ProcessingElement::new();
        pe.accumulate_row(&[9, 0, 0], &[true, false, false]);
        pe.clear();
        assert_eq!(pe.psum(), 0);
    }
}
