//! Cycle and throughput accounting for one inference run.

use crate::config::SiaConfig;
use std::fmt;

/// Per-layer cycle breakdown.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LayerCycles {
    /// Layer label ("conv3x3,64@32", "fc512x10", …).
    pub name: String,
    /// Spiking-core + aggregation compute cycles (all timesteps, all
    /// kernel groups).
    pub compute_cycles: u64,
    /// PS↔PL transfer cycles (stream + MMIO), all timesteps.
    pub transfer_cycles: u64,
    /// Fixed per-layer driver/configuration overhead.
    pub overhead_cycles: u64,
    /// Whether compute and transfer overlap (ping-pong double buffering):
    /// the latency then takes their max instead of their sum.
    pub overlapped: bool,
    /// Σ active-PE cycles (utilisation/energy accounting).
    pub active_pe_cycles: u64,
    /// Arithmetic operations performed (6 per active PE cycle).
    pub ops: u64,
    /// Arithmetic operations a dense (skip-free) schedule would have
    /// performed: every kernel-row segment — processed *or* skipped by the
    /// event-driven logic — costed at the full PE-group width. Zero for
    /// stages with no PE pass (the effective `ops` is zero there too), so
    /// `ops / nominal_ops` is the event-driven efficiency of a layer.
    pub nominal_ops: u64,
    /// Spikes emitted by this layer over the run.
    pub spikes: u64,
}

impl LayerCycles {
    /// Total latency cycles of this layer.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        let core = if self.overlapped {
            self.compute_cycles.max(self.transfer_cycles)
        } else {
            self.compute_cycles + self.transfer_cycles
        };
        core + self.overhead_cycles
    }

    /// Latency in milliseconds at `clock_hz`. A zero clock (unconfigured
    /// target) yields 0.0 rather than a NaN/inf that would poison reports.
    #[must_use]
    pub fn ms(&self, clock_hz: u64) -> f64 {
        if clock_hz == 0 {
            return 0.0;
        }
        self.total_cycles() as f64 / clock_hz as f64 * 1e3
    }
}

/// Whole-run cycle report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CycleReport {
    /// One entry per program layer, in execution order.
    pub layers: Vec<LayerCycles>,
    /// Clock used for time conversions.
    pub clock_hz: u64,
    /// PE count (for utilisation).
    pub pe_count: usize,
}

impl CycleReport {
    /// Total latency cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(LayerCycles::total_cycles).sum()
    }

    /// Total latency in milliseconds (0.0 when `clock_hz` is 0).
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        if self.clock_hz == 0 {
            return 0.0;
        }
        self.total_cycles() as f64 / self.clock_hz as f64 * 1e3
    }

    /// Total arithmetic operations.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.layers.iter().map(|l| l.ops).sum()
    }

    /// Total operations of a dense (skip-free) schedule — what the run
    /// would have cost without the event-driven segment skip.
    #[must_use]
    pub fn total_nominal_ops(&self) -> u64 {
        self.layers.iter().map(|l| l.nominal_ops).sum()
    }

    /// Achieved throughput in GOPS (ops / wall-clock; 0.0 when `clock_hz`
    /// is 0 or no cycles elapsed).
    #[must_use]
    pub fn effective_gops(&self) -> f64 {
        if self.clock_hz == 0 {
            return 0.0;
        }
        let secs = self.total_cycles() as f64 / self.clock_hz as f64;
        if secs == 0.0 {
            0.0
        } else {
            self.total_ops() as f64 / secs / 1e9
        }
    }

    /// Mean PE-array utilisation over compute cycles (0..1).
    #[must_use]
    pub fn pe_utilization(&self) -> f64 {
        let compute: u64 = self.layers.iter().map(|l| l.compute_cycles).sum();
        if compute == 0 {
            return 0.0;
        }
        let active: u64 = self.layers.iter().map(|l| l.active_pe_cycles).sum();
        active as f64 / (compute as f64 * self.pe_count as f64)
    }

    /// Sustained images/second when inferences stream back-to-back with
    /// the layer pipeline kept busy: the ping-pong memories double-buffer
    /// between consecutive images, so the steady-state interval is the
    /// **slowest layer** (the pipeline bottleneck) rather than the sum of
    /// all layers. The FC row of Table I makes this vivid: single-image
    /// latency is ≈ 59 ms + convs, but the conv pipeline hides behind the
    /// driver-paced FC, so streaming throughput is 1/max, not 1/sum.
    #[must_use]
    pub fn streaming_fps(&self) -> f64 {
        let bottleneck = self
            .layers
            .iter()
            .map(LayerCycles::total_cycles)
            .max()
            .unwrap_or(0);
        if bottleneck == 0 {
            return 0.0;
        }
        self.clock_hz as f64 / bottleneck as f64
    }

    /// Report for a given SIA configuration (carries clock + PE count).
    #[must_use]
    pub fn for_config(config: &SiaConfig) -> Self {
        CycleReport {
            layers: Vec::new(),
            clock_hz: config.clock_hz,
            pe_count: config.pe_count(),
        }
    }
}

impl fmt::Display for CycleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<22} {:>12} {:>12} {:>10} {:>10}",
            "layer", "compute(cy)", "transfer(cy)", "total(cy)", "ms"
        )?;
        for l in &self.layers {
            writeln!(
                f,
                "{:<22} {:>12} {:>12} {:>10} {:>10.4}",
                l.name,
                l.compute_cycles,
                l.transfer_cycles,
                l.total_cycles(),
                l.ms(self.clock_hz)
            )?;
        }
        write!(
            f,
            "total {:.4} ms, {:.2} effective GOPS, {:.1}% PE utilisation",
            self.total_ms(),
            self.effective_gops(),
            self.pe_utilization() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(compute: u64, transfer: u64, overlapped: bool) -> LayerCycles {
        LayerCycles {
            name: "l".into(),
            compute_cycles: compute,
            transfer_cycles: transfer,
            overhead_cycles: 100,
            overlapped,
            active_pe_cycles: compute / 2 * 64,
            ops: compute * 64,
            nominal_ops: compute * 128,
            spikes: 10,
        }
    }

    #[test]
    fn overlap_takes_max_sequential_takes_sum() {
        assert_eq!(layer(1000, 600, true).total_cycles(), 1100);
        assert_eq!(layer(1000, 600, false).total_cycles(), 1700);
    }

    #[test]
    fn ms_conversion() {
        let l = layer(99_900, 0, true);
        assert!((l.ms(100_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn report_totals_and_utilisation() {
        let mut r = CycleReport {
            layers: vec![layer(1000, 0, true), layer(3000, 0, true)],
            clock_hz: 100_000_000,
            pe_count: 64,
        };
        assert_eq!(r.total_cycles(), 4200);
        assert_eq!(r.total_ops(), 4000 * 64);
        assert_eq!(r.total_nominal_ops(), 4000 * 128);
        assert!((r.pe_utilization() - 0.5).abs() < 1e-9);
        assert!(r.effective_gops() > 0.0);
        r.layers.clear();
        assert_eq!(r.pe_utilization(), 0.0);
    }

    #[test]
    fn streaming_fps_is_bottleneck_paced() {
        let r = CycleReport {
            layers: vec![
                layer(1000, 0, true),
                layer(99_900, 0, true),
                layer(500, 0, true),
            ],
            clock_hz: 100_000_000,
            pe_count: 64,
        };
        // bottleneck = 100_000 cycles = 1 ms ⇒ 1000 fps,
        // while single-image latency is the sum (slower)
        assert!((r.streaming_fps() - 1000.0).abs() < 1e-6);
        assert!(r.streaming_fps() > 1e3 / r.total_ms());
        let empty = CycleReport::for_config(&SiaConfig::pynq_z2());
        assert_eq!(empty.streaming_fps(), 0.0);
    }

    #[test]
    fn zero_clock_yields_zero_not_nan() {
        let l = layer(1000, 600, false);
        assert_eq!(l.ms(0), 0.0);
        let r = CycleReport {
            layers: vec![l],
            clock_hz: 0,
            pe_count: 64,
        };
        assert_eq!(r.total_ms(), 0.0);
        assert_eq!(r.effective_gops(), 0.0);
        assert!(r.total_ms().is_finite());
        assert!(r.effective_gops().is_finite());
    }

    #[test]
    fn display_lists_layers() {
        let r = CycleReport {
            layers: vec![layer(10, 5, true)],
            clock_hz: 100_000_000,
            pe_count: 64,
        };
        let s = r.to_string();
        assert!(s.contains("total"));
        assert!(s.contains("GOPS"));
    }
}
