//! The 8×8 spiking core: kernel-parallel, event-driven convolution.
//!
//! Mapping (§III-A + §III-D): the weight memory holds "up to 64 kernels",
//! one per PE. The array walks output pixels; at each pixel the input spike
//! window is broadcast to every PE, which accumulates its own kernel's
//! weights. A kernel row is consumed in segments of `taps_per_cycle`
//! (3 muxes ⇒ 3 taps per cycle, so a 3×3 row costs one cycle); segments
//! whose spike taps are all zero are **skipped without spending a cycle** —
//! the event-driven saving that lets every equal-MAC conv layer of Table I
//! finish in ≈ 0.9 ms instead of the ≈ 2 ms a dense schedule would need.

use crate::config::SiaConfig;
use crate::pe::ProcessingElement;
use sia_snn::scratch::scratch_resize;
use sia_snn::spikeplane::SpikePlane;
use sia_tensor::Conv2dGeom;

/// Result of one convolution pass (one kernel group over all output pixels,
/// one timestep).
#[derive(Clone, Debug, PartialEq)]
pub struct ConvPassOutput {
    /// Partial sums, `[group_size, OH, OW]` row-major.
    pub psums: Vec<i16>,
    /// Clock cycles spent by the spiking core.
    pub cycles: u64,
    /// Σ over cycles of active PEs (for utilisation and energy accounting).
    pub active_pe_cycles: u64,
    /// Kernel-row segments skipped by the event-driven logic.
    pub skipped_segments: u64,
    /// Kernel-row segments processed.
    pub processed_segments: u64,
}

/// Cycle accounting of one packed convolution pass (the psums land in the
/// caller's scratch buffer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConvPassStats {
    /// Clock cycles spent by the spiking core.
    pub cycles: u64,
    /// Σ over cycles of active PEs.
    pub active_pe_cycles: u64,
    /// Kernel-row segments skipped by the event-driven logic.
    pub skipped_segments: u64,
    /// Kernel-row segments processed.
    pub processed_segments: u64,
}

/// What to run: one kernel group of one layer (§III-B — output channels are
/// processed in groups of at most the PE count).
#[derive(Clone, Copy, Debug)]
pub struct PassRequest<'a> {
    /// Convolution geometry.
    pub geom: &'a Conv2dGeom,
    /// Full layer weight tensor `[C_out, C_in, K, K]` (INT8 codes).
    pub weights: &'a [i8],
    /// First output channel of the group.
    pub group_start: usize,
    /// Channels in the group (≤ PE count).
    pub group_size: usize,
}

/// Reusable buffers of the spiking core, retained across passes so a warm
/// timestep loop performs no heap allocations.
#[derive(Clone, Debug, Default)]
pub struct PassScratch {
    pes: Vec<ProcessingElement>,
    seg_weights: Vec<i8>,
    seg_spikes: Vec<bool>,
}

/// Runs one timestep of a spiking convolution over a bit-packed input
/// plane, writing the group's partial sums (`[group_size, OH, OW]`
/// row-major) into `psums`.
///
/// The segment gather reads `taps_per_cycle` spike bits at once from the
/// packed words ([`SpikePlane::extract_bits`], out-of-bounds taps read 0 —
/// the padding semantics), so the event-driven skip decision is a single
/// compare against zero. Skip decisions, cycle counts and psums are
/// identical to the byte-wise [`run_conv_pass`], which wraps this.
///
/// # Panics
///
/// Panics if the group exceeds the PE count, the group range exceeds
/// `C_out`, the weight buffer disagrees with `geom`, or the plane shape
/// mismatches `geom`'s input.
pub fn run_conv_pass_packed(
    req: &PassRequest<'_>,
    plane: &SpikePlane,
    config: &SiaConfig,
    scratch: &mut PassScratch,
    psums: &mut Vec<i16>,
) -> ConvPassStats {
    let geom = req.geom;
    assert!(
        req.group_size <= config.pe_count(),
        "kernel group exceeds PE array"
    );
    assert!(
        req.group_start + req.group_size <= geom.out_channels,
        "kernel group out of range"
    );
    assert_eq!(
        req.weights.len(),
        geom.weight_count(),
        "weight buffer size mismatch"
    );
    assert!(
        plane.channels() == geom.in_channels
            && plane.height() == geom.in_h
            && plane.width() == geom.in_w,
        "spike plane shape mismatches conv geometry"
    );
    let (oh, ow) = geom.out_hw();
    let k = geom.kernel;
    let taps = config.taps_per_cycle;
    let PassScratch {
        pes,
        seg_weights,
        seg_spikes,
    } = scratch;
    pes.clear();
    pes.resize(req.group_size, ProcessingElement::new());
    scratch_resize(psums, req.group_size * oh * ow, 0);
    let mut stats = ConvPassStats::default();
    for oy in 0..oh {
        for ox in 0..ow {
            for pe in pes.iter_mut() {
                pe.clear();
            }
            for ci in 0..geom.in_channels {
                for ky in 0..k {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    let mut kx = 0usize;
                    while kx < k {
                        let seg = (k - kx).min(taps);
                        let ix0 = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        // all `seg` spike taps in one packed read
                        let bits = plane.extract_bits(ci, iy, ix0, seg);
                        if bits != 0 {
                            // one cycle: every PE in the group accumulates
                            stats.cycles += 1;
                            stats.active_pe_cycles += req.group_size as u64;
                            stats.processed_segments += 1;
                            seg_spikes.clear();
                            for dx in 0..seg {
                                seg_spikes.push(bits >> dx & 1 != 0);
                            }
                            for (p, pe) in pes.iter_mut().enumerate() {
                                let co = req.group_start + p;
                                seg_weights.clear();
                                for dx in 0..seg {
                                    let widx =
                                        ((co * geom.in_channels + ci) * k + ky) * k + (kx + dx);
                                    seg_weights.push(req.weights[widx]);
                                }
                                pe.accumulate_row(seg_weights, seg_spikes);
                            }
                        } else {
                            stats.skipped_segments += 1;
                        }
                        kx += seg;
                    }
                }
            }
            // final handoff cycle to the aggregation core
            stats.cycles += 1;
            for (p, pe) in pes.iter_mut().enumerate() {
                psums[(p * oh + oy) * ow + ox] = pe.take_psum();
            }
        }
    }
    stats
}

/// Runs one timestep of a spiking convolution for output channels
/// `group_start .. group_start + group_size`.
///
/// `weights` is the full layer tensor `[C_out, C_in, K, K]` (INT8 codes);
/// `spikes` the input bitmap `[C_in, H, W]`. Byte-slice convenience wrapper
/// over [`run_conv_pass_packed`] (which the machine's hot loop calls
/// directly to avoid the packing and allocations).
///
/// # Panics
///
/// Panics if the group exceeds the PE count, the group range exceeds
/// `C_out`, or buffer sizes disagree with `geom`.
#[must_use]
pub fn run_conv_pass(
    geom: &Conv2dGeom,
    weights: &[i8],
    group_start: usize,
    group_size: usize,
    spikes: &[u8],
    config: &SiaConfig,
) -> ConvPassOutput {
    assert_eq!(
        spikes.len(),
        geom.in_channels * geom.in_h * geom.in_w,
        "spike buffer size mismatch"
    );
    let mut plane = SpikePlane::default();
    plane.pack_from_bytes(geom.in_channels, geom.in_h, geom.in_w, spikes);
    let mut scratch = PassScratch::default();
    let mut psums = Vec::new();
    let stats = run_conv_pass_packed(
        &PassRequest {
            geom,
            weights,
            group_start,
            group_size,
        },
        &plane,
        config,
        &mut scratch,
        &mut psums,
    );
    ConvPassOutput {
        psums,
        cycles: stats.cycles,
        active_pe_cycles: stats.active_pe_cycles,
        skipped_segments: stats.skipped_segments,
        processed_segments: stats.processed_segments,
    }
}

/// Cycle cost of one timestep of a fully-connected pass (the PE array in FC
/// mode, §III-A "the analysis can be extended to … fully connected
/// layers"): each PE owns one output neuron, inputs stream in segments of
/// `taps_per_cycle` with the same event-driven skip.
#[must_use]
pub fn fc_pass_cycles(
    in_features: usize,
    out_features: usize,
    active_inputs: usize,
    config: &SiaConfig,
) -> u64 {
    let groups = out_features.div_ceil(config.pe_count());
    let segments = in_features.div_ceil(config.taps_per_cycle);
    // occupied segment probability from the active-input density
    let density = active_inputs as f64 / in_features.max(1) as f64;
    let occupied =
        (segments as f64 * (1.0 - (1.0 - density).powi(config.taps_per_cycle as i32))).ceil();
    groups as u64 * (occupied as u64 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(cin: usize, cout: usize, hw: usize, k: usize) -> Conv2dGeom {
        Conv2dGeom {
            in_channels: cin,
            out_channels: cout,
            in_h: hw,
            in_w: hw,
            kernel: k,
            stride: 1,
            padding: k / 2,
        }
    }

    /// Reference psums (the functional simulator's tap order).
    fn reference_psums(
        g: &Conv2dGeom,
        weights: &[i8],
        group: (usize, usize),
        spikes: &[u8],
    ) -> Vec<i16> {
        let (oh, ow) = g.out_hw();
        let mut out = vec![0i16; group.1 * oh * ow];
        for p in 0..group.1 {
            let co = group.0 + p;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0i16;
                    for ci in 0..g.in_channels {
                        for ky in 0..g.kernel {
                            let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                            if iy < 0 || iy >= g.in_h as isize {
                                continue;
                            }
                            for kx in 0..g.kernel {
                                let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                                if ix < 0 || ix >= g.in_w as isize {
                                    continue;
                                }
                                if spikes[(ci * g.in_h + iy as usize) * g.in_w + ix as usize] != 0 {
                                    let widx =
                                        ((co * g.in_channels + ci) * g.kernel + ky) * g.kernel + kx;
                                    acc = sia_fixed::sat::acc_weight(acc, weights[widx]);
                                }
                            }
                        }
                    }
                    out[(p * oh + oy) * ow + ox] = acc;
                }
            }
        }
        out
    }

    fn pattern_weights(n: usize) -> Vec<i8> {
        (0..n)
            .map(|i| ((i * 37 % 255) as i32 - 127) as i8)
            .collect()
    }

    fn pattern_spikes(n: usize, rate_mod: usize) -> Vec<u8> {
        (0..n).map(|i| u8::from(i % rate_mod == 0)).collect()
    }

    #[test]
    fn psums_match_reference_3x3() {
        let g = geom(4, 6, 6, 3);
        let w = pattern_weights(g.weight_count());
        let s = pattern_spikes(4 * 36, 3);
        let cfg = SiaConfig::pynq_z2();
        let out = run_conv_pass(&g, &w, 0, 6, &s, &cfg);
        assert_eq!(out.psums, reference_psums(&g, &w, (0, 6), &s));
    }

    #[test]
    fn psums_match_reference_5x5_group_offset() {
        let g = geom(2, 8, 8, 5);
        let w = pattern_weights(g.weight_count());
        let s = pattern_spikes(2 * 64, 4);
        let cfg = SiaConfig::pynq_z2();
        let out = run_conv_pass(&g, &w, 3, 5, &s, &cfg);
        assert_eq!(out.psums, reference_psums(&g, &w, (3, 5), &s));
    }

    #[test]
    fn silent_input_costs_only_handoff_cycles() {
        let g = geom(8, 4, 4, 3);
        let w = pattern_weights(g.weight_count());
        let s = vec![0u8; 8 * 16];
        let cfg = SiaConfig::pynq_z2();
        let out = run_conv_pass(&g, &w, 0, 4, &s, &cfg);
        let (oh, ow) = g.out_hw();
        assert_eq!(out.cycles, (oh * ow) as u64); // one handoff per pixel
        assert_eq!(out.processed_segments, 0);
        assert!(out.skipped_segments > 0);
        assert!(out.psums.iter().all(|&p| p == 0));
    }

    #[test]
    fn dense_input_costs_full_schedule() {
        let g = geom(2, 4, 4, 3);
        let w = pattern_weights(g.weight_count());
        let s = vec![1u8; 2 * 16];
        let cfg = SiaConfig::pynq_z2();
        let out = run_conv_pass(&g, &w, 0, 4, &s, &cfg);
        // interior pixels: C_in·K rows, 1 cycle each (K=3 fits the 3 muxes),
        // +1 handoff. Border pixels may skip padded rows.
        let (oh, ow) = g.out_hw();
        let max = (oh * ow) as u64 * (2 * 3 + 1);
        assert!(out.cycles <= max);
        assert!(out.cycles > max / 2);
        assert_eq!(out.skipped_segments + out.processed_segments, 16 * 2 * 3);
    }

    #[test]
    fn event_driven_skip_reduces_cycles_proportionally() {
        let g = geom(16, 8, 8, 3);
        let w = pattern_weights(g.weight_count());
        let cfg = SiaConfig::pynq_z2();
        let sparse = pattern_spikes(16 * 64, 8);
        let dense = pattern_spikes(16 * 64, 2);
        let a = run_conv_pass(&g, &w, 0, 8, &sparse, &cfg);
        let b = run_conv_pass(&g, &w, 0, 8, &dense, &cfg);
        assert!(a.cycles < b.cycles, "{} !< {}", a.cycles, b.cycles);
    }

    #[test]
    fn wide_kernels_use_multiple_segments() {
        // K=5 ⇒ rows split into 3+2 tap segments: an all-ones input costs
        // 2 cycles per row.
        let g = geom(1, 1, 8, 5);
        let w = pattern_weights(g.weight_count());
        let s = vec![1u8; 64];
        let cfg = SiaConfig::pynq_z2();
        let out = run_conv_pass(&g, &w, 0, 1, &s, &cfg);
        // interior pixel: 5 rows × 2 segments = 10 cycles + 1 handoff
        // total bounded by pixels × 11
        assert!(out.cycles <= 64 * 11);
        assert_eq!(out.psums, reference_psums(&g, &w, (0, 1), &s));
    }

    #[test]
    fn active_pe_cycles_track_group_size() {
        let g = geom(2, 4, 4, 3);
        let w = pattern_weights(g.weight_count());
        let s = vec![1u8; 2 * 16];
        let cfg = SiaConfig::pynq_z2();
        let out = run_conv_pass(&g, &w, 0, 4, &s, &cfg);
        assert_eq!(out.active_pe_cycles, out.processed_segments * 4);
    }

    #[test]
    #[should_panic(expected = "exceeds PE array")]
    fn oversized_group_rejected() {
        let g = geom(1, 128, 4, 3);
        let w = pattern_weights(g.weight_count());
        let s = vec![0u8; 16];
        let _ = run_conv_pass(&g, &w, 0, 128, &s, &SiaConfig::pynq_z2());
    }

    #[test]
    fn fc_cycles_scale_with_groups_and_density() {
        let cfg = SiaConfig::pynq_z2();
        let sparse = fc_pass_cycles(512, 10, 50, &cfg);
        let dense = fc_pass_cycles(512, 10, 512, &cfg);
        assert!(sparse < dense);
        // 10 outputs fit one group; dense: 171 segments + 1
        assert_eq!(dense, 172);
        let two_groups = fc_pass_cycles(512, 100, 512, &cfg);
        assert_eq!(two_groups, 2 * 172);
    }
}
